//! Micro-benchmarks for the design choices DESIGN.md calls out:
//!
//! * occurrence-set representation: dense bitsets (the paper's choice)
//!   versus adaptive Roaring-style containers, across set densities;
//! * generalized vs exact subgraph isomorphism cost (the paper's claim
//!   that generalized matching is "at least as hard");
//! * occurrence-index construction cost per embedding;
//! * fused intersection kernels vs their materialize-then-count
//!   equivalents (DESIGN.md §8), plus the adaptive containers against
//!   the retired sorted-vec gallop kernel on Roaring-favorable
//!   clustered operands (DESIGN.md §13);
//! * the collect-all barrier engine vs the streaming pipelined engine at
//!   equal thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsg_bench::kernels::{baseline_gallop_count, clustered_members};
use tsg_bitset::{AdaptiveBitSet, BitSet};
use tsg_datagen::{generate_database, go_like_taxonomy_scaled, GraphGenConfig, LabelPool, Sizing};
use tsg_iso::{count_embeddings, ExactMatcher, GeneralizedMatcher};

/// Dense vs adaptive occurrence-set intersection at several densities.
fn occset_representation(c: &mut Criterion) {
    let universe = 20_000usize;
    let mut group = c.benchmark_group("occset_repr");
    for fill_permille in [5usize, 50, 500] {
        let step = 1000 / fill_permille.min(1000);
        let members_a: Vec<usize> = (0..universe).step_by(step.max(1)).collect();
        let members_b: Vec<usize> = (0..universe).skip(step / 2).step_by(step.max(1)).collect();
        let da = BitSet::from_iter_with_universe(universe, members_a.iter().copied());
        let db = BitSet::from_iter_with_universe(universe, members_b.iter().copied());
        let sa = AdaptiveBitSet::from_members(members_a);
        let sb = AdaptiveBitSet::from_members(members_b);
        group.bench_with_input(
            BenchmarkId::new("dense", fill_permille),
            &(&da, &db),
            |bench, (a, b)| bench.iter(|| a.intersection_count(b)),
        );
        group.bench_with_input(
            BenchmarkId::new("adaptive", fill_permille),
            &(&sa, &sb),
            |bench, (a, b)| bench.iter(|| a.intersection_count(b)),
        );
    }
    group.finish();
}

/// Exact vs generalized subgraph isomorphism on the same workload.
fn iso_cost(c: &mut Criterion) {
    let tax = go_like_taxonomy_scaled(200);
    let db = generate_database(
        &tax,
        &GraphGenConfig {
            graph_count: 50,
            max_edges: 15,
            edge_density: 0.25,
            sizing: Sizing::EdgeDriven,
            edge_labels: 4,
            label_pool: LabelPool::ByLevelUniform,
            directed: false,
            seed: 3,
        },
    );
    // A small pattern: first graph's first two edges, relabeled to roots
    // for the generalized case.
    let pattern = db.graph(0).induced_subgraph(&[0, 1, 2]);
    let mut general = pattern.clone();
    for v in 0..general.node_count() {
        let mga = tax.most_general_ancestor(general.label(v)).unwrap();
        general.set_label(v, mga);
    }
    let mut group = c.benchmark_group("iso_cost");
    group.bench_function("exact", |b| {
        b.iter(|| {
            db.iter()
                .map(|(_, g)| count_embeddings(&pattern, g, &ExactMatcher))
                .sum::<usize>()
        });
    });
    let gm = GeneralizedMatcher::new(&tax);
    group.bench_function("generalized", |b| {
        b.iter(|| {
            db.iter()
                .map(|(_, g)| count_embeddings(&general, g, &gm))
                .sum::<usize>()
        });
    });
    group.finish();
}

/// gSpan alone vs the full Taxogram pipeline on the relabeled database —
/// the overhead of occurrence-index construction and specialization.
fn pipeline_overhead(c: &mut Criterion) {
    let tax = go_like_taxonomy_scaled(400);
    let db = generate_database(
        &tax,
        &GraphGenConfig {
            graph_count: 60,
            max_edges: 12,
            edge_density: 0.25,
            sizing: Sizing::EdgeDriven,
            edge_labels: 10,
            label_pool: LabelPool::ByLevelUniform,
            directed: false,
            seed: 4,
        },
    );
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("gspan_on_dmg_only", |b| {
        let rel = taxogram_core::relabel::relabel(&db, &tax).unwrap();
        b.iter(|| tsg_gspan::mine_frequent(&rel.dmg, 12, Some(5)).len());
    });
    group.bench_function("full_taxogram", |b| {
        let cfg = taxogram_core::TaxogramConfig::with_threshold(0.2).max_edges(5);
        b.iter(|| {
            taxogram_core::Taxogram::new(cfg)
                .mine(&db, &tax)
                .unwrap()
                .patterns
                .len()
        });
    });
    group.finish();
}

/// The fused adaptive∩dense kernels against materialize-then-count, the
/// old skewed sparse∩sparse workload on both the retired sorted-vec
/// gallop and the adaptive dispatch, and the acceptance-criterion
/// comparison: adaptive containers vs the retired gallop kernel on
/// clustered operands with both sides ≥ 4096 members (bitmap/run
/// territory, where word-parallel AND should win by well over 2×).
fn fused_kernels(c: &mut Criterion) {
    let universe = 20_000usize;
    let dense = BitSet::from_iter_with_universe(universe, (0..universe).step_by(3));
    let sparse: AdaptiveBitSet = (0..universe).step_by(40).collect();
    let mut group = c.benchmark_group("fused");
    group.bench_function("sparse_dense_count_fused", |b| {
        b.iter(|| sparse.intersection_count_dense(&dense));
    });
    group.bench_function("sparse_dense_count_materialized", |b| {
        let mut out = BitSet::new(universe);
        b.iter(|| sparse.intersect_into_dense(&dense, &mut out));
    });
    // Distinct-graph counting (Lemma 7's unit of work): occurrences map
    // to ~200 database graphs.
    let map: Vec<u32> = (0..universe as u32).map(|i| i % 200).collect();
    let mut scratch = BitSet::new(200);
    group.bench_function("sparse_dense_distinct_mapped", |b| {
        b.iter(|| {
            tsg_bitset::adaptive_dense_distinct_mapped_count(&sparse, &dense, &map, &mut scratch)
        });
    });
    // Skewed sparse∩sparse: 64 members probing 20k. The retired kernel
    // keeps its historical name for BENCH continuity; the adaptive
    // dispatch runs the same operands (the 20k side is bitmap-encoded).
    let small_members: Vec<usize> = (0..universe).step_by(universe / 64).collect();
    let large_members: Vec<usize> = (0..universe).collect();
    let small: AdaptiveBitSet = small_members.iter().copied().collect();
    let large: AdaptiveBitSet = large_members.iter().copied().collect();
    group.bench_function("sparse_sparse_gallop", |b| {
        b.iter(|| baseline_gallop_count(&small_members, &large_members));
    });
    group.bench_function("adaptive_small_probe_large", |b| {
        b.iter(|| small.intersection_count(&large));
    });
    // Acceptance criterion: clustered, both sides ≥ 4096.
    let (ca, cb) = clustered_members();
    let ra: AdaptiveBitSet = ca.iter().copied().collect();
    let rb: AdaptiveBitSet = cb.iter().copied().collect();
    group.bench_function("roaring_clustered_count", |b| {
        b.iter(|| ra.intersection_count(&rb));
    });
    group.bench_function("gallop_baseline_clustered", |b| {
        b.iter(|| baseline_gallop_count(&ca, &cb));
    });
    group.finish();
}

/// The adaptive array×array dispatch against both forced kernels, in
/// both regimes it must cover: comparable sizes (linear merge should
/// win) and heavy skew (galloping should win). The ratio sweep brackets
/// the `GALLOP_RATIO = 16` crossover so a regression in either kernel —
/// or a misplaced threshold — shows up directly.
///
/// Every set here keeps per-chunk cardinality below `BITMAP_MIN` so the
/// containers stay arrays and the merge/gallop pair is actually what
/// runs; bigger sets would silently promote to bitmaps and measure a
/// different kernel.
fn sparse_intersection_regimes(c: &mut Criterion) {
    let universe = 65_536usize;
    let card = 4_000usize; // < ARRAY_MAX: one array container per set
    let mut group = c.benchmark_group("sparse_regimes");
    // Regime 1: comparable sizes (ratio 1): two ~4k-member arrays.
    let a: AdaptiveBitSet = (0..universe).step_by(16).take(card).collect();
    let b: AdaptiveBitSet = (8..universe)
        .step_by(16)
        .take(card / 2)
        .chain((0..universe).step_by(32).take(card / 2))
        .collect();
    group.bench_function("comparable/adaptive", |bench| {
        bench.iter(|| a.intersection_count(&b));
    });
    group.bench_function("comparable/merge", |bench| {
        bench.iter(|| a.intersection_count_merge(&b));
    });
    group.bench_function("comparable/gallop", |bench| {
        bench.iter(|| a.intersection_count_gallop(&b));
    });
    // Regime 2: heavy skew (ratio ~31): 128 members probing 4k.
    let small: AdaptiveBitSet = (0..universe).step_by(512).collect();
    let large: AdaptiveBitSet = (0..universe).step_by(16).take(card).collect();
    group.bench_function("skewed/adaptive", |bench| {
        bench.iter(|| small.intersection_count(&large));
    });
    group.bench_function("skewed/merge", |bench| {
        bench.iter(|| small.intersection_count_merge(&large));
    });
    group.bench_function("skewed/gallop", |bench| {
        bench.iter(|| small.intersection_count_gallop(&large));
    });
    // Ratio sweep across the crossover: the large side is fixed at 4k
    // members; the small side shrinks by the sweep ratio.
    let large: AdaptiveBitSet = (0..universe).step_by(16).take(card).collect();
    for ratio in [4usize, 8, 16, 32, 64] {
        let small: AdaptiveBitSet = (0..universe)
            .step_by(16 * ratio)
            .take(card / ratio)
            .collect();
        group.bench_with_input(
            BenchmarkId::new("sweep_merge", ratio),
            &(&small, &large),
            |bench, (s, l)| bench.iter(|| s.intersection_count_merge(l)),
        );
        group.bench_with_input(
            BenchmarkId::new("sweep_gallop", ratio),
            &(&small, &large),
            |bench, (s, l)| bench.iter(|| s.intersection_count_gallop(l)),
        );
    }
    group.finish();
}

/// Barrier vs pipelined engine, end to end, at equal thread counts.
fn engines(c: &mut Criterion) {
    let ds = tsg_datagen::registry::build(
        tsg_datagen::registry::DatasetId::D(1000),
        tsg_bench::Profile::quick().scale,
    );
    let cfg = taxogram_core::TaxogramConfig::with_threshold(0.2).max_edges(5);
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("serial", |b| {
        b.iter(|| {
            taxogram_core::Taxogram::new(cfg)
                .mine(&ds.database, &ds.taxonomy)
                .unwrap()
                .patterns
                .len()
        });
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("barrier", threads), &threads, |b, &t| {
            b.iter(|| {
                taxogram_core::mine_parallel(&cfg, &ds.database, &ds.taxonomy, t)
                    .unwrap()
                    .patterns
                    .len()
            });
        });
        group.bench_with_input(BenchmarkId::new("pipelined", threads), &threads, |b, &t| {
            b.iter(|| {
                taxogram_core::mine_pipelined(&cfg, &ds.database, &ds.taxonomy, t)
                    .unwrap()
                    .patterns
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(
    micro,
    occset_representation,
    iso_cost,
    pipeline_overhead,
    fused_kernels,
    sparse_intersection_regimes,
    engines
);
criterion_main!(micro);
