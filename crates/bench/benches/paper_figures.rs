//! Criterion benches mirroring every figure/table of the paper's §4 at
//! the quick profile. One bench group per figure; within each group, one
//! benchmark per x-axis point and algorithm, so `cargo bench` regenerates
//! the full set of series the paper plots.
//!
//! For one-shot reports with larger scales, prefer the `experiments`
//! binary; these benches exist for statistically robust relative timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Heavy mining benchmarks: few samples, short measurement windows, so the
/// full suite stays in the minutes range.
fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
}
use taxogram_core::{Enhancements, Taxogram, TaxogramConfig};
use tsg_bench::Profile;
use tsg_datagen::registry::{build, DatasetId};
use tsg_datagen::{go_like_taxonomy_scaled, pathway_database, pte_like_dataset, PATHWAYS};
use tsg_graph::GraphDatabase;
use tsg_taxonomy::Taxonomy;

fn profile() -> Profile {
    Profile::quick()
}

fn mine_with(
    db: &GraphDatabase,
    tax: &Taxonomy,
    theta: f64,
    enhancements: Enhancements,
    max_edges: Option<usize>,
) -> usize {
    let mut cfg = TaxogramConfig::with_threshold(theta);
    cfg.max_edges = max_edges;
    cfg.enhancements = enhancements;
    Taxogram::new(cfg)
        .mine(db, tax)
        .expect("valid input")
        .patterns
        .len()
}

/// Figure 4.2: running time vs database size, three algorithms.
fn fig4_2(c: &mut Criterion) {
    let p = profile();
    let mut group = c.benchmark_group("fig4_2_db_size");
    tune(&mut group);
    for n in [1000, 3000, 5000] {
        let ds = build(DatasetId::D(n), p.scale);
        group.bench_with_input(BenchmarkId::new("taxogram", n), &ds, |b, ds| {
            b.iter(|| mine_with(&ds.database, &ds.taxonomy, 0.2, Enhancements::all(), p.max_edges));
        });
        group.bench_with_input(BenchmarkId::new("baseline", n), &ds, |b, ds| {
            b.iter(|| mine_with(&ds.database, &ds.taxonomy, 0.2, Enhancements::none(), p.max_edges));
        });
        group.bench_with_input(BenchmarkId::new("tacgm", n), &ds, |b, ds| {
            let mut cfg = tsg_tacgm::TacgmConfig::with_threshold(0.2)
                .memory_budget(p.tacgm_budget_bytes);
            cfg.max_edges = p.max_edges;
            b.iter(|| tsg_tacgm::mine(&ds.database, &ds.taxonomy, &cfg).map(|r| r.patterns.len()));
        });
    }
    group.finish();
}

/// Figure 4.3: running time vs max graph size.
fn fig4_3(c: &mut Criterion) {
    let p = profile();
    let mut group = c.benchmark_group("fig4_3_graph_size");
    tune(&mut group);
    for m in [10, 20, 30, 40] {
        let ds = build(DatasetId::NC(m), p.scale);
        group.bench_with_input(BenchmarkId::new("taxogram", m), &ds, |b, ds| {
            b.iter(|| mine_with(&ds.database, &ds.taxonomy, 0.2, Enhancements::all(), p.max_edges));
        });
    }
    group.finish();
}

/// Figure 4.4: running time vs edge density.
fn fig4_4(c: &mut Criterion) {
    let p = profile();
    let mut group = c.benchmark_group("fig4_4_edge_density");
    tune(&mut group);
    for d in [6, 9, 10, 11] {
        let ds = build(DatasetId::ED(d as f64 / 100.0), p.scale);
        group.bench_with_input(BenchmarkId::new("taxogram", d), &ds, |b, ds| {
            b.iter(|| mine_with(&ds.database, &ds.taxonomy, 0.2, Enhancements::all(), p.max_edges));
        });
    }
    group.finish();
}

/// Figure 4.5: running time vs taxonomy depth.
fn fig4_5(c: &mut Criterion) {
    let p = profile();
    let mut group = c.benchmark_group("fig4_5_tax_depth");
    tune(&mut group);
    for k in [5, 9, 12, 15] {
        let ds = build(DatasetId::TD(k), p.scale);
        group.bench_with_input(BenchmarkId::new("taxogram", k), &ds, |b, ds| {
            b.iter(|| mine_with(&ds.database, &ds.taxonomy, 0.2, Enhancements::all(), p.max_edges));
        });
    }
    group.finish();
}

/// Figure 4.6: running time vs taxonomy concept count.
fn fig4_6(c: &mut Criterion) {
    let p = profile();
    let mut group = c.benchmark_group("fig4_6_tax_size");
    tune(&mut group);
    for cc in [25, 100, 400, 1600] {
        let ds = build(DatasetId::TS(cc), p.scale);
        group.bench_with_input(BenchmarkId::new("taxogram", cc), &ds, |b, ds| {
            b.iter(|| mine_with(&ds.database, &ds.taxonomy, 0.2, Enhancements::all(), p.max_edges));
        });
    }
    group.finish();
}

/// Figure 4.7: support-threshold sweep on D4000, Taxogram vs TAcGM.
fn fig4_7(c: &mut Criterion) {
    let p = profile();
    let ds = build(DatasetId::D(4000), p.scale);
    let mut group = c.benchmark_group("fig4_7_support");
    tune(&mut group);
    for theta_pct in [60, 40, 20, 5] {
        let theta = theta_pct as f64 / 100.0;
        group.bench_with_input(BenchmarkId::new("taxogram", theta_pct), &theta, |b, &t| {
            b.iter(|| mine_with(&ds.database, &ds.taxonomy, t, Enhancements::all(), p.max_edges));
        });
        group.bench_with_input(BenchmarkId::new("tacgm", theta_pct), &theta, |b, &t| {
            let mut cfg =
                tsg_tacgm::TacgmConfig::with_threshold(t).memory_budget(p.tacgm_budget_bytes);
            cfg.max_edges = p.max_edges;
            b.iter(|| tsg_tacgm::mine(&ds.database, &ds.taxonomy, &cfg).map(|r| r.patterns.len()));
        });
    }
    group.finish();
}

/// Table 2: representative pathways (least and most conserved).
fn table2(c: &mut Criterion) {
    let p = profile();
    let taxonomy = go_like_taxonomy_scaled(400);
    let mut group = c.benchmark_group("table2_pathways");
    tune(&mut group);
    for (idx, tag) in [(0usize, "vitamin_b6"), (15, "tca_cycle"), (23, "nitrogen")] {
        let db = pathway_database(&taxonomy, &PATHWAYS[idx], 30, 0xEDB7);
        group.bench_with_input(BenchmarkId::new("taxogram", tag), &db, |b, db| {
            b.iter(|| mine_with(db, &taxonomy, 0.2, Enhancements::all(), p.max_edges));
        });
    }
    group.finish();
}

/// Figure 4.8: PTE at three support thresholds.
fn fig4_8(c: &mut Criterion) {
    let p = profile();
    let pte = pte_like_dataset(2008);
    let mut group = c.benchmark_group("fig4_8_pte");
    tune(&mut group);
    for theta_pct in [60, 50, 30] {
        let theta = theta_pct as f64 / 100.0;
        group.bench_with_input(BenchmarkId::new("taxogram", theta_pct), &theta, |b, &t| {
            b.iter(|| mine_with(&pte.database, &pte.taxonomy, t, Enhancements::all(), p.max_edges));
        });
    }
    group.finish();
}

/// Ablation: each enhancement individually disabled (beyond the paper).
fn ablation(c: &mut Criterion) {
    let p = profile();
    let ds = build(DatasetId::D(2000), p.scale);
    let configs: [(&str, Enhancements); 6] = [
        ("all", Enhancements::all()),
        ("none", Enhancements::none()),
        ("no_a", Enhancements { apriori_child_prune: false, ..Enhancements::all() }),
        ("no_b", Enhancements { prune_infrequent_labels: false, ..Enhancements::all() }),
        ("no_c", Enhancements { predescend_roots: false, ..Enhancements::all() }),
        ("no_d", Enhancements { contract_equal_sets: false, ..Enhancements::all() }),
    ];
    let mut group = c.benchmark_group("ablation_enhancements");
    tune(&mut group);
    for (name, enh) in configs {
        group.bench_function(name, |b| {
            b.iter(|| mine_with(&ds.database, &ds.taxonomy, 0.2, enh, p.max_edges));
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    fig4_2,
    fig4_3,
    fig4_4,
    fig4_5,
    fig4_6,
    fig4_7,
    table2,
    fig4_8,
    ablation
);
criterion_main!(figures);
