//! Machine-readable performance snapshot: a `host` section identifying
//! the machine (logical CPUs, CPU model, 1-minute load average at start),
//! median nanoseconds for the hot bitset kernels (shared with the
//! `kernel_gate` CI stage via `tsg_bench::kernels`), end-to-end
//! D1000/θ=0.2 mine times for the serial, barrier-parallel,
//! streaming-pipelined, and work-stealing engines, a `thread_scaling`
//! section sweeping the scaling engines over 1/2/4/8 workers (with the
//! host's core count recorded next to the rows — on a single-core host
//! the sweep measures scheduling overhead, not speedup), a
//! `taxonomy_scale` section measuring the interval-labeled reachability
//! layer at 10⁵ and 10⁶ concepts, a `serve_load` section driving an
//! in-process `tsg-serve` daemon with concurrent synthetic clients
//! (latency percentiles, shed rate, drain time), and a
//! `governed_overhead` section timing the serial miner ungoverned vs
//! governed with an infinite budget (the pure cost of the governance
//! poll points).
//!
//! Emits a single JSON object on stdout; `scripts/bench_snapshot.sh`
//! redirects it into a dated `BENCH_<date>.json`. Timing is hand-rolled
//! (sorted-sample median over fixed batches) so the binary has no
//! harness dependency.
//!
//! ```text
//! cargo run --release -p tsg-bench --bin bench_snapshot -- [--threads N] [--scale quick|medium|full]
//! ```

use std::time::Instant;
use tsg_bench::Profile;
use tsg_datagen::registry::{build, DatasetId};

/// CPU model, logical CPU count, and current 1-minute load, so a
/// snapshot records which machine (and how busy a machine) produced it.
/// Every field degrades gracefully off Linux or in restricted sandboxes.
fn host_info() -> (usize, String, f64) {
    let nproc = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split_once(':').map(|(_, v)| v.trim().to_string()))
        })
        .unwrap_or_else(|| "unknown".to_string())
        .replace(['"', '\\'], "");
    let loadavg_1m = std::fs::read_to_string("/proc/loadavg")
        .ok()
        .and_then(|s| s.split_whitespace().next().and_then(|v| v.parse().ok()))
        .unwrap_or(-1.0);
    (nproc, cpu_model, loadavg_1m)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let threads: usize = get("--threads", "4").parse().unwrap_or_else(|_| {
        eprintln!("--threads must be an integer");
        std::process::exit(2);
    });
    let profile = Profile::by_name(&get("--scale", "quick")).unwrap_or_else(|| {
        eprintln!("unknown scale; use quick | medium | full");
        std::process::exit(2);
    });

    // Record load *before* the benchmarks heat the machine up.
    let (nproc, cpu_model, loadavg_1m) = host_info();

    // --- Kernel medians (shared workload set with `kernel_gate`) --------
    let kernels = tsg_bench::kernels::kernel_medians();

    // --- End-to-end engines on D1000, θ = 0.2 ---------------------------
    // Reps are interleaved (serial, barrier, pipelined, stealing per
    // round) so machine-load drift hits all engines equally, and the
    // *minimum* over reps is reported: external load only ever adds time,
    // so the min is the least-noisy estimate of an engine's true cost.
    let ds = build(DatasetId::D(1000), profile.scale);
    let cfg = taxogram_core::TaxogramConfig::with_threshold(0.2).max_edges(5);
    let reps = 15usize;

    let barrier = taxogram_core::mine_parallel(&cfg, &ds.database, &ds.taxonomy, threads).unwrap();
    let piped = taxogram_core::mine_pipelined(&cfg, &ds.database, &ds.taxonomy, threads).unwrap();
    let stolen =
        taxogram_core::mine_stealing(&cfg, &ds.database, &ds.taxonomy, threads).unwrap();
    assert_eq!(
        barrier.patterns.len(),
        piped.patterns.len(),
        "engines must agree before a snapshot is worth recording"
    );
    assert_eq!(
        piped.patterns.len(),
        stolen.patterns.len(),
        "stealing engine must agree before a snapshot is worth recording"
    );

    let time_once = |f: &dyn Fn() -> usize| -> f64 {
        let start = Instant::now();
        std::hint::black_box(f());
        start.elapsed().as_nanos() as f64 / 1e6
    };
    let serial_run = || {
        taxogram_core::Taxogram::new(cfg)
            .mine(&ds.database, &ds.taxonomy)
            .unwrap()
            .patterns
            .len()
    };
    let barrier_run = || {
        taxogram_core::mine_parallel(&cfg, &ds.database, &ds.taxonomy, threads)
            .unwrap()
            .patterns
            .len()
    };
    let piped_run = || {
        taxogram_core::mine_pipelined(&cfg, &ds.database, &ds.taxonomy, threads)
            .unwrap()
            .patterns
            .len()
    };
    let steal_run = || {
        taxogram_core::mine_stealing(&cfg, &ds.database, &ds.taxonomy, threads)
            .unwrap()
            .patterns
            .len()
    };
    let mut t_serial = Vec::with_capacity(reps);
    let mut t_barrier = Vec::with_capacity(reps);
    let mut t_piped = Vec::with_capacity(reps);
    let mut t_steal = Vec::with_capacity(reps);
    for _ in 0..reps {
        t_serial.push(time_once(&serial_run));
        t_barrier.push(time_once(&barrier_run));
        t_piped.push(time_once(&piped_run));
        t_steal.push(time_once(&steal_run));
    }
    let best = |v: &[f64]| -> f64 { v.iter().copied().fold(f64::INFINITY, f64::min) };
    let serial_ms = best(&t_serial);
    let barrier_ms = best(&t_barrier);
    let piped_ms = best(&t_piped);
    let steal_ms = best(&t_steal);

    // --- Thread scaling: pipelined vs stealing over 1/2/4/8 workers -----
    // clamp_to_cores off so every requested worker count actually runs;
    // on a host with fewer cores the extra workers time-slice, which
    // still exercises (and times) the full scheduling machinery.
    let scaling_reps = 5usize;
    let thread_scaling: Vec<(usize, f64, f64, usize)> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|t| {
            let mut piped_times = Vec::with_capacity(scaling_reps);
            let mut steal_times = Vec::with_capacity(scaling_reps);
            let mut steals = 0usize;
            for _ in 0..scaling_reps {
                piped_times.push(time_once(&|| {
                    taxogram_core::mine_pipelined(&cfg, &ds.database, &ds.taxonomy, t)
                        .unwrap()
                        .patterns
                        .len()
                }));
                let start = Instant::now();
                let r = taxogram_core::mine_stealing_with(
                    &cfg,
                    &ds.database,
                    &ds.taxonomy,
                    taxogram_core::StealOptions {
                        threads: t,
                        deque_capacity: 0,
                        clamp_to_cores: false,
                    },
                )
                .unwrap();
                steal_times.push(start.elapsed().as_nanos() as f64 / 1e6);
                steals = steals.max(r.stats.steals);
            }
            (t, best(&piped_times), best(&steal_times), steals)
        })
        .collect();

    // --- Taxonomy scaling: interval-labeled reachability ----------------
    // One 10⁵ row matches the CI smoke stage; the 10⁶ row is the
    // acceptance scale for the closure-storage and is_ancestor bounds.
    let taxonomy_scale = [
        tsg_bench::taxscale::measure(100_000, 50, 42),
        tsg_bench::taxscale::measure(1_000_000, 50, 42),
    ];

    // --- SON scaling: out-of-core sharded mining ------------------------
    // One uncapped single-shard run measures the database's on-disk
    // footprint; the capped run then sets the resident-set ceiling to a
    // tenth of it, so the miner provably handles a database ~10× larger
    // than what any worker may hold resident — and must still produce
    // the byte-identical serial pattern count. The shard sweep rows time
    // shard-count scaling at the snapshot thread count.
    let spill_dir = std::env::temp_dir();
    let son_opts = |shards: usize, cap: Option<u64>| taxogram_core::ShardOptions {
        shards,
        threads,
        spill_dir: Some(spill_dir.clone()),
        resident_cap_bytes: cap,
        ..Default::default()
    };
    let uncapped =
        taxogram_core::mine_sharded(&cfg, &ds.database, &ds.taxonomy, &son_opts(1, None)).unwrap();
    let spilled_bytes = uncapped.shard_stats.spilled_bytes;
    let resident_cap = (spilled_bytes / 10).max(1);
    let capped = taxogram_core::mine_sharded(
        &cfg,
        &ds.database,
        &ds.taxonomy,
        &son_opts(1, Some(resident_cap)),
    )
    .unwrap();
    assert_eq!(
        capped.result.patterns.len(),
        piped.patterns.len(),
        "capped sharded mining must agree before a snapshot is worth recording"
    );
    assert!(
        capped.shard_stats.shards >= 10,
        "a tenth-of-footprint cap must split the database into >= 10 shards"
    );
    let son_reps = 3usize;
    let son_rows: Vec<(usize, f64, u64, usize)> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|shards| {
            let mut times = Vec::with_capacity(son_reps);
            let mut largest = 0u64;
            let mut actual = 0usize;
            for _ in 0..son_reps {
                let start = Instant::now();
                let r = taxogram_core::mine_sharded(
                    &cfg,
                    &ds.database,
                    &ds.taxonomy,
                    &son_opts(shards, None),
                )
                .unwrap();
                times.push(start.elapsed().as_nanos() as f64 / 1e6);
                largest = r.shard_stats.largest_shard_bytes;
                actual = r.shard_stats.shards;
            }
            (actual, best(&times), largest, shards)
        })
        .collect();

    // --- Serve load: the resident daemon under synthetic concurrency ----
    // An in-process `tsg-serve` daemon over the same D1000 dataset, hit
    // by concurrent no-cache clients so every request actually mines.
    // Records client-observed latency percentiles, the shed rate under
    // the default admission limits, and the drain time — the service
    // numbers `scripts/ci.sh`'s serve stage smoke-checks.
    let serve_handle = tsg_serve::Server::bind(
        "127.0.0.1:0",
        ds.database.clone(),
        ds.taxonomy.clone(),
        tsg_serve::ServeOptions {
            workers: threads.max(1),
            ..Default::default()
        },
    )
    .expect("bind serve daemon for the load stanza");
    let load = tsg_serve::run_load(
        serve_handle.addr(),
        &tsg_serve::LoadOptions {
            clients: 4,
            requests_per_client: 8,
            theta: 0.2,
            no_cache: true,
            ..Default::default()
        },
    );
    let drain = serve_handle.shutdown();
    assert_eq!(
        load.lost, 0,
        "the load driver must never lose a response over loopback"
    );

    // --- Governance overhead: ungoverned vs infinite budget -------------
    // Same interleave-and-take-min discipline as the engine timings. The
    // governed run enables every poll point (admission gate per class,
    // pattern accounting) with ceilings that never bind, so the delta is
    // the pure cost of governance plumbing on the serial engine.
    let govern_unlimited = taxogram_core::GovernOptions::default();
    let governed_run = || {
        taxogram_core::Taxogram::new(cfg)
            .mine_governed(&ds.database, &ds.taxonomy, &govern_unlimited)
            .unwrap()
            .result
            .patterns
            .len()
    };
    let gov_reps = 25usize;
    let mut t_ungoverned = Vec::with_capacity(gov_reps);
    let mut t_governed = Vec::with_capacity(gov_reps);
    for _ in 0..gov_reps {
        t_ungoverned.push(time_once(&serial_run));
        t_governed.push(time_once(&governed_run));
    }
    let ungoverned_ms = best(&t_ungoverned);
    let governed_ms = best(&t_governed);
    let overhead_pct = (governed_ms - ungoverned_ms) / ungoverned_ms * 100.0;

    // --- JSON -----------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"host\": {{\n    \"nproc\": {nproc},\n    \"cpu_model\": \"{cpu_model}\",\n    \"loadavg_1m\": {loadavg_1m:.2}\n  }},\n"
    ));
    json.push_str("  \"kernels_ns\": {\n");
    for (i, (name, ns)) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"d1000_theta02\": {{\n    \"scale\": {},\n    \"threads\": {},\n    \"patterns\": {},\n    \"serial_ms\": {:.3},\n    \"barrier_ms\": {:.3},\n    \"pipelined_ms\": {:.3},\n    \"stealing_ms\": {:.3},\n    \"barrier_peak_embedding_bytes\": {},\n    \"pipelined_peak_embedding_bytes\": {},\n    \"stealing_peak_embedding_bytes\": {}\n  }},\n",
        profile.scale,
        threads,
        piped.patterns.len(),
        serial_ms,
        barrier_ms,
        piped_ms,
        steal_ms,
        barrier.stats.peak_embedding_bytes,
        piped.stats.peak_embedding_bytes,
        stolen.stats.peak_embedding_bytes,
    ));
    json.push_str("  \"thread_scaling\": {\n");
    json.push_str(&format!("    \"host_nproc\": {nproc},\n"));
    json.push_str(
        "    \"note\": \"worker counts above host_nproc time-slice on shared cores; on a single-core host these rows measure scheduling overhead, not parallel speedup\",\n",
    );
    json.push_str("    \"rows\": [\n");
    for (i, (t, piped_ms, steal_ms, steals)) in thread_scaling.iter().enumerate() {
        let comma = if i + 1 < thread_scaling.len() { "," } else { "" };
        json.push_str(&format!(
            "      {{ \"threads\": {t}, \"pipelined_ms\": {piped_ms:.3}, \"stealing_ms\": {steal_ms:.3}, \"steals\": {steals} }}{comma}\n"
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"taxonomy_scale\": [\n");
    for (i, row) in taxonomy_scale.iter().enumerate() {
        let comma = if i + 1 < taxonomy_scale.len() { "," } else { "" };
        json.push_str(&format!("{}{comma}\n", row.to_json(4)));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"son_scaling\": {{\n    \"threads\": {},\n    \"spilled_bytes\": {},\n    \"resident_cap_bytes\": {},\n    \"spill_over_cap_ratio\": {:.1},\n    \"capped_shards\": {},\n    \"capped_largest_shard_bytes\": {},\n    \"patterns\": {},\n    \"rows\": [\n",
        threads,
        spilled_bytes,
        resident_cap,
        spilled_bytes as f64 / resident_cap as f64,
        capped.shard_stats.shards,
        capped.shard_stats.largest_shard_bytes,
        capped.result.patterns.len(),
    ));
    for (i, (actual, ms, largest, requested)) in son_rows.iter().enumerate() {
        let comma = if i + 1 < son_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "      {{ \"shards_requested\": {requested}, \"shards\": {actual}, \"mine_ms\": {ms:.3}, \"largest_shard_bytes\": {largest} }}{comma}\n"
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str(&format!(
        "  \"serve_load\": {{\n    \"workers\": {},\n    \"clients\": 4,\n    \"requests\": {},\n    \"ok\": {},\n    \"degraded\": {},\n    \"shed\": {},\n    \"errors\": {},\n    \"shed_rate\": {:.3},\n    \"p50_ms\": {:.3},\n    \"p95_ms\": {:.3},\n    \"p99_ms\": {:.3},\n    \"max_ms\": {:.3},\n    \"wall_ms\": {:.3},\n    \"drain_clean\": {},\n    \"drain_ms\": {:.3}\n  }},\n",
        threads.max(1),
        load.sent,
        load.ok,
        load.degraded,
        load.shed,
        load.errors,
        load.shed_rate,
        load.p50_ms,
        load.p95_ms,
        load.p99_ms,
        load.max_ms,
        load.wall_ms,
        drain.clean,
        drain.drain_ms,
    ));
    json.push_str(&format!(
        "  \"governed_overhead\": {{\n    \"serial_ungoverned_ms\": {ungoverned_ms:.3},\n    \"serial_governed_unlimited_ms\": {governed_ms:.3},\n    \"overhead_pct\": {overhead_pct:.2}\n  }}\n}}"
    ));
    println!("{json}");
}
