//! Regenerates every table and figure of the paper's evaluation (§4).
//!
//! ```text
//! cargo run --release -p tsg-bench --bin experiments -- --exp all --scale quick
//! cargo run --release -p tsg-bench --bin experiments -- --exp fig4_2 --scale medium
//! cargo run --release -p tsg-bench --bin experiments -- --exp fig4_7 --threads 4
//! ```
//!
//! `--threads N` (default 1) runs the Taxogram columns of `fig4_2` and
//! `fig4_7` on the streaming pipelined engine with N workers; 1 keeps the
//! paper-faithful serial miner.
//!
//! Experiments: `table1`, `fig4_2`, `fig4_3`, `fig4_4`, `fig4_5`,
//! `fig4_6`, `fig4_7`, `table2`, `fig4_8`, `ablation`, `parallel`,
//! `governed`, `all`.
//!
//! The `governed` experiment runs all four engines on D1000/θ=0.2 under a
//! resource budget and reports the truthful termination of each:
//!
//! ```text
//! cargo run --release -p tsg-bench --bin experiments -- --exp governed --time-limit 0.5
//! cargo run --release -p tsg-bench --bin experiments -- --exp governed --memory-limit 64K --max-patterns 100
//! ```
//!
//! `--time-limit SECONDS` (fractional ok), `--memory-limit BYTES[K|M|G]`,
//! and `--max-patterns N` shape the budget; with none given the budget is
//! unlimited and every engine must complete untouched.

use tsg_bench::report::{ms, render_table};
use tsg_bench::{experiments as exp, Profile};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let which = get("--exp", "all");
    let profile = match Profile::by_name(&get("--scale", "quick")) {
        Some(p) => p,
        None => {
            eprintln!("unknown scale; use quick | medium | full");
            std::process::exit(2);
        }
    };
    let threads: usize = match get("--threads", "1").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("--threads must be an integer");
            std::process::exit(2);
        }
    };
    println!(
        "# Taxogram experiment suite — profile {} (scale {}, TAcGM budget {} MiB, {} thread{})\n",
        profile.name,
        profile.scale,
        profile.tacgm_budget_bytes >> 20,
        threads,
        if threads == 1 { "" } else { "s" }
    );

    let mut budget = taxogram_core::Budget::unlimited();
    let time_limit = get("--time-limit", "");
    if !time_limit.is_empty() {
        match time_limit.parse::<f64>() {
            Ok(secs) if secs >= 0.0 && secs.is_finite() => {
                budget = budget.deadline(std::time::Duration::from_secs_f64(secs));
            }
            _ => {
                eprintln!("--time-limit must be a non-negative number of seconds");
                std::process::exit(2);
            }
        }
    }
    let memory_limit = get("--memory-limit", "");
    if !memory_limit.is_empty() {
        match parse_bytes(&memory_limit) {
            Some(bytes) => budget = budget.max_peak_bytes(bytes),
            None => {
                eprintln!("--memory-limit must be BYTES with an optional K/M/G suffix");
                std::process::exit(2);
            }
        }
    }
    let max_patterns = get("--max-patterns", "");
    if !max_patterns.is_empty() {
        match max_patterns.parse::<usize>() {
            Ok(n) => budget = budget.max_patterns(n),
            Err(_) => {
                eprintln!("--max-patterns must be an integer");
                std::process::exit(2);
            }
        }
    }
    let govern = taxogram_core::GovernOptions::with_budget(budget);

    let known = [
        "table1", "fig4_2", "fig4_3", "fig4_4", "fig4_5", "fig4_6", "fig4_7", "table2", "fig4_8",
        "ablation", "parallel", "governed",
    ];
    let run_all = which == "all";
    if !run_all && !known.contains(&which.as_str()) {
        eprintln!("unknown experiment {which:?}; one of {known:?} or all");
        std::process::exit(2);
    }
    let want = |name: &str| run_all || which == name;

    if want("table1") {
        section("Table 1 — dataset properties");
        let rows: Vec<Vec<String>> = exp::table1(&profile)
            .into_iter()
            .map(|(id, s)| {
                vec![
                    id,
                    s.graph_count.to_string(),
                    format!("{:.1}", s.avg_nodes),
                    format!("{:.1}", s.avg_edges),
                    s.distinct_node_labels.to_string(),
                    format!("{:.2}", s.avg_edge_density),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["DB Id", "Graphs", "AvgNodes", "AvgEdges", "DistLabels", "AvgDensity"],
                &rows
            )
        );
    }

    if want("fig4_2") {
        section("Figure 4.2 — running time vs database size (θ = 0.2)");
        print_algo_rows(&exp::fig4_2(&profile, threads));
    }
    if want("fig4_3") {
        section("Figure 4.3 — running time vs max graph size (θ = 0.2)");
        print_algo_rows(&exp::fig4_3(&profile));
    }
    if want("fig4_4") {
        section("Figure 4.4 — running time / pattern count vs edge density");
        print_count_rows("density", &exp::fig4_4(&profile));
    }
    if want("fig4_5") {
        section("Figure 4.5 — running time / pattern count vs taxonomy depth");
        print_count_rows("depth", &exp::fig4_5(&profile));
    }
    if want("fig4_6") {
        section("Figure 4.6 — running time / pattern count vs taxonomy size");
        print_count_rows("concepts", &exp::fig4_6(&profile));
    }
    if want("fig4_7") {
        section("Figure 4.7 — Taxogram vs TAcGM across support thresholds (D4000)");
        let rows: Vec<Vec<String>> = exp::fig4_7(&profile, threads)
            .into_iter()
            .map(|r| {
                vec![
                    format!("{:.2}", r.theta),
                    ms(r.taxogram_ms),
                    r.tacgm.map(ms).unwrap_or_else(|e| e),
                    r.patterns.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["support", "Taxogram", "TAcGM", "patterns"], &rows)
        );
    }
    if want("table2") {
        section("Table 2 — 25 metabolic pathways × 30 organisms (θ = 0.2)");
        let rows: Vec<Vec<String>> = exp::table2(&profile)
            .into_iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    ms(r.time_ms),
                    r.patterns.to_string(),
                    format!("{:.2}", r.avg_nodes),
                    format!("{:.2}", r.avg_edges),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["Pathway", "Time", "Patterns", "AvgNodes", "AvgEdges"],
                &rows
            )
        );
    }
    if want("fig4_8") {
        section("Figure 4.8 — PTE data across support thresholds");
        print_count_rows("support×100", &exp::fig4_8(&profile));
    }
    if want("parallel") {
        section("Parallel scaling (beyond the paper) — barrier vs pipelined vs stealing on D3000");
        let rows: Vec<Vec<String>> = exp::parallel_scaling(&profile)
            .into_iter()
            .map(|r| {
                vec![
                    r.threads.to_string(),
                    ms(r.barrier_ms),
                    ms(r.pipelined_ms),
                    ms(r.stealing_ms),
                    r.steals.to_string(),
                    format!("{}KiB", r.barrier_emb_bytes >> 10),
                    format!("{}KiB", r.pipelined_emb_bytes >> 10),
                    r.patterns.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "threads", "barrier", "pipelined", "stealing", "steals", "barrier emb",
                    "piped emb", "patterns",
                ],
                &rows
            )
        );
    }
    if want("governed") {
        section("Governed runs (beyond the paper) — four engines under one budget on D1000");
        let rows: Vec<Vec<String>> = exp::governed(&profile, threads, &govern)
            .into_iter()
            .map(|r| {
                vec![
                    r.engine.to_string(),
                    ms(r.time_ms),
                    r.patterns.to_string(),
                    r.reason,
                    r.finished.to_string(),
                    r.abandoned.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["engine", "time", "patterns", "termination", "finished", "abandoned"],
                &rows
            )
        );
    }
    if want("ablation") {
        section("Ablation (beyond the paper) — per-enhancement cost on D2000");
        let rows: Vec<Vec<String>> = exp::ablation(&profile)
            .into_iter()
            .map(|r| {
                vec![
                    r.config.to_string(),
                    ms(r.time_ms),
                    r.intersections.to_string(),
                    r.vectors.to_string(),
                    format!("{}KiB", r.peak_oi_bytes >> 10),
                    r.patterns.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["config", "time", "intersections", "vectors", "peak OI", "patterns"],
                &rows
            )
        );
    }
}

fn section(title: &str) {
    println!("\n## {title}\n");
}

/// Byte counts with an optional K/M/G (binary) suffix, as in the CLI's
/// `--memory-limit`.
fn parse_bytes(s: &str) -> Option<usize> {
    let (digits, shift) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 10),
        b'M' | b'm' => (&s[..s.len() - 1], 20),
        b'G' | b'g' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: usize = digits.parse().ok()?;
    n.checked_shl(shift)
}

fn print_algo_rows(rows: &[exp::AlgoRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                ms(r.taxogram_ms),
                ms(r.baseline_ms),
                r.tacgm.as_ref().map(|&t| ms(t)).unwrap_or_else(|e| e.clone()),
                r.patterns.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["dataset", "Taxogram", "Baseline", "TAcGM", "patterns"], &table)
    );
}

fn print_count_rows(xlabel: &str, rows: &[exp::CountRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.label.clone(), ms(r.time_ms), r.patterns.to_string()])
        .collect();
    println!("{}", render_table(&[xlabel, "time", "patterns"], &table));
}
