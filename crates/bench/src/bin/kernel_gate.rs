//! Fast kernel-regression check for CI: re-times the shared hot-kernel
//! workload set (`tsg_bench::kernels`) and compares each median against
//! the newest recorded `BENCH_*.json` snapshot in the repository root.
//!
//! This is a *tripwire, not a gate*: shared CI runners have noisy
//! neighbours and different silicon than the machine that recorded the
//! baseline, so a slow kernel prints a loud, unmissable warning block
//! and the process still exits 0. A human decides whether it is real
//! (and, if the hardware changed, re-records with
//! `scripts/bench_snapshot.sh`).
//!
//! ```text
//! cargo run --release -p tsg-bench --bin kernel_gate -- [--baseline FILE] [--tolerance PCT]
//! ```

use std::path::PathBuf;

/// Newest `BENCH_*.json` by filename (dates are zero-padded `YYYYMMDD`,
/// so lexicographic max is newest).
fn newest_snapshot(dir: &str) -> Option<PathBuf> {
    let mut best: Option<PathBuf> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            match &best {
                Some(b) if b.file_name().is_some_and(|f| *f >= *entry.file_name()) => {}
                _ => best = Some(entry.path()),
            }
        }
    }
    best
}

/// Pull `"name": number` pairs out of the `"kernels_ns"` object. The
/// snapshot format is flat and machine-written, so a line scan between
/// the section header and its closing brace is all the parsing needed.
fn parse_kernels_ns(json: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let mut in_section = false;
    for line in json.lines() {
        let line = line.trim();
        if line.starts_with("\"kernels_ns\"") {
            in_section = true;
            continue;
        }
        if !in_section {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().trim_matches('"').to_string();
            let value = value.trim().trim_end_matches(',');
            if let Ok(ns) = value.parse::<f64>() {
                rows.push((name, ns));
            }
        }
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let tolerance_pct: f64 = get("--tolerance")
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("--tolerance must be a number (percent)");
                std::process::exit(2);
            })
        })
        .unwrap_or(25.0);
    let baseline_path = match get("--baseline").map(PathBuf::from).or_else(|| {
        newest_snapshot(".").or_else(|| newest_snapshot(".."))
    }) {
        Some(p) => p,
        None => {
            println!("kernel_gate: no BENCH_*.json snapshot found; nothing to compare against.");
            return;
        }
    };
    let baseline_json = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            println!(
                "kernel_gate: cannot read {}: {e}; skipping comparison.",
                baseline_path.display()
            );
            return;
        }
    };
    let baseline = parse_kernels_ns(&baseline_json);
    if baseline.is_empty() {
        println!(
            "kernel_gate: {} has no kernels_ns section; skipping comparison.",
            baseline_path.display()
        );
        return;
    }

    println!(
        "kernel_gate: timing hot kernels vs {} (tolerance {tolerance_pct:.0}%)",
        baseline_path.display()
    );
    let current = tsg_bench::kernels::kernel_medians();
    let mut regressions = Vec::new();
    for (name, now_ns) in &current {
        let Some((_, base_ns)) = baseline.iter().find(|(b, _)| b == name) else {
            println!("  {name:<34} {now_ns:>10.1} ns   (no baseline — new kernel)");
            continue;
        };
        let delta_pct = (now_ns - base_ns) / base_ns * 100.0;
        println!("  {name:<34} {now_ns:>10.1} ns   baseline {base_ns:>10.1} ns   {delta_pct:+6.1}%");
        if delta_pct > tolerance_pct {
            regressions.push((*name, *now_ns, *base_ns, delta_pct));
        }
    }

    if regressions.is_empty() {
        println!("kernel_gate: all kernels within tolerance.");
    } else {
        eprintln!();
        eprintln!("##############################################################");
        eprintln!("##  WARNING: kernel performance regression (> {tolerance_pct:.0}% slower)  ##");
        eprintln!("##############################################################");
        for (name, now_ns, base_ns, delta_pct) in &regressions {
            eprintln!(
                "##  {name}: {now_ns:.1} ns vs baseline {base_ns:.1} ns ({delta_pct:+.1}%)"
            );
        }
        eprintln!("##");
        eprintln!("##  This is a tripwire, not a gate (exit 0). If the slowdown");
        eprintln!("##  is real, bisect the kernel change; if the hardware or");
        eprintln!("##  load changed, re-record with scripts/bench_snapshot.sh.");
        eprintln!("##############################################################");
    }
}
