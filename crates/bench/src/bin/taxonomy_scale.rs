//! Taxonomy scaling report and CI smoke gate for the interval-labeled
//! reachability layer.
//!
//! ```text
//! cargo run --release -p tsg-bench --bin taxonomy_scale           # full report: 10⁵ and 10⁶
//! cargo run --release -p tsg-bench --bin taxonomy_scale -- --smoke
//! ```
//!
//! `--smoke` builds a 10⁵-concept generated taxonomy and **fails** with
//! exit code 1 if the build takes ≥ 2 s or the closure storage exceeds
//! 50 MB — the `scripts/ci.sh` tripwire against reintroducing quadratic
//! closure state. The full report also measures 10⁶ concepts at two
//! cross-link densities and prints a JSON array of rows.

use tsg_bench::taxscale::{dense_equivalent_bytes, measure, spot_check};
use tsg_datagen::{generate_scaled_taxonomy, ScaledTaxonomyConfig};

const SMOKE_CONCEPTS: usize = 100_000;
const SMOKE_BUILD_MS_LIMIT: f64 = 2_000.0;
const SMOKE_CLOSURE_BYTES_LIMIT: usize = 50 << 20;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        let row = measure(SMOKE_CONCEPTS, 50, 42);
        spot_check(&generate_scaled_taxonomy(&ScaledTaxonomyConfig {
            concepts: SMOKE_CONCEPTS,
            cross_links_per_mille: 50,
            seed: 42,
        }));
        println!(
            "taxonomy_scale smoke: {} concepts built in {:.1} ms, closure bytes {} ({:.2} MB), is_ancestor {:.2} ns",
            row.concepts,
            row.build_ms,
            row.closure_bytes,
            row.closure_bytes as f64 / (1 << 20) as f64,
            row.is_ancestor_ns,
        );
        let mut failed = false;
        if row.build_ms >= SMOKE_BUILD_MS_LIMIT {
            eprintln!(
                "FAIL: build took {:.1} ms (limit {SMOKE_BUILD_MS_LIMIT} ms)",
                row.build_ms
            );
            failed = true;
        }
        if row.closure_bytes >= SMOKE_CLOSURE_BYTES_LIMIT {
            eprintln!(
                "FAIL: closure storage {} bytes (limit {SMOKE_CLOSURE_BYTES_LIMIT})",
                row.closure_bytes
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("taxonomy_scale smoke: OK");
        return;
    }

    let rows = [
        measure(100_000, 0, 42),
        measure(100_000, 50, 42),
        measure(1_000_000, 0, 42),
        measure(1_000_000, 50, 42),
    ];
    println!("[");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("{}{comma}", row.to_json(2));
    }
    println!("]");
    for row in &rows {
        eprintln!(
            "# {} concepts, {}‰ cross-links: build {:.1} ms, closures {:.2} MB (dense equivalent {:.1} GB), is_ancestor {:.2} ns (chain {:.2} ns), hot closure query {:.1} ns",
            row.concepts,
            row.cross_links_per_mille,
            row.build_ms,
            row.closure_bytes as f64 / (1 << 20) as f64,
            dense_equivalent_bytes(row.concepts) as f64 / (1u64 << 30) as f64,
            row.is_ancestor_ns,
            row.is_ancestor_chain_ns,
            row.closure_query_ns,
        );
    }
}
