//! One function per table/figure of §4. Every function returns structured
//! rows so callers can print, assert, or bench them.

use crate::profile::Profile;
use std::time::Instant;
use taxogram_core::{Enhancements, GovernOptions, MiningOutcome, MiningResult, Taxogram, TaxogramConfig};
use tsg_datagen::registry::{build, table1_ids, DatasetId};
use tsg_datagen::{go_like_taxonomy_scaled, pathway_corpus, GO_CONCEPTS};
use tsg_graph::{DatabaseStats, GraphDatabase};
use tsg_tacgm::{TacgmConfig, TacgmError};
use tsg_taxonomy::Taxonomy;

/// Wall-clock timing of a closure, in milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64() * 1000.0)
}

/// Runs Taxogram with the given enhancements; returns the result and ms.
pub fn run_taxogram(
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    theta: f64,
    profile: &Profile,
    enhancements: Enhancements,
) -> (MiningResult, f64) {
    run_taxogram_threads(db, taxonomy, theta, profile, enhancements, 1)
}

/// [`run_taxogram`] on `threads` workers: the serial miner for
/// `threads <= 1`, the streaming pipelined engine otherwise.
pub fn run_taxogram_threads(
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    theta: f64,
    profile: &Profile,
    enhancements: Enhancements,
    threads: usize,
) -> (MiningResult, f64) {
    let mut cfg = TaxogramConfig::with_threshold(theta);
    cfg.max_edges = profile.max_edges;
    cfg.enhancements = enhancements;
    let (r, t) = time_ms(|| {
        if threads <= 1 {
            Taxogram::new(cfg).mine(db, taxonomy).expect("valid input")
        } else {
            taxogram_core::mine_pipelined(&cfg, db, taxonomy, threads).expect("valid input")
        }
    });
    (r, t)
}

/// Runs TAcGM under the profile's memory budget; `Err` carries the
/// out-of-memory (or other) failure message, mirroring the paper's
/// "TAcGM does not run for this data set" annotations.
pub fn run_tacgm(
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    theta: f64,
    profile: &Profile,
) -> Result<(usize, f64), String> {
    let mut cfg = TacgmConfig::with_threshold(theta).memory_budget(profile.tacgm_budget_bytes);
    cfg.max_edges = profile.max_edges;
    let start = Instant::now();
    match tsg_tacgm::mine(db, taxonomy, &cfg) {
        Ok(r) => Ok((r.patterns.len(), start.elapsed().as_secs_f64() * 1000.0)),
        Err(TacgmError::MemoryBudgetExceeded { level, .. }) => {
            Err(format!("out-of-memory (level {level})"))
        }
        Err(e) => Err(e.to_string()),
    }
}

/// One row of the three-algorithm comparisons (Figures 4.2, 4.3).
#[derive(Debug)]
pub struct AlgoRow {
    /// Dataset label (e.g. `D1000`).
    pub label: String,
    /// Taxogram running time (ms).
    pub taxogram_ms: f64,
    /// Baseline (enhancements off) running time (ms).
    pub baseline_ms: f64,
    /// TAcGM time (ms) or failure reason.
    pub tacgm: Result<f64, String>,
    /// Final pattern count (identical across algorithms that complete).
    pub patterns: usize,
}

/// One row of the time+pattern-count figures (4.4, 4.5, 4.6, 4.8).
#[derive(Debug)]
pub struct CountRow {
    /// X-axis label (density, depth, concept count, or support).
    pub label: String,
    /// Taxogram running time (ms).
    pub time_ms: f64,
    /// Number of produced patterns.
    pub patterns: usize,
}

const THETA: f64 = 0.2;

fn algo_row(id: DatasetId, theta: f64, profile: &Profile, threads: usize) -> AlgoRow {
    let ds = build(id, profile.scale);
    let (full, t_full) =
        run_taxogram_threads(&ds.database, &ds.taxonomy, theta, profile, Enhancements::all(), threads);
    let (_, t_base) = run_taxogram(&ds.database, &ds.taxonomy, theta, profile, Enhancements::none());
    let tacgm = run_tacgm(&ds.database, &ds.taxonomy, theta, profile).map(|(_, t)| t);
    AlgoRow {
        label: id.to_string(),
        taxogram_ms: t_full,
        baseline_ms: t_base,
        tacgm,
        patterns: full.patterns.len(),
    }
}

/// Figure 4.2: running time vs database size (D1000–D5000), θ = 0.2.
/// The Taxogram column runs on `threads` workers (1 = serial, as in the
/// paper; more = pipelined engine).
pub fn fig4_2(profile: &Profile, threads: usize) -> Vec<AlgoRow> {
    [1000, 2000, 3000, 4000, 5000]
        .into_iter()
        .map(|n| algo_row(DatasetId::D(n), THETA, profile, threads))
        .collect()
}

/// Figure 4.3: running time vs max graph size (NC10–NC40), θ = 0.2.
pub fn fig4_3(profile: &Profile) -> Vec<AlgoRow> {
    [10, 20, 30, 40]
        .into_iter()
        .map(|m| algo_row(DatasetId::NC(m), THETA, profile, 1))
        .collect()
}

/// Figure 4.4: Taxogram running time and pattern count vs edge density
/// (ED06–ED11), θ = 0.2.
pub fn fig4_4(profile: &Profile) -> Vec<CountRow> {
    [0.06, 0.09, 0.10, 0.11]
        .into_iter()
        .map(|d| {
            let ds = build(DatasetId::ED(d), profile.scale);
            let (r, t) =
                run_taxogram(&ds.database, &ds.taxonomy, THETA, profile, Enhancements::all());
            CountRow {
                label: format!("{d:.2}"),
                time_ms: t,
                patterns: r.patterns.len(),
            }
        })
        .collect()
}

/// Figure 4.5: running time and pattern count vs taxonomy depth
/// (TD5–TD15), θ = 0.2. (The paper reports TAcGM out-of-memory on every
/// TD dataset; [`run_tacgm`] reproduces that under the profile budget.)
pub fn fig4_5(profile: &Profile) -> Vec<CountRow> {
    (5..=15)
        .map(|k| {
            let ds = build(DatasetId::TD(k), profile.scale);
            let (r, t) =
                run_taxogram(&ds.database, &ds.taxonomy, THETA, profile, Enhancements::all());
            CountRow {
                label: format!("{k}"),
                time_ms: t,
                patterns: r.patterns.len(),
            }
        })
        .collect()
}

/// Figure 4.6: running time and pattern count vs taxonomy concept count
/// (TS25–TS3200), θ = 0.2.
pub fn fig4_6(profile: &Profile) -> Vec<CountRow> {
    [25, 50, 100, 200, 400, 800, 1600, 3200]
        .into_iter()
        .map(|c| {
            let ds = build(DatasetId::TS(c), profile.scale);
            let (r, t) =
                run_taxogram(&ds.database, &ds.taxonomy, THETA, profile, Enhancements::all());
            CountRow {
                label: format!("{c}"),
                time_ms: t,
                patterns: r.patterns.len(),
            }
        })
        .collect()
}

/// One row of Figure 4.7 (support-threshold sweep on D4000).
#[derive(Debug)]
pub struct SupportRow {
    /// The support threshold.
    pub theta: f64,
    /// Taxogram time (ms).
    pub taxogram_ms: f64,
    /// TAcGM time (ms) or failure.
    pub tacgm: Result<f64, String>,
    /// Pattern count.
    pub patterns: usize,
}

/// Figure 4.7: Taxogram vs TAcGM across support thresholds 0.6 → 0.02 on
/// the D4000 dataset. Taxogram runs on `threads` workers (1 = serial).
pub fn fig4_7(profile: &Profile, threads: usize) -> Vec<SupportRow> {
    let ds = build(DatasetId::D(4000), profile.scale);
    [0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.02]
        .into_iter()
        .map(|theta| {
            let (r, t) = run_taxogram_threads(
                &ds.database,
                &ds.taxonomy,
                theta,
                profile,
                Enhancements::all(),
                threads,
            );
            let tacgm = run_tacgm(&ds.database, &ds.taxonomy, theta, profile).map(|(_, t)| t);
            SupportRow {
                theta,
                taxogram_ms: t,
                tacgm,
                patterns: r.patterns.len(),
            }
        })
        .collect()
}

/// Table 1: properties of every experimental dataset.
pub fn table1(profile: &Profile) -> Vec<(String, DatabaseStats)> {
    table1_ids()
        .into_iter()
        .map(|id| {
            let ds = build(id, profile.scale);
            (id.to_string(), ds.database.stats())
        })
        .collect()
}

/// One row of Table 2 (pathway mining).
#[derive(Debug)]
pub struct Table2Row {
    /// Pathway name.
    pub name: &'static str,
    /// Taxogram time (ms).
    pub time_ms: f64,
    /// Pattern count (the paper's conservation proxy).
    pub patterns: usize,
    /// Average graph size (nodes).
    pub avg_nodes: f64,
    /// Average graph size (edges).
    pub avg_edges: f64,
}

/// Table 2: 25 metabolic pathways × 30 organisms at θ = 0.2, sorted by
/// running time like the paper's table.
pub fn table2(profile: &Profile) -> Vec<Table2Row> {
    // The pathway corpus is small (25 × 30 graphs); use a taxonomy scaled
    // like the GO substitute but at least 400 concepts for subtree depth.
    let concepts = ((GO_CONCEPTS as f64 * profile.scale) as usize).clamp(400, GO_CONCEPTS);
    let taxonomy = go_like_taxonomy_scaled(concepts);
    let corpus = pathway_corpus(&taxonomy, 30, 0xEDB7);
    let mut rows: Vec<Table2Row> = corpus
        .iter()
        .map(|ds| {
            let (r, t) = run_taxogram(&ds.database, &taxonomy, THETA, profile, Enhancements::all());
            let stats = ds.database.stats();
            Table2Row {
                name: ds.spec.name,
                time_ms: t,
                patterns: r.patterns.len(),
                avg_nodes: stats.avg_nodes,
                avg_edges: stats.avg_edges,
            }
        })
        .collect();
    rows.sort_by(|a, b| a.time_ms.total_cmp(&b.time_ms));
    rows
}

/// Figure 4.8: PTE running time and pattern count at support 0.30, 0.50,
/// 0.60.
pub fn fig4_8(profile: &Profile) -> Vec<CountRow> {
    let ds = build(DatasetId::PTE, profile.scale.max(0.5));
    [0.6, 0.5, 0.3]
        .into_iter()
        .map(|theta| {
            let (r, t) =
                run_taxogram(&ds.database, &ds.taxonomy, theta, profile, Enhancements::all());
            CountRow {
                label: format!("{:.0}", theta * 100.0),
                time_ms: t,
                patterns: r.patterns.len(),
            }
        })
        .collect()
}

/// One ablation row: an enhancement configuration and its cost metrics.
#[derive(Debug)]
pub struct AblationRow {
    /// Configuration name.
    pub config: &'static str,
    /// Running time (ms).
    pub time_ms: f64,
    /// Step 3 bitset intersections performed.
    pub intersections: usize,
    /// Step 3 label vectors visited.
    pub vectors: usize,
    /// Peak occurrence-index bytes.
    pub peak_oi_bytes: usize,
    /// Pattern count (must be identical across rows).
    pub patterns: usize,
}

/// Beyond the paper: per-enhancement ablation on the D2000 dataset at
/// θ = 0.2. Every configuration must produce the same pattern set; the
/// deltas isolate what each enhancement buys.
pub fn ablation(profile: &Profile) -> Vec<AblationRow> {
    let ds = build(DatasetId::D(2000), profile.scale);
    let configs: [(&'static str, Enhancements); 6] = [
        ("all", Enhancements::all()),
        ("baseline (none)", Enhancements::none()),
        ("no apriori-prune (a)", Enhancements { apriori_child_prune: false, ..Enhancements::all() }),
        ("no label-prune (b)", Enhancements { prune_infrequent_labels: false, ..Enhancements::all() }),
        ("no predescend (c)", Enhancements { predescend_roots: false, ..Enhancements::all() }),
        ("no contraction (d)", Enhancements { contract_equal_sets: false, ..Enhancements::all() }),
    ];
    configs
        .into_iter()
        .map(|(name, enh)| {
            let (r, t) = run_taxogram(&ds.database, &ds.taxonomy, THETA, profile, enh);
            AblationRow {
                config: name,
                time_ms: t,
                intersections: r.stats.enumeration.intersections,
                vectors: r.stats.enumeration.vectors_visited,
                peak_oi_bytes: r.stats.peak_oi_bytes,
                patterns: r.patterns.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Profile {
        Profile {
            name: "tiny",
            scale: 0.01,
            tacgm_budget_bytes: 2 << 20,
            max_edges: Some(4),
        }
    }

    #[test]
    fn fig4_2_rows_complete_and_agree() {
        // threads = 2 exercises the pipelined engine path end to end.
        let rows = fig4_2(&tiny(), 2);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.taxogram_ms >= 0.0);
            assert!(r.baseline_ms >= 0.0);
        }
    }

    #[test]
    fn parallel_scaling_engines_agree() {
        let rows = parallel_scaling(&tiny());
        assert_eq!(rows.len(), 4);
        let first = rows[0].patterns;
        for r in &rows {
            assert_eq!(r.patterns, first, "{} threads diverged", r.threads);
        }
    }

    #[test]
    fn ablation_configs_agree_on_patterns() {
        let rows = ablation(&tiny());
        assert_eq!(rows.len(), 6);
        let first = rows[0].patterns;
        for r in &rows {
            assert_eq!(r.patterns, first, "{} diverged", r.config);
        }
        // Enhancements never do more intersections than the baseline.
        let all = rows.iter().find(|r| r.config == "all").unwrap();
        let none = rows.iter().find(|r| r.config == "baseline (none)").unwrap();
        assert!(all.intersections <= none.intersections);
    }

    #[test]
    fn fig4_8_counts_grow_as_support_drops() {
        let rows = fig4_8(&tiny());
        assert_eq!(rows.len(), 3);
        // Rows ordered 60, 50, 30: pattern counts must not decrease.
        assert!(rows[0].patterns <= rows[2].patterns);
    }
}

/// One row of the parallel-scaling experiment: barrier vs pipelined vs
/// work-stealing engine at the same thread count.
#[derive(Debug)]
pub struct ParallelRow {
    /// Worker thread count.
    pub threads: usize,
    /// Barrier engine (`mine_parallel`) wall-clock time (ms).
    pub barrier_ms: f64,
    /// Pipelined engine (`mine_pipelined`) wall-clock time (ms).
    pub pipelined_ms: f64,
    /// Work-stealing engine (`mine_stealing`) wall-clock time (ms).
    pub stealing_ms: f64,
    /// Cross-worker steals the stealing engine performed.
    pub steals: usize,
    /// Barrier peak resident embedding bytes (all classes at once).
    pub barrier_emb_bytes: usize,
    /// Pipelined peak resident embedding bytes (channel-bounded).
    pub pipelined_emb_bytes: usize,
    /// Pattern count (identical across rows and engines).
    pub patterns: usize,
}

/// One row of the governed-run experiment: one engine under a budget.
#[derive(Debug)]
pub struct GovernedRow {
    /// Engine label (`serial`, `barrier`, `pipelined`, `stealing`).
    pub engine: &'static str,
    /// Wall-clock time (ms) — for partial runs, the time to the stop.
    pub time_ms: f64,
    /// Patterns in the (possibly partial) result stream.
    pub patterns: usize,
    /// Truthful termination reason rendered for display.
    pub reason: String,
    /// Equivalence classes fully mined before the stop.
    pub finished: usize,
    /// Classes abandoned (admitted classes always finish; these never
    /// started Step 3).
    pub abandoned: usize,
}

/// Beyond the paper: budget-bounded mining on D1000 at θ = 0.2. All four
/// engines run under the same [`GovernOptions`]; each row reports the
/// truthful [`taxogram_core::Termination`] alongside how much of the
/// result stream survived. With an unlimited budget this doubles as a
/// smoke test that governance is invisible: every engine must complete
/// with zero abandoned classes and identical pattern counts.
pub fn governed(profile: &Profile, threads: usize, govern: &GovernOptions) -> Vec<GovernedRow> {
    let ds = build(DatasetId::D(1000), profile.scale);
    let mut cfg = TaxogramConfig::with_threshold(THETA);
    cfg.max_edges = profile.max_edges;
    let row = |engine: &'static str, (outcome, t): (MiningOutcome, f64)| GovernedRow {
        engine,
        time_ms: t,
        patterns: outcome.result.patterns.len(),
        reason: outcome.termination.reason.to_string(),
        finished: outcome.termination.classes_finished,
        abandoned: outcome.termination.classes_abandoned,
    };
    vec![
        row(
            "serial",
            time_ms(|| {
                Taxogram::new(cfg)
                    .mine_governed(&ds.database, &ds.taxonomy, govern)
                    .expect("valid input")
            }),
        ),
        row(
            "barrier",
            time_ms(|| {
                taxogram_core::mine_parallel_governed(&cfg, &ds.database, &ds.taxonomy, threads, govern)
                    .expect("valid input")
            }),
        ),
        row(
            "pipelined",
            time_ms(|| {
                taxogram_core::mine_pipelined_governed(
                    &cfg,
                    &ds.database,
                    &ds.taxonomy,
                    taxogram_core::PipelineOptions { threads, ..Default::default() },
                    govern,
                )
                .expect("valid input")
            }),
        ),
        row(
            "stealing",
            time_ms(|| {
                taxogram_core::mine_stealing_governed(
                    &cfg,
                    &ds.database,
                    &ds.taxonomy,
                    taxogram_core::StealOptions {
                        threads,
                        deque_capacity: 0,
                        clamp_to_cores: false,
                    },
                    govern,
                )
                .expect("valid input")
            }),
        ),
    ]
}

/// Beyond the paper: Step 3 thread scaling on the D3000 dataset at
/// θ = 0.2 (the shared-memory half of the paper's "disk-based algorithms"
/// future work; see also the two-pass partitioned miner in
/// `taxogram_core::son`). Each row runs all three parallel engines: the
/// collect-all barrier, the streaming pipeline, and the fused
/// work-stealing search. Thread counts are honored even on smaller hosts
/// (`clamp_to_cores` off) so the scheduling machinery is always the thing
/// being measured.
pub fn parallel_scaling(profile: &Profile) -> Vec<ParallelRow> {
    let ds = build(DatasetId::D(3000), profile.scale);
    let mut cfg = TaxogramConfig::with_threshold(THETA);
    cfg.max_edges = profile.max_edges;
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let (b, t_barrier) = time_ms(|| {
                taxogram_core::mine_parallel(&cfg, &ds.database, &ds.taxonomy, threads)
                    .expect("valid input")
            });
            let (p, t_piped) = time_ms(|| {
                taxogram_core::mine_pipelined(&cfg, &ds.database, &ds.taxonomy, threads)
                    .expect("valid input")
            });
            let (s, t_steal) = time_ms(|| {
                taxogram_core::mine_stealing_with(
                    &cfg,
                    &ds.database,
                    &ds.taxonomy,
                    taxogram_core::StealOptions {
                        threads,
                        deque_capacity: 0,
                        clamp_to_cores: false,
                    },
                )
                .expect("valid input")
            });
            assert_eq!(b.patterns.len(), p.patterns.len(), "engines agree");
            assert_eq!(p.patterns.len(), s.patterns.len(), "stealing agrees");
            ParallelRow {
                threads,
                barrier_ms: t_barrier,
                pipelined_ms: t_piped,
                stealing_ms: t_steal,
                steals: s.stats.steals,
                barrier_emb_bytes: b.stats.peak_embedding_bytes,
                pipelined_emb_bytes: p.stats.peak_embedding_bytes,
                patterns: p.patterns.len(),
            }
        })
        .collect()
}
