//! Shared kernel-timing workloads and the retired sorted-vec baseline.
//!
//! Three consumers time exactly the same workloads so their numbers are
//! comparable: the `bench_snapshot` binary (dated `BENCH_<date>.json`
//! records), the `kernel_gate` binary (the CI kernel-regression stage,
//! which re-times the set and compares against the newest recorded
//! snapshot), and the criterion `fused` group (statistical timing).
//!
//! The baseline kernels here are the former two-representation sparse
//! set's merge/gallop intersection, preserved verbatim over sorted
//! `usize` slices after the representation itself was replaced by the
//! adaptive containers — they exist so "adaptive vs the old kernel"
//! stays a measurable comparison from one snapshot to the next, not a
//! claim about deleted code.

use std::time::Instant;
use tsg_bitset::{adaptive_dense_distinct_mapped_count, AdaptiveBitSet, BitSet};

/// Median ns/iter over `samples` batches of `batch` calls each.
pub fn median_ns(samples: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    // Warm up caches and scratch pools.
    for _ in 0..batch {
        f();
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[per_iter.len() / 2]
}

/// The retired linear two-pointer merge over sorted `usize` slices
/// (regression baseline).
pub fn baseline_merge_count(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The retired galloping intersection over sorted `usize` slices
/// (regression baseline): for each member of the smaller side,
/// exponential-probe forward in the shrinking tail of the larger side,
/// then binary-search the bracketed window.
pub fn baseline_gallop_count(a: &[usize], b: &[usize]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut rest: &[usize] = large;
    let mut n = 0;
    for &v in small {
        let i = if rest.first().is_none_or(|&x| x >= v) {
            0
        } else {
            let mut hi = 1usize;
            while hi < rest.len() && rest[hi] < v {
                hi <<= 1;
            }
            let lo = hi >> 1;
            let hi = hi.min(rest.len());
            lo + rest[lo..hi].partition_point(|&x| x < v)
        };
        if i == rest.len() {
            break;
        }
        rest = &rest[i..];
        if rest[0] == v {
            n += 1;
            rest = &rest[1..];
            if rest.is_empty() {
                break;
            }
        }
    }
    n
}

/// The Roaring-favorable clustered workload of the acceptance criterion:
/// two sets of well over 4096 members each, clustered into contiguous
/// blocks with partial overlap (occurrence ids cluster by graph, so this
/// is the realistic shape). Returns the two member lists.
pub fn clustered_members() -> (Vec<usize>, Vec<usize>) {
    // 16 blocks of 8192 ids; `a` takes the first 3000 of each block, `b`
    // a 3000-wide window shifted by 1500 → 1500 common members per block.
    let block = 8192usize;
    let mut a = Vec::new();
    let mut b = Vec::new();
    for k in 0..16 {
        let base = k * block;
        a.extend(base..base + 3000);
        b.extend(base + 1500..base + 4500);
    }
    (a, b)
}

/// Times the hot-kernel set: `(name, median ns)` rows, identical between
/// `bench_snapshot` (which records them) and `kernel_gate` (which checks
/// them against the record).
pub fn kernel_medians() -> Vec<(&'static str, f64)> {
    let universe = 20_000usize;
    let dense = BitSet::from_iter_with_universe(universe, (0..universe).step_by(3));
    let sparse: AdaptiveBitSet = (0..universe).step_by(40).collect();
    let map: Vec<u32> = (0..universe as u32).map(|i| i % 200).collect();
    let mut scratch = BitSet::new(200);
    let mut out = BitSet::new(universe);
    let small_members: Vec<usize> = (0..universe).step_by(universe / 64).collect();
    let large_members: Vec<usize> = (0..universe).collect();
    let small: AdaptiveBitSet = small_members.iter().copied().collect();
    let large: AdaptiveBitSet = large_members.iter().copied().collect();
    let (ca, cb) = clustered_members();
    let ra: AdaptiveBitSet = ca.iter().copied().collect();
    let rb: AdaptiveBitSet = cb.iter().copied().collect();

    vec![
        (
            "sparse_dense_count_fused",
            median_ns(31, 200, || {
                std::hint::black_box(sparse.intersection_count_dense(&dense));
            }),
        ),
        (
            "sparse_dense_count_materialized",
            median_ns(31, 200, || {
                std::hint::black_box(sparse.intersect_into_dense(&dense, &mut out));
            }),
        ),
        (
            "sparse_dense_distinct_mapped",
            median_ns(31, 200, || {
                std::hint::black_box(adaptive_dense_distinct_mapped_count(
                    &sparse,
                    &dense,
                    &map,
                    &mut scratch,
                ));
            }),
        ),
        // The old two-representation kernel on its old workload (64
        // members galloping over 20k), kept timing-comparable across the
        // representation change…
        (
            "sparse_sparse_gallop",
            median_ns(31, 200, || {
                std::hint::black_box(baseline_gallop_count(&small_members, &large_members));
            }),
        ),
        // …and the adaptive dispatch on the same workload (the large side
        // is a bitmap container; the small side probes it).
        (
            "adaptive_small_probe_large",
            median_ns(31, 200, || {
                std::hint::black_box(small.intersection_count(&large));
            }),
        ),
        // Roaring-favorable clustered ≥4096×≥4096 (acceptance criterion:
        // adaptive must beat the baseline gallop ≥2× here).
        (
            "adaptive_clustered_count",
            median_ns(31, 50, || {
                std::hint::black_box(ra.intersection_count(&rb));
            }),
        ),
        (
            "gallop_baseline_clustered",
            median_ns(31, 50, || {
                std::hint::black_box(baseline_gallop_count(&ca, &cb));
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_agree_with_adaptive() {
        let (ca, cb) = clustered_members();
        let ra: AdaptiveBitSet = ca.iter().copied().collect();
        let rb: AdaptiveBitSet = cb.iter().copied().collect();
        let want = ra.intersection_count(&rb);
        assert_eq!(baseline_gallop_count(&ca, &cb), want);
        assert_eq!(baseline_merge_count(&ca, &cb), want);
        assert_eq!(want, 16 * 1500, "1500 overlapping ids per block");
        assert!(ca.len() >= 4096 && cb.len() >= 4096);
    }
}
