//! The benchmark harness: code that regenerates every table and figure of
//! the paper's evaluation (§4).
//!
//! Each experiment is a plain function returning structured rows, shared
//! by the `experiments` binary (pretty-printed reports, any scale) and the
//! Criterion benches (statistical timing at the quick scale). See
//! EXPERIMENTS.md at the workspace root for measured-vs-paper results.

pub mod experiments;
pub mod kernels;
pub mod profile;
pub mod report;
pub mod taxscale;

pub use experiments::*;
pub use profile::Profile;
