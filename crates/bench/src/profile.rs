//! Run profiles: how much of the paper-scale workload to run.

/// A scaling profile for the experiment suite.
///
/// The paper ran on a 2008 Pentium D with 4 GB of RAM; dataset sizes are
/// scaled down so the whole suite finishes in minutes, and the TAcGM
/// memory budget is scaled so its breadth-first blow-up still manifests
/// where the paper reports out-of-memory failures. Absolute milliseconds
/// are not comparable to the paper's; curve shapes are.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Human-readable name (`quick`, `medium`, `full`).
    pub name: &'static str,
    /// Database-size multiplier applied to Table 1 sizes (1.0 = paper).
    pub scale: f64,
    /// Byte budget for TAcGM's level-wise embedding store.
    pub tacgm_budget_bytes: usize,
    /// Pattern-size cap in edges (`None` = unbounded, as in the paper;
    /// the quick profile caps to bound worst-case blow-ups).
    pub max_edges: Option<usize>,
}

impl Profile {
    /// ~seconds-scale runs for CI and Criterion.
    pub fn quick() -> Self {
        Profile {
            name: "quick",
            scale: 0.02,
            tacgm_budget_bytes: 8 << 20,
            max_edges: Some(6),
        }
    }

    /// ~minutes-scale runs; the default for `experiments`.
    pub fn medium() -> Self {
        Profile {
            name: "medium",
            scale: 0.05,
            tacgm_budget_bytes: 64 << 20,
            max_edges: Some(8),
        }
    }

    /// Paper-scale sizes. Expect long runs.
    pub fn full() -> Self {
        Profile {
            name: "full",
            scale: 1.0,
            tacgm_budget_bytes: 4 << 30,
            max_edges: None,
        }
    }

    /// Parses a profile name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick()),
            "medium" => Some(Self::medium()),
            "full" => Some(Self::full()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_roundtrip() {
        for n in ["quick", "medium", "full"] {
            assert_eq!(Profile::by_name(n).unwrap().name, n);
        }
        assert!(Profile::by_name("nope").is_none());
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Profile::quick().scale < Profile::medium().scale);
        assert!(Profile::medium().scale < Profile::full().scale);
        assert_eq!(Profile::full().scale, 1.0);
    }
}
