//! Tiny text-table rendering for experiment reports.

/// Renders an aligned text table: header row plus data rows, columns
/// right-aligned except the first.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("  {cell:>w$}"));
            }
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats milliseconds compactly.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.2}s", v / 1000.0)
    } else {
        format!("{v:.1}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["id", "time"],
            &[
                vec!["D1000".into(), "12.0ms".into()],
                vec!["D5000".into(), "80.5ms".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("id"));
        assert!(lines[2].ends_with("12.0ms"));
    }

    #[test]
    fn ms_formats_both_ranges() {
        assert_eq!(ms(12.34), "12.3ms");
        assert_eq!(ms(2500.0), "2.50s");
    }
}
