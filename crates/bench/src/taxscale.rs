//! Taxonomy-scaling measurements: how the interval-labeled reachability
//! layer behaves at 10⁵–10⁶ concepts.
//!
//! One measurement function shared by the `taxonomy_scale` binary (CI
//! smoke stage and standalone reports) and the `taxonomy_scale` stanza
//! of `bench_snapshot`. Everything here is hand-rolled `Instant` timing
//! over generated [`tsg_datagen::generate_scaled_taxonomy`] inputs; the
//! query timings run millions of iterations per sample so per-call costs
//! resolve at nanosecond granularity.

use std::time::Instant;
use tsg_datagen::{generate_scaled_taxonomy, ScaledTaxonomyConfig};
use tsg_graph::NodeLabel;
use tsg_taxonomy::Taxonomy;

/// One row of the scaling table.
#[derive(Clone, Debug)]
pub struct TaxScaleRow {
    /// Concept count of the generated taxonomy.
    pub concepts: usize,
    /// Cross-link density knob the generator ran with.
    pub cross_links_per_mille: u32,
    /// Wall time to generate and build the taxonomy (edge sampling,
    /// Kahn validation, interval labeling, fallback sets).
    pub build_ms: f64,
    /// Resident bytes of the reachability labeling + cross-link fallback
    /// sets — the replacement for the old dense `O(n²)`-bit closures.
    pub closure_bytes: usize,
    /// Resident bytes of the parent/child adjacency (CSR).
    pub adjacency_bytes: usize,
    /// Concepts carrying a cross-link fallback set.
    pub cross_link_concepts: usize,
    /// Longest-path depth of the generated DAG.
    pub max_depth: u32,
    /// Mean `is_ancestor` cost over uniformly random concept pairs —
    /// the tree path (one interval comparison) dominates this mix.
    pub is_ancestor_ns: f64,
    /// Mean `is_ancestor` cost over true ancestor/descendant chain
    /// pairs (positive interval containment).
    pub is_ancestor_chain_ns: f64,
    /// Mean memo-hit `ancestors()` query cost (hot-label closure view).
    pub closure_query_ns: f64,
}

/// What the old dense representation would have cost: two `n × n` bit
/// matrices (ancestor + descendant closures).
pub fn dense_equivalent_bytes(concepts: usize) -> u128 {
    (concepts as u128) * (concepts as u128) * 2 / 8
}

/// Generates a scaled taxonomy and measures build cost and query
/// latencies. Deterministic for a given `(concepts, per_mille, seed)`.
pub fn measure(concepts: usize, cross_links_per_mille: u32, seed: u64) -> TaxScaleRow {
    let start = Instant::now();
    let t = generate_scaled_taxonomy(&ScaledTaxonomyConfig {
        concepts,
        cross_links_per_mille,
        seed,
    });
    let build_ms = start.elapsed().as_nanos() as f64 / 1e6;

    // Deterministic pseudo-random probe pairs (splitmix64), generated
    // outside the timed loops.
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let pair_count = 4096usize;
    let random_pairs: Vec<(NodeLabel, NodeLabel)> = (0..pair_count)
        .map(|_| {
            (
                NodeLabel((next() % concepts as u64) as u32),
                NodeLabel((next() % concepts as u64) as u32),
            )
        })
        .collect();
    // Chain pairs: walk a few primary-parent steps up from a random
    // concept so `is_ancestor` returns true through the interval test.
    let chain_pairs: Vec<(NodeLabel, NodeLabel)> = (0..pair_count)
        .map(|_| {
            let d = NodeLabel((next() % concepts as u64) as u32);
            let mut a = d;
            for _ in 0..(next() % 8) {
                match t.parents(a).first() {
                    Some(&p) => a = p,
                    None => break,
                }
            }
            (a, d)
        })
        .collect();

    let time_pairs = |pairs: &[(NodeLabel, NodeLabel)], rounds: usize| -> f64 {
        let start = Instant::now();
        let mut hits = 0usize;
        for _ in 0..rounds {
            for &(a, d) in pairs {
                hits += usize::from(t.is_ancestor(a, d));
            }
        }
        std::hint::black_box(hits);
        start.elapsed().as_nanos() as f64 / (rounds * pairs.len()) as f64
    };
    // Warm caches once, then measure.
    time_pairs(&random_pairs, 1);
    let is_ancestor_ns = time_pairs(&random_pairs, 500);
    let is_ancestor_chain_ns = time_pairs(&chain_pairs, 500);

    // Hot closure queries: a small working set of labels, as the OI
    // build produces — first touch materializes, the rest hit the memo.
    let hot: Vec<NodeLabel> = (0..64).map(|_| NodeLabel((next() % concepts as u64) as u32)).collect();
    for &l in &hot {
        std::hint::black_box(t.ancestors(l).len());
    }
    let rounds = 2_000usize;
    let start = Instant::now();
    let mut total = 0usize;
    for _ in 0..rounds {
        for &l in &hot {
            total += t.ancestors(l).len();
        }
    }
    std::hint::black_box(total);
    let closure_query_ns = start.elapsed().as_nanos() as f64 / (rounds * hot.len()) as f64;

    TaxScaleRow {
        concepts,
        cross_links_per_mille,
        build_ms,
        closure_bytes: t.closure_bytes(),
        adjacency_bytes: t.adjacency_bytes(),
        cross_link_concepts: t.cross_link_concepts(),
        max_depth: t.max_depth(),
        is_ancestor_ns,
        is_ancestor_chain_ns,
        closure_query_ns,
    }
}

/// Sanity-checks a generated taxonomy against the old-API semantics on a
/// few spot queries; used by the smoke stage so a wildly wrong labeling
/// cannot produce a fast-but-meaningless benchmark number.
pub fn spot_check(t: &Taxonomy) {
    let root = t.roots()[0];
    let leafish = NodeLabel((t.concept_count() - 1) as u32);
    assert!(t.is_ancestor(root, leafish), "root reaches every concept");
    assert!(t.is_ancestor(leafish, leafish), "reflexive");
    assert!(!t.is_ancestor(leafish, root), "no upward reachability");
    let anc = t.ancestors(leafish);
    assert!(anc.contains(root.index()) && anc.contains(leafish.index()));
    assert_eq!(anc.len(), t.ancestor_count(leafish));
}

impl TaxScaleRow {
    /// The row as a JSON object (hand-rolled, matching `bench_snapshot`'s
    /// style), indented by `indent` spaces.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        format!(
            "{pad}{{ \"concepts\": {}, \"cross_links_per_mille\": {}, \"build_ms\": {:.1}, \"closure_bytes\": {}, \"adjacency_bytes\": {}, \"cross_link_concepts\": {}, \"max_depth\": {}, \"is_ancestor_ns\": {:.2}, \"is_ancestor_chain_ns\": {:.2}, \"closure_query_ns\": {:.1}, \"dense_equivalent_bytes\": {} }}",
            self.concepts,
            self.cross_links_per_mille,
            self.build_ms,
            self.closure_bytes,
            self.adjacency_bytes,
            self.cross_link_concepts,
            self.max_depth,
            self.is_ancestor_ns,
            self.is_ancestor_chain_ns,
            self.closure_query_ns,
            dense_equivalent_bytes(self.concepts),
        )
    }
}
