//! A Roaring-style adaptive set of `usize` values.
//!
//! [`AdaptiveBitSet`] replaces the old two-representation scheme (dense
//! [`BitSet`] everywhere + a sorted-vec sparse set for occurrence
//! storage) with one growable set type: values are partitioned into
//! 2¹⁶-value chunks, and each chunk picks the container encoding its
//! cardinality warrants (see [`container`](crate::container)). Sparse
//! occurrence sets stay 2-bytes-per-member arrays, dense ones collapse
//! into flat bitmaps with word-parallel kernels, and contiguous ones can
//! be squeezed into run intervals — so the set stays near the
//! best-of-both-worlds point across the whole cardinality spectrum
//! without the caller choosing a representation up front.
//!
//! The dense fixed-universe [`BitSet`] remains the right type for
//! bounded, mostly-full working sets (Step 3's per-class recursion
//! state, scratch marking areas, taxonomy closures); the fused
//! `*_dense` kernels here are the bridge between the two worlds, and
//! chunk bitmaps AND directly against the dense set's words (a chunk's
//! 1024 words are exactly block-aligned with `BitSet`'s layout).

// tsg-lint: allow(index) — chunk vectors are indexed by positions from this file's own binary searches and merge cursors

use crate::container::{self, Container, BITMAP_WORDS};
use crate::BitSet;

const CHUNK_BITS: usize = 16;

#[inline]
fn split(v: usize) -> (u32, u16) {
    ((v >> CHUNK_BITS) as u32, (v & 0xFFFF) as u16)
}

/// One chunk: the high bits shared by its members, the cached
/// cardinality, and the container holding the low 16 bits.
#[derive(Clone)]
struct Chunk {
    key: u32,
    card: u32,
    container: Container,
}

/// An adaptive chunked set of `usize` members (no fixed universe).
///
/// Containers promote/demote in place as mutation moves a chunk's
/// cardinality across the array/bitmap boundary; cardinalities are
/// cached per chunk, so [`len`](AdaptiveBitSet::len) is O(#chunks) —
/// cheap enough that candidate orderings read it directly.
#[derive(Clone, Default)]
pub struct AdaptiveBitSet {
    chunks: Vec<Chunk>,
}

impl AdaptiveBitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AdaptiveBitSet { chunks: Vec::new() }
    }

    /// Builds a set from arbitrary (unsorted, possibly duplicated)
    /// members. Each chunk gets its byte-cheapest encoding directly
    /// (the [`optimize`](Self::optimize) rule, decided before
    /// allocating), so bulk construction never needs a separate
    /// re-encoding pass.
    pub fn from_members(mut items: Vec<usize>) -> Self {
        Self::from_scratch(&mut items)
    }

    /// [`from_members`](Self::from_members) reading out of a caller-owned
    /// scratch buffer: sorts and deduplicates in place, builds the set,
    /// and leaves the buffer cleared (allocation intact) for reuse. Bulk
    /// builders constructing many sets — occurrence indexing — pool the
    /// buffer so per-set construction costs only the container
    /// allocations themselves.
    pub fn from_scratch(items: &mut Vec<usize>) -> Self {
        items.sort_unstable();
        items.dedup();
        let mut chunks = Vec::new();
        let mut i = 0;
        while i < items.len() {
            let (key, _) = split(items[i]);
            let start = i;
            while i < items.len() && split(items[i]).0 == key {
                i += 1;
            }
            let span = &items[start..i];
            chunks.push(Chunk {
                key,
                card: span.len() as u32,
                container: Container::from_sorted_span(span),
            });
        }
        items.clear();
        AdaptiveBitSet { chunks }
    }

    /// Number of members, summed from per-chunk cached cardinalities.
    #[inline]
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.card as usize).sum()
    }

    /// `true` iff the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    #[inline]
    fn chunk_idx(&self, key: u32) -> Result<usize, usize> {
        self.chunks.binary_search_by_key(&key, |c| c.key)
    }

    /// Inserts a member; returns `true` if it was not already present.
    pub fn insert(&mut self, v: usize) -> bool {
        let (key, low) = split(v);
        match self.chunk_idx(key) {
            Ok(i) => {
                let c = &mut self.chunks[i];
                let fresh = c.container.insert(low);
                c.card += u32::from(fresh);
                fresh
            }
            Err(i) => {
                let mut container = Container::empty();
                container.insert(low);
                self.chunks.insert(
                    i,
                    Chunk {
                        key,
                        card: 1,
                        container,
                    },
                );
                true
            }
        }
    }

    /// Removes a member; returns `true` if it was present. Bitmap chunks
    /// falling below the array threshold demote in place; emptied chunks
    /// are dropped.
    pub fn remove(&mut self, v: usize) -> bool {
        let (key, low) = split(v);
        let Ok(i) = self.chunk_idx(key) else {
            return false;
        };
        let c = &mut self.chunks[i];
        let present = c.container.remove(low, c.card as usize);
        if present {
            c.card -= 1;
            if c.card == 0 {
                self.chunks.remove(i);
            }
        }
        present
    }

    /// Appends a member known to be `>` every current member (amortized
    /// O(1)). Occurrence ids are assigned ascending during index
    /// construction, so this is the common build path.
    ///
    /// # Panics
    /// Panics in debug builds if the ordering precondition is violated.
    pub fn push_ascending(&mut self, v: usize) {
        let (key, low) = split(v);
        match self.chunks.last_mut() {
            Some(c) if c.key == key => {
                c.container.push_max(low);
                c.card += 1;
            }
            last => {
                debug_assert!(last.as_ref().is_none_or(|c| c.key < key));
                let mut container = Container::empty();
                container.insert(low);
                self.chunks.push(Chunk {
                    key,
                    card: 1,
                    container,
                });
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, v: usize) -> bool {
        let (key, low) = split(v);
        self.chunk_idx(key)
            .is_ok_and(|i| self.chunks[i].container.contains(low))
    }

    /// Re-encodes every chunk as its byte-cheapest representation
    /// (typically pulling contiguous occurrence ranges into run
    /// containers). Call after bulk construction; mutation afterwards
    /// keeps runs as runs.
    pub fn optimize(&mut self) {
        for c in &mut self.chunks {
            c.container.optimize();
        }
    }

    /// Members in ascending order.
    pub fn iter(&self) -> Members<'_> {
        Members {
            set: self,
            chunk: 0,
            buf: Vec::new(),
            buf_pos: 0,
        }
    }

    /// Calls `f` for each member in ascending order (no allocation).
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        for c in &self.chunks {
            let base = (c.key as usize) << CHUNK_BITS;
            c.container.for_each(|low| f(base | low as usize));
        }
    }

    /// `self ∩ other` as a new set.
    pub fn intersection(&self, other: &AdaptiveBitSet) -> AdaptiveBitSet {
        let mut out = AdaptiveBitSet::new();
        self.for_each_chunk_pair(other, |key, a, b| {
            let mut lows = Vec::new();
            container::for_each_in_intersection(a, b, &mut |v| lows.push(v));
            if !lows.is_empty() {
                out.chunks.push(Chunk {
                    key,
                    card: lows.len() as u32,
                    container: Container::from_sorted(&lows),
                });
            }
        });
        out
    }

    /// `|self ∩ other|` without materializing — the hot Step-3 kernel,
    /// dispatched per chunk pair to the encoding-specialized kernels.
    pub fn intersection_count(&self, other: &AdaptiveBitSet) -> usize {
        let mut n = 0;
        self.for_each_chunk_pair(other, |_, a, b| n += container::intersection_count(a, b));
        n
    }

    /// `|self ∩ other|` forcing the linear merge on array×array chunk
    /// pairs (other pairs use the normal dispatch). Calibration entry
    /// point for the [`GALLOP_RATIO`](crate::GALLOP_RATIO) crossover
    /// sweeps.
    pub fn intersection_count_merge(&self, other: &AdaptiveBitSet) -> usize {
        let mut n = 0;
        self.for_each_chunk_pair(other, |_, a, b| {
            n += match (a, b) {
                (Container::Array(x), Container::Array(y)) => {
                    container::array_intersect_count_merge(x, y)
                }
                _ => container::intersection_count(a, b),
            };
        });
        n
    }

    /// `|self ∩ other|` forcing the galloping kernel on array×array
    /// chunk pairs (see
    /// [`intersection_count_merge`](Self::intersection_count_merge)).
    pub fn intersection_count_gallop(&self, other: &AdaptiveBitSet) -> usize {
        let mut n = 0;
        self.for_each_chunk_pair(other, |_, a, b| {
            n += match (a, b) {
                (Container::Array(x), Container::Array(y)) => {
                    container::array_intersect_count_gallop(x, y)
                }
                _ => container::intersection_count(a, b),
            };
        });
        n
    }

    /// Calls `f` on each member of `self ∩ other`, ascending.
    pub fn for_each_in_intersection(&self, other: &AdaptiveBitSet, mut f: impl FnMut(usize)) {
        self.for_each_chunk_pair(other, |key, a, b| {
            let base = (key as usize) << CHUNK_BITS;
            container::for_each_in_intersection(a, b, &mut |low| f(base | low as usize));
        });
    }

    /// In-place `self ∪= other`.
    pub fn union_with(&mut self, other: &AdaptiveBitSet) {
        let mut merged = Vec::with_capacity(self.chunks.len().max(other.chunks.len()));
        let mut ours = std::mem::take(&mut self.chunks).into_iter().peekable();
        let mut theirs = other.chunks.iter().peekable();
        loop {
            match (ours.peek(), theirs.peek()) {
                (Some(a), Some(b)) if a.key == b.key => {
                    let a = ours.next().expect("peeked"); // tsg-lint: allow(panic) — peek() returned Some in this arm
                    let b = theirs.next().expect("peeked"); // tsg-lint: allow(panic) — peek() returned Some in this arm
                    let container = container::union_into(a.container, &b.container);
                    merged.push(Chunk {
                        key: a.key,
                        card: container.card() as u32,
                        container,
                    });
                }
                (Some(a), Some(b)) if a.key < b.key => merged.push(ours.next().expect("peeked")), // tsg-lint: allow(panic) — peek() returned Some in this arm
                (Some(_), Some(_)) | (None, Some(_)) => {
                    let b = theirs.next().expect("peeked"); // tsg-lint: allow(panic) — peek() returned Some in this arm
                    merged.push(b.clone());
                }
                (Some(_), None) => merged.push(ours.next().expect("peeked")), // tsg-lint: allow(panic) — peek() returned Some in this arm
                (None, None) => break,
            }
        }
        self.chunks = merged;
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &AdaptiveBitSet) -> AdaptiveBitSet {
        let mut out = AdaptiveBitSet::new();
        for c in &self.chunks {
            match other.chunk_idx(c.key) {
                Err(_) => out.chunks.push(c.clone()),
                Ok(j) => {
                    if let Some(container) =
                        container::difference(&c.container, &other.chunks[j].container)
                    {
                        out.chunks.push(Chunk {
                            key: c.key,
                            card: container.card() as u32,
                            container,
                        });
                    }
                }
            }
        }
        out
    }

    /// `true` iff `self ⊆ other`.
    pub fn is_subset(&self, other: &AdaptiveBitSet) -> bool {
        self.chunks.iter().all(|c| match other.chunk_idx(c.key) {
            Err(_) => c.card == 0,
            Ok(j) => {
                c.card <= other.chunks[j].card
                    && container::is_subset(&c.container, &other.chunks[j].container)
            }
        })
    }

    /// `true` iff the sets share at least one member.
    pub fn intersects(&self, other: &AdaptiveBitSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            match self.chunks[i].key.cmp(&other.chunks[j].key) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if container::intersects(&self.chunks[i].container, &other.chunks[j].container)
                    {
                        return true;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        false
    }

    /// Walks aligned chunk pairs (both sets holding the key) in key
    /// order.
    fn for_each_chunk_pair(
        &self,
        other: &AdaptiveBitSet,
        mut f: impl FnMut(u32, &Container, &Container),
    ) {
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            match self.chunks[i].key.cmp(&other.chunks[j].key) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    f(
                        self.chunks[i].key,
                        &self.chunks[i].container,
                        &other.chunks[j].container,
                    );
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    // -- fused dense-interop kernels ------------------------------------

    /// `|self ∩ dense|`: bitmap chunks AND word-parallel against the
    /// dense set's blocks; array/run chunks probe per member. Members of
    /// `self` outside `dense`'s universe count as absent, so an adaptive
    /// set may safely be probed against a (smaller) working-set universe.
    pub fn intersection_count_dense(&self, dense: &BitSet) -> usize {
        let blocks = &dense.blocks;
        let mut n = 0;
        for c in &self.chunks {
            let word_base = c.key as usize * BITMAP_WORDS;
            if word_base >= blocks.len() {
                break;
            }
            match &c.container {
                Container::Bitmap(bm) => {
                    let window = &blocks[word_base..blocks.len().min(word_base + BITMAP_WORDS)];
                    n += bm
                        .words
                        .iter()
                        .zip(window)
                        .map(|(a, b)| (a & b).count_ones() as usize)
                        .sum::<usize>();
                }
                Container::Array(items) => {
                    // Branchless word probes against the clipped window;
                    // items are sorted, so the first out-of-universe
                    // member ends the chunk.
                    let window = &blocks[word_base..blocks.len().min(word_base + BITMAP_WORDS)];
                    for &low in items {
                        let wi = (low >> 6) as usize;
                        if wi >= window.len() {
                            break;
                        }
                        n += ((window[wi] >> (low & 63)) & 1) as usize;
                    }
                }
                Container::Runs(runs) => {
                    // A run is a contiguous bit range of the dense
                    // operand: masked popcounts, not per-member probes.
                    let base = (c.key as usize) << CHUNK_BITS;
                    let nbits = blocks.len() << 6;
                    for r in runs {
                        let lo = base | r.start as usize;
                        if lo >= nbits {
                            break;
                        }
                        let hi = (base | r.last as usize).min(nbits - 1);
                        n += count_dense_range(blocks, lo, hi);
                    }
                }
            }
        }
        n
    }

    /// Calls `f` on each member of `self ∩ dense`, ascending, without
    /// materializing either side.
    pub fn for_each_in_intersection_dense(&self, dense: &BitSet, mut f: impl FnMut(usize)) {
        let blocks = &dense.blocks;
        for c in &self.chunks {
            let word_base = c.key as usize * BITMAP_WORDS;
            if word_base >= blocks.len() {
                break;
            }
            let base = (c.key as usize) << CHUNK_BITS;
            match &c.container {
                Container::Bitmap(bm) => {
                    let window = &blocks[word_base..blocks.len().min(word_base + BITMAP_WORDS)];
                    for (wi, (a, b)) in bm.words.iter().zip(window).enumerate() {
                        let mut w = a & b;
                        while w != 0 {
                            f(base | (wi * 64 + w.trailing_zeros() as usize));
                            w &= w - 1;
                        }
                    }
                }
                Container::Array(items) => {
                    let window = &blocks[word_base..blocks.len().min(word_base + BITMAP_WORDS)];
                    for &low in items {
                        let wi = (low >> 6) as usize;
                        if wi >= window.len() {
                            break;
                        }
                        if (window[wi] >> (low & 63)) & 1 != 0 {
                            f(base | low as usize);
                        }
                    }
                }
                Container::Runs(runs) => {
                    let nbits = blocks.len() << 6;
                    for r in runs {
                        let lo = base | r.start as usize;
                        if lo >= nbits {
                            break;
                        }
                        let hi = (base | r.last as usize).min(nbits - 1);
                        for_each_dense_range(blocks, lo, hi, &mut f);
                    }
                }
            }
        }
    }

    /// Writes `self ∩ dense` into `out`, reusing `out`'s allocation
    /// (`out` is reset to `dense`'s universe first). Returns the
    /// intersection cardinality. With a pooled `out`, the hot descent
    /// loop allocates nothing.
    pub fn intersect_into_dense(&self, dense: &BitSet, out: &mut BitSet) -> usize {
        out.reset(dense.universe());
        let mut n = 0;
        for c in &self.chunks {
            let word_base = c.key as usize * BITMAP_WORDS;
            if word_base >= dense.blocks.len() {
                break;
            }
            match &c.container {
                Container::Bitmap(bm) => {
                    let end = dense.blocks.len().min(word_base + BITMAP_WORDS);
                    for (wi, word) in (word_base..end).zip(bm.words.iter()) {
                        let and = word & dense.blocks[wi];
                        out.blocks[wi] = and;
                        n += and.count_ones() as usize;
                    }
                }
                Container::Array(items) => {
                    let end = dense.blocks.len().min(word_base + BITMAP_WORDS);
                    for &low in items {
                        let wi = word_base + (low >> 6) as usize;
                        if wi >= end {
                            break;
                        }
                        let bit = 1u64 << (low & 63);
                        if dense.blocks[wi] & bit != 0 {
                            out.blocks[wi] |= bit;
                            n += 1;
                        }
                    }
                }
                Container::Runs(runs) => {
                    let base = (c.key as usize) << CHUNK_BITS;
                    let nbits = dense.blocks.len() << 6;
                    for r in runs {
                        let lo = base | r.start as usize;
                        if lo >= nbits {
                            break;
                        }
                        let hi = (base | r.last as usize).min(nbits - 1);
                        let (ws, we) = (lo >> 6, hi >> 6);
                        let head = !0u64 << (lo & 63);
                        let tail = !0u64 >> (63 - (hi & 63));
                        for wi in ws..=we {
                            let mut w = dense.blocks[wi];
                            if wi == ws {
                                w &= head;
                            }
                            if wi == we {
                                w &= tail;
                            }
                            out.blocks[wi] |= w;
                            n += w.count_ones() as usize;
                        }
                    }
                }
            }
        }
        n
    }

    /// Converts to a dense [`BitSet`] over the given universe.
    ///
    /// # Panics
    /// Panics if some member is `>= universe` (dense sets are
    /// fixed-universe).
    pub fn to_dense(&self, universe: usize) -> BitSet {
        let mut out = BitSet::new(universe);
        self.for_each(|v| {
            out.insert(v);
        });
        out
    }

    /// Approximate heap footprint in bytes (for the memory-budget
    /// accounting used to reproduce the paper's out-of-memory
    /// observations): container payloads plus the chunk directory.
    pub fn heap_bytes(&self) -> usize {
        self.chunks.capacity() * std::mem::size_of::<Chunk>()
            + self
                .chunks
                .iter()
                .map(|c| c.container.heap_bytes())
                .sum::<usize>()
    }

    /// Collects the members into a vector (mostly for tests/display).
    pub fn to_vec(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|v| out.push(v));
        out
    }
}

impl PartialEq for AdaptiveBitSet {
    fn eq(&self, other: &Self) -> bool {
        self.chunks.len() == other.chunks.len()
            && self.chunks.iter().zip(&other.chunks).all(|(a, b)| {
                a.key == b.key && a.card == b.card && a.container.semantic_eq(&b.container)
            })
    }
}

impl Eq for AdaptiveBitSet {}

impl std::hash::Hash for AdaptiveBitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for c in &self.chunks {
            c.key.hash(state);
            c.card.hash(state);
        }
        self.for_each(|v| v.hash(state));
    }
}

/// Population of the global bit range `lo..=hi` of a dense block slice.
/// Callers clamp `hi` below `blocks.len() * 64`; the run-container fused
/// kernels use this so a contiguous run costs masked popcounts instead
/// of per-member probes.
#[inline]
fn count_dense_range(blocks: &[u64], lo: usize, hi: usize) -> usize {
    let (ws, we) = (lo >> 6, hi >> 6);
    let head = !0u64 << (lo & 63);
    let tail = !0u64 >> (63 - (hi & 63));
    if ws == we {
        return (blocks[ws] & head & tail).count_ones() as usize;
    }
    let mut n = (blocks[ws] & head).count_ones() as usize;
    for w in &blocks[ws + 1..we] {
        n += w.count_ones() as usize;
    }
    n + (blocks[we] & tail).count_ones() as usize
}

/// Calls `f` on each set bit of `blocks` within the global bit range
/// `lo..=hi`, ascending. Same clamping contract as [`count_dense_range`].
#[inline]
fn for_each_dense_range(blocks: &[u64], lo: usize, hi: usize, f: &mut impl FnMut(usize)) {
    let (ws, we) = (lo >> 6, hi >> 6);
    let head = !0u64 << (lo & 63);
    let tail = !0u64 >> (63 - (hi & 63));
    for (wi, &word) in blocks.iter().enumerate().take(we + 1).skip(ws) {
        let mut w = word;
        if wi == ws {
            w &= head;
        }
        if wi == we {
            w &= tail;
        }
        while w != 0 {
            f((wi << 6) | w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

impl std::fmt::Debug for AdaptiveBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for AdaptiveBitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        AdaptiveBitSet::from_members(iter.into_iter().collect())
    }
}

impl Extend<usize> for AdaptiveBitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// Ascending member iterator. Decodes one chunk at a time into a small
/// buffer; the mining hot paths use the `for_each`-style visitors
/// instead, so the buffering only costs tests and diagnostics.
pub struct Members<'a> {
    set: &'a AdaptiveBitSet,
    chunk: usize,
    buf: Vec<usize>,
    buf_pos: usize,
}

impl Iterator for Members<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.buf_pos < self.buf.len() {
                let v = self.buf[self.buf_pos];
                self.buf_pos += 1;
                return Some(v);
            }
            let c = self.set.chunks.get(self.chunk)?;
            self.chunk += 1;
            self.buf.clear();
            self.buf_pos = 0;
            let base = (c.key as usize) << CHUNK_BITS;
            c.container.for_each(|low| self.buf.push(base | low as usize));
        }
    }
}

impl<'a> IntoIterator for &'a AdaptiveBitSet {
    type Item = usize;
    type IntoIter = Members<'a>;
    fn into_iter(self) -> Members<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip_across_chunks() {
        let members = vec![0usize, 1, 65535, 65536, 65537, 1 << 20];
        let mut s = AdaptiveBitSet::from_members(members.clone());
        assert_eq!(s.len(), members.len());
        assert_eq!(s.to_vec(), members);
        for &m in &members {
            assert!(s.contains(m));
        }
        assert!(!s.contains(2));
        assert!(!s.contains(70000));
        assert!(s.remove(65536));
        assert!(!s.remove(65536));
        assert!(!s.contains(65536));
        assert_eq!(s.len(), members.len() - 1);
        assert!(s.insert(65536));
        assert_eq!(s.to_vec(), members);
    }

    #[test]
    fn push_ascending_matches_from_members() {
        let vals: Vec<usize> = (0..200_000).step_by(7).collect();
        let mut pushed = AdaptiveBitSet::new();
        for &v in &vals {
            pushed.push_ascending(v);
        }
        assert_eq!(pushed, AdaptiveBitSet::from_members(vals));
    }

    #[test]
    fn promotion_and_demotion_at_chunk_boundary() {
        // 4095 scattered members in chunk 0 (contiguous ones would
        // canonicalize to runs at construction): array. The 4096th
        // promotes.
        let mut s = AdaptiveBitSet::from_members((0..4095).map(|i| i * 2).collect());
        assert!(matches!(s.chunks[0].container, Container::Array(_)));
        s.insert(60_000);
        assert!(matches!(s.chunks[0].container, Container::Bitmap(_)));
        assert_eq!(s.len(), 4096);
        s.remove(60_000);
        assert!(matches!(s.chunks[0].container, Container::Array(_)));
        assert_eq!(s.len(), 4095);
    }

    #[test]
    fn empty_chunks_are_dropped() {
        let mut s = AdaptiveBitSet::from_members(vec![70_000]);
        assert_eq!(s.chunks.len(), 1);
        assert!(s.remove(70_000));
        assert!(s.is_empty());
        assert_eq!(s.chunks.len(), 0);
        assert!(!s.intersects(&AdaptiveBitSet::from_members(vec![70_000])));
    }

    #[test]
    fn set_algebra_across_chunks() {
        let a = AdaptiveBitSet::from_members(vec![1, 65536, 65540, 200_000]);
        let b = AdaptiveBitSet::from_members(vec![65536, 200_000, 300_000]);
        assert_eq!(a.intersection(&b).to_vec(), vec![65536, 200_000]);
        assert_eq!(a.intersection_count(&b), 2);
        assert!(a.intersects(&b));
        assert_eq!(a.difference(&b).to_vec(), vec![1, 65540]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 65536, 65540, 200_000, 300_000]);
        assert!(a.intersection(&b).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(u.difference(&a).is_subset(&b));
    }

    #[test]
    fn dense_interop_kernels_agree() {
        let sparse = AdaptiveBitSet::from_members(vec![0, 63, 64, 65, 127, 128, 199, 70_000]);
        let dense = BitSet::from_iter_with_universe(200, [63, 64, 100, 199]);
        assert_eq!(sparse.intersection_count_dense(&dense), 3);
        let mut got = Vec::new();
        sparse.for_each_in_intersection_dense(&dense, |v| got.push(v));
        assert_eq!(got, vec![63, 64, 199]);
        let mut out = BitSet::new(0);
        assert_eq!(sparse.intersect_into_dense(&dense, &mut out), 3);
        assert_eq!(out.universe(), 200);
        assert_eq!(out.to_vec(), vec![63, 64, 199]);
    }

    #[test]
    fn dense_interop_uses_word_paths_on_bitmap_chunks() {
        // A bitmap chunk (card >= 4096) against a dense universe that
        // ends mid-chunk: the word-aligned path must clamp correctly.
        let sparse = AdaptiveBitSet::from_members((0..5000).map(|v| v * 2).collect());
        assert!(matches!(sparse.chunks[0].container, Container::Bitmap(_)));
        let dense = BitSet::from_iter_with_universe(7000, (0..7000).filter(|v| v % 3 == 0));
        let want = (0..3500).filter(|v| (v * 2) % 3 == 0).count();
        assert_eq!(sparse.intersection_count_dense(&dense), want);
        let mut out = BitSet::new(0);
        assert_eq!(sparse.intersect_into_dense(&dense, &mut out), want);
        assert_eq!(out.count_ones(), want);
        let d2 = sparse.to_dense(10_000);
        assert_eq!(d2.count_ones(), 5000);
    }

    #[test]
    fn forced_kernels_match_dispatch() {
        let a = AdaptiveBitSet::from_members((0..3000).map(|v| v * 3).collect());
        let b = AdaptiveBitSet::from_members((0..150).map(|v| v * 31).collect());
        let want = a.intersection_count(&b);
        assert_eq!(a.intersection_count_merge(&b), want);
        assert_eq!(a.intersection_count_gallop(&b), want);
    }

    #[test]
    fn optimize_preserves_contents() {
        let vals: Vec<usize> = (1000..9000).chain(100_000..100_010).collect();
        let mut s = AdaptiveBitSet::from_members(vals.clone());
        s.optimize();
        assert_eq!(s.to_vec(), vals);
        assert!(
            matches!(s.chunks[0].container, Container::Runs(_)),
            "contiguous chunk should run-encode"
        );
        // Mutation on run containers keeps them correct.
        assert!(s.remove(5000));
        assert!(s.insert(5000));
        assert_eq!(s.to_vec(), vals);
    }

    #[test]
    fn heap_bytes_tracks_representation() {
        // Scattered members (no runs worth encoding): array and bitmap.
        let arr = AdaptiveBitSet::from_members((0..100).map(|i| i * 2).collect());
        let bm = AdaptiveBitSet::from_members((0..5000).map(|i| i * 2).collect());
        // Contiguous members canonicalize to runs at construction.
        let run = AdaptiveBitSet::from_members((0..5000).collect());
        assert!(arr.heap_bytes() < bm.heap_bytes());
        assert!(run.heap_bytes() < bm.heap_bytes());
    }

    #[test]
    fn eq_and_hash_are_semantic() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = AdaptiveBitSet::from_members((0..5000).collect());
        let mut b = a.clone();
        b.optimize(); // run-encoded, same contents
        assert_eq!(a, b);
        let h = |s: &AdaptiveBitSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&a), h(&b));
        let mut c = a.clone();
        c.remove(17);
        assert_ne!(a, c);
    }
}
