//! Per-chunk containers for the Roaring-style [`AdaptiveBitSet`].
//!
//! The value space is split into 2¹⁶-value chunks keyed by the high bits;
//! each chunk stores its low 16 bits in whichever container is cheapest
//! for its cardinality (see DESIGN.md §13 for the format and dispatch
//! table):
//!
//! * [`Container::Array`] — sorted `u16` vector, cardinality `< 4096`
//!   (2 bytes/member);
//! * [`Container::Bitmap`] — 1024 × `u64` fixed bitmap, cardinality
//!   `>= 4096` (8 KiB flat, O(1) membership, word-parallel kernels);
//! * [`Container::Runs`] — sorted disjoint inclusive intervals, chosen by
//!   [`Container::optimize`] when runs undercut both other encodings
//!   (4 bytes/run).
//!
//! Mutation keeps the representation canonical at the array/bitmap
//! boundary: inserting the [`BITMAP_MIN`]th member promotes an array to a
//! bitmap in place, and removal demotes a bitmap back to an array the
//! moment its cardinality drops below [`BITMAP_MIN`]. Run containers stay
//! runs under mutation (inserts coalesce adjacent runs, removals split
//! them); only [`Container::optimize`] changes a chunk into or out of run
//! encoding.
//!
//! [`AdaptiveBitSet`]: crate::AdaptiveBitSet

// tsg-lint: allow(index) — roaring container kernels walk sorted arrays with cursors bounded by the stored cardinalities; checked indexing in these loops would defeat the flat layout, and the dense/property tests assert the bounds discipline

/// Containers with cardinality `>= BITMAP_MIN` use the bitmap encoding;
/// below it, the sorted array. 4096 is the break-even point where the
/// array (2 bytes/member) stops undercutting the flat 8 KiB bitmap — the
/// same threshold the Roaring format uses.
pub const BITMAP_MIN: usize = 4096;

/// Maximum cardinality of an array container (`BITMAP_MIN - 1`).
pub const ARRAY_MAX: usize = BITMAP_MIN - 1;

/// Number of `u64` words in a bitmap container (2¹⁶ bits).
pub const BITMAP_WORDS: usize = (1 << 16) / 64;

/// Size ratio beyond which sorted-array intersection switches from the
/// linear two-pointer merge to galloping the smaller operand over the
/// larger one. Below it the merge's branch-predictable loop wins; above
/// it `O(small · log large)` exponential probing wins.
///
/// Tunable: the measured crossover on the reference host (see
/// EXPERIMENTS.md §"kernel crossover", regenerated from the
/// `sparse_regimes` criterion sweep) sits between the 8× and 32× ratio
/// points — at 16× galloping is already ~1.8× faster and below 8× the
/// merge wins — so 16 keeps both regimes on their winning kernel with
/// margin. Within a chunk both operands are arrays of at most
/// [`ARRAY_MAX`] members, so the dispatch is decided per chunk pair.
pub const GALLOP_RATIO: usize = 16;

/// A maximal interval of consecutive members, `start..=last`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Run {
    pub start: u16,
    pub last: u16,
}

impl Run {
    #[inline]
    pub(crate) fn len(self) -> usize {
        (self.last - self.start) as usize + 1
    }

    #[inline]
    fn contains(self, v: u16) -> bool {
        self.start <= v && v <= self.last
    }
}

/// A bitmap container: 2¹⁶ bits as 1024 words.
#[derive(Clone)]
pub(crate) struct Bitmap {
    pub words: [u64; BITMAP_WORDS],
}

impl Bitmap {
    fn empty() -> Box<Bitmap> {
        Box::new(Bitmap {
            words: [0; BITMAP_WORDS],
        })
    }

    #[inline]
    fn contains(&self, v: u16) -> bool {
        self.words[v as usize / 64] & (1u64 << (v % 64)) != 0
    }

    /// Sets bit `v`; returns `true` if it was clear.
    #[inline]
    fn set(&mut self, v: u16) -> bool {
        let w = &mut self.words[v as usize / 64];
        let m = 1u64 << (v % 64);
        let fresh = *w & m == 0;
        *w |= m;
        fresh
    }

    /// Clears bit `v`; returns `true` if it was set.
    #[inline]
    fn clear(&mut self, v: u16) -> bool {
        let w = &mut self.words[v as usize / 64];
        let m = 1u64 << (v % 64);
        let present = *w & m != 0;
        *w &= !m;
        present
    }

    fn count(&self) -> usize {
        popcount_words(&self.words)
    }

    /// Population of `start..=last`.
    fn count_range(&self, start: u16, last: u16) -> usize {
        let (ws, we) = (start as usize / 64, last as usize / 64);
        let head = !0u64 << (start % 64);
        let tail = !0u64 >> (63 - last % 64);
        if ws == we {
            return (self.words[ws] & head & tail).count_ones() as usize;
        }
        let mut n = (self.words[ws] & head).count_ones() as usize;
        for w in &self.words[ws + 1..we] {
            n += w.count_ones() as usize;
        }
        n + (self.words[we] & tail).count_ones() as usize
    }

    /// Sets every bit in `start..=last`.
    fn set_range(&mut self, start: u16, last: u16) {
        let (ws, we) = (start as usize / 64, last as usize / 64);
        let head = !0u64 << (start % 64);
        let tail = !0u64 >> (63 - last % 64);
        if ws == we {
            self.words[ws] |= head & tail;
            return;
        }
        self.words[ws] |= head;
        for w in &mut self.words[ws + 1..we] {
            *w = !0;
        }
        self.words[we] |= tail;
    }
}

/// Popcount of a word slice, unrolled four wide — the inner loop of every
/// bitmap×bitmap kernel (1024 words per chunk, so the unroll divides
/// evenly and the compiler keeps four independent popcnt chains in
/// flight).
#[inline]
fn popcount_words(words: &[u64]) -> usize {
    let mut chunks = words.chunks_exact(4);
    let (mut a, mut b, mut c, mut d) = (0usize, 0usize, 0usize, 0usize);
    for q in &mut chunks {
        a += q[0].count_ones() as usize;
        b += q[1].count_ones() as usize;
        c += q[2].count_ones() as usize;
        d += q[3].count_ones() as usize;
    }
    a + b
        + c
        + d
        + chunks
            .remainder()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
}

/// One chunk's members (low 16 bits), in one of three encodings.
#[derive(Clone)]
pub(crate) enum Container {
    Array(Vec<u16>),
    Bitmap(Box<Bitmap>),
    Runs(Vec<Run>),
}

impl Container {
    pub(crate) fn empty() -> Container {
        Container::Array(Vec::new())
    }

    /// Builds the canonical container for a sorted, deduplicated slice.
    pub(crate) fn from_sorted(vals: &[u16]) -> Container {
        if vals.len() >= BITMAP_MIN {
            let mut bm = Bitmap::empty();
            for &v in vals {
                bm.set(v);
            }
            Container::Bitmap(bm)
        } else {
            Container::Array(vals.to_vec())
        }
    }

    /// Builds the byte-cheapest container for one chunk's span of a
    /// sorted, deduplicated global member slice (all values share the
    /// same high bits) — the same encoding rule as [`optimize`], decided
    /// *before* allocating so construction never re-encodes. One counting
    /// pass picks the representation; contiguous spans allocate a few
    /// runs instead of a member array, which is what makes bulk set
    /// construction (occurrence-index builds) cheap.
    ///
    /// [`optimize`]: Container::optimize
    pub(crate) fn from_sorted_span(vals: &[usize]) -> Container {
        let n = vals.len();
        // O(1) fast path for a perfectly contiguous span — the shape of
        // every occurrence-index root set (occurrence ids are dense).
        if n > 2 && vals[n - 1] - vals[0] + 1 == n {
            return Container::Runs(vec![Run {
                start: (vals[0] & 0xFFFF) as u16,
                last: (vals[n - 1] & 0xFFFF) as u16,
            }]);
        }
        if n < BITMAP_MIN {
            // One pass: build the array while counting runs; re-encode
            // only when runs actually win (mostly-contiguous contents).
            let mut lows: Vec<u16> = Vec::with_capacity(n);
            let mut runs = usize::from(n > 0);
            let mut prev = usize::MAX - 1;
            for &v in vals {
                runs += usize::from(v != prev + 1 && !lows.is_empty());
                lows.push((v & 0xFFFF) as u16);
                prev = v;
            }
            if 4 * runs < 2 * n {
                return Container::Runs(array_to_runs(&lows, runs));
            }
            return Container::Array(lows);
        }
        let mut runs = 1usize;
        for w in vals.windows(2) {
            runs += usize::from(w[1] != w[0] + 1);
        }
        if 4 * runs < 8192 {
            let mut rs: Vec<Run> = Vec::with_capacity(runs);
            for &v in vals {
                let low = (v & 0xFFFF) as u16;
                match rs.last_mut() {
                    Some(r) if r.last + 1 == low => r.last = low,
                    _ => rs.push(Run {
                        start: low,
                        last: low,
                    }),
                }
            }
            Container::Runs(rs)
        } else {
            let mut bm = Bitmap::empty();
            for &v in vals {
                bm.set((v & 0xFFFF) as u16);
            }
            Container::Bitmap(bm)
        }
    }

    pub(crate) fn card(&self) -> usize {
        match self {
            Container::Array(a) => a.len(),
            Container::Bitmap(b) => b.count(),
            Container::Runs(rs) => rs.iter().map(|r| r.len()).sum(),
        }
    }

    pub(crate) fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&v).is_ok(),
            Container::Bitmap(b) => b.contains(v),
            Container::Runs(rs) => rs
                .binary_search_by(|r| {
                    if r.last < v {
                        std::cmp::Ordering::Less
                    } else if r.start > v {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .is_ok(),
        }
    }

    /// Inserts `v`, promoting an array that reaches [`BITMAP_MIN`] to a
    /// bitmap and coalescing adjacent runs. Returns `true` if `v` was new.
    pub(crate) fn insert(&mut self, v: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    if a.len() == ARRAY_MAX {
                        let mut bm = Bitmap::empty();
                        for &x in a.iter() {
                            bm.set(x);
                        }
                        bm.set(v);
                        *self = Container::Bitmap(bm);
                    } else {
                        a.insert(pos, v);
                    }
                    true
                }
            },
            Container::Bitmap(b) => b.set(v),
            Container::Runs(rs) => runs_insert(rs, v),
        }
    }

    /// Appends a member known to exceed every current one. The caller
    /// (the chunk-level `push_ascending`) guarantees the ordering.
    pub(crate) fn push_max(&mut self, v: u16) {
        match self {
            Container::Array(a) => {
                debug_assert!(a.last().is_none_or(|&l| l < v));
                if a.len() == ARRAY_MAX {
                    let mut bm = Bitmap::empty();
                    for &x in a.iter() {
                        bm.set(x);
                    }
                    bm.set(v);
                    *self = Container::Bitmap(bm);
                } else {
                    a.push(v);
                }
            }
            Container::Bitmap(b) => {
                b.set(v);
            }
            Container::Runs(rs) => {
                runs_insert(rs, v);
            }
        }
    }

    /// Removes `v`, demoting a bitmap that drops below [`BITMAP_MIN`] and
    /// splitting runs. `card` is the container's cardinality before the
    /// removal (maintained by the chunk). Returns `true` if `v` was
    /// present.
    pub(crate) fn remove(&mut self, v: u16, card: usize) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&v) {
                Ok(pos) => {
                    a.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(b) => {
                if !b.clear(v) {
                    return false;
                }
                if card - 1 < BITMAP_MIN {
                    *self = Container::Array(bitmap_to_array(b));
                }
                true
            }
            Container::Runs(rs) => runs_remove(rs, v),
        }
    }

    /// Re-encodes the chunk as whichever of the three representations is
    /// byte-cheapest for its current contents (runs cost 4 bytes each,
    /// array members 2, the bitmap a flat 8192).
    pub(crate) fn optimize(&mut self) {
        let card = self.card();
        let mut runs: Vec<Run> = Vec::new();
        self.for_each(|v| match runs.last_mut() {
            Some(r) if r.last + 1 == v => r.last = v,
            _ => runs.push(Run { start: v, last: v }),
        });
        let run_bytes = 4 * runs.len();
        let flat_bytes = if card >= BITMAP_MIN { 8192 } else { 2 * card };
        if run_bytes < flat_bytes {
            *self = Container::Runs(runs);
        } else if card >= BITMAP_MIN {
            if !matches!(self, Container::Bitmap(_)) {
                let mut bm = Bitmap::empty();
                for r in &runs {
                    bm.set_range(r.start, r.last);
                }
                *self = Container::Bitmap(bm);
            }
        } else if !matches!(self, Container::Array(_)) {
            let mut a = Vec::with_capacity(card);
            for r in &runs {
                for v in r.start..=r.last {
                    a.push(v);
                }
            }
            *self = Container::Array(a);
        }
    }

    /// Calls `f` for each member in ascending order.
    pub(crate) fn for_each(&self, mut f: impl FnMut(u16)) {
        match self {
            Container::Array(a) => a.iter().for_each(|&v| f(v)),
            Container::Bitmap(b) => {
                for (i, &w) in b.words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        f((i * 64) as u16 + w.trailing_zeros() as u16);
                        w &= w - 1;
                    }
                }
            }
            Container::Runs(rs) => {
                for r in rs {
                    for v in r.start..=r.last {
                        f(v);
                    }
                }
            }
        }
    }

    /// Member-set equality across encodings, without decoding either
    /// side into a buffer. The caller must have already verified equal
    /// cardinality (the chunk caches it): the cross-encoding arms test
    /// containment only, which equals equality under that precondition.
    pub(crate) fn semantic_eq(&self, other: &Container) -> bool {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) => a == b,
            (Container::Runs(a), Container::Runs(b)) => a == b,
            (Container::Bitmap(a), Container::Bitmap(b)) => a.words == b.words,
            (Container::Array(a), Container::Runs(r)) | (Container::Runs(r), Container::Array(a)) => {
                let mut i = 0;
                for run in r {
                    for v in run.start..=run.last {
                        if a.get(i) != Some(&v) {
                            return false;
                        }
                        i += 1;
                    }
                }
                i == a.len()
            }
            (Container::Bitmap(b), Container::Array(a))
            | (Container::Array(a), Container::Bitmap(b)) => a.iter().all(|&v| b.contains(v)),
            (Container::Bitmap(b), Container::Runs(r))
            | (Container::Runs(r), Container::Bitmap(b)) => r
                .iter()
                .all(|run| b.count_range(run.start, run.last) == run.len()),
        }
    }

    /// Heap bytes attributable to this container (the box/vec payloads;
    /// the enum itself is counted by the chunk vector).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Container::Array(a) => a.capacity() * 2,
            Container::Bitmap(_) => BITMAP_WORDS * 8,
            Container::Runs(rs) => rs.capacity() * std::mem::size_of::<Run>(),
        }
    }
}

/// Re-encodes a sorted member array as runs; `runs` is the exact run
/// count (pre-counted by the caller, so the vec allocates once).
fn array_to_runs(lows: &[u16], runs: usize) -> Vec<Run> {
    let mut rs: Vec<Run> = Vec::with_capacity(runs);
    for &low in lows {
        match rs.last_mut() {
            Some(r) if r.last + 1 == low => r.last = low,
            _ => rs.push(Run {
                start: low,
                last: low,
            }),
        }
    }
    rs
}

/// Demotes a bitmap's members to a sorted array.
fn bitmap_to_array(b: &Bitmap) -> Vec<u16> {
    let mut out = Vec::with_capacity(ARRAY_MAX);
    for (i, &w) in b.words.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            out.push((i * 64) as u16 + w.trailing_zeros() as u16);
            w &= w - 1;
        }
    }
    out
}

/// Inserts into a run container, coalescing with the runs on either side
/// (`[3..5] + 6 + [7..9]` becomes the single run `[3..9]`).
fn runs_insert(rs: &mut Vec<Run>, v: u16) -> bool {
    let i = rs.partition_point(|r| r.last < v);
    if i < rs.len() && rs[i].contains(v) {
        return false;
    }
    let glue_left = i > 0 && rs[i - 1].last + 1 == v;
    let glue_right = i < rs.len() && v + 1 == rs[i].start;
    match (glue_left, glue_right) {
        (true, true) => {
            rs[i - 1].last = rs[i].last;
            rs.remove(i);
        }
        (true, false) => rs[i - 1].last = v,
        (false, true) => rs[i].start = v,
        (false, false) => rs.insert(i, Run { start: v, last: v }),
    }
    true
}

/// Removes from a run container, shrinking or splitting the covering run.
fn runs_remove(rs: &mut Vec<Run>, v: u16) -> bool {
    let i = rs.partition_point(|r| r.last < v);
    if i == rs.len() || !rs[i].contains(v) {
        return false;
    }
    let r = rs[i];
    match (r.start == v, r.last == v) {
        (true, true) => {
            rs.remove(i);
        }
        (true, false) => rs[i].start = v + 1,
        (false, true) => rs[i].last = v - 1,
        (false, false) => {
            rs[i].last = v - 1;
            rs.insert(
                i + 1,
                Run {
                    start: v + 1,
                    last: r.last,
                },
            );
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Pairwise kernels. Dispatch is by (encoding, encoding); every pair is
// covered, with the hot ones (array×array merge/gallop, bitmap×bitmap
// unrolled word loops) specialized and the run pairs handled by interval
// walks.
// ---------------------------------------------------------------------------

/// `|a ∩ b|` without materializing.
pub(crate) fn intersection_count(a: &Container, b: &Container) -> usize {
    use Container::{Array, Bitmap, Runs};
    match (a, b) {
        (Array(x), Array(y)) => array_intersect_count_dispatch(x, y),
        (Array(x), Bitmap(y)) | (Bitmap(y), Array(x)) => {
            x.iter().filter(|&&v| y.contains(v)).count()
        }
        (Bitmap(x), Bitmap(y)) => {
            let mut xc = x.words.chunks_exact(4);
            let yc = y.words.chunks_exact(4);
            let (mut n0, mut n1, mut n2, mut n3) = (0usize, 0, 0, 0);
            for (p, q) in (&mut xc).zip(yc) {
                n0 += (p[0] & q[0]).count_ones() as usize;
                n1 += (p[1] & q[1]).count_ones() as usize;
                n2 += (p[2] & q[2]).count_ones() as usize;
                n3 += (p[3] & q[3]).count_ones() as usize;
            }
            n0 + n1 + n2 + n3
        }
        (Runs(rs), Bitmap(y)) | (Bitmap(y), Runs(rs)) => {
            rs.iter().map(|r| y.count_range(r.start, r.last)).sum()
        }
        (Runs(rs), Array(x)) | (Array(x), Runs(rs)) => {
            // For each run, count the array members it brackets.
            let mut n = 0;
            let mut rest: &[u16] = x;
            for r in rs {
                let lo = rest.partition_point(|&v| v < r.start);
                rest = &rest[lo..];
                let hi = rest.partition_point(|&v| v <= r.last);
                n += hi;
                rest = &rest[hi..];
                if rest.is_empty() {
                    break;
                }
            }
            n
        }
        (Runs(xs), Runs(ys)) => {
            let (mut i, mut j, mut n) = (0, 0, 0usize);
            while i < xs.len() && j < ys.len() {
                let lo = xs[i].start.max(ys[j].start);
                let hi = xs[i].last.min(ys[j].last);
                if lo <= hi {
                    n += (hi - lo) as usize + 1;
                }
                if xs[i].last <= ys[j].last {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            n
        }
    }
}

/// `true` iff the containers share a member (early-exit).
pub(crate) fn intersects(a: &Container, b: &Container) -> bool {
    use Container::{Array, Bitmap, Runs};
    match (a, b) {
        (Array(x), Array(y)) => {
            let mut hit = false;
            array_intersect(x, y, &mut |_| hit = true);
            hit
        }
        (Array(x), Bitmap(y)) | (Bitmap(y), Array(x)) => x.iter().any(|&v| y.contains(v)),
        (Bitmap(x), Bitmap(y)) => x.words.iter().zip(&y.words).any(|(p, q)| p & q != 0),
        (Runs(rs), Bitmap(y)) | (Bitmap(y), Runs(rs)) => {
            rs.iter().any(|r| y.count_range(r.start, r.last) != 0)
        }
        (Runs(rs), Array(x)) | (Array(x), Runs(rs)) => rs.iter().any(|r| {
            let lo = x.partition_point(|&v| v < r.start);
            lo < x.len() && x[lo] <= r.last
        }),
        (Runs(xs), Runs(ys)) => {
            let (mut i, mut j) = (0, 0);
            while i < xs.len() && j < ys.len() {
                if xs[i].start.max(ys[j].start) <= xs[i].last.min(ys[j].last) {
                    return true;
                }
                if xs[i].last <= ys[j].last {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            false
        }
    }
}

/// `true` iff every member of `a` is in `b`.
pub(crate) fn is_subset(a: &Container, b: &Container) -> bool {
    use Container::{Array, Bitmap, Runs};
    match (a, b) {
        (Bitmap(x), Bitmap(y)) => x.words.iter().zip(&y.words).all(|(p, q)| p & !q == 0),
        (Bitmap(x), Array(y)) => {
            // Canonically |a| >= BITMAP_MIN > |b| and this is instantly
            // false, but stay correct for any operand.
            let mut ok = true;
            'scan: for (i, &w) in x.words.iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    let v = (i * 64) as u16 + w.trailing_zeros() as u16;
                    w &= w - 1;
                    if y.binary_search(&v).is_err() {
                        ok = false;
                        break 'scan;
                    }
                }
            }
            ok
        }
        (Array(x), _) => x.iter().all(|&v| b.contains(v)),
        (Runs(xs), Runs(ys)) => xs.iter().all(|r| {
            let j = ys.partition_point(|s| s.last < r.start);
            j < ys.len() && ys[j].start <= r.start && r.last <= ys[j].last
        }),
        (Runs(xs), Bitmap(y)) => xs
            .iter()
            .all(|r| y.count_range(r.start, r.last) == r.len()),
        (Runs(xs), Array(y)) => {
            // Each run must appear as consecutive array members.
            let mut rest: &[u16] = y;
            for r in xs {
                let lo = rest.partition_point(|&v| v < r.start);
                rest = &rest[lo..];
                if rest.len() < r.len() || rest[0] != r.start || rest[r.len() - 1] != r.last {
                    return false;
                }
                rest = &rest[r.len()..];
            }
            true
        }
        (Bitmap(x), Runs(ys)) => {
            let mut ok = true;
            let mut j = 0usize;
            'scan: for (i, &w) in x.words.iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    let v = (i * 64) as u16 + w.trailing_zeros() as u16;
                    w &= w - 1;
                    while j < ys.len() && ys[j].last < v {
                        j += 1;
                    }
                    if j == ys.len() || ys[j].start > v {
                        ok = false;
                        break 'scan;
                    }
                }
            }
            ok
        }
    }
}

/// Calls `f` for each member of `a ∩ b` in ascending order.
pub(crate) fn for_each_in_intersection(a: &Container, b: &Container, f: &mut dyn FnMut(u16)) {
    use Container::{Array, Bitmap, Runs};
    match (a, b) {
        (Array(x), Array(y)) => array_intersect(x, y, f),
        (Array(x), Bitmap(y)) | (Bitmap(y), Array(x)) => {
            for &v in x {
                if y.contains(v) {
                    f(v);
                }
            }
        }
        (Bitmap(x), Bitmap(y)) => {
            for (i, (p, q)) in x.words.iter().zip(&y.words).enumerate() {
                let mut w = p & q;
                while w != 0 {
                    f((i * 64) as u16 + w.trailing_zeros() as u16);
                    w &= w - 1;
                }
            }
        }
        (Runs(rs), Bitmap(y)) | (Bitmap(y), Runs(rs)) => {
            for r in rs {
                for v in r.start..=r.last {
                    if y.contains(v) {
                        f(v);
                    }
                }
            }
        }
        (Runs(rs), Array(x)) | (Array(x), Runs(rs)) => {
            let mut rest: &[u16] = x;
            for r in rs {
                let lo = rest.partition_point(|&v| v < r.start);
                rest = &rest[lo..];
                let hi = rest.partition_point(|&v| v <= r.last);
                for &v in &rest[..hi] {
                    f(v);
                }
                rest = &rest[hi..];
                if rest.is_empty() {
                    break;
                }
            }
        }
        (Runs(xs), Runs(ys)) => {
            let (mut i, mut j) = (0, 0);
            while i < xs.len() && j < ys.len() {
                let lo = xs[i].start.max(ys[j].start);
                let hi = xs[i].last.min(ys[j].last);
                if lo <= hi {
                    for v in lo..=hi {
                        f(v);
                    }
                }
                if xs[i].last <= ys[j].last {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
}

/// In-place `a ∪= b`, returning the union's container. Consumes `a`
/// by value so representation changes (array→bitmap promotion) need no
/// placeholder swaps.
pub(crate) fn union_into(a: Container, b: &Container) -> Container {
    use Container::{Array, Bitmap, Runs};
    match (a, b) {
        (Bitmap(mut x), Bitmap(y)) => {
            for (p, q) in x.words.iter_mut().zip(&y.words) {
                *p |= q;
            }
            Bitmap(x)
        }
        (Bitmap(mut x), Array(y)) => {
            for &v in y {
                x.set(v);
            }
            Bitmap(x)
        }
        (Bitmap(mut x), Runs(ys)) => {
            for r in ys {
                x.set_range(r.start, r.last);
            }
            Bitmap(x)
        }
        (Array(x), Array(y)) => {
            let mut out = Vec::with_capacity(x.len() + y.len());
            let (mut i, mut j) = (0, 0);
            while i < x.len() && j < y.len() {
                match x[i].cmp(&y[j]) {
                    std::cmp::Ordering::Less => {
                        out.push(x[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.push(y[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        out.push(x[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            out.extend_from_slice(&x[i..]);
            out.extend_from_slice(&y[j..]);
            if out.len() >= BITMAP_MIN {
                Container::from_sorted(&out)
            } else {
                Array(out)
            }
        }
        (a, b) => {
            // Remaining mixed shapes (array∪bitmap, anything∪runs):
            // accumulate through a bitmap, then demote if small.
            let mut bm = match b {
                Bitmap(y) => Box::new((**y).clone()),
                other => {
                    let mut bm = crate::container::Bitmap::empty();
                    other.for_each(|v| {
                        bm.set(v);
                    });
                    bm
                }
            };
            a.for_each(|v| {
                bm.set(v);
            });
            if bm.count() >= BITMAP_MIN {
                Bitmap(bm)
            } else {
                Array(bitmap_to_array(&bm))
            }
        }
    }
}

/// `a \ b` as a fresh canonical container (`None` if empty).
pub(crate) fn difference(a: &Container, b: &Container) -> Option<Container> {
    use Container::{Array, Bitmap};
    let out = match (a, b) {
        (Bitmap(x), Bitmap(y)) => {
            let mut z = Box::new((**x).clone());
            for (p, q) in z.words.iter_mut().zip(&y.words) {
                *p &= !q;
            }
            let card = z.count();
            if card >= BITMAP_MIN {
                Bitmap(z)
            } else {
                Array(bitmap_to_array(&z))
            }
        }
        (Array(x), _) => Array(x.iter().copied().filter(|&v| !b.contains(v)).collect()),
        (a, b) => {
            let mut vals = Vec::new();
            a.for_each(|v| {
                if !b.contains(v) {
                    vals.push(v);
                }
            });
            Container::from_sorted(&vals)
        }
    };
    (out.card() != 0).then_some(out)
}

// ---------------------------------------------------------------------------
// Sorted-u16 array kernels: linear merge vs gallop, dispatched by
// GALLOP_RATIO. Ported from the former sorted-`usize` sparse set, now at
// u16 width so a cache line holds 32 members.
// ---------------------------------------------------------------------------

/// Orders two member slices smaller-first.
#[inline]
fn order_by_len<'a>(a: &'a [u16], b: &'a [u16]) -> (&'a [u16], &'a [u16]) {
    if a.len() <= b.len() {
        (a, b)
    } else {
        (b, a)
    }
}

/// `true` iff the ascending slices occupy non-overlapping value ranges
/// (their intersection is trivially empty). Catches empty operands too.
#[inline]
fn disjoint_ranges(a: &[u16], b: &[u16]) -> bool {
    match (a.first(), a.last(), b.first(), b.last()) {
        (Some(&a_lo), Some(&a_hi), Some(&b_lo), Some(&b_hi)) => a_hi < b_lo || b_hi < a_lo,
        _ => true,
    }
}

/// Intersection walk with the adaptive merge/gallop dispatch.
pub(crate) fn array_intersect(a: &[u16], b: &[u16], f: &mut dyn FnMut(u16)) {
    let (small, large) = order_by_len(a, b);
    if disjoint_ranges(small, large) {
        return;
    }
    if small.len().saturating_mul(GALLOP_RATIO) < large.len() {
        gallop_intersect(small, large, f);
    } else {
        linear_intersect(small, large, f);
    }
}

#[inline]
fn array_intersect_count_dispatch(a: &[u16], b: &[u16]) -> usize {
    let mut n = 0;
    array_intersect(a, b, &mut |_| n += 1);
    n
}

/// `|a ∩ b|` forcing the linear two-pointer merge — the calibration entry
/// point benchmarks sweep against [`array_intersect_count_gallop`] to
/// locate the [`GALLOP_RATIO`] crossover.
pub(crate) fn array_intersect_count_merge(a: &[u16], b: &[u16]) -> usize {
    let (small, large) = order_by_len(a, b);
    if disjoint_ranges(small, large) {
        return 0;
    }
    let mut n = 0;
    linear_intersect(small, large, &mut |_| n += 1);
    n
}

/// `|a ∩ b|` forcing the galloping kernel (see
/// [`array_intersect_count_merge`]).
pub(crate) fn array_intersect_count_gallop(a: &[u16], b: &[u16]) -> usize {
    let (small, large) = order_by_len(a, b);
    if disjoint_ranges(small, large) {
        return 0;
    }
    let mut n = 0;
    gallop_intersect(small, large, &mut |_| n += 1);
    n
}

/// Linear two-pointer merge over comparable-size operands: one
/// branch-predictable pass, O(small + large).
fn linear_intersect(small: &[u16], large: &[u16], f: &mut dyn FnMut(u16)) {
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(small[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping kernel for skewed sizes: for each member of the small side,
/// exponential-probe forward in the (shrinking) tail of the large side,
/// then binary-search the bracketed window. O(small · log(large/small)).
fn gallop_intersect(small: &[u16], large: &[u16], f: &mut dyn FnMut(u16)) {
    let mut rest: &[u16] = large;
    for &v in small {
        let i = gallop_lower_bound(rest, v);
        if i == rest.len() {
            break;
        }
        rest = &rest[i..];
        if rest[0] == v {
            f(v);
            rest = &rest[1..];
            if rest.is_empty() {
                break;
            }
        }
    }
}

/// First index `i` of ascending `items` with `items[i] >= target`
/// (`items.len()` if none), by exponential probing from the front then a
/// binary search of the bracketed window.
#[inline]
fn gallop_lower_bound(items: &[u16], target: u16) -> usize {
    if items.first().is_none_or(|&x| x >= target) {
        return 0;
    }
    let mut hi = 1usize;
    while hi < items.len() && items[hi] < target {
        hi <<= 1;
    }
    let lo = hi >> 1;
    let hi = hi.min(items.len());
    lo + items[lo..hi].partition_point(|&x| x < target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(vals: &[u16]) -> Container {
        Container::Array(vals.to_vec())
    }

    #[test]
    fn run_insert_coalesces_both_sides() {
        let mut rs = vec![Run { start: 3, last: 5 }, Run { start: 7, last: 9 }];
        assert!(runs_insert(&mut rs, 6));
        assert_eq!(rs, vec![Run { start: 3, last: 9 }]);
        assert!(!runs_insert(&mut rs, 4));
        assert!(runs_insert(&mut rs, 11));
        assert_eq!(rs.len(), 2);
        assert!(runs_insert(&mut rs, 10));
        assert_eq!(rs, vec![Run { start: 3, last: 11 }]);
        assert!(runs_insert(&mut rs, 2));
        assert_eq!(rs, vec![Run { start: 2, last: 11 }]);
    }

    #[test]
    fn run_remove_splits_and_shrinks() {
        let mut rs = vec![Run { start: 2, last: 8 }];
        assert!(runs_remove(&mut rs, 5));
        assert_eq!(rs, vec![Run { start: 2, last: 4 }, Run { start: 6, last: 8 }]);
        assert!(runs_remove(&mut rs, 2));
        assert!(runs_remove(&mut rs, 8));
        assert_eq!(rs, vec![Run { start: 3, last: 4 }, Run { start: 6, last: 7 }]);
        assert!(!runs_remove(&mut rs, 5));
        assert!(runs_remove(&mut rs, 3));
        assert!(runs_remove(&mut rs, 4));
        assert_eq!(rs, vec![Run { start: 6, last: 7 }]);
    }

    #[test]
    fn array_promotes_at_bitmap_min_and_demotes_below() {
        let mut c = Container::Array((0..ARRAY_MAX as u16).collect());
        assert!(matches!(c, Container::Array(_)));
        assert!(c.insert(60000));
        assert!(matches!(c, Container::Bitmap(_)), "4096th member promotes");
        assert_eq!(c.card(), BITMAP_MIN);
        let card = c.card();
        assert!(c.remove(60000, card));
        assert!(matches!(c, Container::Array(_)), "dropping to 4095 demotes");
        assert_eq!(c.card(), ARRAY_MAX);
    }

    #[test]
    fn bitmap_count_range_boundaries() {
        let mut bm = Bitmap::empty();
        bm.set_range(60, 70);
        bm.set(65535);
        assert_eq!(bm.count_range(0, 59), 0);
        assert_eq!(bm.count_range(60, 70), 11);
        assert_eq!(bm.count_range(64, 64), 1);
        assert_eq!(bm.count_range(0, 65535), 12);
        assert_eq!(bm.count_range(65535, 65535), 1);
    }

    #[test]
    fn optimize_picks_cheapest_encoding() {
        // One long run: runs win over both array and bitmap.
        let mut c = Container::from_sorted(&(0..5000).collect::<Vec<u16>>());
        assert!(matches!(c, Container::Bitmap(_)));
        c.optimize();
        assert!(matches!(c, Container::Runs(ref rs) if rs.len() == 1));
        assert_eq!(c.card(), 5000);
        // Scattered members: array wins; optimize undoes run encoding.
        let mut sc = Container::Runs(vec![
            Run { start: 0, last: 0 },
            Run { start: 10, last: 10 },
            Run { start: 20, last: 20 },
        ]);
        sc.optimize();
        assert!(matches!(sc, Container::Array(_)));
        assert_eq!(sc.card(), 3);
    }

    #[test]
    fn pairwise_kernels_agree_with_naive() {
        // Three encodings of two member sets; every pair must agree.
        let xs: Vec<u16> = (0..6000).filter(|v| v % 3 == 0).collect();
        let ys: Vec<u16> = (1000..7000).filter(|v| v % 2 == 0).collect();
        let want: Vec<u16> = xs.iter().copied().filter(|v| ys.contains(v)).collect();
        let enc = |vals: &[u16]| {
            let mut run = Container::from_sorted(vals);
            run.optimize();
            vec![
                Container::from_sorted(vals),
                {
                    let mut bm = Bitmap::empty();
                    for &v in vals {
                        bm.set(v);
                    }
                    Container::Bitmap(bm)
                },
                run,
            ]
        };
        for a in enc(&xs) {
            for b in enc(&ys) {
                assert_eq!(intersection_count(&a, &b), want.len());
                assert_eq!(intersects(&a, &b), !want.is_empty());
                let mut got = Vec::new();
                for_each_in_intersection(&a, &b, &mut |v| got.push(v));
                assert_eq!(got, want);
                assert!(!is_subset(&a, &b));
                let u = union_into(a.clone(), &b);
                let mut union_naive: Vec<u16> = xs.iter().chain(&ys).copied().collect();
                union_naive.sort_unstable();
                union_naive.dedup();
                assert_eq!(u.card(), union_naive.len());
                let d = difference(&a, &b).expect("non-empty");
                assert_eq!(d.card(), xs.len() - want.len());
            }
        }
        // Subset holds for want ⊆ xs in every encoding pair.
        for a in enc(&want) {
            for b in enc(&xs) {
                assert!(is_subset(&a, &b));
            }
        }
    }

    #[test]
    fn forced_array_kernels_agree() {
        let a: Vec<u16> = (0..4000).step_by(3).collect();
        let b: Vec<u16> = (0..200).step_by(7).collect();
        let want = array_intersect_count_dispatch(&a, &b);
        assert_eq!(array_intersect_count_merge(&a, &b), want);
        assert_eq!(array_intersect_count_gallop(&a, &b), want);
        assert_eq!(array_intersect_count_merge(&b, &a), want);
        assert_eq!(array_intersect_count_gallop(&b, &a), want);
    }

    #[test]
    fn gallop_lower_bound_brackets_correctly() {
        let items: Vec<u16> = vec![2, 4, 8, 16, 32, 64, 128];
        for target in 0..=130u16 {
            let want = items.partition_point(|&x| x < target);
            assert_eq!(gallop_lower_bound(&items, target), want, "target {target}");
        }
        assert_eq!(gallop_lower_bound(&[], 5), 0);
    }

    #[test]
    fn subset_runs_vs_array_requires_consecutive_members() {
        let rs = Container::Runs(vec![Run { start: 4, last: 6 }]);
        assert!(is_subset(&rs, &arr(&[3, 4, 5, 6, 9])));
        assert!(!is_subset(&rs, &arr(&[4, 6, 9])));
        assert!(!is_subset(&rs, &arr(&[5, 6, 7])));
    }
}
