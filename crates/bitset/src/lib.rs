//! Dense bitsets tuned for the occurrence-set algebra of taxonomy-superimposed
//! graph mining (Taxogram, EDBT 2008).
//!
//! The Taxogram algorithm stores, for every taxonomy label covered by a
//! pattern node, the set of pattern occurrences (embeddings) observed under
//! that label. Support computation for a specialized pattern is then a single
//! set intersection (paper, Lemma 7), so the dominant operations are:
//!
//! * `insert` while occurrence indices are built (Step 2),
//! * `intersection` / `intersection_count` while specialized patterns are
//!   enumerated (Step 3),
//! * iteration over members to count *distinct graphs* (the paper's support
//!   is per-graph, not per-occurrence).
//!
//! Two set types split the work:
//!
//! * [`BitSet`] — a plain `Vec<u64>`-backed fixed-universe bitset for
//!   bounded, mostly-full working sets (the Step-3 recursion state, scratch
//!   marking areas, taxonomy closures). Deliberately minimal — no
//!   compression, no rank/select — because those universes are dense and
//!   short-lived (one pattern class at a time is in memory, mirroring
//!   gSpan's depth-first discipline).
//! * [`AdaptiveBitSet`] — a Roaring-style chunked set whose per-2¹⁶-chunk
//!   containers (sorted array / flat bitmap / run intervals) adapt to
//!   cardinality. Occurrence and candidate sets live here; the fused
//!   `*_dense` kernels bridge the two types without materializing either
//!   side.

// tsg-lint: allow(index) — word indices are bit / 64 within the fixed universe the set was created with

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

mod adaptive;
mod container;

pub use adaptive::AdaptiveBitSet;
pub use container::{ARRAY_MAX, BITMAP_MIN, BITMAP_WORDS, GALLOP_RATIO};

const BITS: usize = u64::BITS as usize;

#[inline]
fn blocks_for(nbits: usize) -> usize {
    nbits.div_ceil(BITS)
}

/// A fixed-universe dense bitset over `0..len()`.
///
/// All binary operations require both operands to share the same universe
/// length; this is asserted in debug builds. Occurrence sets of a single
/// pattern class always share a universe (the class's occurrence count), so
/// the restriction never bites in practice and keeps the hot loops free of
/// bounds juggling.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BitSet {
    blocks: Vec<u64>,
    /// Number of addressable bits (the universe size, *not* the population).
    nbits: usize,
}

impl BitSet {
    /// Creates an empty set over the universe `0..nbits`.
    pub fn new(nbits: usize) -> Self {
        BitSet {
            blocks: vec![0; blocks_for(nbits)],
            nbits,
        }
    }

    /// Creates a set over `0..nbits` with every bit set.
    pub fn full(nbits: usize) -> Self {
        let mut s = BitSet {
            blocks: vec![!0u64; blocks_for(nbits)],
            nbits,
        };
        s.trim_tail();
        s
    }

    /// Builds a set from an iterator of members. The universe must be given
    /// explicitly so that sets built from different member lists remain
    /// intersectable.
    pub fn from_iter_with_universe(nbits: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(nbits);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// The universe size (number of addressable bits).
    #[inline]
    pub fn universe(&self) -> usize {
        self.nbits
    }

    /// Clears bits beyond `nbits` in the last block (they must stay zero for
    /// `count_ones`/`is_empty` to be correct).
    #[inline]
    fn trim_tail(&mut self) {
        let rem = self.nbits % BITS;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Inserts `bit`. Returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `bit >= universe()`.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        assert!(bit < self.nbits, "bit {bit} out of universe {}", self.nbits);
        let (b, m) = (bit / BITS, 1u64 << (bit % BITS));
        let fresh = self.blocks[b] & m == 0;
        self.blocks[b] |= m;
        fresh
    }

    /// Removes `bit`. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        if bit >= self.nbits {
            return false;
        }
        let (b, m) = (bit / BITS, 1u64 << (bit % BITS));
        let present = self.blocks[b] & m != 0;
        self.blocks[b] &= !m;
        present
    }

    /// Membership test. Out-of-universe bits are reported absent.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        if bit >= self.nbits {
            return false;
        }
        self.blocks[bit / BITS] & (1u64 << (bit % BITS)) != 0
    }

    /// Population count.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `true` iff no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all members, keeping the universe.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Re-targets this set to an empty set over `0..nbits`, reusing the
    /// block allocation. Equivalent to `*self = BitSet::new(nbits)` but
    /// allocation-free once the set has grown to its high-water universe —
    /// the primitive behind per-worker bitset pools.
    pub fn reset(&mut self, nbits: usize) {
        self.blocks.clear();
        self.blocks.resize(blocks_for(nbits), 0);
        self.nbits = nbits;
    }

    #[inline]
    fn check_same_universe(&self, other: &BitSet) {
        debug_assert_eq!(
            self.nbits, other.nbits,
            "bitset universe mismatch: {} vs {}",
            self.nbits, other.nbits
        );
    }

    /// `self ∩ other` as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        self.check_same_universe(other);
        BitSet {
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a & b)
                .collect(),
            nbits: self.nbits,
        }
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &BitSet) -> BitSet {
        self.check_same_universe(other);
        BitSet {
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a | b)
                .collect(),
            nbits: self.nbits,
        }
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        self.check_same_universe(other);
        BitSet {
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a & !b)
                .collect(),
            nbits: self.nbits,
        }
    }

    /// In-place `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `|self ∩ other|` without materializing the intersection.
    ///
    /// This is the hot operation of Taxogram's Step 3: every candidate
    /// specialization costs exactly one of these.
    #[inline]
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.check_same_universe(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `true` iff `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.check_same_universe(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` iff the sets share at least one member.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.check_same_universe(other);
        self.blocks.iter().zip(&other.blocks).any(|(a, b)| a & b != 0)
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> Ones<'_> {
        Ones {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Calls `f` for each member of `self ∩ other` in ascending order,
    /// without allocating.
    pub fn for_each_in_intersection(&self, other: &BitSet, mut f: impl FnMut(usize)) {
        self.check_same_universe(other);
        for (i, (a, b)) in self.blocks.iter().zip(&other.blocks).enumerate() {
            let mut w = a & b;
            while w != 0 {
                let t = w.trailing_zeros() as usize;
                f(i * BITS + t);
                w &= w - 1;
            }
        }
    }

    /// Collects the members into a vector (mostly for tests and display).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Ascending iterator over the members of a [`BitSet`].
pub struct Ones<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let t = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.block_idx * BITS + t)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Ones<'a>;
    fn into_iter(self) -> Ones<'a> {
        self.iter()
    }
}

/// Counts the distinct values of `map[occ]` over the members `occ` of
/// `set`, using `scratch` (cleared on entry) as the marking area.
///
/// Taxogram's support is the number of distinct **graphs** containing an
/// occurrence, while occurrence sets index **embeddings**; `map` is the
/// embedding→graph projection maintained per pattern class.
///
/// # Panics
/// Panics if some member of `set` is out of bounds of `map`, or some mapped
/// value is out of `scratch`'s universe.
pub fn distinct_mapped_count(set: &BitSet, map: &[u32], scratch: &mut BitSet) -> usize {
    scratch.clear();
    let mut n = 0;
    for occ in set.iter() {
        if scratch.insert(map[occ] as usize) {
            n += 1;
        }
    }
    n
}

/// Like [`distinct_mapped_count`] but over `a ∩ b` without materializing it.
///
/// Fast path: `scratch` is only cleared once the first common member is
/// found, so a disjoint pair costs one AND sweep and never touches the
/// scratch bitset. Empty intersections dominate deep in Step 3's
/// specialization recursion (most candidate children cover none of the
/// surviving occurrences), which makes the skipped `O(universe/64)` clear
/// measurable.
pub fn distinct_mapped_intersection_count(
    a: &BitSet,
    b: &BitSet,
    map: &[u32],
    scratch: &mut BitSet,
) -> usize {
    let mut n = 0;
    let mut started = false;
    a.for_each_in_intersection(b, |occ| {
        if !started {
            scratch.clear();
            started = true;
        }
        if scratch.insert(map[occ] as usize) {
            n += 1;
        }
    });
    n
}

/// Counts the distinct values of `map[v]` over the members `v` of
/// `set ∩ dense`, without materializing the intersection — the fused
/// adaptive-operand form of [`distinct_mapped_intersection_count`], and the
/// exact shape of Taxogram's Lemma 7 support computation (candidate
/// occurrence sets are adaptive, the recursion's working set is dense, and
/// support is per *graph*, via the embedding→graph projection `map`).
///
/// The same empty-AND fast path applies: `scratch` is untouched until the
/// first common member. Bitmap chunks AND word-parallel against the dense
/// operand's blocks; array and run chunks probe per member.
pub fn adaptive_dense_distinct_mapped_count(
    set: &AdaptiveBitSet,
    dense: &BitSet,
    map: &[u32],
    scratch: &mut BitSet,
) -> usize {
    let mut n = 0;
    let mut started = false;
    set.for_each_in_intersection_dense(dense, |v| {
        if !started {
            scratch.clear();
            started = true;
        }
        if scratch.insert(map[v] as usize) {
            n += 1;
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_set_has_no_members() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.to_vec(), Vec::<usize>::new());
        assert!(!s.contains(0));
        assert!(!s.contains(99));
        assert!(!s.contains(1000));
    }

    #[test]
    fn zero_universe_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.universe(), 0);
        assert_eq!(s.iter().count(), 0);
        let t = BitSet::full(0);
        assert!(t.is_empty());
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports not-fresh");
        assert_eq!(s.count_ones(), 4);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 129]);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.remove(500), "out-of-universe remove is a no-op");
        assert_eq!(s.to_vec(), vec![0, 63, 129]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn full_respects_universe_boundary() {
        let s = BitSet::full(70);
        assert_eq!(s.count_ones(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        // Exactly block-aligned universe.
        let t = BitSet::full(128);
        assert_eq!(t.count_ones(), 128);
    }

    #[test]
    fn intersection_count_matches_materialized() {
        let a = BitSet::from_iter_with_universe(200, [1, 5, 64, 65, 127, 199]);
        let b = BitSet::from_iter_with_universe(200, [5, 64, 100, 199]);
        assert_eq!(a.intersection_count(&b), 3);
        assert_eq!(a.intersection(&b).to_vec(), vec![5, 64, 199]);
    }

    #[test]
    fn set_algebra_small() {
        let a = BitSet::from_iter_with_universe(10, [1, 2, 3]);
        let b = BitSet::from_iter_with_universe(10, [3, 4]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 2]);
        assert!(!a.is_subset(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersects(&b));
        let c = BitSet::from_iter_with_universe(10, [7]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn in_place_ops_match_functional_ones() {
        let a = BitSet::from_iter_with_universe(300, [0, 100, 200, 299]);
        let b = BitSet::from_iter_with_universe(300, [100, 299]);
        let mut c = a.clone();
        c.intersect_with(&b);
        assert_eq!(c, a.intersection(&b));
        let mut d = a.clone();
        d.union_with(&b);
        assert_eq!(d, a.union(&b));
    }

    #[test]
    fn for_each_in_intersection_visits_ascending() {
        let a = BitSet::from_iter_with_universe(150, [3, 70, 149]);
        let b = BitSet::from_iter_with_universe(150, [3, 71, 149]);
        let mut seen = vec![];
        a.for_each_in_intersection(&b, |i| seen.push(i));
        assert_eq!(seen, vec![3, 149]);
    }

    #[test]
    fn distinct_mapped_count_counts_graphs_not_occurrences() {
        // Occurrences 0..6 live in graphs [0,0,1,1,2,2].
        let map = [0u32, 0, 1, 1, 2, 2];
        let set = BitSet::from_iter_with_universe(6, [0, 1, 2]);
        let mut scratch = BitSet::new(3);
        assert_eq!(distinct_mapped_count(&set, &map, &mut scratch), 2);
        let other = BitSet::from_iter_with_universe(6, [1, 5]);
        assert_eq!(
            distinct_mapped_intersection_count(&set, &other, &map, &mut scratch),
            1
        );
    }

    #[test]
    fn reset_retargets_universe_in_place() {
        let mut s = BitSet::from_iter_with_universe(200, [0, 64, 199]);
        s.reset(70);
        assert!(s.is_empty());
        assert_eq!(s.universe(), 70);
        assert!(s.insert(69));
        assert!(!s.contains(64 + 64), "old blocks truncated");
        s.reset(300);
        assert!(s.is_empty());
        assert!(s.insert(299));
        assert_eq!(s.to_vec(), vec![299]);
        s.reset(0);
        assert_eq!(s.universe(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn empty_intersection_leaves_scratch_untouched() {
        // The fast path must not clear scratch when the AND is empty —
        // and must still return correct counts despite a dirty scratch.
        let a = BitSet::from_iter_with_universe(128, [0, 2]);
        let b = BitSet::from_iter_with_universe(128, [1, 3]);
        let map = vec![0u32; 128];
        let mut scratch = BitSet::from_iter_with_universe(4, [1, 2]);
        assert_eq!(distinct_mapped_intersection_count(&a, &b, &map, &mut scratch), 0);
        assert_eq!(scratch.to_vec(), vec![1, 2], "scratch untouched on empty AND");
        let sa: AdaptiveBitSet = [0usize, 2].iter().copied().collect();
        assert_eq!(adaptive_dense_distinct_mapped_count(&sa, &b, &map, &mut scratch), 0);
        assert_eq!(scratch.to_vec(), vec![1, 2]);
        // Non-empty AND with a dirty scratch still counts correctly.
        let c = BitSet::from_iter_with_universe(128, [2, 3]);
        assert_eq!(distinct_mapped_intersection_count(&a, &c, &map, &mut scratch), 1);
        let mut dirty = BitSet::from_iter_with_universe(4, [0]);
        assert_eq!(adaptive_dense_distinct_mapped_count(&sa, &c, &map, &mut dirty), 1);
    }

    #[test]
    fn adaptive_dense_distinct_mapped_count_basic() {
        // Occurrences 0..6 in graphs [0,0,1,1,2,2].
        let map = [0u32, 0, 1, 1, 2, 2];
        let sparse: AdaptiveBitSet = [0usize, 1, 4].iter().copied().collect();
        let dense = BitSet::from_iter_with_universe(6, [1, 4, 5]);
        let mut scratch = BitSet::new(3);
        // Intersection {1, 4} → graphs {0, 2}.
        assert_eq!(
            adaptive_dense_distinct_mapped_count(&sparse, &dense, &map, &mut scratch),
            2
        );
    }

    #[test]
    fn extend_collects_members() {
        let mut s = BitSet::new(8);
        s.extend([1usize, 3, 5]);
        assert_eq!(s.to_vec(), vec![1, 3, 5]);
    }

    #[test]
    fn debug_formats_as_set() {
        let s = BitSet::from_iter_with_universe(8, [1, 3]);
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }

    fn model_and_bits(universe: usize) -> impl Strategy<Value = (BTreeSet<usize>, BitSet)> {
        prop::collection::btree_set(0..universe, 0..universe).prop_map(move |m| {
            let b = BitSet::from_iter_with_universe(universe, m.iter().copied());
            (m, b)
        })
    }

    proptest! {
        #[test]
        fn prop_matches_btreeset_model(
            (ma, a) in model_and_bits(257),
            (mb, b) in model_and_bits(257),
        ) {
            prop_assert_eq!(a.count_ones(), ma.len());
            prop_assert_eq!(a.to_vec(), ma.iter().copied().collect::<Vec<_>>());
            let inter: Vec<_> = ma.intersection(&mb).copied().collect();
            prop_assert_eq!(a.intersection(&b).to_vec(), inter.clone());
            prop_assert_eq!(a.intersection_count(&b), inter.len());
            let uni: Vec<_> = ma.union(&mb).copied().collect();
            prop_assert_eq!(a.union(&b).to_vec(), uni);
            let diff: Vec<_> = ma.difference(&mb).copied().collect();
            prop_assert_eq!(a.difference(&b).to_vec(), diff);
            prop_assert_eq!(a.is_subset(&b), ma.is_subset(&mb));
            prop_assert_eq!(a.intersects(&b), !ma.is_disjoint(&mb));
        }

        #[test]
        fn prop_intersection_is_commutative_and_idempotent(
            (_, a) in model_and_bits(200),
            (_, b) in model_and_bits(200),
        ) {
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
            prop_assert_eq!(a.intersection(&a), a.clone());
        }

        #[test]
        fn prop_for_each_in_intersection_agrees(
            (_, a) in model_and_bits(130),
            (_, b) in model_and_bits(130),
        ) {
            let mut got = vec![];
            a.for_each_in_intersection(&b, |i| got.push(i));
            prop_assert_eq!(got, a.intersection(&b).to_vec());
        }

        #[test]
        fn prop_fused_distinct_mapped_kernels_match_materialized(
            (ma, a) in model_and_bits(193),
            (_, b) in model_and_bits(193),
            graphs in 1usize..12,
        ) {
            // map[occ] = occ % graphs models the embedding→graph projection.
            let map: Vec<u32> = (0..193u32).map(|o| o % graphs as u32).collect();
            let inter = a.intersection(&b);
            let want = {
                let mut scratch = BitSet::new(graphs);
                distinct_mapped_count(&inter, &map, &mut scratch)
            };
            let mut scratch = BitSet::full(graphs); // deliberately dirty
            prop_assert_eq!(
                distinct_mapped_intersection_count(&a, &b, &map, &mut scratch),
                want
            );
            let sa: AdaptiveBitSet = ma.iter().copied().collect();
            let mut scratch2 = BitSet::full(graphs); // deliberately dirty
            prop_assert_eq!(
                adaptive_dense_distinct_mapped_count(&sa, &b, &map, &mut scratch2),
                want
            );
        }
    }
}
