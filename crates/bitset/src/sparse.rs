//! A sorted-vector sparse set with the same intersection API as [`BitSet`].
//!
//! The paper motivates dense bitsets for occurrence sets ("to minimize
//! storage requirements, and allow for efficient set intersection …
//! Taxogram implements occurrence sets as bit sets"). This sparse
//! alternative exists so the benchmark suite can quantify that choice
//! (ablation `occset-repr`): on sparse occurrence sets over huge occurrence
//! universes the sorted-vec representation wins on memory, on dense ones the
//! bitset wins on intersection throughput.

use crate::BitSet;

/// A set of `usize` kept as a sorted, deduplicated vector.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct SparseBitSet {
    items: Vec<usize>,
}

impl SparseBitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SparseBitSet { items: Vec::new() }
    }

    /// Builds a set from arbitrary (unsorted, possibly duplicated) members.
    pub fn from_members(mut items: Vec<usize>) -> Self {
        items.sort_unstable();
        items.dedup();
        SparseBitSet { items }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts a member; returns `true` if it was not already present.
    pub fn insert(&mut self, v: usize) -> bool {
        match self.items.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, v);
                true
            }
        }
    }

    /// Appends a member known to be `>` every current member (O(1)).
    ///
    /// Occurrence ids are assigned in ascending order during index
    /// construction, so this is the common insertion path.
    ///
    /// # Panics
    /// Panics in debug builds if the ordering precondition is violated.
    pub fn push_ascending(&mut self, v: usize) {
        debug_assert!(self.items.last().is_none_or(|&l| l < v));
        self.items.push(v);
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: usize) -> bool {
        self.items.binary_search(&v).is_ok()
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.items.iter().copied()
    }

    /// `self ∩ other` by linear merge.
    pub fn intersection(&self, other: &SparseBitSet) -> SparseBitSet {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        self.merge_intersect(other, |v| out.push(v));
        SparseBitSet { items: out }
    }

    /// `|self ∩ other|` without materializing. Adaptive: dispatches to
    /// the linear merge or the galloping kernel by size ratio (see
    /// [`GALLOP_RATIO`](Self::GALLOP_RATIO)).
    pub fn intersection_count(&self, other: &SparseBitSet) -> usize {
        let mut n = 0;
        self.merge_intersect(other, |_| n += 1);
        n
    }

    /// `|self ∩ other|` forcing the linear two-pointer merge, bypassing
    /// the adaptive dispatch. Calibration entry point: benchmarks sweep
    /// the size ratio over this and [`intersection_count_gallop`] to
    /// locate the crossover that [`GALLOP_RATIO`](Self::GALLOP_RATIO)
    /// encodes; call sites that *know* their operands are comparable in
    /// size (e.g. sibling occurrence sets under one parent label) can
    /// also use it to skip the dispatch branch.
    ///
    /// [`intersection_count_gallop`]: Self::intersection_count_gallop
    pub fn intersection_count_merge(&self, other: &SparseBitSet) -> usize {
        let (small, large) = order_by_len(&self.items, &other.items);
        if disjoint_ranges(small, large) {
            return 0;
        }
        let mut n = 0;
        linear_intersect(small, large, |_| n += 1);
        n
    }

    /// `|self ∩ other|` forcing the galloping kernel, bypassing the
    /// adaptive dispatch. See [`intersection_count_merge`] for when to
    /// prefer a forced kernel; this one fits call sites whose operands
    /// are reliably skewed (a rare child label probed against its
    /// parent's big occurrence set).
    ///
    /// [`intersection_count_merge`]: Self::intersection_count_merge
    pub fn intersection_count_gallop(&self, other: &SparseBitSet) -> usize {
        let (small, large) = order_by_len(&self.items, &other.items);
        if disjoint_ranges(small, large) {
            return 0;
        }
        let mut n = 0;
        gallop_intersect(small, large, |_| n += 1);
        n
    }

    /// Calls `f` on each member of the intersection, ascending.
    pub fn for_each_in_intersection(&self, other: &SparseBitSet, f: impl FnMut(usize)) {
        self.merge_intersect(other, f);
    }

    /// Size ratio beyond which the merge switches from the linear two-
    /// pointer walk to galloping the smaller operand over the larger one.
    /// Below it the linear walk's branch-predictable loop wins; above it
    /// `O(small · log large)` with exponential probing wins. 16 is the
    /// usual crossover for sorted-list intersection and matches what the
    /// `gallop_crossover` microbenchmarks show here.
    const GALLOP_RATIO: usize = 16;

    fn merge_intersect(&self, other: &SparseBitSet, f: impl FnMut(usize)) {
        let (small, large) = order_by_len(&self.items, &other.items);
        if disjoint_ranges(small, large) {
            // The ranges don't even overlap — common when occurrence ids
            // cluster by graph and two labels never co-occur in one
            // graph. Two comparisons beat walking either operand.
            return;
        }
        if small.len().saturating_mul(Self::GALLOP_RATIO) < large.len() {
            gallop_intersect(small, large, f);
        } else {
            linear_intersect(small, large, f);
        }
    }

    /// `|self ∩ dense|` without materializing either the intersection or a
    /// dense copy of `self`: one O(1) word probe per sparse member.
    ///
    /// Members of `self` outside `dense`'s universe count as absent, so a
    /// sparse set may safely be probed against the (smaller) universe of a
    /// working set.
    #[inline]
    pub fn intersection_count_dense(&self, dense: &BitSet) -> usize {
        self.items.iter().filter(|&&v| dense.contains(v)).count()
    }

    /// Writes `self ∩ dense` into `out`, reusing `out`'s allocation: `out`
    /// is reset to `dense`'s universe first. Returns the intersection
    /// cardinality.
    ///
    /// This is the materializing sibling of [`intersection_count_dense`],
    /// used when the intersection becomes the next level's working set —
    /// with a pooled `out`, the hot loop allocates nothing.
    ///
    /// [`intersection_count_dense`]: SparseBitSet::intersection_count_dense
    pub fn intersect_into_dense(&self, dense: &BitSet, out: &mut BitSet) -> usize {
        out.reset(dense.universe());
        let mut n = 0;
        for v in self.iter() {
            if dense.contains(v) {
                out.insert(v);
                n += 1;
            }
        }
        n
    }

    /// Converts to a dense [`BitSet`] over the given universe.
    pub fn to_dense(&self, universe: usize) -> BitSet {
        BitSet::from_iter_with_universe(universe, self.iter())
    }

    /// Approximate heap footprint in bytes (for the memory-budget accounting
    /// used to reproduce the paper's out-of-memory observations).
    pub fn heap_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<usize>()
    }
}

/// Orders two member slices smaller-first.
#[inline]
fn order_by_len<'a>(a: &'a [usize], b: &'a [usize]) -> (&'a [usize], &'a [usize]) {
    if a.len() <= b.len() {
        (a, b)
    } else {
        (b, a)
    }
}

/// `true` iff the (ascending) slices occupy non-overlapping value ranges,
/// in which case their intersection is trivially empty. Also catches
/// either side being empty.
#[inline]
fn disjoint_ranges(a: &[usize], b: &[usize]) -> bool {
    match (a.first(), a.last(), b.first(), b.last()) {
        (Some(&a_lo), Some(&a_hi), Some(&b_lo), Some(&b_hi)) => a_hi < b_lo || b_hi < a_lo,
        _ => true,
    }
}

/// Linear two-pointer merge over comparable-size operands: one
/// branch-predictable pass, O(small + large).
fn linear_intersect(small: &[usize], large: &[usize], mut f: impl FnMut(usize)) {
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(small[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping kernel for skewed sizes: for each member of the small side,
/// exponential-probe forward in the (shrinking) tail of the large side,
/// then binary-search the bracketed window. Total cost
/// O(small · log(large/small)) instead of O(small + large).
fn gallop_intersect(small: &[usize], large: &[usize], mut f: impl FnMut(usize)) {
    let mut rest: &[usize] = large;
    for &v in small {
        let i = gallop_lower_bound(rest, v);
        if i == rest.len() {
            break; // everything left in `large` is < v ≤ later v's
        }
        rest = &rest[i..];
        if rest[0] == v {
            f(v);
            rest = &rest[1..];
            if rest.is_empty() {
                break;
            }
        }
    }
}

/// First index `i` of ascending `items` with `items[i] >= target`
/// (`items.len()` if none), found by exponential probing from the front
/// followed by a binary search of the bracketed window.
#[inline]
fn gallop_lower_bound(items: &[usize], target: usize) -> usize {
    if items.first().is_none_or(|&x| x >= target) {
        return 0;
    }
    // Invariant: items[hi/2] < target (checked), probe items[hi].
    let mut hi = 1usize;
    while hi < items.len() && items[hi] < target {
        hi <<= 1;
    }
    let lo = hi >> 1;
    let hi = hi.min(items.len());
    lo + items[lo..hi].partition_point(|&x| x < target)
}

impl FromIterator<usize> for SparseBitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        SparseBitSet::from_members(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_members_sorts_and_dedups() {
        let s = SparseBitSet::from_members(vec![5, 1, 5, 3, 1]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn insert_keeps_order() {
        let mut s = SparseBitSet::new();
        assert!(s.insert(10));
        assert!(s.insert(2));
        assert!(!s.insert(10));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 10]);
        assert!(s.contains(2) && s.contains(10) && !s.contains(3));
    }

    #[test]
    fn push_ascending_appends() {
        let mut s = SparseBitSet::new();
        s.push_ascending(1);
        s.push_ascending(4);
        s.push_ascending(9);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    fn intersection_by_merge() {
        let a = SparseBitSet::from_members(vec![1, 3, 5, 7]);
        let b = SparseBitSet::from_members(vec![3, 4, 7, 8]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(a.intersection_count(&b), 2);
    }

    #[test]
    fn to_dense_roundtrip() {
        let s = SparseBitSet::from_members(vec![0, 64, 100]);
        let d = s.to_dense(128);
        assert_eq!(d.to_vec(), vec![0, 64, 100]);
    }

    #[test]
    fn gallop_lower_bound_brackets_correctly() {
        let items = [2usize, 4, 8, 16, 32, 64, 128];
        for target in 0..=130 {
            let want = items.partition_point(|&x| x < target);
            assert_eq!(gallop_lower_bound(&items, target), want, "target {target}");
        }
        assert_eq!(gallop_lower_bound(&[], 5), 0);
    }

    #[test]
    fn skewed_intersection_uses_gallop_path_and_agrees() {
        // Small side far below 1/16 of the large side → galloping path.
        let small = SparseBitSet::from_members(vec![0, 500, 999, 5000, 9999]);
        let large: SparseBitSet = (0..10_000).filter(|v| v % 3 == 0).collect();
        let want: Vec<usize> = small.iter().filter(|&v| v % 3 == 0).collect();
        assert_eq!(small.intersection(&large).iter().collect::<Vec<_>>(), want);
        assert_eq!(large.intersection(&small).iter().collect::<Vec<_>>(), want);
        assert_eq!(small.intersection_count(&large), want.len());
        // Disjoint skewed pair.
        let off: SparseBitSet = [1usize, 4, 10].iter().copied().collect();
        let evens: SparseBitSet = (0..2000).map(|v| v * 3).collect();
        assert_eq!(off.intersection_count(&evens), 0);
    }

    #[test]
    fn disjoint_ranges_short_circuit_to_zero() {
        let lo = SparseBitSet::from_members((0..100).collect());
        let hi = SparseBitSet::from_members((1000..1100).collect());
        assert_eq!(lo.intersection_count(&hi), 0);
        assert_eq!(hi.intersection_count(&lo), 0);
        assert_eq!(lo.intersection_count_merge(&hi), 0);
        assert_eq!(lo.intersection_count_gallop(&hi), 0);
        assert!(lo.intersection(&hi).is_empty());
        // Touching boundaries are NOT disjoint.
        let touch = SparseBitSet::from_members(vec![99, 1000]);
        assert_eq!(lo.intersection_count(&touch), 1);
        // Empty operands.
        let empty = SparseBitSet::new();
        assert_eq!(lo.intersection_count(&empty), 0);
        assert_eq!(empty.intersection_count_merge(&empty), 0);
        assert_eq!(empty.intersection_count_gallop(&lo), 0);
    }

    #[test]
    fn forced_kernels_match_adaptive_on_comparable_sizes() {
        let a: SparseBitSet = (0..300).filter(|v| v % 2 == 0).collect();
        let b: SparseBitSet = (0..300).filter(|v| v % 3 == 0).collect();
        let want = a.intersection_count(&b);
        assert_eq!(a.intersection_count_merge(&b), want);
        assert_eq!(a.intersection_count_gallop(&b), want);
    }

    #[test]
    fn intersection_count_dense_matches_materialized() {
        let sparse = SparseBitSet::from_members(vec![0, 63, 64, 65, 127, 128, 199]);
        let dense = BitSet::from_iter_with_universe(200, [63, 64, 100, 199]);
        let materialized = sparse.to_dense(200).intersection(&dense);
        assert_eq!(
            sparse.intersection_count_dense(&dense),
            materialized.count_ones()
        );
        // Out-of-universe sparse members count as absent.
        let wide = SparseBitSet::from_members(vec![5, 1000]);
        let narrow = BitSet::from_iter_with_universe(10, [5]);
        assert_eq!(wide.intersection_count_dense(&narrow), 1);
    }

    #[test]
    fn intersect_into_dense_reuses_allocation() {
        let sparse = SparseBitSet::from_members(vec![1, 64, 65, 130]);
        let dense = BitSet::from_iter_with_universe(131, [64, 130]);
        let mut out = BitSet::new(7); // wrong universe on purpose
        let n = sparse.intersect_into_dense(&dense, &mut out);
        assert_eq!(n, 2);
        assert_eq!(out.universe(), 131);
        assert_eq!(out.to_vec(), vec![64, 130]);
        // Reuse with a now-smaller universe stays correct.
        let dense2 = BitSet::from_iter_with_universe(3, [1]);
        let n2 = sparse.intersect_into_dense(&dense2, &mut out);
        assert_eq!(n2, 1);
        assert_eq!(out.to_vec(), vec![1]);
    }

    proptest! {
        #[test]
        fn prop_matches_model(
            ma in prop::collection::btree_set(0usize..500, 0..64),
            mb in prop::collection::btree_set(0usize..500, 0..64),
        ) {
            let a: SparseBitSet = ma.iter().copied().collect();
            let b: SparseBitSet = mb.iter().copied().collect();
            let want: Vec<_> = ma.intersection(&mb).copied().collect();
            prop_assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), want.clone());
            prop_assert_eq!(a.intersection_count(&b), want.len());
            prop_assert_eq!(a.len(), ma.len());
            // Dense/sparse agreement on a shared universe.
            let da = a.to_dense(500);
            let db = b.to_dense(500);
            prop_assert_eq!(da.intersection(&db).to_vec(), want);
        }

        #[test]
        fn prop_sparse_dense_kernels_match_materialized(
            // Universes straddling word boundaries (63/64/65, 127/128/129)
            // plus the empty universe.
            universe in prop::sample::select(vec![0usize, 1, 63, 64, 65, 127, 128, 129, 320]),
            seed_a in prop::collection::btree_set(0usize..512, 0..96),
            seed_b in prop::collection::btree_set(0usize..512, 0..96),
        ) {
            // Sparse side may exceed the dense universe; dense side cannot.
            let sparse: SparseBitSet = seed_a.iter().copied().collect();
            let dense = BitSet::from_iter_with_universe(
                universe,
                seed_b.iter().copied().filter(|&v| v < universe),
            );
            let materialized = sparse
                .iter()
                .filter(|&v| v < universe)
                .collect::<SparseBitSet>()
                .to_dense(universe)
                .intersection(&dense);
            prop_assert_eq!(
                sparse.intersection_count_dense(&dense),
                materialized.count_ones()
            );
            let mut out = BitSet::new(0);
            let n = sparse.intersect_into_dense(&dense, &mut out);
            prop_assert_eq!(n, materialized.count_ones());
            prop_assert_eq!(out.to_vec(), materialized.to_vec());
            // Full dense set: kernel degenerates to in-universe membership.
            let full = BitSet::full(universe);
            prop_assert_eq!(
                sparse.intersection_count_dense(&full),
                sparse.iter().filter(|&v| v < universe).count()
            );
        }

        #[test]
        fn prop_gallop_and_linear_merges_agree(
            small in prop::collection::btree_set(0usize..4096, 0..8),
            large in prop::collection::btree_set(0usize..4096, 200..400),
        ) {
            // Size skew forces the galloping path on one operand order;
            // the other order exercises the same dispatch symmetrically.
            let a: SparseBitSet = small.iter().copied().collect();
            let b: SparseBitSet = large.iter().copied().collect();
            let want: Vec<usize> = small.intersection(&large).copied().collect();
            prop_assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), want.clone());
            prop_assert_eq!(b.intersection(&a).iter().collect::<Vec<_>>(), want.clone());
            prop_assert_eq!(a.intersection_count(&b), want.len());
            prop_assert_eq!(b.intersection_count(&a), want.len());
            // Forced kernels agree with the adaptive dispatch on any
            // skew, in either operand order.
            prop_assert_eq!(a.intersection_count_merge(&b), want.len());
            prop_assert_eq!(b.intersection_count_merge(&a), want.len());
            prop_assert_eq!(a.intersection_count_gallop(&b), want.len());
            prop_assert_eq!(b.intersection_count_gallop(&a), want.len());
        }
    }
}

#[cfg(test)]
mod model_eq {
    use super::*;

    #[test]
    fn dense_and_sparse_agree_on_edge_universe() {
        let members = [0usize, 63, 64, 127, 128];
        let s: SparseBitSet = members.iter().copied().collect();
        let d = s.to_dense(129);
        assert_eq!(d.count_ones(), s.len());
        for m in members {
            assert!(d.contains(m));
            assert!(s.contains(m));
        }
    }
}
