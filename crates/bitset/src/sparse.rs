//! A sorted-vector sparse set with the same intersection API as [`BitSet`].
//!
//! The paper motivates dense bitsets for occurrence sets ("to minimize
//! storage requirements, and allow for efficient set intersection …
//! Taxogram implements occurrence sets as bit sets"). This sparse
//! alternative exists so the benchmark suite can quantify that choice
//! (ablation `occset-repr`): on sparse occurrence sets over huge occurrence
//! universes the sorted-vec representation wins on memory, on dense ones the
//! bitset wins on intersection throughput.

use crate::BitSet;

/// A set of `usize` kept as a sorted, deduplicated vector.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct SparseBitSet {
    items: Vec<usize>,
}

impl SparseBitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SparseBitSet { items: Vec::new() }
    }

    /// Builds a set from arbitrary (unsorted, possibly duplicated) members.
    pub fn from_members(mut items: Vec<usize>) -> Self {
        items.sort_unstable();
        items.dedup();
        SparseBitSet { items }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts a member; returns `true` if it was not already present.
    pub fn insert(&mut self, v: usize) -> bool {
        match self.items.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, v);
                true
            }
        }
    }

    /// Appends a member known to be `>` every current member (O(1)).
    ///
    /// Occurrence ids are assigned in ascending order during index
    /// construction, so this is the common insertion path.
    ///
    /// # Panics
    /// Panics in debug builds if the ordering precondition is violated.
    pub fn push_ascending(&mut self, v: usize) {
        debug_assert!(self.items.last().is_none_or(|&l| l < v));
        self.items.push(v);
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: usize) -> bool {
        self.items.binary_search(&v).is_ok()
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.items.iter().copied()
    }

    /// `self ∩ other` by linear merge.
    pub fn intersection(&self, other: &SparseBitSet) -> SparseBitSet {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        self.merge_intersect(other, |v| out.push(v));
        SparseBitSet { items: out }
    }

    /// `|self ∩ other|` without materializing.
    pub fn intersection_count(&self, other: &SparseBitSet) -> usize {
        let mut n = 0;
        self.merge_intersect(other, |_| n += 1);
        n
    }

    /// Calls `f` on each member of the intersection, ascending.
    pub fn for_each_in_intersection(&self, other: &SparseBitSet, f: impl FnMut(usize)) {
        self.merge_intersect(other, f);
    }

    fn merge_intersect(&self, other: &SparseBitSet, mut f: impl FnMut(usize)) {
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    f(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Converts to a dense [`BitSet`] over the given universe.
    pub fn to_dense(&self, universe: usize) -> BitSet {
        BitSet::from_iter_with_universe(universe, self.iter())
    }

    /// Approximate heap footprint in bytes (for the memory-budget accounting
    /// used to reproduce the paper's out-of-memory observations).
    pub fn heap_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<usize>()
    }
}

impl FromIterator<usize> for SparseBitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        SparseBitSet::from_members(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_members_sorts_and_dedups() {
        let s = SparseBitSet::from_members(vec![5, 1, 5, 3, 1]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn insert_keeps_order() {
        let mut s = SparseBitSet::new();
        assert!(s.insert(10));
        assert!(s.insert(2));
        assert!(!s.insert(10));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 10]);
        assert!(s.contains(2) && s.contains(10) && !s.contains(3));
    }

    #[test]
    fn push_ascending_appends() {
        let mut s = SparseBitSet::new();
        s.push_ascending(1);
        s.push_ascending(4);
        s.push_ascending(9);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    fn intersection_by_merge() {
        let a = SparseBitSet::from_members(vec![1, 3, 5, 7]);
        let b = SparseBitSet::from_members(vec![3, 4, 7, 8]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(a.intersection_count(&b), 2);
    }

    #[test]
    fn to_dense_roundtrip() {
        let s = SparseBitSet::from_members(vec![0, 64, 100]);
        let d = s.to_dense(128);
        assert_eq!(d.to_vec(), vec![0, 64, 100]);
    }

    proptest! {
        #[test]
        fn prop_matches_model(
            ma in prop::collection::btree_set(0usize..500, 0..64),
            mb in prop::collection::btree_set(0usize..500, 0..64),
        ) {
            let a: SparseBitSet = ma.iter().copied().collect();
            let b: SparseBitSet = mb.iter().copied().collect();
            let want: Vec<_> = ma.intersection(&mb).copied().collect();
            prop_assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), want.clone());
            prop_assert_eq!(a.intersection_count(&b), want.len());
            prop_assert_eq!(a.len(), ma.len());
            // Dense/sparse agreement on a shared universe.
            let da = a.to_dense(500);
            let db = b.to_dense(500);
            prop_assert_eq!(da.intersection(&db).to_vec(), want);
        }
    }
}

#[cfg(test)]
mod model_eq {
    use super::*;

    #[test]
    fn dense_and_sparse_agree_on_edge_universe() {
        let members = [0usize, 63, 64, 127, 128];
        let s: SparseBitSet = members.iter().copied().collect();
        let d = s.to_dense(129);
        assert_eq!(d.count_ones(), s.len());
        for m in members {
            assert!(d.contains(m));
            assert!(s.contains(m));
        }
    }
}
