//! Seeded equivalence suite: [`AdaptiveBitSet`] against reference
//! models — `BTreeSet<usize>` for exact member semantics and the dense
//! [`BitSet`] for the fused interop kernels — over every public
//! operation, including in-place mutation across the array↔bitmap
//! promotion boundary and run-container coalescing/splitting.
//!
//! Member lists and mutation scripts come from the shared
//! [`tsg_testkit::gen`] strategies ([`arb_members`], [`arb_set_ops`]),
//! so the shapes that stress the containers (chunk-edge values, runs
//! straddling the 4096-member promotion threshold) are generated in one
//! canonical place. Deterministic under `PROPTEST_RNG_SEED`, scaled by
//! `PROPTEST_CASES` (CI's deep stage runs 256).

use proptest::prelude::*;
use std::collections::BTreeSet;
use tsg_bitset::{
    adaptive_dense_distinct_mapped_count, AdaptiveBitSet, BitSet, ARRAY_MAX, BITMAP_MIN,
};
use tsg_testkit::gen::{arb_members, arb_set_ops};

/// Two chunks plus a partial third, so chunk-crossing paths run.
const UNIVERSE: usize = 150_000;

fn model_of(members: &[usize]) -> BTreeSet<usize> {
    members.iter().copied().collect()
}

fn assert_matches_model(set: &AdaptiveBitSet, model: &BTreeSet<usize>, ctx: &str) {
    assert_eq!(set.len(), model.len(), "{ctx}: cardinality");
    assert!(
        set.iter().eq(model.iter().copied()),
        "{ctx}: member sequence diverges from model"
    );
}

proptest! {
    #[test]
    fn construction_and_queries_match_model(members in arb_members(UNIVERSE)) {
        let model = model_of(&members);
        let set = AdaptiveBitSet::from_members(members.clone());
        assert_matches_model(&set, &model, "from_members");
        prop_assert_eq!(set.is_empty(), model.is_empty());
        // Probe membership around every member and both chunk edges.
        for &v in model.iter().take(64) {
            prop_assert!(set.contains(v));
            prop_assert_eq!(set.contains(v + 1), model.contains(&(v + 1)));
        }
        prop_assert_eq!(set.contains(UNIVERSE + 5), false);
        // optimize() may re-encode containers but never changes members.
        let mut opt = set.clone();
        opt.optimize();
        assert_matches_model(&opt, &model, "optimize");
        prop_assert_eq!(&opt, &set);
        prop_assert_eq!(set.to_vec(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn pairwise_algebra_matches_model(
        a in arb_members(UNIVERSE),
        b in arb_members(UNIVERSE),
    ) {
        let (ma, mb) = (model_of(&a), model_of(&b));
        let sa = AdaptiveBitSet::from_members(a);
        let mut sb = AdaptiveBitSet::from_members(b);
        sb.optimize(); // one side re-encoded: kernels must not care

        let inter: BTreeSet<usize> = ma.intersection(&mb).copied().collect();
        assert_matches_model(&sa.intersection(&sb), &inter, "intersection");
        prop_assert_eq!(sa.intersection_count(&sb), inter.len());
        prop_assert_eq!(sa.intersection_count_merge(&sb), inter.len());
        prop_assert_eq!(sa.intersection_count_gallop(&sb), inter.len());
        let mut seen = Vec::new();
        sa.for_each_in_intersection(&sb, |v| seen.push(v));
        prop_assert_eq!(seen, inter.iter().copied().collect::<Vec<_>>());

        let union: BTreeSet<usize> = ma.union(&mb).copied().collect();
        let mut su = sa.clone();
        su.union_with(&sb);
        assert_matches_model(&su, &union, "union_with");

        let diff: BTreeSet<usize> = ma.difference(&mb).copied().collect();
        assert_matches_model(&sa.difference(&sb), &diff, "difference");

        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_subset(&su), true);
        prop_assert_eq!(sa.intersects(&sb), !inter.is_empty());
    }

    #[test]
    fn mutation_scripts_match_model(
        seed_members in arb_members(UNIVERSE),
        ops in arb_set_ops(UNIVERSE, 512),
    ) {
        let mut model = model_of(&seed_members);
        let mut set = AdaptiveBitSet::from_members(seed_members);
        for (i, &(insert, v)) in ops.iter().enumerate() {
            if insert {
                prop_assert_eq!(set.insert(v), model.insert(v), "insert {v}");
            } else {
                prop_assert_eq!(set.remove(v), model.remove(&v), "remove {v}");
            }
            // Re-encode mid-script sometimes: later mutations then hit
            // run containers, exercising coalesce/split-in-place.
            if i % 128 == 127 {
                set.optimize();
            }
        }
        assert_matches_model(&set, &model, "after mutation script");
    }

    #[test]
    fn dense_interop_matches_model(
        members in arb_members(UNIVERSE),
        dense_members in arb_members(UNIVERSE),
    ) {
        let model = model_of(&members);
        let dense_model = model_of(&dense_members);
        let set = AdaptiveBitSet::from_members(members);
        let dense = BitSet::from_iter_with_universe(UNIVERSE, dense_members.iter().copied());

        let inter: Vec<usize> = model.intersection(&dense_model).copied().collect();
        prop_assert_eq!(set.intersection_count_dense(&dense), inter.len());
        let mut seen = Vec::new();
        set.for_each_in_intersection_dense(&dense, |v| seen.push(v));
        prop_assert_eq!(&seen, &inter);

        let mut out = BitSet::new(UNIVERSE);
        prop_assert_eq!(set.intersect_into_dense(&dense, &mut out), inter.len());
        prop_assert_eq!(out.to_vec(), inter);

        prop_assert_eq!(
            set.to_dense(UNIVERSE).to_vec(),
            model.iter().copied().collect::<Vec<_>>()
        );

        // The distinct-graph support kernel (Lemma 7's unit of work):
        // distinct map images over the fused intersection.
        let map: Vec<u32> = (0..UNIVERSE as u32).map(|v| v % 509).collect();
        let mut scratch = BitSet::new(509);
        let want: BTreeSet<u32> = inter.iter().map(|&v| map[v]).collect();
        prop_assert_eq!(
            adaptive_dense_distinct_mapped_count(&set, &dense, &map, &mut scratch),
            want.len()
        );
    }
}

/// The 4095↔4096 promotion/demotion boundary, walked exactly: inserts
/// promote the chunk's array to a bitmap at `BITMAP_MIN` members, one
/// removal demotes it back, and membership is model-exact on both sides.
#[test]
fn promotion_boundary_roundtrip_matches_model() {
    let mut model = BTreeSet::new();
    let mut set = AdaptiveBitSet::new();
    // Spread: every 16th value keeps us in one chunk (4096·16 = 65536).
    for i in 0..BITMAP_MIN {
        let v = i * 16;
        assert!(set.insert(v));
        model.insert(v);
        if i == ARRAY_MAX - 1 || i == ARRAY_MAX || i == BITMAP_MIN - 1 {
            assert_matches_model(&set, &model, &format!("growing through {i}"));
        }
    }
    assert_eq!(set.len(), BITMAP_MIN);
    // Demote: drop back below the threshold and re-check everything.
    for i in (ARRAY_MAX - 2..BITMAP_MIN).rev() {
        let v = i * 16;
        assert!(set.remove(v));
        model.remove(&v);
        assert_matches_model(&set, &model, &format!("shrinking through {i}"));
    }
    // And the set still mutates correctly post-demotion.
    assert!(set.insert(7));
    model.insert(7);
    assert_matches_model(&set, &model, "post-demotion insert");
}

/// Run containers under mutation: a coalesced run splits on interior
/// removal, glues back on re-insertion, and extends at both edges —
/// always agreeing with the model.
#[test]
fn run_container_coalescing_matches_model() {
    let members: Vec<usize> = (1000..3000).chain(5000..5100).collect();
    let mut model = model_of(&members);
    let mut set = AdaptiveBitSet::from_members(members);
    set.optimize(); // contiguous blocks: run-encoded

    for v in [2000usize, 1000, 2999, 5050] {
        assert!(set.remove(v), "remove {v}");
        model.remove(&v);
        assert_matches_model(&set, &model, &format!("run split at {v}"));
    }
    for v in [2000usize, 999, 3000, 5100] {
        assert!(set.insert(v), "insert {v}");
        model.insert(v);
        assert_matches_model(&set, &model, &format!("run glue at {v}"));
    }
}
