//! Bitset algebra checked against naive set computations on occurrence
//! sets derived from seeded [`tsg_testkit`] databases — the exact shape
//! the mining kernels feed through these primitives.

use std::collections::BTreeSet;
use tsg_bitset::{distinct_mapped_count, BitSet};
use tsg_graph::NodeLabel;
use tsg_testkit::gen::{case_count, cases};

const BASE_SEED: u64 = 0x7a78_6f67_7261_6d04;

/// Graphs (by id) whose vertex labels include `label`.
fn occurrence_set(c: &tsg_testkit::Case, label: NodeLabel) -> (BitSet, BTreeSet<usize>) {
    let mut bits = BitSet::new(c.db.len());
    let mut naive = BTreeSet::new();
    for (gid, g) in c.db.iter() {
        if g.labels().contains(&label) {
            bits.insert(gid);
            naive.insert(gid);
        }
    }
    (bits, naive)
}

#[test]
fn occurrence_algebra_matches_naive_sets() {
    for c in cases(BASE_SEED, case_count(64)) {
        let concepts = c.taxonomy.concept_count();
        let sets: Vec<_> = (0..concepts)
            .map(|l| occurrence_set(&c, NodeLabel(l as u32)))
            .collect();
        for (a_bits, a_naive) in &sets {
            assert_eq!(a_bits.count_ones(), a_naive.len());
            assert_eq!(&a_bits.to_vec(), &a_naive.iter().copied().collect::<Vec<_>>());
            for (b_bits, b_naive) in &sets {
                let want: BTreeSet<_> = a_naive.intersection(b_naive).copied().collect();
                assert_eq!(a_bits.intersection_count(b_bits), want.len());
                assert_eq!(a_bits.intersection(b_bits).to_vec(), want.iter().copied().collect::<Vec<_>>());
                let union: BTreeSet<_> = a_naive.union(b_naive).copied().collect();
                assert_eq!(a_bits.union(b_bits).count_ones(), union.len());
                assert_eq!(a_bits.is_subset(b_bits), a_naive.is_subset(b_naive));
                assert_eq!(a_bits.intersects(b_bits), !want.is_empty());
            }
        }
    }
}

#[test]
fn distinct_mapped_count_matches_naive_projection() {
    // Map each graph id to a coarser group (id / 2) — the same shape the
    // contraction kernels use when several occurrence rows share a class.
    for c in cases(BASE_SEED ^ 1, case_count(64)) {
        let map: Vec<u32> = (0..c.db.len() as u32).map(|g| g / 2).collect();
        let groups = (c.db.len().div_ceil(2)).max(1);
        let mut scratch = BitSet::new(groups);
        for l in 0..c.taxonomy.concept_count() {
            let (bits, naive) = occurrence_set(&c, NodeLabel(l as u32));
            let want: BTreeSet<_> = naive.iter().map(|&g| map[g]).collect();
            assert_eq!(
                distinct_mapped_count(&bits, &map, &mut scratch),
                want.len(),
                "seed {:#x} label {l}",
                c.seed
            );
        }
    }
}
