//! Vector clocks for the happens-before race detector.
//!
//! One logical clock per virtual thread; every visible operation ticks
//! the acting thread's own component. Happens-before edges (spawn, join,
//! mutex release→acquire, atomic Release-store→Acquire-load) are `join`s
//! of one clock into another. A write by thread `w` is ordered before a
//! later access by thread `r` iff `r`'s clock component for `w` has
//! caught up to the write's timestamp.

/// A grow-on-demand vector clock indexed by virtual-thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VecClock(Vec<u32>);

impl VecClock {
    /// Advances this thread's own component by one event.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum: absorbs everything `other` has observed.
    pub fn join(&mut self, other: &VecClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// The component for `tid` (zero if never observed).
    pub fn component(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::VecClock;

    #[test]
    fn tick_and_join_track_components() {
        let mut a = VecClock::default();
        a.tick(0);
        a.tick(0);
        let mut b = VecClock::default();
        b.tick(3);
        b.join(&a);
        assert_eq!(b.component(0), 2);
        assert_eq!(b.component(3), 1);
        assert_eq!(b.component(7), 0);
    }
}
