//! Schedule exploration: bounded-exhaustive DFS plus seeded-random
//! sampling, in the spirit of loom (exhaustive interleaving search) and
//! CHESS (preemption bounding).
//!
//! Every execution's scheduling decisions are recorded as a sequence of
//! *ordinals* into the sorted enabled-thread set at each visible
//! operation. That sequence is the schedule: replaying it as a prefix
//! reproduces the execution bit-for-bit (the runtime serializes all
//! real effects, so values are a function of the schedule alone).
//!
//! The DFS phase walks the schedule tree depth-first. At each decision
//! the children are ordered "previous thread first" — continuing the
//! running thread costs zero preemptions; switching to another thread
//! while the previous one is still enabled costs one. Branches whose
//! accumulated preemption count exceeds the bound are pruned (forced
//! switches, where the previous thread blocked or finished, are free).
//! With the default bound of 2 this finds the overwhelming majority of
//! real-world concurrency bugs (the CHESS observation) while keeping
//! the tree tractable.
//!
//! The random phase then samples schedules with *unbounded* preemptions
//! from a splitmix64 stream seeded by `PROPTEST_RNG_SEED` (the
//! workspace's determinism convention), deduplicating against
//! everything already explored, until the target interleaving count is
//! reached. Failures panic with the offending schedule and seed so
//! [`Checker::replay`] reproduces them exactly.

use crate::runtime::{self, Decision, Execution, RaceRecord, SplitMix, Strategy};
use std::collections::HashSet;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A data race found by the vector-clock detector: a cross-thread
/// reads-from edge with no happens-before ordering (and not the
/// RMW-reads-RMW counter pattern, which the modification order itself
/// serializes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Race {
    /// Facade object id of the racy location (stable within a test).
    pub location: u64,
    /// The writing operation (e.g. `"AtomicBool::store"`) and vthread.
    pub write_op: &'static str,
    pub write_tid: usize,
    /// The reading operation and vthread.
    pub read_op: &'static str,
    pub read_tid: usize,
}

impl From<RaceRecord> for Race {
    fn from(r: RaceRecord) -> Self {
        Race {
            location: r.location,
            write_op: r.write_op,
            write_tid: r.write_tid,
            read_op: r.read_op,
            read_tid: r.read_tid,
        }
    }
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "location #{}: {} by vthread {} unordered before {} by vthread {}",
            self.location, self.write_op, self.write_tid, self.read_op, self.read_tid
        )
    }
}

/// Exploration summary returned by [`Checker::check`].
#[derive(Debug)]
pub struct Report {
    /// Distinct schedules executed (DFS + deduplicated random).
    pub interleavings: usize,
    /// True when the DFS exhausted every schedule within the preemption
    /// bound (the random phase then samples beyond the bound).
    pub exhaustive: bool,
    /// Distinct data races observed across all executions.
    pub races: Vec<Race>,
}

impl Report {
    /// Panics with a readable listing if any race was detected.
    pub fn assert_race_free(&self) {
        assert!(
            self.races.is_empty(),
            "data races detected:\n  {}",
            self.races
                .iter()
                .map(Race::to_string)
                .collect::<Vec<_>>()
                .join("\n  ")
        );
    }
}

struct RunOutcome {
    /// Scheduler-detected failure (deadlock, runaway schedule).
    failure: Option<String>,
    /// User-code panic message, if the root closure panicked.
    panic: Option<String>,
    races: Vec<RaceRecord>,
    trace: Vec<Decision>,
}

/// The model checker: explores interleavings of a closure that uses the
/// `tsg_model` facade types for all of its concurrency.
pub struct Checker {
    bound: usize,
    target: usize,
    dfs_cap: usize,
    max_steps: usize,
    seed: Option<u64>,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

impl Checker {
    #[must_use]
    pub fn new() -> Self {
        Checker {
            bound: 2,
            target: 1000,
            dfs_cap: 2000,
            max_steps: 20_000,
            seed: None,
        }
    }

    /// Preemption bound for the DFS phase (default 2). Forced context
    /// switches (blocked/finished previous thread) are always free.
    #[must_use]
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.bound = bound;
        self
    }

    /// Minimum number of distinct interleavings to explore (default
    /// 1000); the seeded-random phase tops up whatever the DFS leaves.
    #[must_use]
    pub fn target_interleavings(mut self, target: usize) -> Self {
        self.target = target;
        self
    }

    /// Hard cap on DFS executions before declaring non-exhaustive
    /// (default 2000).
    #[must_use]
    pub fn dfs_cap(mut self, cap: usize) -> Self {
        self.dfs_cap = cap;
        self
    }

    /// Visible-operation budget per execution; exceeding it fails the
    /// schedule as a livelock (default 20 000).
    #[must_use]
    pub fn max_steps(mut self, steps: usize) -> Self {
        self.max_steps = steps;
        self
    }

    /// Pins the random-phase seed. Defaults to `PROPTEST_RNG_SEED`
    /// (hex `0x…` or decimal) from the environment, falling back to
    /// `0x007a_78c0_ffee` — the workspace's proptest convention.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    fn resolved_seed(&self) -> u64 {
        self.seed.unwrap_or_else(|| {
            std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|s| {
                    let s = s.trim();
                    s.strip_prefix("0x")
                        .map_or_else(|| s.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
                })
                .unwrap_or(0x007a_78c0_ffee)
        })
    }

    /// Explores interleavings of `f`: DFS within the preemption bound,
    /// then seeded-random schedules beyond it until the target count.
    ///
    /// # Panics
    /// On deadlock, lost wakeup, livelock, or a panic inside `f` — the
    /// message carries the schedule and seed needed to [`replay`] it.
    ///
    /// [`replay`]: Checker::replay
    pub fn check<F: Fn()>(&self, f: F) -> Report {
        let seed = self.resolved_seed();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut races: Vec<RaceRecord> = Vec::new();
        let mut interleavings = 0usize;
        let mut exhaustive = false;

        // Phase 1: bounded-exhaustive DFS.
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            let outcome = run_once(prefix.clone(), Strategy::PrevFirst, self.max_steps, &f);
            let schedule: Vec<usize> = outcome.trace.iter().map(|d| d.chosen).collect();
            fail_if_needed(&outcome, &schedule, seed);
            interleavings += 1;
            seen.insert(schedule_hash(&schedule));
            merge_races(&mut races, outcome.races);
            if interleavings >= self.dfs_cap {
                break;
            }
            match next_prefix(&outcome.trace, self.bound) {
                Some(p) => prefix = p,
                None => {
                    exhaustive = true;
                    break;
                }
            }
        }

        // Phase 2: seeded-random top-up beyond the bound.
        let mut rng = SplitMix(seed);
        let mut attempts = 0usize;
        let attempt_cap = self.target.saturating_mul(50).max(1000);
        while interleavings < self.target && attempts < attempt_cap {
            attempts += 1;
            let outcome = run_once(
                Vec::new(),
                Strategy::Random(SplitMix(rng.next())),
                self.max_steps,
                &f,
            );
            let schedule: Vec<usize> = outcome.trace.iter().map(|d| d.chosen).collect();
            fail_if_needed(&outcome, &schedule, seed);
            if seen.insert(schedule_hash(&schedule)) {
                interleavings += 1;
            }
            merge_races(&mut races, outcome.races);
        }

        Report {
            interleavings,
            exhaustive,
            races: races.into_iter().map(Race::from).collect(),
        }
    }

    /// Replays one schedule bit-for-bit (ordinals into the sorted
    /// enabled set at each decision; decisions past the end continue
    /// previous-thread-first). Returns the races that execution saw.
    ///
    /// # Panics
    /// Same conditions as [`Checker::check`].
    pub fn replay<F: Fn()>(&self, schedule: &[usize], f: F) -> Report {
        let seed = self.resolved_seed();
        let outcome = run_once(schedule.to_vec(), Strategy::PrevFirst, self.max_steps, &f);
        let ran: Vec<usize> = outcome.trace.iter().map(|d| d.chosen).collect();
        fail_if_needed(&outcome, &ran, seed);
        Report {
            interleavings: 1,
            exhaustive: false,
            races: outcome.races.into_iter().map(Race::from).collect(),
        }
    }

    /// Runs exactly `count` seeded-random schedules (no DFS, no dedup
    /// target): the cheap way to pin a named regression scenario to a
    /// seed. Failures replay via the schedule in the panic message.
    ///
    /// # Panics
    /// Same conditions as [`Checker::check`].
    pub fn explore_random<F: Fn()>(&self, count: usize, f: F) -> Report {
        let seed = self.resolved_seed();
        let mut rng = SplitMix(seed);
        let mut seen: HashSet<u64> = HashSet::new();
        let mut races: Vec<RaceRecord> = Vec::new();
        let mut interleavings = 0usize;
        for _ in 0..count {
            let outcome = run_once(
                Vec::new(),
                Strategy::Random(SplitMix(rng.next())),
                self.max_steps,
                &f,
            );
            let schedule: Vec<usize> = outcome.trace.iter().map(|d| d.chosen).collect();
            fail_if_needed(&outcome, &schedule, seed);
            if seen.insert(schedule_hash(&schedule)) {
                interleavings += 1;
            }
            merge_races(&mut races, outcome.races);
        }
        Report {
            interleavings,
            exhaustive: false,
            races: races.into_iter().map(Race::from).collect(),
        }
    }
}

fn schedule_hash(schedule: &[usize]) -> u64 {
    let mut h = DefaultHasher::new();
    schedule.hash(&mut h);
    h.finish()
}

fn merge_races(into: &mut Vec<RaceRecord>, from: Vec<RaceRecord>) {
    for r in from {
        if !into.contains(&r) {
            into.push(r);
        }
    }
}

fn fail_if_needed(outcome: &RunOutcome, schedule: &[usize], seed: u64) {
    if let Some(msg) = &outcome.failure {
        panic!("model checker: {msg}\n  seed: {seed:#x}\n  schedule: {schedule:?}");
    }
    if let Some(msg) = &outcome.panic {
        panic!(
            "model execution panicked: {msg}\n  seed: {seed:#x}\n  schedule: {schedule:?}"
        );
    }
}

/// Runs `f` once as virtual thread 0 of a fresh [`Execution`].
fn run_once<F: Fn()>(
    prefix: Vec<usize>,
    strategy: Strategy,
    max_steps: usize,
    f: &F,
) -> RunOutcome {
    let exec = Arc::new(Execution::new(prefix, strategy, max_steps));
    runtime::set_current(Some((Arc::clone(&exec), 0)));
    let res = catch_unwind(AssertUnwindSafe(f));
    runtime::set_current(None);
    let panic = match res {
        Ok(()) => None,
        Err(payload) => {
            // Wake and unwind every child before inspecting state.
            exec.abort_from_root();
            if runtime::is_model_abort(payload.as_ref()) {
                None // scheduler abort: the failure message tells the story
            } else {
                Some(payload_message(payload.as_ref()))
            }
        }
    };
    exec.finish_root_and_wait();
    let (failure, races, trace, _steps) = exec.take_outcome();
    RunOutcome {
        failure,
        panic,
        races,
        trace,
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Computes the next DFS prefix from a completed trace, or `None` when
/// the tree within the preemption bound is exhausted.
///
/// Children at each decision are ordered previous-thread-first (the
/// order the `PrevFirst` strategy walks them), so backtracking means:
/// find the deepest decision with an unexplored sibling whose
/// preemption cost stays within the bound, and branch there.
fn next_prefix(trace: &[Decision], bound: usize) -> Option<Vec<usize>> {
    // Preemptions accumulated strictly before each decision.
    let mut pre = Vec::with_capacity(trace.len());
    let mut acc = 0usize;
    for d in trace {
        pre.push(acc);
        if let Some(p) = d.prev {
            if d.chosen != p {
                acc += 1;
            }
        }
    }
    for i in (0..trace.len()).rev() {
        let d = &trace[i];
        let order: Vec<usize> = match d.prev {
            Some(p) => std::iter::once(p)
                .chain((0..d.enabled).filter(|&x| x != p))
                .collect(),
            None => (0..d.enabled).collect(),
        };
        let cur = order
            .iter()
            .position(|&x| x == d.chosen)
            .expect("chosen ordinal is within the enabled set");
        for &cand in &order[cur + 1..] {
            let cost = pre[i] + usize::from(d.prev.is_some_and(|p| cand != p));
            if cost <= bound {
                let mut prefix: Vec<usize> = trace[..i].iter().map(|t| t.chosen).collect();
                prefix.push(cand);
                return Some(prefix);
            }
        }
    }
    None
}
