//! `tsg-check`: the workspace's sync facade and concurrency model checker.
//!
//! Every parallel engine in the workspace imports its synchronization
//! primitives (`AtomicUsize`, `AtomicBool`, `Mutex`, `Condvar`,
//! `thread::spawn`) from [`sync`] and [`thread`] instead of `std`
//! directly. The facade has two personalities:
//!
//! * **Normal builds** — a zero-cost `pub use std::sync::...` alias.
//!   Nothing is wrapped, nothing is instrumented; the engines compile to
//!   exactly the code they compiled to before the facade existed.
//!
//! * **`--cfg tsg_model` builds** — the same names resolve to
//!   instrumented wrappers backed by a deterministic scheduler
//!   ([`model::Checker`]): cooperative virtual threads serialized on a
//!   baton, bounded-exhaustive DFS over interleavings with a preemption
//!   bound (CHESS-style), seeded-random schedules beyond the bound, a
//!   vector-clock data-race detector over atomic/lock accesses, and
//!   deadlock / lost-wakeup detection when every virtual thread blocks.
//!
//! The wrappers are *dual-mode*: code running on a model-checker virtual
//! thread is scheduled and race-checked, while the same types used from
//! an ordinary OS thread (e.g. the rest of the test binary) transparently
//! delegate to `std`. That lets a `--cfg tsg_model` build still run the
//! normal unit-test suite unchanged.
//!
//! Like the `shims/` crates, this is vendored, std-only code: no external
//! dependencies, no `unsafe`.

pub mod sync;
pub mod thread;

#[cfg(tsg_model)]
mod clock;
#[cfg(tsg_model)]
mod explore;
#[cfg(tsg_model)]
mod runtime;

/// Model-checker entry points. Only exists under `--cfg tsg_model`.
#[cfg(tsg_model)]
pub mod model {
    pub use crate::explore::{Checker, Race, Report};

    /// True when the calling OS thread is currently a model-checker
    /// virtual thread (i.e. facade operations are being scheduled and
    /// race-checked rather than delegated to `std`).
    #[must_use]
    pub fn on_model_thread() -> bool {
        crate::runtime::current().is_some()
    }
}

/// True when the crate was compiled with the instrumented model runtime.
#[must_use]
pub fn model_build() -> bool {
    cfg!(tsg_model)
}
