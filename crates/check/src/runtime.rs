//! The instrumented execution runtime behind the `tsg_model` facade.
//!
//! One [`Execution`] models a single run of the closure under test. Real
//! OS threads back the virtual threads, but a baton (one mutex + one
//! condvar) serializes them so exactly one runs at a time; context
//! switches happen only at *visible operations* — facade atomic ops,
//! lock/unlock, condvar wait/notify, spawn, join, thread exit. At each
//! visible op the acting thread performs the operation's real effect (so
//! observed values are exactly those the serialized order produces),
//! updates the vector-clock race bookkeeping, then asks the scheduler to
//! pick the next runnable thread: either replaying a recorded prefix
//! (DFS backtracking / bit-for-bit replay), preferring the previous
//! thread (the zero-preemption baseline), or drawing from a seeded RNG.
//!
//! Failure modes surface as an *abort*: the execution records a failure
//! message, every virtual thread wakes and unwinds via a [`ModelAbort`]
//! panic that the thread wrappers swallow, and the driving
//! [`crate::explore::Checker`] re-raises the failure with the schedule
//! that reproduces it. Operations reached while a thread is already
//! unwinding (lock guards dropped during a panic) never double-panic:
//! they degrade to silent best-effort cleanup.

use crate::clock::VecClock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Process-wide id source for facade objects (atomics, mutexes,
/// condvars). Ids, not addresses, identify locations — address reuse
/// across executions would otherwise alias race-detector state.
pub(crate) fn next_object_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, StdOrdering::Relaxed)
}

std::thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The execution + virtual-thread id the calling OS thread acts as, if
/// it is a registered model thread.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Panic payload used to unwind virtual threads when an execution
/// aborts (deadlock, detected failure, exploration cutoff). Thread
/// wrappers catch and swallow it; anything else propagates as a real
/// test failure.
pub(crate) struct ModelAbort;

/// Is this unwind payload a scheduler-initiated abort?
pub(crate) fn is_model_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<ModelAbort>()
}

fn abort_unwind() -> ! {
    std::panic::panic_any(ModelAbort);
}

/// How the scheduler chooses among enabled threads once the replay
/// prefix is exhausted.
pub(crate) enum Strategy {
    /// Prefer the previously running thread (zero added preemptions);
    /// fall back to the lowest-id enabled thread. The DFS baseline.
    PrevFirst,
    /// Draw uniformly from the enabled set with a seeded splitmix64
    /// stream — the beyond-the-bound random phase.
    Random(SplitMix),
}

/// The splitmix64 generator (same recurrence the workspace's fault
/// injection uses), kept dependency-free.
pub(crate) struct SplitMix(pub u64);

impl SplitMix {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Run state of one virtual thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RunState {
    Runnable,
    /// Waiting to acquire the lock with this object id.
    BlockedLock(u64),
    /// Parked on a condvar (condvar id, lock id to reacquire).
    BlockedCond(u64, u64),
    /// Waiting for the given virtual thread to finish.
    BlockedJoin(usize),
    Finished,
}

struct VThread {
    run: RunState,
    clock: VecClock,
}

#[derive(Default)]
struct LockState {
    holder: Option<usize>,
    /// Release clock: joined from each unlocking thread, joined into
    /// each acquiring thread — the mutex happens-before edge.
    clock: VecClock,
}

/// Kind of atomic access, for the race-detection policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AccessKind {
    Load,
    Store,
    Rmw,
    /// The read half of a `fetch_update`/CAS whose closure declined (no
    /// write happened). Records no write, but joins the RMW carve-out:
    /// a failed CAS reads the location's modification order directly,
    /// so its value is self-ordering exactly like a successful RMW's.
    RmwFailed,
}

struct LastWrite {
    tid: usize,
    /// The writer's clock at the write event (own component ticked).
    clock: VecClock,
    rmw: bool,
    release: bool,
    op: &'static str,
}

#[derive(Default)]
struct AtomicState {
    /// Accumulated clocks of Release writes (the location's
    /// release-sequence history); joined into Acquire readers.
    sync_clock: VecClock,
    last_write: Option<LastWrite>,
}

/// One scheduling decision, recorded for DFS backtracking and replay.
pub(crate) struct Decision {
    /// How many threads were enabled (the branching factor).
    pub enabled: usize,
    /// Ordinal of the chosen thread within the sorted enabled set.
    pub chosen: usize,
    /// Ordinal of the previously running thread within the enabled set,
    /// if it was still enabled (choosing anything else is a preemption).
    pub prev: Option<usize>,
}

/// A detected data race: a cross-thread reads-from edge with no
/// happens-before ordering.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct RaceRecord {
    pub location: u64,
    pub write_op: &'static str,
    pub write_tid: usize,
    pub read_op: &'static str,
    pub read_tid: usize,
}

struct ExecState {
    threads: Vec<VThread>,
    /// The thread currently holding the baton (None once all finish).
    active: Option<usize>,
    /// The thread that ran the previous visible op (preemption anchor).
    prev: Option<usize>,
    /// Replay prefix: chosen ordinals into successive enabled sets.
    prefix: Vec<usize>,
    pos: usize,
    strategy: Strategy,
    trace: Vec<Decision>,
    /// FIFO wait queues per condvar (notify_one wakes the head).
    cond_waiters: HashMap<u64, Vec<usize>>,
    locks: HashMap<u64, LockState>,
    atomics: HashMap<u64, AtomicState>,
    races: Vec<RaceRecord>,
    /// Deadlock / runaway-schedule message, set once.
    failure: Option<String>,
    aborting: bool,
    steps: usize,
    max_steps: usize,
}

/// One model-checked execution: scheduler state plus the baton condvar
/// all virtual threads block on.
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    baton: StdCondvar,
}

fn recover<'a, T>(
    r: Result<StdMutexGuard<'a, T>, std::sync::PoisonError<StdMutexGuard<'a, T>>>,
) -> StdMutexGuard<'a, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Execution {
    pub fn new(prefix: Vec<usize>, strategy: Strategy, max_steps: usize) -> Self {
        let mut root_clock = VecClock::default();
        root_clock.tick(0);
        Execution {
            state: StdMutex::new(ExecState {
                threads: vec![VThread {
                    run: RunState::Runnable,
                    clock: root_clock,
                }],
                active: Some(0),
                prev: Some(0),
                prefix,
                pos: 0,
                strategy,
                trace: Vec::new(),
                cond_waiters: HashMap::new(),
                locks: HashMap::new(),
                atomics: HashMap::new(),
                races: Vec::new(),
                failure: None,
                aborting: false,
                steps: 0,
                max_steps,
            }),
            baton: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, ExecState> {
        recover(self.state.lock())
    }

    /// Blocks until `me` holds the baton. Returns `None` if the
    /// execution aborted while waiting — callers must unwind (or, when
    /// already unwinding, fall back to a best-effort real operation).
    fn wait_for_turn<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, ExecState>,
        me: usize,
    ) -> Option<StdMutexGuard<'a, ExecState>> {
        loop {
            if st.aborting {
                return None;
            }
            if st.active == Some(me) && st.threads[me].run == RunState::Runnable {
                return Some(st);
            }
            st = recover(self.baton.wait(st));
        }
    }

    /// Unwinds with [`ModelAbort`] unless the thread is already
    /// panicking (a second panic would abort the process); callers
    /// degrade to a best-effort fallback in that case.
    fn unwind_or_continue(&self) {
        if !std::thread::panicking() {
            abort_unwind();
        }
    }

    /// Records a failure, wakes everyone, and marks the execution
    /// aborting so every virtual thread unwinds at its next visible op.
    fn fail(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        st.active = None;
        self.baton.notify_all();
    }

    /// Advances the step budget; trips the runaway guard when a schedule
    /// fails to terminate (e.g. a livelocking loop under test).
    fn count_step(&self, st: &mut ExecState) {
        st.steps += 1;
        if st.steps > st.max_steps {
            self.fail(
                st,
                format!(
                    "model execution exceeded {} visible operations (livelock or \
                     unbounded loop under test)",
                    st.max_steps
                ),
            );
        }
    }

    /// Picks the next thread to run after a visible op. Detects deadlock
    /// when nothing is runnable but unfinished threads remain —
    /// including lost wakeups, which strand waiters in exactly this
    /// shape.
    fn pick_next(&self, st: &mut ExecState) {
        if st.aborting {
            self.baton.notify_all();
            return;
        }
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == RunState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.threads.iter().any(|t| t.run != RunState::Finished) {
                let stuck: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.run != RunState::Finished)
                    .map(|(i, t)| format!("vthread {i}: {:?}", t.run))
                    .collect();
                self.fail(
                    st,
                    format!(
                        "deadlock: every virtual thread is blocked [{}]",
                        stuck.join(", ")
                    ),
                );
            } else {
                st.active = None;
                self.baton.notify_all();
            }
            return;
        }
        let prev_ordinal = st.prev.and_then(|p| enabled.iter().position(|&t| t == p));
        let ordinal = if st.pos < st.prefix.len() {
            st.prefix[st.pos].min(enabled.len() - 1)
        } else {
            match &mut st.strategy {
                Strategy::PrevFirst => prev_ordinal.unwrap_or(0),
                Strategy::Random(rng) => (rng.next() % enabled.len() as u64) as usize,
            }
        };
        st.pos += 1;
        st.trace.push(Decision {
            enabled: enabled.len(),
            chosen: ordinal,
            prev: prev_ordinal,
        });
        let chosen = enabled[ordinal];
        st.prev = Some(chosen);
        st.active = Some(chosen);
        self.baton.notify_all();
    }

    /// Runs one visible operation: wait for the baton, tick the acting
    /// thread's clock, apply `f` while serialized, hand the baton on.
    /// `None` means the execution aborted (caller unwinds or degrades).
    fn visible_op<R>(&self, me: usize, f: impl FnOnce(&mut ExecState) -> R) -> Option<R> {
        let st = self.lock_state();
        let mut st = self.wait_for_turn(st, me)?;
        st.threads[me].clock.tick(me);
        self.count_step(&mut st);
        if st.aborting {
            return None;
        }
        let out = f(&mut st);
        self.pick_next(&mut st);
        Some(out)
    }

    // ---- atomics -------------------------------------------------------

    /// Bookkeeping for one atomic access; `real` performs the actual
    /// operation on the inner std atomic while serialized, and reports
    /// the effective access (`fetch_update`'s kind depends on success).
    /// `None` only when aborting while already unwinding — the caller
    /// then applies a fallback real operation.
    pub fn atomic_op<R>(
        &self,
        me: usize,
        id: u64,
        op: &'static str,
        real: impl FnOnce() -> (R, AccessKind, bool, bool),
    ) -> Option<R> {
        let out = self.visible_op(me, |st| {
            let (value, kind, acquire, release) = real();
            if kind != AccessKind::Store {
                Self::check_read(st, me, id, op, kind, acquire);
            }
            if matches!(kind, AccessKind::Store | AccessKind::Rmw) {
                let tc = st.threads[me].clock.clone();
                let atom = st.atomics.entry(id).or_default();
                if release {
                    atom.sync_clock.join(&tc);
                }
                atom.last_write = Some(LastWrite {
                    tid: me,
                    clock: tc,
                    rmw: kind == AccessKind::Rmw,
                    release,
                    op,
                });
            }
            value
        });
        if out.is_none() {
            self.unwind_or_continue();
        }
        out
    }

    /// Read-side bookkeeping: synchronize-with edge first (so promoted
    /// Release/Acquire pairs are never flagged), then the reads-from
    /// race check against the last write.
    fn check_read(
        st: &mut ExecState,
        me: usize,
        id: u64,
        op: &'static str,
        kind: AccessKind,
        acquire: bool,
    ) {
        let Some(atom) = st.atomics.get(&id) else {
            return;
        };
        let Some(w) = &atom.last_write else { return };
        // An Acquire read of a Release write synchronizes with it; an
        // Acquire read of a Relaxed RMW still synchronizes with the
        // release-sequence head (C++20 §6.9.2.2: RMWs continue the
        // release sequence), which `sync_clock` accumulates.
        let sync = (acquire && (w.release || w.rmw)).then(|| atom.sync_clock.clone());
        let (wtid, wclock, wrmw, wop) = (w.tid, w.clock.clone(), w.rmw, w.op);
        if let Some(sc) = sync {
            st.threads[me].clock.join(&sc);
        }
        if wtid == me {
            return;
        }
        let ordered = wclock.component(wtid) <= st.threads[me].clock.component(wtid);
        // RMW-reads-RMW is ordered by the location's modification order
        // itself — the genuinely-relaxed-counter carve-out (e.g. stat
        // counters that are only fetch_add'ed concurrently and read
        // after join).
        let benign = matches!(kind, AccessKind::Rmw | AccessKind::RmwFailed) && wrmw;
        if !ordered && !benign {
            let rec = RaceRecord {
                location: id,
                write_op: wop,
                write_tid: wtid,
                read_op: op,
                read_tid: me,
            };
            if !st.races.contains(&rec) {
                st.races.push(rec);
            }
        }
    }

    // ---- mutexes -------------------------------------------------------

    /// Model-level lock acquisition. On return the model holds the lock
    /// for `me`; the facade then `try_lock`s the real mutex (guaranteed
    /// uncontended). `false` means aborting-while-unwinding.
    pub fn mutex_lock(&self, me: usize, id: u64) -> bool {
        let st = self.lock_state();
        let Some(mut st) = self.wait_for_turn(st, me) else {
            self.unwind_or_continue();
            return false;
        };
        loop {
            st.threads[me].clock.tick(me);
            self.count_step(&mut st);
            if st.aborting {
                drop(st);
                self.unwind_or_continue();
                return false;
            }
            let lock = st.locks.entry(id).or_default();
            if lock.holder.is_none() {
                lock.holder = Some(me);
                let lc = lock.clock.clone();
                st.threads[me].clock.join(&lc);
                self.pick_next(&mut st);
                return true;
            }
            st.threads[me].run = RunState::BlockedLock(id);
            self.pick_next(&mut st);
            match self.wait_for_turn(st, me) {
                Some(s) => st = s,
                None => {
                    self.unwind_or_continue();
                    return false;
                }
            }
        }
    }

    /// Model-level unlock; callable from `Drop` during unwinding
    /// (degrades to a silent release when the execution is aborting).
    pub fn mutex_unlock(&self, me: usize, id: u64) {
        let st = self.lock_state();
        let Some(mut st) = self.wait_for_turn(st, me) else {
            self.release_silently(me, id);
            self.unwind_or_continue();
            return;
        };
        st.threads[me].clock.tick(me);
        self.count_step(&mut st);
        if st.aborting {
            drop(st);
            self.release_silently(me, id);
            self.unwind_or_continue();
            return;
        }
        let me_clock = st.threads[me].clock.clone();
        let lock = st.locks.entry(id).or_default();
        debug_assert_eq!(lock.holder, Some(me), "unlock by non-holder");
        lock.holder = None;
        lock.clock.join(&me_clock);
        Self::wake_lock_waiters(&mut st, id);
        self.pick_next(&mut st);
    }

    fn release_silently(&self, me: usize, id: u64) {
        let mut st = self.lock_state();
        if let Some(lock) = st.locks.get_mut(&id) {
            if lock.holder == Some(me) {
                lock.holder = None;
            }
        }
        drop(st);
        self.baton.notify_all();
    }

    fn wake_lock_waiters(st: &mut ExecState, id: u64) {
        for t in &mut st.threads {
            if t.run == RunState::BlockedLock(id) {
                t.run = RunState::Runnable;
            }
        }
    }

    // ---- condvars ------------------------------------------------------

    /// Atomically (within one visible op) releases the model lock and
    /// parks on the condvar; after a notify, reacquires the model lock.
    /// The atomic release+park means a notify is either strictly before
    /// the park (waiter never sleeps through it — it re-checks its
    /// predicate first) or strictly after (waiter is in the FIFO); a
    /// protocol that can still strand a waiter deadlocks and is
    /// reported. `false` means aborting-while-unwinding.
    pub fn condvar_wait(&self, me: usize, cv: u64, lock_id: u64) -> bool {
        let st = self.lock_state();
        let Some(mut st) = self.wait_for_turn(st, me) else {
            self.unwind_or_continue();
            return false;
        };
        st.threads[me].clock.tick(me);
        self.count_step(&mut st);
        if st.aborting {
            drop(st);
            self.unwind_or_continue();
            return false;
        }
        // Release the lock exactly like unlock...
        let me_clock = st.threads[me].clock.clone();
        let lock = st.locks.entry(lock_id).or_default();
        debug_assert_eq!(lock.holder, Some(me), "condvar wait without the lock");
        lock.holder = None;
        lock.clock.join(&me_clock);
        Self::wake_lock_waiters(&mut st, lock_id);
        // ...and park in the same visible op (no lost-wakeup window).
        st.threads[me].run = RunState::BlockedCond(cv, lock_id);
        st.cond_waiters.entry(cv).or_default().push(me);
        self.pick_next(&mut st);
        // Woken by a notify: contend for the lock again.
        let Some(mut st) = self.wait_for_turn(st, me) else {
            self.unwind_or_continue();
            return false;
        };
        loop {
            st.threads[me].clock.tick(me);
            self.count_step(&mut st);
            if st.aborting {
                drop(st);
                self.unwind_or_continue();
                return false;
            }
            let lock = st.locks.entry(lock_id).or_default();
            if lock.holder.is_none() {
                lock.holder = Some(me);
                let lc = lock.clock.clone();
                st.threads[me].clock.join(&lc);
                self.pick_next(&mut st);
                return true;
            }
            st.threads[me].run = RunState::BlockedLock(lock_id);
            self.pick_next(&mut st);
            match self.wait_for_turn(st, me) {
                Some(s) => st = s,
                None => {
                    self.unwind_or_continue();
                    return false;
                }
            }
        }
    }

    /// Wakes the longest-parked waiter (`all == false`) or every waiter.
    /// The model never delivers spurious wakeups: a waiter runs only
    /// after a notify. (Engines' `while`-loop predicates still execute,
    /// so code relying on spurious wakeups for progress shows up as a
    /// deadlock.)
    pub fn condvar_notify(&self, me: usize, cv: u64, all: bool) {
        let out = self.visible_op(me, |st| {
            let waiters = st.cond_waiters.entry(cv).or_default();
            let woken: Vec<usize> = if all {
                std::mem::take(waiters)
            } else if waiters.is_empty() {
                Vec::new()
            } else {
                vec![waiters.remove(0)]
            };
            for w in woken {
                st.threads[w].run = RunState::Runnable;
            }
        });
        if out.is_none() {
            self.unwind_or_continue();
        }
    }

    // ---- threads -------------------------------------------------------

    /// Registers a child virtual thread (spawn edge: the child inherits
    /// the parent's clock). Returns the child's vthread id; `None` when
    /// the execution is aborting.
    pub fn register_thread(&self, parent: usize) -> Option<usize> {
        let out = self.visible_op(parent, |st| {
            let id = st.threads.len();
            let mut clock = st.threads[parent].clock.clone();
            clock.tick(id);
            st.threads.push(VThread {
                run: RunState::Runnable,
                clock,
            });
            id
        });
        if out.is_none() {
            self.unwind_or_continue();
        }
        out
    }

    /// Marks `me` finished and wakes joiners. Always succeeds — during
    /// an abort it records the exit silently so the checker's
    /// wait-for-all-finished barrier terminates.
    pub fn thread_finished(&self, me: usize) {
        let st = self.lock_state();
        match self.wait_for_turn(st, me) {
            Some(mut st) => {
                st.threads[me].clock.tick(me);
                self.count_step(&mut st);
                st.threads[me].run = RunState::Finished;
                for t in &mut st.threads {
                    if t.run == RunState::BlockedJoin(me) {
                        t.run = RunState::Runnable;
                    }
                }
                self.pick_next(&mut st);
            }
            None => {
                let mut st = self.lock_state();
                st.threads[me].run = RunState::Finished;
                drop(st);
                self.baton.notify_all();
            }
        }
    }

    /// Blocks until `child` finishes; the join edge merges the child's
    /// final clock. `false` means aborting-while-unwinding.
    pub fn thread_join(&self, me: usize, child: usize) -> bool {
        let st = self.lock_state();
        let Some(mut st) = self.wait_for_turn(st, me) else {
            self.unwind_or_continue();
            return false;
        };
        loop {
            st.threads[me].clock.tick(me);
            self.count_step(&mut st);
            if st.aborting {
                drop(st);
                self.unwind_or_continue();
                return false;
            }
            if st.threads[child].run == RunState::Finished {
                let cc = st.threads[child].clock.clone();
                st.threads[me].clock.join(&cc);
                self.pick_next(&mut st);
                return true;
            }
            st.threads[me].run = RunState::BlockedJoin(child);
            self.pick_next(&mut st);
            match self.wait_for_turn(st, me) {
                Some(s) => st = s,
                None => {
                    self.unwind_or_continue();
                    return false;
                }
            }
        }
    }

    // ---- checker-side driving -----------------------------------------

    /// Called by the checker after the root closure returns: marks
    /// vthread 0 finished, then blocks until every virtual thread has
    /// exited (so no straggler touches state across executions).
    pub fn finish_root_and_wait(&self) {
        self.thread_finished(0);
        let mut st = self.lock_state();
        while st.threads.iter().any(|t| t.run != RunState::Finished) {
            st = recover(self.baton.wait(st));
        }
    }

    /// Aborts the execution from outside (the root closure panicked with
    /// a user assertion) so child threads unwind instead of blocking
    /// forever on a baton nobody will pass.
    pub fn abort_from_root(&self) {
        let mut st = self.lock_state();
        st.aborting = true;
        st.active = None;
        drop(st);
        self.baton.notify_all();
    }

    /// Drains (failure, races, trace, steps) once all threads finished.
    pub fn take_outcome(&self) -> (Option<String>, Vec<RaceRecord>, Vec<Decision>, usize) {
        let mut st = self.lock_state();
        (
            st.failure.take(),
            std::mem::take(&mut st.races),
            std::mem::take(&mut st.trace),
            st.steps,
        )
    }
}
