//! The sync facade: `std::sync` names, two personalities.
//!
//! Normal builds re-export `std` types untouched — a zero-cost alias.
//! Under `--cfg tsg_model` the same names are instrumented wrappers:
//! when the calling OS thread is a model-checker virtual thread every
//! operation becomes a *visible op* (serialized, vector-clock-tracked,
//! schedulable); on any other thread the wrappers delegate straight to
//! the inner `std` primitive, so ordinary tests run unchanged in a
//! model build.
//!
//! Sharing one facade object between model and non-model threads
//! concurrently is not supported (the model assumes it observes every
//! access to the objects it schedules).

#[cfg(not(tsg_model))]
pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(tsg_model))]
pub use std::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError};

#[cfg(tsg_model)]
pub use model_impl::{AtomicBool, AtomicUsize, Condvar, Mutex, MutexGuard};
#[cfg(tsg_model)]
pub use std::sync::atomic::Ordering;
#[cfg(tsg_model)]
pub use std::sync::{Arc, LockResult, PoisonError};

#[cfg(tsg_model)]
mod model_impl {
    use crate::runtime::{self, AccessKind};
    use std::sync::atomic::Ordering as StdOrdering;
    use std::sync::{
        Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
        PoisonError, TryLockError,
    };

    use super::Ordering;

    fn acq(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn rel(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    /// Instrumented `AtomicUsize`. The value lives in a real std atomic
    /// and every model-thread access applies the real operation while
    /// serialized, so observed values are a pure function of the
    /// schedule; the declared `Ordering` feeds the race detector only.
    #[derive(Debug)]
    pub struct AtomicUsize {
        id: u64,
        inner: std::sync::atomic::AtomicUsize,
    }

    impl Default for AtomicUsize {
        fn default() -> Self {
            AtomicUsize::new(0)
        }
    }

    impl AtomicUsize {
        #[must_use]
        pub fn new(v: usize) -> Self {
            AtomicUsize {
                id: runtime::next_object_id(),
                inner: std::sync::atomic::AtomicUsize::new(v),
            }
        }

        pub fn load(&self, order: Ordering) -> usize {
            if let Some((exec, me)) = runtime::current() {
                if let Some(v) = exec.atomic_op(me, self.id, "AtomicUsize::load", || {
                    (
                        self.inner.load(StdOrdering::SeqCst),
                        AccessKind::Load,
                        acq(order),
                        false,
                    )
                }) {
                    return v;
                }
            }
            self.inner.load(order)
        }

        pub fn store(&self, v: usize, order: Ordering) {
            if let Some((exec, me)) = runtime::current() {
                if exec
                    .atomic_op(me, self.id, "AtomicUsize::store", || {
                        self.inner.store(v, StdOrdering::SeqCst);
                        ((), AccessKind::Store, false, rel(order))
                    })
                    .is_some()
                {
                    return;
                }
            }
            self.inner.store(v, order);
        }

        pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
            self.rmw("AtomicUsize::fetch_add", order, || {
                self.inner.fetch_add(v, StdOrdering::SeqCst)
            })
            .unwrap_or_else(|| self.inner.fetch_add(v, order))
        }

        pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
            self.rmw("AtomicUsize::fetch_sub", order, || {
                self.inner.fetch_sub(v, StdOrdering::SeqCst)
            })
            .unwrap_or_else(|| self.inner.fetch_sub(v, order))
        }

        pub fn fetch_max(&self, v: usize, order: Ordering) -> usize {
            self.rmw("AtomicUsize::fetch_max", order, || {
                self.inner.fetch_max(v, StdOrdering::SeqCst)
            })
            .unwrap_or_else(|| self.inner.fetch_max(v, order))
        }

        /// `Some(result)` on the model path, `None` if the model path is
        /// unavailable (off-model thread, or aborting while unwinding —
        /// the caller then applies the op for real, exactly once).
        fn rmw(
            &self,
            op: &'static str,
            order: Ordering,
            real: impl FnOnce() -> usize,
        ) -> Option<usize> {
            let (exec, me) = runtime::current()?;
            exec.atomic_op(me, self.id, op, || {
                (real(), AccessKind::Rmw, acq(order), rel(order))
            })
        }

        /// # Errors
        /// Returns the last observed value when `f` returns `None`,
        /// matching `std::sync::atomic::AtomicUsize::fetch_update`.
        pub fn fetch_update<F>(
            &self,
            set_order: Ordering,
            fetch_order: Ordering,
            mut f: F,
        ) -> Result<usize, usize>
        where
            F: FnMut(usize) -> Option<usize>,
        {
            if let Some((exec, me)) = runtime::current() {
                if let Some(r) = exec.atomic_op(me, self.id, "AtomicUsize::fetch_update", || {
                    let r = self
                        .inner
                        .fetch_update(StdOrdering::SeqCst, StdOrdering::SeqCst, &mut f);
                    match r {
                        // A successful update is a read-modify-write with
                        // the success ordering...
                        Ok(_) => (r, AccessKind::Rmw, acq(set_order), rel(set_order)),
                        // ...a failed one is just a load with the failure
                        // ordering.
                        Err(_) => (r, AccessKind::RmwFailed, acq(fetch_order), false),
                    }
                }) {
                    return r;
                }
            }
            self.inner.fetch_update(set_order, fetch_order, f)
        }
    }

    /// Instrumented `AtomicBool`; see [`AtomicUsize`].
    #[derive(Debug)]
    pub struct AtomicBool {
        id: u64,
        inner: std::sync::atomic::AtomicBool,
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            AtomicBool::new(false)
        }
    }

    impl AtomicBool {
        #[must_use]
        pub fn new(v: bool) -> Self {
            AtomicBool {
                id: runtime::next_object_id(),
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            if let Some((exec, me)) = runtime::current() {
                if let Some(v) = exec.atomic_op(me, self.id, "AtomicBool::load", || {
                    (
                        self.inner.load(StdOrdering::SeqCst),
                        AccessKind::Load,
                        acq(order),
                        false,
                    )
                }) {
                    return v;
                }
            }
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            if let Some((exec, me)) = runtime::current() {
                if exec
                    .atomic_op(me, self.id, "AtomicBool::store", || {
                        self.inner.store(v, StdOrdering::SeqCst);
                        ((), AccessKind::Store, false, rel(order))
                    })
                    .is_some()
                {
                    return;
                }
            }
            self.inner.store(v, order);
        }
    }

    /// Instrumented mutex. Lock ownership is arbitrated by the model
    /// scheduler (a model-blocked thread parks in the scheduler, never
    /// on the real mutex); the protected value still lives in a real
    /// `std::sync::Mutex`, so guards, poisoning, and `into_inner`
    /// behave exactly like std's.
    #[derive(Debug)]
    pub struct Mutex<T> {
        id: u64,
        inner: StdMutex<T>,
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex {
                id: runtime::next_object_id(),
                inner: StdMutex::new(value),
            }
        }

        /// # Errors
        /// Poisoned like `std::sync::Mutex::lock`; the guard is still
        /// returned inside the error.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            if let Some((exec, me)) = runtime::current() {
                if exec.mutex_lock(me, self.id) {
                    return self.claim_real(Some((exec, me)));
                }
                // Aborting while unwinding: fall through to a real lock
                // so Drop-path cleanup can still finish.
            }
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            }
        }

        /// Claims the real mutex after a model-level grant (must be
        /// uncontended: the model serializes holders).
        fn claim_real(
            &self,
            model: Option<(Arc<crate::runtime::Execution>, usize)>,
        ) -> LockResult<MutexGuard<'_, T>> {
            match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model,
                }),
                Err(TryLockError::Poisoned(p)) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model,
                })),
                Err(TryLockError::WouldBlock) => unreachable!(
                    "model-granted mutex held elsewhere: a facade object is shared \
                     between model and non-model threads"
                ),
            }
        }

        /// # Errors
        /// Poisoned like `std::sync::Mutex::into_inner`.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    /// Guard for the instrumented [`Mutex`]. Dropping releases the real
    /// mutex first, then performs the model-level unlock (so no thread
    /// the model wakes can ever find the real mutex still held).
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<StdMutexGuard<'a, T>>,
        model: Option<(Arc<crate::runtime::Execution>, usize)>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard holds the real lock")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard holds the real lock")
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&**self, f)
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Real guard first (poisons on panic, exactly like std)...
            self.inner.take();
            // ...then the model release, which may context-switch.
            if let Some((exec, me)) = self.model.take() {
                exec.mutex_unlock(me, self.lock.id);
            }
        }
    }

    /// Instrumented condvar. Model threads park in the scheduler (the
    /// release-and-wait is one atomic visible op, notify order is FIFO,
    /// and there are no spurious wakeups); non-model threads use the
    /// inner `std::sync::Condvar`.
    #[derive(Debug)]
    pub struct Condvar {
        id: u64,
        inner: StdCondvar,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl Condvar {
        #[must_use]
        pub fn new() -> Self {
            Condvar {
                id: runtime::next_object_id(),
                inner: StdCondvar::new(),
            }
        }

        /// # Errors
        /// Poisoned like `std::sync::Condvar::wait`.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let lock = guard.lock;
            if let Some((exec, me)) = guard.model.take() {
                guard.inner.take();
                drop(guard); // both fields empty: Drop is a no-op
                if exec.condvar_wait(me, self.id, lock.id) {
                    return lock.claim_real(Some((exec, me)));
                }
                // Aborting while unwinding: reacquire for real so the
                // caller's cleanup still holds a lock.
                return match lock.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                };
            }
            let g = guard.inner.take().expect("guard holds the real lock");
            drop(guard);
            match self.inner.wait(g) {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            }
        }

        pub fn notify_one(&self) {
            if let Some((exec, me)) = runtime::current() {
                exec.condvar_notify(me, self.id, false);
                return;
            }
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            if let Some((exec, me)) = runtime::current() {
                exec.condvar_notify(me, self.id, true);
                return;
            }
            self.inner.notify_all();
        }
    }
}
