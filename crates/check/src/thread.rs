//! The thread facade: `std::thread` names, two personalities.
//!
//! Normal builds re-export `std::thread` wholesale. Under
//! `--cfg tsg_model`, [`spawn`] creates a *virtual* thread when called
//! from a model-checker thread — backed by a real OS thread, but
//! scheduled cooperatively by the checker, with spawn/join
//! happens-before edges — and delegates to `std` everywhere else.
//! `scope` stays a passthrough: scoped engines keep their std structure
//! and model tests port their contracts onto [`spawn`]/[`JoinHandle`].

#[cfg(not(tsg_model))]
pub use std::thread::*;

#[cfg(tsg_model)]
pub use model_impl::{spawn, JoinHandle};
#[cfg(tsg_model)]
pub use std::thread::{
    available_parallelism, panicking, scope, sleep, yield_now, Builder, Result, Scope,
    ScopedJoinHandle,
};

#[cfg(tsg_model)]
mod model_impl {
    use crate::runtime::{self, Execution};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex, PoisonError};

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            exec: Arc<Execution>,
            id: usize,
            slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
        },
    }

    /// Dual-mode join handle; see [`spawn`].
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload, exactly like `std::thread::JoinHandle::join`).
        ///
        /// # Errors
        /// The thread's panic payload, if it panicked.
        ///
        /// # Panics
        /// A model handle must be joined from a model thread of the
        /// same execution.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model { exec, id, slot } => {
                    let (_, me) = runtime::current()
                        .expect("model JoinHandle joined from a non-model thread");
                    if exec.thread_join(me, id) {
                        slot.lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .take()
                            .expect("finished virtual thread left no result")
                    } else {
                        // Aborting while unwinding: surface a placeholder
                        // payload (the caller is being torn down anyway).
                        Err(Box::new("model execution aborted before join"))
                    }
                }
            }
        }
    }

    /// Spawns a thread. On a model-checker thread this registers a
    /// virtual thread (the spawn edge seeds the child's vector clock
    /// from the parent's) and the child's facade operations are
    /// scheduled deterministically; anywhere else it is
    /// `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some((exec, me)) = runtime::current() {
            if let Some(child) = exec.register_thread(me) {
                let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
                let slot2 = Arc::clone(&slot);
                let exec2 = Arc::clone(&exec);
                std::thread::Builder::new()
                    .name(format!("tsg-model-vthread-{child}"))
                    .spawn(move || {
                        runtime::set_current(Some((Arc::clone(&exec2), child)));
                        let res = catch_unwind(AssertUnwindSafe(f));
                        runtime::set_current(None);
                        // Result first, then the finish event: a joiner
                        // only reads the slot after observing Finished.
                        *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(res);
                        exec2.thread_finished(child);
                    })
                    .expect("spawn OS thread backing a model vthread");
                return JoinHandle(Inner::Model {
                    exec,
                    id: child,
                    slot,
                });
            }
            // register_thread only declines while the thread is already
            // unwinding through an abort — fall through to std.
        }
        JoinHandle(Inner::Std(std::thread::spawn(f)))
    }
}
