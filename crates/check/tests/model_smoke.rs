//! Self-tests for the model checker (only built under `--cfg tsg_model`).
//!
//! These validate the checker itself — race detection fires on a
//! deliberately relaxed handoff, promoted Release/Acquire pairs and
//! RMW counters stay quiet, deadlocks and lost wakeups are caught, and
//! schedules replay bit-for-bit — before the engine contract tests in
//! `taxogram-core` rely on those verdicts.
#![cfg(tsg_model)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use tsg_check::model::Checker;
use tsg_check::sync::{Arc, AtomicBool, AtomicUsize, Condvar, Mutex, Ordering};
use tsg_check::thread;

/// The seeded intentionally-racy regression fixture from the issue: a
/// Relaxed flag "publishing" Relaxed data. The flag load reading the
/// cross-thread store has no happens-before edge, so the detector must
/// flag it.
#[test]
fn relaxed_handoff_is_flagged() {
    let report = Checker::new().target_interleavings(200).check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            let _ = data.load(Ordering::Relaxed);
        }
        t.join().unwrap();
    });
    assert!(
        !report.races.is_empty(),
        "deliberately relaxed handoff must be flagged"
    );
    let flagged_store = report
        .races
        .iter()
        .any(|r| r.write_op == "AtomicBool::store" || r.write_op == "AtomicUsize::store");
    assert!(flagged_store, "the racy store should appear: {:?}", report.races);
}

/// The same handoff with Release/Acquire on the flag: the
/// synchronizes-with edge covers the data store too, so nothing races.
#[test]
fn release_acquire_handoff_is_clean() {
    let report = Checker::new().target_interleavings(200).check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "publication must hold");
        }
        t.join().unwrap();
    });
    report.assert_race_free();
    assert!(report.interleavings >= 200 || report.exhaustive);
}

/// Relaxed `fetch_add` counters read only after join: the RMW-reads-RMW
/// carve-out plus the join edge keep them quiet.
#[test]
fn relaxed_rmw_counters_stay_quiet() {
    let report = Checker::new().target_interleavings(200).check(|| {
        let hits = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let h = Arc::clone(&hits);
                thread::spawn(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                    h.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 4, "post-join read is ordered");
    });
    report.assert_race_free();
}

/// Mutual exclusion under the model mutex: no lost increments in any
/// interleaving, and the exploration hits the issue's 1,000-schedule
/// floor.
#[test]
fn mutex_counter_is_exact_across_1000_interleavings() {
    let report = Checker::new().check(|| {
        let n = Arc::new(Mutex::new(0usize));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    for _ in 0..3 {
                        *n.lock().unwrap() += 1;
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 6);
    });
    report.assert_race_free();
    assert!(
        report.interleavings >= 1000 || report.exhaustive,
        "explored only {} interleavings without exhausting",
        report.interleavings
    );
}

/// Classic AB-BA lock inversion: some schedule within preemption bound
/// 2 deadlocks, and the checker reports it with a replayable schedule.
#[test]
fn lock_inversion_deadlock_is_detected() {
    let failure = catch_unwind(AssertUnwindSafe(|| {
        Checker::new().check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = thread::spawn(move || {
                let _gb = b3.lock().unwrap();
                let _ga = a3.lock().unwrap();
            });
            let _ = t1.join();
            let _ = t2.join();
        });
    }))
    .expect_err("the AB-BA inversion must deadlock under some schedule");
    let msg = panic_text(failure.as_ref());
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    assert!(msg.contains("schedule:"), "failure must carry a schedule: {msg}");
}

/// A waiter whose notifier forgets to signal: the lost wakeup strands
/// every thread and surfaces as a deadlock on the very first schedule.
#[test]
fn lost_wakeup_is_detected() {
    let failure = catch_unwind(AssertUnwindSafe(|| {
        Checker::new().check(|| {
            let flag = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (f2, c2) = (Arc::clone(&flag), Arc::clone(&cv));
            let waiter = thread::spawn(move || {
                let mut ready = f2.lock().unwrap();
                while !*ready {
                    ready = c2.wait(ready).unwrap();
                }
            });
            // Bug under test: sets the flag but never notifies.
            *flag.lock().unwrap() = true;
            let _ = waiter.join();
        });
    }))
    .expect_err("the missing notify must strand the waiter");
    let msg = panic_text(failure.as_ref());
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

/// The fixed protocol — notify under the lock — passes every schedule.
#[test]
fn condvar_handoff_completes_everywhere() {
    let report = Checker::new().target_interleavings(300).check(|| {
        let flag = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (f2, c2) = (Arc::clone(&flag), Arc::clone(&cv));
        let waiter = thread::spawn(move || {
            let mut ready = f2.lock().unwrap();
            while !*ready {
                ready = c2.wait(ready).unwrap();
            }
        });
        *flag.lock().unwrap() = true;
        cv.notify_one();
        waiter.join().unwrap();
    });
    report.assert_race_free();
}

/// A panicking virtual thread delivers its payload through `join`,
/// exactly like `std::thread` (the engines' catch_unwind plumbing
/// depends on this).
#[test]
fn child_panic_propagates_through_join() {
    Checker::new().target_interleavings(50).check(|| {
        let t = thread::spawn(|| panic!("worker blew up"));
        let err = t.join().expect_err("panic must surface");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map_or_else(|| "?".to_string(), str::to_string);
        assert!(msg.contains("worker blew up"));
    });
}

/// Replaying one schedule twice observes the identical event order —
/// the bit-for-bit replay guarantee named deterministic schedules rely
/// on.
#[test]
fn replay_is_bit_for_bit() {
    let run = |schedule: &[usize]| {
        let log = Arc::new(Mutex::new(Vec::new()));
        let inner = Arc::clone(&log);
        Checker::new().replay(schedule, move || {
            let workers: Vec<_> = (0..2)
                .map(|who| {
                    let log = Arc::clone(&inner);
                    thread::spawn(move || {
                        for step in 0..3u32 {
                            log.lock().unwrap().push((who, step));
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
        });
        // All virtual threads finished; this lock is uncontended std.
        let order = log.lock().unwrap().clone();
        order
    };
    let schedule = [1, 0, 2, 1, 0, 1, 2, 0, 1, 1, 0, 2];
    assert_eq!(run(&schedule), run(&schedule));
    assert_eq!(run(&[]), run(&[]));
}

/// Same seed, same exploration: `explore_random` is a pure function of
/// the seed (the PROPTEST_RNG_SEED determinism convention).
#[test]
fn seeded_exploration_is_deterministic() {
    let explore = || {
        Checker::new().seed(0x60be41).explore_random(40, || {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                x2.fetch_add(1, Ordering::AcqRel);
            });
            x.fetch_add(1, Ordering::AcqRel);
            t.join().unwrap();
            assert_eq!(x.load(Ordering::Acquire), 2);
        })
    };
    let (a, b) = (explore(), explore());
    assert_eq!(a.interleavings, b.interleavings);
    assert_eq!(a.races.len(), b.races.len());
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string payload".to_string())
}
