//! A minimal bounded multi-consumer channel (std-only).
//!
//! The streaming pipeline needs exactly one shape: a single producer (the
//! gSpan thread) pushing completed pattern classes, several workers
//! pulling them, and a hard capacity so the producer **blocks** when the
//! workers fall behind — that blocking is what bounds the number of
//! embedding lists resident at once. `std::sync::mpsc` is single-consumer
//! and its bounded flavor can't fan out, so this is a `Mutex<VecDeque>`
//! with two condvars. The queue is short (a few items per worker) and
//! each item is heavyweight (a pattern class), so lock contention is
//! negligible next to the work per item.
//!
//! On an early stop (a governance trip, a receiver drop, a worker
//! panic) the producer closes the channel and the pipeline *drains*
//! whatever is still queued: in-flight classes carry tracked gauge
//! reservations, and dropping them unobserved would leak those bytes
//! from the memory accounting (the governed paths assert the gauge
//! returns to zero).

use crate::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::collections::VecDeque;

/// Recovers the guard from a poisoned lock. The channel poisons only if a
/// caller panics between `lock` and the guard drop — every critical
/// section here leaves `State` consistent at all points, and a panicking
/// pipeline discards its results anyway, so surviving threads continue on
/// the recovered state instead of cascading `.expect()` panics.
pub(crate) fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A bounded FIFO usable from any number of threads by shared reference.
#[derive(Debug)]
#[doc(hidden)] // public only for the model-checker contract tests
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    /// Signaled when an item is taken (senders may retry).
    not_full: Condvar,
    /// Signaled when an item arrives or the channel closes.
    not_empty: Condvar,
}

#[derive(Debug)]
struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    closed: bool,
    /// Receivers currently parked on `not_empty`; lets senders skip the
    /// notify entirely when nobody is listening.
    waiting_recv: usize,
}

impl<T> Bounded<T> {
    /// Creates a channel holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Bounded {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
                waiting_recv: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the channel is full.
    ///
    /// # Panics
    /// Panics if called after [`close`](Bounded::close) — the pipeline's
    /// single producer closes only when done sending.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn send(&self, item: T) {
        let mut st = recover(self.state.lock());
        while st.queue.len() >= st.capacity && !st.closed {
            st = recover(self.not_full.wait(st));
        }
        assert!(!st.closed, "send on closed channel");
        st.queue.push_back(item);
        let wake = st.waiting_recv > 0;
        drop(st);
        if wake {
            self.not_empty.notify_one();
        }
    }

    /// Enqueues `item` unconditionally in a single lock acquisition: if
    /// the channel is full, the *oldest* queued item is popped to make
    /// room and handed back for the caller to process. This is the
    /// producer's steal-on-backpressure primitive — the old
    /// `try_send`/`try_recv` pairing took two lock round-trips and could
    /// spin when workers raced the producer for the same item; here the
    /// exchange is atomic and the producer never retries.
    ///
    /// # Panics
    /// Panics if called after [`close`](Bounded::close).
    pub fn send_or_swap(&self, item: T) -> Option<T> {
        let mut st = recover(self.state.lock());
        assert!(!st.closed, "send on closed channel");
        let stolen = if st.queue.len() >= st.capacity {
            st.queue.pop_front()
        } else {
            None
        };
        st.queue.push_back(item);
        let wake = stolen.is_none() && st.waiting_recv > 0;
        drop(st);
        // A swap leaves the queue length unchanged, so parked receivers
        // have nothing new to see; only a true enqueue notifies.
        if wake {
            self.not_empty.notify_one();
        }
        stolen
    }

    /// Dequeues an item without blocking; `None` if the queue is empty
    /// (whether or not the channel is closed).
    pub fn try_recv(&self) -> Option<T> {
        let mut st = recover(self.state.lock());
        let item = st.queue.pop_front();
        if item.is_some() {
            drop(st);
            self.not_full.notify_one();
        }
        item
    }

    /// Dequeues an item, blocking while the channel is empty and open.
    /// Returns `None` once the channel is closed **and** drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = recover(self.state.lock());
        loop {
            if let Some(item) = st.queue.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st.waiting_recv += 1;
            st = recover(self.not_empty.wait(st));
            st.waiting_recv -= 1;
        }
    }

    /// Closes the channel: queued items remain receivable, further `recv`s
    /// after draining return `None`, and blocked receivers wake up.
    pub fn close(&self) {
        let mut st = recover(self.state.lock());
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let ch = Bounded::new(4);
        ch.send(1);
        ch.send(2);
        ch.send(3);
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.recv(), Some(2));
        ch.close();
        assert_eq!(ch.recv(), Some(3), "queued items survive close");
        assert_eq!(ch.recv(), None);
        assert_eq!(ch.recv(), None);
    }

    #[test]
    fn capacity_blocks_producer_until_consumed() {
        let ch = Bounded::new(2);
        let sent = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..6 {
                    ch.send(i);
                    sent.fetch_add(1, Ordering::SeqCst);
                }
                ch.close();
            });
            // Give the producer time to fill the channel and block.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let filled = sent.load(Ordering::SeqCst);
            assert!(
                filled <= 3,
                "producer ran {filled} sends past a capacity-2 channel"
            );
            let mut got = vec![];
            while let Some(v) = ch.recv() {
                got.push(v);
            }
            assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        });
    }

    #[test]
    fn send_or_swap_exchanges_oldest_when_full() {
        let ch = Bounded::new(2);
        assert_eq!(ch.send_or_swap(1), None);
        assert_eq!(ch.send_or_swap(2), None);
        // Full: 3 displaces the oldest (1), queue becomes [2, 3].
        assert_eq!(ch.send_or_swap(3), Some(1));
        assert_eq!(ch.recv(), Some(2));
        assert_eq!(ch.recv(), Some(3));
        ch.close();
        assert_eq!(ch.recv(), None);
    }

    #[test]
    fn multiple_consumers_partition_items() {
        let ch = Bounded::new(3);
        let taken = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while ch.recv().is_some() {
                        taken.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            for i in 0..100 {
                ch.send(i);
            }
            ch.close();
        });
        assert_eq!(taken.load(Ordering::SeqCst), 100);
    }
}
