//! Mining configuration: threshold, caps, and the paper's efficiency
//! enhancements as independent toggles.

/// The four efficiency enhancements of §3 ("Additional Efficiency
/// Enhancements and Pruning Methods"), each independently switchable so
/// the benchmark suite can reproduce the paper's *baseline* (all off) and
/// run per-enhancement ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Enhancements {
    /// *(a)* During specialized-pattern enumeration, once replacing a node
    /// label with child `c` yields insufficient support, skip every
    /// descendant of `c` at that position (support is antitone along
    /// specialization, so this pruning is exact). When off, the enumerator
    /// keeps probing descendants with non-empty occurrence sets — the
    /// paper's baseline behavior.
    pub apriori_child_prune: bool,
    /// *(b)* Remove taxonomy concepts whose generalized size-1 support is
    /// below the threshold before mining, shrinking every occurrence
    /// index. (Also covers Step 2's note (ii): infrequent labels are not
    /// inserted into occurrence-index entries.)
    pub prune_infrequent_labels: bool,
    /// *(c)* Before enumerating a class, descend each root-position label
    /// along children whose occurrence set equals the parent's — those
    /// parents can only yield over-generalized patterns.
    pub predescend_roots: bool,
    /// *(d)* Contract occurrence-index nodes whose occurrence set equals a
    /// child's, rewiring the child to the removed node's parents; every
    /// pattern using the removed label is necessarily over-generalized.
    pub contract_equal_sets: bool,
}

impl Enhancements {
    /// Every enhancement on — the configuration the paper calls
    /// "Taxogram".
    pub fn all() -> Self {
        Enhancements {
            apriori_child_prune: true,
            prune_infrequent_labels: true,
            predescend_roots: true,
            contract_equal_sets: true,
        }
    }

    /// Every enhancement off — the configuration the paper calls the
    /// "baseline algorithm" (§4.1: "the same as Taxogram except that the
    /// baseline algorithm does not utilize efficiency enhancements").
    pub fn none() -> Self {
        Enhancements {
            apriori_child_prune: false,
            prune_infrequent_labels: false,
            predescend_roots: false,
            contract_equal_sets: false,
        }
    }
}

impl Default for Enhancements {
    fn default() -> Self {
        Enhancements::all()
    }
}

/// Full mining configuration.
#[derive(Clone, Copy, Debug)]
pub struct TaxogramConfig {
    /// Fractional support threshold `θ ∈ [0, 1]`; a pattern must occur in
    /// at least `⌈θ·|D|⌉` distinct graphs (and always at least one).
    pub threshold: f64,
    /// Optional cap on pattern size in edges (unlimited when `None`).
    pub max_edges: Option<usize>,
    /// Enhancement toggles.
    pub enhancements: Enhancements,
    /// Emit over-generalized patterns too (skipping the paper's
    /// minimality filter). Needed by the two-pass partitioned miner
    /// ([`crate::son`]): a pattern can be locally over-generalized in
    /// every partition yet globally minimal, so partition-local mining
    /// must keep everything frequent. Off by default.
    pub keep_overgeneralized: bool,
}

impl TaxogramConfig {
    /// Standard configuration (all enhancements) at the given threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        TaxogramConfig {
            threshold,
            max_edges: None,
            enhancements: Enhancements::all(),
            keep_overgeneralized: false,
        }
    }

    /// The paper's baseline: identical pipeline, no enhancements.
    pub fn baseline(threshold: f64) -> Self {
        TaxogramConfig {
            threshold,
            max_edges: None,
            enhancements: Enhancements::none(),
            keep_overgeneralized: false,
        }
    }

    /// Returns a copy with a pattern-size cap.
    pub fn max_edges(mut self, cap: usize) -> Self {
        self.max_edges = Some(cap);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let t = TaxogramConfig::with_threshold(0.2);
        assert_eq!(t.enhancements, Enhancements::all());
        assert!(t.max_edges.is_none());
        let b = TaxogramConfig::baseline(0.2);
        assert_eq!(b.enhancements, Enhancements::none());
        assert!(!b.enhancements.apriori_child_prune);
        let capped = t.max_edges(5);
        assert_eq!(capped.max_edges, Some(5));
        assert_eq!(Enhancements::default(), Enhancements::all());
    }
}
