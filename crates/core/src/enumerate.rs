//! Step 3: enumerating specialized patterns from a pattern class
//! (paper §3, Step 3).
//!
//! Starting from the class's most-general label vector, each pattern node
//! label is replaced by one of its children in the corresponding occurrence
//! index entry; the candidate's occurrence set is a single bitset
//! intersection (Lemma 7) and its support the count of distinct graphs in
//! it. A pattern is **over-generalized** exactly when some one-step child
//! replacement keeps the support unchanged (support is antitone along
//! specialization — Lemma 2 — so deeper equal-support witnesses imply a
//! one-step witness), which yields the minimality of the output (Lemma 8).
//!
//! ### Duplicate suppression
//!
//! The paper suppresses duplicate label vectors with processed-node sets
//! (PNS) plus a follow-up check for over-generalized patterns hidden by the
//! PNS cutoff (Example 3.8), and marks visited labels to handle shared
//! children in DAG taxonomies. This implementation achieves the same
//! effect with one mechanism: every vector is canonicalized under the
//! skeleton's automorphism group and recorded in a per-class visited set,
//! so each *pattern* (not each vector) is expanded exactly once. This also
//! covers a case the PNS discussion leaves implicit: on symmetric
//! skeletons, distinct vectors (e.g. `(b,c)` and `(c,b)` on the symmetric
//! edge `a—a`) denote the same pattern. Because the over-generalization
//! test always probes *all* positions, no follow-up pass is needed.

// tsg-lint: allow(index) — pos walks v, whose entries the traversal itself pushed below the entry count

use crate::config::Enhancements;
use crate::oi::{LocalId, OccurrenceIndex};
use tsg_bitset::BitSet;
use tsg_graph::{LabeledGraph, NodeLabel};
use tsg_iso::{automorphisms, canonical_under_automorphisms};
use tsg_taxonomy::Taxonomy;
use std::collections::HashSet;

/// Counters reported per mining run (summed over classes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Label vectors whose candidate children were evaluated.
    pub vectors_visited: usize,
    /// Bitset intersections performed (one per candidate specialization —
    /// the unit of work Lemma 7 reduces support computation to).
    pub intersections: usize,
    /// Patterns emitted (frequent, not over-generalized, no artificial
    /// labels).
    pub emitted: usize,
    /// Frequent patterns suppressed as over-generalized.
    pub overgeneralized: usize,
}

/// One emitted pattern: the specialized label vector, its support count,
/// and the graphs it occurs in.
pub struct EmittedPattern<'a> {
    /// Labels per skeleton vertex.
    pub labels: &'a [NodeLabel],
    /// Distinct-graph support count.
    pub support: usize,
}

/// Reusable per-worker enumeration scratch: the visited set, the graph-id
/// scratch bitset, the label buffer, and pools of dense working sets and
/// work vectors. One `EnumScratch` serves any number of classes in
/// sequence; after a few classes of warm-up, enumeration allocates only
/// for visited-set keys (which must be owned by the set).
#[derive(Debug, Default)]
pub struct EnumScratch {
    visited: HashSet<Vec<NodeLabel>>,
    scratch: BitSet,
    label_buf: Vec<NodeLabel>,
    /// Retired dense working sets, re-targeted via [`BitSet::reset`].
    dense_pool: Vec<BitSet>,
    /// Retired per-vector descent lists.
    work_pool: Vec<Vec<(usize, LocalId, usize)>>,
}

impl EnumScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        EnumScratch::default()
    }

    /// Re-arms the per-class state (pools persist across classes).
    fn begin_class(&mut self, db_len: usize) {
        self.visited.clear();
        self.scratch.reset(db_len);
        self.label_buf.clear();
    }
}

struct Ctx<'a, F: FnMut(EmittedPattern<'_>)> {
    oi: &'a OccurrenceIndex,
    min_support: usize,
    cfg: &'a Enhancements,
    taxonomy: &'a Taxonomy,
    autos: Vec<Vec<usize>>,
    keep_overgeneralized: bool,
    s: &'a mut EnumScratch,
    emit: F,
    stats: EnumerationStats,
}

impl<F: FnMut(EmittedPattern<'_>)> Ctx<'_, F> {
    /// The taxonomy-label vector behind the local-id vector `v`, written
    /// into the reusable buffer.
    fn fill_labels(&mut self, v: &[LocalId]) {
        self.s.label_buf.clear();
        self.s.label_buf.extend(
            v.iter()
                .zip(&self.oi.entries)
                .map(|(&id, e)| e.label_of(id)),
        );
    }
}

/// Enumerates every member of the pattern class rooted at `skeleton` (the
/// class's most-general pattern, as mined from the relabeled database),
/// calling `emit` for each frequent non-over-generalized member.
///
/// Returns the per-class enumeration counters.
pub fn enumerate_class<F: FnMut(EmittedPattern<'_>)>(
    skeleton: &LabeledGraph,
    oi: &OccurrenceIndex,
    taxonomy: &Taxonomy,
    min_support: usize,
    db_len: usize,
    cfg: &Enhancements,
    emit: F,
) -> EnumerationStats {
    enumerate_class_full(skeleton, oi, taxonomy, min_support, db_len, cfg, false, emit)
}

/// Like [`enumerate_class`], with `keep_overgeneralized` also emitting the
/// patterns the minimality filter would drop (used by [`crate::son`]).
#[allow(clippy::too_many_arguments)]
pub fn enumerate_class_full<F: FnMut(EmittedPattern<'_>)>(
    skeleton: &LabeledGraph,
    oi: &OccurrenceIndex,
    taxonomy: &Taxonomy,
    min_support: usize,
    db_len: usize,
    cfg: &Enhancements,
    keep_overgeneralized: bool,
    emit: F,
) -> EnumerationStats {
    let mut scratch = EnumScratch::new();
    enumerate_class_scratch(
        skeleton,
        oi,
        taxonomy,
        min_support,
        db_len,
        cfg,
        keep_overgeneralized,
        &mut scratch,
        emit,
    )
}

/// Like [`enumerate_class_full`], reusing a caller-owned [`EnumScratch`]
/// across classes — the form the streaming pipeline's workers use so the
/// hot loop allocates ~nothing after warm-up.
#[allow(clippy::too_many_arguments)]
pub fn enumerate_class_scratch<F: FnMut(EmittedPattern<'_>)>(
    skeleton: &LabeledGraph,
    oi: &OccurrenceIndex,
    taxonomy: &Taxonomy,
    min_support: usize,
    db_len: usize,
    cfg: &Enhancements,
    keep_overgeneralized: bool,
    scratch: &mut EnumScratch,
    emit: F,
) -> EnumerationStats {
    scratch.begin_class(db_len);
    let mut ctx = Ctx {
        oi,
        min_support,
        cfg,
        taxonomy,
        autos: automorphisms(skeleton),
        keep_overgeneralized,
        s: scratch,
        emit,
        stats: EnumerationStats::default(),
    };
    // The start vector is each entry's root: the most-general label, or a
    // deeper equal-occurrence label when enhancement (c)/(d) contracted it.
    let mut v: Vec<LocalId> = oi.entries.iter().map(|e| e.root()).collect();
    let ocs = oi.full_set();
    let sup = tsg_bitset::distinct_mapped_count(&ocs, &oi.occ_graph, &mut ctx.s.scratch);
    ctx.fill_labels(&v);
    let key = canonical_under_automorphisms(&ctx.s.label_buf, &ctx.autos);
    ctx.s.visited.insert(key);
    recurse(&mut ctx, &mut v, &ocs, sup);
    ctx.stats
}

fn recurse<F: FnMut(EmittedPattern<'_>)>(
    ctx: &mut Ctx<'_, F>,
    v: &mut Vec<LocalId>,
    ocs: &BitSet,
    sup: usize,
) {
    ctx.stats.vectors_visited += 1;
    let mut overgeneralized = false;
    // (position, child local id, child support) triples worth descending
    // into.
    let mut work = ctx.s.work_pool.pop().unwrap_or_default();
    let oi = ctx.oi;
    for (pos, entry) in oi.entries.iter().enumerate() {
        for &child in entry.children(v[pos]) {
            let cset = entry.occs(child);
            ctx.stats.intersections += 1;
            // Lemma 7: the candidate's support is one adaptive∩dense
            // intersection, fused with the per-graph distinct count.
            let child_sup = tsg_bitset::adaptive_dense_distinct_mapped_count(
                cset,
                ocs,
                &oi.occ_graph,
                &mut ctx.s.scratch,
            );
            if child_sup == sup {
                // An equal-support one-step specialization exists; by
                // Lemma 2 this is the complete over-generalization test.
                overgeneralized = true;
            }
            if child_sup >= ctx.min_support {
                work.push((pos, child, child_sup));
            } else if !ctx.cfg.apriori_child_prune {
                // Enhancement (a) disabled — the paper's baseline still
                // "checks patterns created via replacement of n with any
                // descendant of c": probe every descendant's occurrence
                // set (each probe is one wasted intersection). Support is
                // antitone along specialization, so none can be frequent
                // and no recursion or output can result; only the cost is
                // real.
                probe_descendants(ctx, entry, child, ocs);
            }
        }
    }
    if sup >= ctx.min_support {
        ctx.fill_labels(v);
        if (ctx.keep_overgeneralized || !overgeneralized)
            && !has_artificial(ctx.taxonomy, &ctx.s.label_buf)
        {
            ctx.stats.emitted += 1;
            let labels = std::mem::take(&mut ctx.s.label_buf);
            (ctx.emit)(EmittedPattern {
                labels: &labels,
                support: sup,
            });
            ctx.s.label_buf = labels;
        }
        if overgeneralized {
            ctx.stats.overgeneralized += 1;
        }
    }
    for (pos, child, child_sup) in work.drain(..) {
        let parent = std::mem::replace(&mut v[pos], child);
        ctx.fill_labels(v);
        let key = canonical_under_automorphisms(&ctx.s.label_buf, &ctx.autos);
        if ctx.s.visited.insert(key) {
            // The next level's working set comes from the per-worker pool
            // (re-targeted in place), so descending allocates nothing once
            // the pool has grown to the recursion depth.
            let mut child_ocs = ctx.s.dense_pool.pop().unwrap_or_default();
            ctx.oi.entries[pos]
                .occs(child)
                .intersect_into_dense(ocs, &mut child_ocs);
            recurse(ctx, v, &child_ocs, child_sup);
            ctx.s.dense_pool.push(child_ocs);
        }
        v[pos] = parent;
    }
    ctx.s.work_pool.push(work);
}

/// Baseline-mode wasted work: computes an intersection count for every
/// strict descendant of `below` present in the entry (BFS over the entry's
/// DAG, each label probed once).
fn probe_descendants<F: FnMut(EmittedPattern<'_>)>(
    ctx: &mut Ctx<'_, F>,
    entry: &crate::oi::OiEntry,
    below: LocalId,
    ocs: &BitSet,
) {
    let mut queue: Vec<LocalId> = entry.children(below).to_vec();
    let mut seen: HashSet<LocalId> = queue.iter().copied().collect();
    while let Some(l) = queue.pop() {
        ctx.stats.intersections += 1;
        let _ = tsg_bitset::adaptive_dense_distinct_mapped_count(
            entry.occs(l),
            ocs,
            &ctx.oi.occ_graph,
            &mut ctx.s.scratch,
        );
        for &c in entry.children(l) {
            if seen.insert(c) {
                queue.push(c);
            }
        }
    }
}

fn has_artificial(taxonomy: &Taxonomy, v: &[NodeLabel]) -> bool {
    v.iter().any(|&l| taxonomy.is_artificial(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oi::{OccurrenceIndex, OiOptions};
    use crate::relabel::relabel;
    use tsg_gspan::{GSpan, GSpanConfig, Grow, MinedPattern, PatternSink};
    use tsg_taxonomy::samples;

    /// Runs Step 1 + Step 2 on the Figure 1.4 database and enumerates the
    /// 1-edge class with the given enhancements, returning
    /// `(labels, support)` pairs sorted for comparison.
    fn enumerate_figure_1_4(
        min_support: usize,
        cfg: Enhancements,
    ) -> (samples::SampleConcepts, Vec<(Vec<NodeLabel>, usize)>, EnumerationStats) {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let rel = relabel(&db, &t).unwrap();

        struct Grab {
            embs: Vec<tsg_gspan::Embedding>,
            skeleton: Option<LabeledGraph>,
        }
        impl PatternSink for Grab {
            fn report(&mut self, p: &MinedPattern<'_>) -> Grow {
                if p.graph.edge_count() == 1 && self.skeleton.is_none() {
                    self.embs = p.embeddings.to_vec();
                    self.skeleton = Some(p.graph.clone());
                }
                Grow::Continue
            }
        }
        let mut grab = Grab {
            embs: vec![],
            skeleton: None,
        };
        GSpan::new(
            &rel.dmg,
            GSpanConfig {
                min_support,
                max_edges: None,
            },
        )
        .mine(&mut grab);
        let skeleton = grab.skeleton.expect("edge class is frequent");
        let frequent_mask;
        let frequent = if cfg.prune_infrequent_labels {
            let freqs = rel.taxonomy.generalized_label_frequencies(&db);
            let mut mask = BitSet::new(rel.taxonomy.concept_count());
            for (i, &f) in freqs.iter().enumerate() {
                if f >= min_support {
                    mask.insert(i);
                }
            }
            frequent_mask = mask;
            Some(&frequent_mask)
        } else {
            None
        };
        let oi = OccurrenceIndex::build(
            &grab.embs,
            &rel.originals,
            skeleton.labels(),
            &rel.taxonomy,
            OiOptions {
                frequent,
                contract_equal_sets: cfg.contract_equal_sets,
                predescend_roots: cfg.predescend_roots,
            },
        );
        let mut out = Vec::new();
        let stats = enumerate_class(
            &skeleton,
            &oi,
            &rel.taxonomy,
            min_support,
            db.len(),
            &cfg,
            |p| out.push((p.labels.to_vec(), p.support)),
        );
        out.sort();
        (c, out, stats)
    }

    #[test]
    fn figure_1_5_patterns_at_two_thirds() {
        // Analog of paper Figure 1.5 / Example 3.6 on our fixture at
        // θ = 2/3. Database: G1 = d—b, G2 = c—f—g, G3 = w—c.
        let (c, got, _stats) = enumerate_figure_1_4(2, Enhancements::none());
        for (v, sup) in &got {
            assert!(*sup >= 2, "emitted pattern {v:?} below threshold");
        }
        // a—a has support 3, and no single-step specialization keeps
        // support 3 (a—b misses G3, a—c misses G1), so a—a is minimal and
        // must be emitted — mirroring how the paper's Figure 2.4 keeps
        // root-labeled patterns when nothing deeper ties their support.
        let a_a = got.iter().find(|(v, _)| v == &vec![c.a, c.a]);
        assert_eq!(a_a.map(|(_, s)| *s), Some(3));
        // a—b (support 2: G1, G2) is over-generalized by b—b? b—b needs
        // both endpoints under b: G1 (d—b) qualifies, G2's f—g has f
        // under c only — support 1. So a—b is over-generalized only if
        // some equal-support specialization exists: b—b has support 1,
        // d—b support 1 … a—b survives with support 2 unless (a,g)-style
        // patterns tie it. g is under both b and c; a—g occurs in G2
        // only (support 1). Hence a—b must be emitted with support 2.
        let a_b = got
            .iter()
            .find(|(v, _)| {
                let mut k = v.clone();
                k.sort();
                k == vec![c.a, c.b]
            });
        assert_eq!(a_b.map(|(_, s)| *s), Some(2), "a—b missing: {got:?}");
    }

    #[test]
    fn enhancements_do_not_change_the_answer() {
        let variants = [
            Enhancements::none(),
            Enhancements::all(),
            Enhancements {
                apriori_child_prune: true,
                prune_infrequent_labels: false,
                predescend_roots: false,
                contract_equal_sets: false,
            },
            Enhancements {
                apriori_child_prune: false,
                prune_infrequent_labels: true,
                predescend_roots: true,
                contract_equal_sets: false,
            },
            Enhancements {
                apriori_child_prune: false,
                prune_infrequent_labels: false,
                predescend_roots: false,
                contract_equal_sets: true,
            },
        ];
        let mut results = variants
            .iter()
            .map(|cfg| enumerate_figure_1_4(2, *cfg).1);
        let first = results.next().unwrap();
        for (i, r) in results.enumerate() {
            assert_eq!(first, r, "variant {} diverged", i + 1);
        }
    }

    #[test]
    fn enhancement_a_reduces_intersections() {
        let (_, out_off, stats_off) = enumerate_figure_1_4(3, Enhancements::none());
        let (_, out_on, stats_on) = enumerate_figure_1_4(3, Enhancements::all());
        assert_eq!(out_off, out_on);
        assert!(
            stats_on.intersections <= stats_off.intersections,
            "enhancements should not do more work: {} vs {}",
            stats_on.intersections,
            stats_off.intersections
        );
        assert!(stats_on.vectors_visited <= stats_off.vectors_visited);
    }

    #[test]
    fn no_pattern_is_emitted_twice() {
        let (_, got, _) = enumerate_figure_1_4(1, Enhancements::none());
        let mut seen = std::collections::HashSet::new();
        // Canonicalize under the symmetric-edge automorphism by sorting
        // the 2-vector.
        for (v, _) in &got {
            let mut k = v.clone();
            k.sort();
            assert!(seen.insert(k), "duplicate pattern {v:?}");
        }
    }

    #[test]
    fn every_emitted_pattern_is_minimal() {
        // Directly verify the minimality property at θ = 1/3: for every
        // emitted (vector, support) there is no emitted specialization of
        // it with equal support.
        let (_, got, _) = enumerate_figure_1_4(1, Enhancements::none());
        let (_, t) = samples::sample_taxonomy();
        for (v, sup) in &got {
            for (w, wsup) in &got {
                if v == w || sup != wsup {
                    continue;
                }
                // w specializes v positionwise (or under the edge swap)?
                let direct = v
                    .iter()
                    .zip(w)
                    .all(|(&a, &b)| t.is_ancestor(a, b));
                let swapped = v
                    .iter()
                    .zip(w.iter().rev())
                    .all(|(&a, &b)| t.is_ancestor(a, b));
                assert!(
                    !(direct || swapped) || v == w,
                    "{v:?} (sup {sup}) is over-generalized w.r.t. {w:?}"
                );
            }
        }
    }
}
