//! Error type for the mining pipeline.
//!
//! Early termination under governance (a cancelled token, an expired
//! deadline, an exhausted budget) is **not** an error and never appears
//! here: the governed entry points return `Ok` with a
//! [`crate::MiningOutcome`] whose [`crate::Termination`] names the stop.
//! This enum is reserved for runs that cannot produce a trustworthy
//! (even partial) result.

use tsg_graph::{GraphId, NodeId, NodeLabel};

/// Errors surfaced by [`crate::Taxogram::mine`].
#[derive(Debug, Clone, PartialEq)]
pub enum TaxogramError {
    /// A database vertex carries a label that is not a (present) concept of
    /// the taxonomy, violating "graph database D over taxonomy T"
    /// (`L_G ⊆ L_T`, paper §2).
    LabelNotInTaxonomy {
        /// The graph containing the vertex.
        graph: GraphId,
        /// The vertex.
        node: NodeId,
        /// Its label.
        label: NodeLabel,
    },
    /// The support threshold is outside `[0, 1]`.
    InvalidThreshold {
        /// The offending value.
        theta: f64,
    },
    /// A worker thread of a parallel engine panicked. The panic was
    /// caught inside the worker, the remaining workers unwound cleanly,
    /// and the first panic's payload is reported here — a parallel run
    /// never aborts the process or deadlocks on a dead worker.
    WorkerPanicked {
        /// The first panic's payload, rendered as text.
        message: String,
    },
    /// A spill file of the sharded out-of-core miner could not be
    /// written, or failed to read back intact (truncation, a corrupt
    /// length prefix, a missing file). A damaged shard always surfaces
    /// here — never as a silently short mining result.
    ShardIo {
        /// The shard whose spill file failed.
        shard: usize,
        /// What went wrong, including the byte offset when known.
        message: String,
    },
}

impl std::fmt::Display for TaxogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaxogramError::LabelNotInTaxonomy { graph, node, label } => write!(
                f,
                "vertex {node} of graph {graph} has label {label} which is not in the taxonomy"
            ),
            TaxogramError::InvalidThreshold { theta } => {
                write!(f, "support threshold {theta} outside [0, 1]")
            }
            TaxogramError::WorkerPanicked { message } => {
                write!(f, "a mining worker panicked: {message}")
            }
            TaxogramError::ShardIo { shard, message } => {
                write!(f, "shard {shard} spill i/o failed: {message}")
            }
        }
    }
}

impl std::error::Error for TaxogramError {}
