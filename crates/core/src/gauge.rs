//! Concurrent high-water-mark byte accounting.

use crate::sync::{AtomicUsize, Ordering};

/// Tracks a current byte total and its high-water mark across threads.
///
/// `peak()` is a true high-water mark of *concurrently resident* bytes:
/// every `add` bumps the current total and folds it into the peak before
/// the matching `sub` releases it. (The peak can slightly overestimate
/// the instantaneous maximum when two `add`s race their `fetch_max`es,
/// but it never underestimates — the conservative direction for a
/// memory bound.)
#[derive(Debug, Default)]
#[doc(hidden)] // public only for the model-checker contract tests
pub struct MemoryGauge {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryGauge {
    pub fn new() -> Self {
        MemoryGauge::default()
    }

    /// Records `bytes` becoming resident.
    pub fn add(&self, bytes: usize) {
        // Release on both counters: `current()` feeds live admission
        // decisions and `peak()` is read by the reporting thread — both
        // reads act on the value, so the updates carry happens-before
        // (post-join reads are *additionally* ordered by the join edge).
        let now = self.current.fetch_add(bytes, Ordering::Release) + bytes; // tsg-lint: ordering(ORD-06)
        self.peak.fetch_max(now, Ordering::Release); // tsg-lint: ordering(ORD-06)
    }

    /// Records `bytes` being released.
    pub fn sub(&self, bytes: usize) {
        // Release: pairs with the Acquire read in `current()`.
        self.current.fetch_sub(bytes, Ordering::Release); // tsg-lint: ordering(ORD-06)
    }

    /// Highest value `current` has reached.
    pub fn peak(&self) -> usize {
        // Acquire: pairs with the Release `fetch_max` in `add`. The
        // reporting thread reads this after joining the workers — the
        // join already synchronizes-with their updates — but the Acquire
        // keeps the read well-ordered even from monitoring threads that
        // never join.
        self.peak.load(Ordering::Acquire) // tsg-lint: ordering(ORD-07)
    }

    /// Bytes resident right now. Returns to zero after a run — including
    /// an early-terminated one — once every reservation has been released
    /// (the governance tests assert this balance).
    pub fn current(&self) -> usize {
        // Acquire: pairs with the Release updates in `add`/`sub`.
        self.current.load(Ordering::Acquire) // tsg-lint: ordering(ORD-07)
    }
}

/// The work-stealing search reports task embedding residency through this
/// hook, making `peak_embedding_bytes` a true high-water mark of bytes
/// held by queued-or-running search tasks.
impl tsg_gspan::TaskGauge for MemoryGauge {
    fn task_enqueued(&self, bytes: usize) {
        self.add(bytes);
    }
    fn task_dequeued(&self, bytes: usize) {
        self.sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_concurrent_residency_not_per_item_max() {
        let g = MemoryGauge::new();
        g.add(100);
        g.add(50); // two items resident at once: 150
        g.sub(100);
        g.add(20);
        g.sub(50);
        g.sub(20);
        assert_eq!(g.peak(), 150);
    }

    #[test]
    fn peak_is_monotone_under_threads() {
        let g = MemoryGauge::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        g.add(3);
                        g.sub(3);
                    }
                });
            }
        });
        assert!(g.peak() >= 3);
        assert!(g.peak() <= 24, "peak {} exceeds 8 threads * 3 bytes", g.peak());
        assert_eq!(g.current.load(Ordering::Relaxed), 0);
    }
}
