//! Resource governance: cooperative cancellation, deadlines, and budgets.
//!
//! A low-θ run on a large database can take unbounded time and memory;
//! production services need mining that *degrades gracefully* instead of
//! finishing-or-being-killed. This module provides the governance layer
//! every engine threads through:
//!
//! * [`CancelToken`] — a cloneable atomic flag the caller flips from any
//!   thread; engines poll it cooperatively at class granularity.
//! * [`Budget`] — optional deadline, peak-memory, pattern-count, and
//!   class-count ceilings, checked against the engines' existing
//!   [`MemoryGauge`](crate::MiningStats::peak_oi_bytes) high-water marks.
//! * [`Termination`] — a truthful report of *why* a run ended
//!   ([`TerminationReason`]), how many classes finished vs. were
//!   abandoned, and the DFS-code frontier at the stop point.
//! * [`MiningOutcome`] — a [`MiningResult`] plus its [`Termination`]:
//!   the partial pattern set of an early-stopped run, guaranteed to be a
//!   *completed prefix* of the full serial output (see below).
//!
//! # Poll points and the determinism contract
//!
//! Every engine gates **class admission** through [`Governor::admit_class`]
//! at its [`PatternSink::report`](tsg_gspan::PatternSink::report) call —
//! once per pattern class, before any Step 2/3 work for that class starts.
//! A rejected admission makes the sink return
//! [`Grow::Stop`](tsg_gspan::Grow::Stop), which unwinds the gSpan search
//! (serial) or halts the scheduler (work-stealing) within one task.
//! Classes already admitted are always finished — budgets never tear a
//! class in half — so an early stop can overshoot each budget by at most
//! the classes in flight (1 for the serial engines, ≤ threads + channel
//! capacity for the parallel ones).
//!
//! The serial, barrier, and pipelined engines admit classes in serial
//! (canonical pre-order) class order, so stopping after `N` admissions
//! yields exactly the first `N` classes' patterns — byte-identical to a
//! prefix of the full serial output. The work-stealing engine admits in
//! schedule order; its merge restores the contract by cutting the
//! completed set at the smallest unfinished DFS code (frontier ∪
//! rejected), discarding any completed class past the cut (counted as
//! abandoned). In all four engines the emitted pattern list is a
//! completed prefix of the serial stream.

use crate::channel::recover;
use crate::sync::{Arc, AtomicBool, AtomicUsize, Mutex, Ordering};
use std::time::{Duration, Instant};

use crate::miner::MiningResult;

/// A cloneable cancellation flag shared between the caller and a running
/// mining engine. Cancelling is a one-way, idempotent operation; engines
/// poll the token cooperatively at class granularity (every worker
/// observes it within one task).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Safe from any thread, any number of times.
    pub fn cancel(&self) {
        // Release: everything the cancelling thread did before `cancel`
        // happens-before a worker that observes the flag (workers act on
        // the observation — the store is a happens-before carrier, not a
        // plain counter).
        self.flag.store(true, Ordering::Release); // tsg-lint: ordering(ORD-01)
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        // Acquire: pairs with the Release store in `cancel`.
        self.flag.load(Ordering::Acquire) // tsg-lint: ordering(ORD-01)
    }
}

/// Resource ceilings for a mining run. All fields default to unlimited;
/// each is checked at class-admission time and never tears a class.
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Wall-clock limit from the start of the run.
    pub deadline: Option<Duration>,
    /// Ceiling on the engines' tracked peak resident bytes (occurrence
    /// indices plus in-flight embedding lists — the same high-water marks
    /// reported as `peak_oi_bytes` / `peak_embedding_bytes`).
    pub max_peak_bytes: Option<usize>,
    /// Stop admitting classes once this many patterns have been emitted.
    /// The class that crosses the ceiling still completes, so the final
    /// count may overshoot by the last class's patterns.
    pub max_patterns: Option<usize>,
    /// Admit at most this many pattern classes.
    pub max_classes: Option<usize>,
}

impl Budget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock deadline.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Sets the peak-resident-bytes ceiling.
    pub fn max_peak_bytes(mut self, bytes: usize) -> Self {
        self.max_peak_bytes = Some(bytes);
        self
    }

    /// Sets the emitted-pattern ceiling.
    pub fn max_patterns(mut self, patterns: usize) -> Self {
        self.max_patterns = Some(patterns);
        self
    }

    /// Sets the admitted-class ceiling.
    pub fn max_classes(mut self, classes: usize) -> Self {
        self.max_classes = Some(classes);
        self
    }

    /// Whether every ceiling is unset.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_peak_bytes.is_none()
            && self.max_patterns.is_none()
            && self.max_classes.is_none()
    }
}

/// Which [`Budget`] ceiling a run exceeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// `max_peak_bytes`.
    Memory,
    /// `max_patterns`.
    Patterns,
    /// `max_classes`.
    Classes,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetKind::Memory => "memory",
            BudgetKind::Patterns => "patterns",
            BudgetKind::Classes => "classes",
        })
    }
}

/// Why a mining run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminationReason {
    /// The search space was exhausted; the result is complete.
    Completed,
    /// A [`CancelToken`] was cancelled (or a deterministic test trigger
    /// fired).
    Cancelled,
    /// The [`Budget::deadline`] passed.
    DeadlineExceeded,
    /// A non-time budget ceiling was hit.
    BudgetExceeded {
        /// The ceiling that was hit.
        which: BudgetKind,
    },
}

impl std::fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TerminationReason::Completed => f.write_str("completed"),
            TerminationReason::Cancelled => f.write_str("cancelled"),
            TerminationReason::DeadlineExceeded => f.write_str("deadline exceeded"),
            TerminationReason::BudgetExceeded { which } => {
                write!(f, "budget exceeded ({which})")
            }
        }
    }
}

/// How (and how far) a governed run got.
#[derive(Clone, Debug)]
pub struct Termination {
    /// Why the run stopped.
    pub reason: TerminationReason,
    /// Pattern classes fully enumerated and present in the output.
    pub classes_finished: usize,
    /// Classes observed but not in the output: rejected at admission,
    /// still queued at the stop point, or completed past the
    /// deterministic prefix cut and discarded.
    pub classes_abandoned: usize,
    /// DFS codes of the unfinished work at the stop point, in canonical
    /// order, capped at [`FRONTIER_CAP`] entries. Empty for a completed
    /// run. Resuming a run from here is possible in principle: the
    /// frontier plus the finished-class count identify the exact cut.
    pub frontier: Vec<String>,
}

/// Maximum frontier codes retained in a [`Termination`] (the abandoned
/// *count* is always exact; only the code listing is capped).
pub const FRONTIER_CAP: usize = 32;

impl Termination {
    /// A completed run over `classes` classes.
    pub(crate) fn completed(classes: usize) -> Self {
        Termination {
            reason: TerminationReason::Completed,
            classes_finished: classes,
            classes_abandoned: 0,
            frontier: Vec::new(),
        }
    }

    /// Whether the run exhausted the search space.
    pub fn is_complete(&self) -> bool {
        self.reason == TerminationReason::Completed
    }
}

/// A mining result together with its termination report. Produced by the
/// `*_governed` engine entry points; `result.patterns` is always a
/// completed prefix of the full serial pattern stream (the whole stream
/// when `termination.is_complete()`).
#[derive(Clone, Debug)]
pub struct MiningOutcome {
    /// The (possibly partial) mining result.
    pub result: MiningResult,
    /// Why and where the run stopped.
    pub termination: Termination,
}

/// Caller-side governance inputs for a `*_governed` engine run.
#[derive(Clone, Debug, Default)]
pub struct GovernOptions {
    /// Cooperative cancellation flag, polled at class granularity.
    pub cancel: Option<CancelToken>,
    /// Resource ceilings.
    pub budget: Budget,
    /// Deterministic test trigger: behave as if the cancel token flipped
    /// at the admission of class `N` (0-based count of prior admissions;
    /// `Some(0)` cancels before any class). Unlike a real token or
    /// deadline this fires at an exact, reproducible point, so the
    /// fault-injection matrix can assert byte-identical partial results
    /// without wall-clock flakiness. Test-only plumbing (driven by
    /// `tsg-testkit`).
    #[doc(hidden)]
    pub cancel_after_classes: Option<usize>,
}

impl GovernOptions {
    /// Governance with a budget and no cancel token.
    pub fn with_budget(budget: Budget) -> Self {
        GovernOptions {
            budget,
            ..GovernOptions::default()
        }
    }

    /// Governance with a cancel token and an unlimited budget.
    pub fn with_cancel(cancel: CancelToken) -> Self {
        GovernOptions {
            cancel: Some(cancel),
            ..GovernOptions::default()
        }
    }
}

/// The engines' shared admission gate. One `Governor` lives per run,
/// shared by reference across workers; all state is atomic or
/// first-wins-locked, so any thread can trip it and every thread observes
/// the stop on its next poll.
#[derive(Debug)]
#[doc(hidden)] // public only for the model-checker contract tests
pub struct Governor {
    /// Disabled governors (the ungoverned entry points) short-circuit
    /// every check to a single branch.
    enabled: bool,
    cancel: Option<CancelToken>,
    start: Instant,
    deadline: Option<Duration>,
    max_peak_bytes: Option<usize>,
    max_patterns: Option<usize>,
    /// Effective admission ceiling: `min(max_classes, cancel_after)`,
    /// with the reason to report if it is the binding one.
    class_limit: Option<(usize, TerminationReason)>,
    admitted: AtomicUsize,
    patterns: AtomicUsize,
    stopped: AtomicBool,
    reason: Mutex<Option<TerminationReason>>,
}

impl Governor {
    /// A no-op governor for the ungoverned entry points: `admit_class`
    /// costs one branch, nothing is counted.
    pub fn disabled() -> Self {
        Governor {
            enabled: false,
            ..Governor::new(&GovernOptions::default())
        }
    }

    pub fn new(opts: &GovernOptions) -> Self {
        let class_limit = match (opts.budget.max_classes, opts.cancel_after_classes) {
            (Some(m), Some(n)) if n < m => Some((n, TerminationReason::Cancelled)),
            (Some(m), _) => Some((
                m,
                TerminationReason::BudgetExceeded {
                    which: BudgetKind::Classes,
                },
            )),
            (None, Some(n)) => Some((n, TerminationReason::Cancelled)),
            (None, None) => None,
        };
        Governor {
            enabled: true,
            cancel: opts.cancel.clone(),
            start: Instant::now(),
            deadline: opts.budget.deadline,
            max_peak_bytes: opts.budget.max_peak_bytes,
            max_patterns: opts.budget.max_patterns,
            class_limit,
            admitted: AtomicUsize::new(0),
            patterns: AtomicUsize::new(0),
            stopped: AtomicBool::new(false),
            reason: Mutex::new(None),
        }
    }

    /// Records the first stop reason and halts admissions. Later trips
    /// (races from other workers) keep the first reason.
    fn trip(&self, reason: TerminationReason) {
        let mut slot = recover(self.reason.lock());
        if slot.is_none() {
            *slot = Some(reason);
        }
        drop(slot);
        // Release: pairs with the Acquire load in `admit_class` — a
        // worker that sees the stop also sees the recorded reason (and
        // whatever state the tripping thread settled before stopping).
        self.stopped.store(true, Ordering::Release); // tsg-lint: ordering(ORD-02)
    }

    /// The class-granularity admission gate: checks the cancel token, the
    /// deadline, and every budget ceiling, with `peak_bytes` the caller's
    /// current tracked high-water mark. Returns `false` — permanently,
    /// for every subsequent caller — once any check fails.
    pub fn admit_class(&self, peak_bytes: usize) -> bool {
        if !self.enabled {
            return true;
        }
        // Acquire: pairs with the Release store in `trip`.
        if self.stopped.load(Ordering::Acquire) { // tsg-lint: ordering(ORD-02)
            return false;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.trip(TerminationReason::Cancelled);
            return false;
        }
        if self.deadline.is_some_and(|d| self.start.elapsed() >= d) {
            self.trip(TerminationReason::DeadlineExceeded);
            return false;
        }
        if self.max_peak_bytes.is_some_and(|m| peak_bytes > m) {
            self.trip(TerminationReason::BudgetExceeded {
                which: BudgetKind::Memory,
            });
            return false;
        }
        if self
            .max_patterns
            .is_some_and(|m| self.patterns.load(Ordering::Acquire) >= m) // tsg-lint: ordering(ORD-03)
        {
            self.trip(TerminationReason::BudgetExceeded {
                which: BudgetKind::Patterns,
            });
            return false;
        }
        if let Some((limit, reason)) = self.class_limit {
            // CAS admission: exactly `limit` classes pass, even when
            // parallel workers race this gate. Genuinely relaxed: the
            // ticket count is the whole payload and the location's
            // modification order already totally orders the RMWs — no
            // other memory rides on the edge.
            let won = self
                .admitted
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |k| { // tsg-lint: ordering(ORD-04)
                    (k < limit).then_some(k + 1)
                })
                .is_ok();
            if !won {
                self.trip(reason);
                return false;
            }
        } else {
            // Genuinely relaxed: a pure tally, only read after workers
            // join.
            self.admitted.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-05)
        }
        true
    }

    /// Mid-run poll for non-admission points (e.g. the barrier engine's
    /// Step 3 workers): checks only the cancel token and the deadline —
    /// the conditions that stay in force after tripping. Deliberately
    /// *not* the stop flag: a budget trip at admission time must not
    /// abandon classes that were already admitted (admitted classes
    /// always finish), whereas a cancelled token or expired deadline
    /// keeps reading true here and stops in-flight work within one class.
    pub fn should_stop(&self) -> bool {
        if !self.enabled {
            return false;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.trip(TerminationReason::Cancelled);
            return true;
        }
        if self.deadline.is_some_and(|d| self.start.elapsed() >= d) {
            self.trip(TerminationReason::DeadlineExceeded);
            return true;
        }
        false
    }

    /// Class-boundary poll for engines whose admission ran before any
    /// pattern existed (the barrier engine's Step 3 fan-out): the
    /// [`Self::should_stop`] conditions plus the pattern ceiling, which
    /// for those engines can only become visible *after* collection.
    /// Safe at class boundaries only — between classes nothing admitted
    /// is in flight, so stopping here never tears a class.
    pub fn should_stop_class_boundary(&self) -> bool {
        if !self.enabled {
            return false;
        }
        if self.should_stop() {
            return true;
        }
        if self
            .max_patterns
            .is_some_and(|m| self.patterns.load(Ordering::Acquire) >= m) // tsg-lint: ordering(ORD-03)
        {
            self.trip(TerminationReason::BudgetExceeded {
                which: BudgetKind::Patterns,
            });
            return true;
        }
        false
    }

    /// Accumulates emitted patterns toward `max_patterns`. Called after a
    /// class finishes; the ceiling is enforced at the next admission.
    pub fn add_patterns(&self, n: usize) {
        if self.enabled && self.max_patterns.is_some() {
            // Release: the ceiling check in `admit_class` reads this
            // counter with Acquire and *acts* on it (stops the run), so
            // the classes counted must be visible to the thread that
            // trips the ceiling — a happens-before carrier, not a stat.
            self.patterns.fetch_add(n, Ordering::Release); // tsg-lint: ordering(ORD-03)
        }
    }

    /// Assembles the termination report. `frontier` should arrive in
    /// canonical order; it is capped at [`FRONTIER_CAP`] entries here.
    ///
    /// A run that abandoned nothing is `Completed` no matter what the
    /// trip state says: a ceiling or deadline observed at a poll point
    /// *after* the last class finished cost the run nothing, and
    /// reporting it would claim a partial result where the stream is in
    /// fact whole.
    pub fn finish(
        &self,
        classes_finished: usize,
        classes_abandoned: usize,
        mut frontier: Vec<String>,
    ) -> Termination {
        let reason = if classes_abandoned == 0 && frontier.is_empty() {
            TerminationReason::Completed
        } else {
            recover(self.reason.lock()).unwrap_or(TerminationReason::Completed)
        };
        frontier.truncate(FRONTIER_CAP);
        Termination {
            reason,
            classes_finished,
            classes_abandoned,
            frontier,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancel_is_idempotent_and_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
    }

    #[test]
    fn disabled_governor_admits_everything() {
        let g = Governor::disabled();
        for _ in 0..1000 {
            assert!(g.admit_class(usize::MAX));
        }
        assert!(!g.should_stop());
        assert!(g.finish(1000, 0, Vec::new()).is_complete());
    }

    #[test]
    fn unlimited_governor_completes() {
        let g = Governor::new(&GovernOptions::default());
        for _ in 0..100 {
            assert!(g.admit_class(1 << 40));
        }
        let t = g.finish(100, 0, Vec::new());
        assert_eq!(t.reason, TerminationReason::Completed);
    }

    #[test]
    fn cancel_token_trips_admission() {
        let token = CancelToken::new();
        let g = Governor::new(&GovernOptions::with_cancel(token.clone()));
        assert!(g.admit_class(0));
        token.cancel();
        assert!(!g.admit_class(0));
        assert!(g.should_stop());
        let t = g.finish(1, 1, vec!["(0,1,a-b)".into()]);
        assert_eq!(t.reason, TerminationReason::Cancelled);
        assert_eq!(t.classes_finished, 1);
        assert_eq!(t.classes_abandoned, 1);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = Governor::new(&GovernOptions::with_budget(
            Budget::unlimited().deadline(Duration::ZERO),
        ));
        assert!(!g.admit_class(0));
        // The rejected class counts as abandoned — the engines always
        // report it, and `finish` treats a nothing-lost run as complete.
        assert_eq!(
            g.finish(0, 1, Vec::new()).reason,
            TerminationReason::DeadlineExceeded
        );
    }

    #[test]
    fn class_budget_admits_exactly_the_limit() {
        let g = Governor::new(&GovernOptions::with_budget(
            Budget::unlimited().max_classes(3),
        ));
        let admitted = (0..10).filter(|_| g.admit_class(0)).count();
        assert_eq!(admitted, 3);
        assert_eq!(
            g.finish(3, 7, Vec::new()).reason,
            TerminationReason::BudgetExceeded {
                which: BudgetKind::Classes
            }
        );
    }

    #[test]
    fn class_budget_is_race_free() {
        let g = Governor::new(&GovernOptions::with_budget(
            Budget::unlimited().max_classes(50),
        ));
        let admitted = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        if g.admit_class(0) {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn memory_budget_compares_peak() {
        let g = Governor::new(&GovernOptions::with_budget(
            Budget::unlimited().max_peak_bytes(100),
        ));
        assert!(g.admit_class(100), "at the ceiling is still within budget");
        assert!(!g.admit_class(101));
        assert_eq!(
            g.finish(1, 1, Vec::new()).reason,
            TerminationReason::BudgetExceeded {
                which: BudgetKind::Memory
            }
        );
    }

    #[test]
    fn pattern_budget_trips_next_admission() {
        let g = Governor::new(&GovernOptions::with_budget(
            Budget::unlimited().max_patterns(10),
        ));
        assert!(g.admit_class(0));
        g.add_patterns(4);
        assert!(g.admit_class(0), "under the ceiling");
        g.add_patterns(7);
        assert!(!g.admit_class(0), "11 ≥ 10");
        assert_eq!(
            g.finish(2, 1, Vec::new()).reason,
            TerminationReason::BudgetExceeded {
                which: BudgetKind::Patterns
            }
        );
    }

    #[test]
    fn cancel_after_trigger_reports_cancelled() {
        let g = Governor::new(&GovernOptions {
            cancel_after_classes: Some(2),
            ..GovernOptions::default()
        });
        assert!(g.admit_class(0));
        assert!(g.admit_class(0));
        assert!(!g.admit_class(0));
        assert_eq!(g.finish(2, 1, Vec::new()).reason, TerminationReason::Cancelled);
    }

    #[test]
    fn first_trip_wins() {
        let g = Governor::new(&GovernOptions::with_budget(
            Budget::unlimited().max_classes(1),
        ));
        assert!(g.admit_class(0));
        assert!(!g.admit_class(0)); // classes ceiling
        g.trip(TerminationReason::Cancelled); // later trip must not override
        assert_eq!(
            g.finish(1, 1, Vec::new()).reason,
            TerminationReason::BudgetExceeded {
                which: BudgetKind::Classes
            }
        );
    }

    #[test]
    fn class_boundary_poll_sees_pattern_ceiling() {
        let g = Governor::new(&GovernOptions::with_budget(
            Budget::unlimited().max_patterns(5),
        ));
        assert!(!g.should_stop_class_boundary(), "under the ceiling");
        g.add_patterns(5);
        assert!(g.should_stop_class_boundary());
        assert!(
            !g.should_stop(),
            "the plain poll stays blind to budgets: admitted classes finish"
        );
    }

    #[test]
    fn nothing_lost_reports_completed_despite_late_trip() {
        let g = Governor::new(&GovernOptions::with_budget(
            Budget::unlimited().max_patterns(5),
        ));
        assert!(g.admit_class(0));
        g.add_patterns(9);
        // A poll after the final class crossed the ceiling trips the
        // governor, but the run lost nothing — it completed.
        assert!(g.should_stop_class_boundary());
        assert!(g.finish(1, 0, Vec::new()).is_complete());
    }

    #[test]
    fn frontier_is_capped_but_counts_are_exact() {
        let g = Governor::new(&GovernOptions::default());
        let frontier: Vec<String> = (0..100).map(|i| format!("code-{i}")).collect();
        let t = g.finish(5, 100, frontier);
        assert_eq!(t.frontier.len(), FRONTIER_CAP);
        assert_eq!(t.classes_abandoned, 100);
    }
}
