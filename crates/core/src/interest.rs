//! Expected-support interestingness for taxonomy patterns.
//!
//! The paper's related work (§5) credits Srikant & Agrawal (VLDB'95) with
//! the first taxonomy-aware mining and with "an interest measure based on
//! expected support … employed to prune out redundant patterns". This
//! module ports that *R-interestingness* measure from generalized
//! association rules to taxonomy-superimposed graph patterns:
//!
//! For a pattern `P` with vertex `i` labeled `l`, let `P↑i` be `P` with
//! `l` replaced by one of its taxonomy parents `l′`. If labels specialized
//! independently of structure, one would expect
//!
//! ```text
//! E[sup(P)] = sup(P↑i) · f(l) / f(l′)
//! ```
//!
//! where `f` is the per-concept generalized document frequency (the
//! fraction of graphs containing any descendant of the concept). A pattern
//! is **R-interesting** when its actual support is at least `R` times the
//! expected support for *every* one-step generalization — i.e. the pattern
//! says something its generalizations plus label statistics do not.
//!
//! This complements, not replaces, the paper's over-generalization filter:
//! minimality removes patterns that are *redundant given a specialization*;
//! R-interestingness removes patterns that are *predictable given a
//! generalization*.

use crate::miner::Pattern;
use tsg_graph::GraphDatabase;
use tsg_iso::{contains_subgraph_cached, BatchedMatcher, GeneralizedMatcher};
use tsg_taxonomy::Taxonomy;

/// The interest analysis of one pattern.
#[derive(Clone, Debug)]
pub struct InterestScore {
    /// The minimum actual/expected support ratio over all one-step
    /// generalizations; `None` when the pattern has no generalization
    /// (every label is a root), in which case it is vacuously interesting.
    pub min_ratio: Option<f64>,
}

impl InterestScore {
    /// `true` iff the pattern is R-interesting at the given factor.
    pub fn is_interesting(&self, r: f64) -> bool {
        self.min_ratio.is_none_or(|m| m >= r)
    }
}

/// Scores one pattern. `label_freq[c]` must be the generalized
/// document frequency count of concept `c` (see
/// [`Taxonomy::generalized_label_frequencies`]); supports of the
/// generalizations are counted directly against `db`.
pub fn score_pattern(
    pattern: &Pattern,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    label_freq: &[usize],
) -> InterestScore {
    let matcher = GeneralizedMatcher::new(taxonomy);
    // All generalizations of this pattern share the database index;
    // their labels differ by one ancestor at a time, so the per-label
    // candidate sets are nearly all cache hits.
    let batched = BatchedMatcher::new(db, &matcher);
    let mut min_ratio: Option<f64> = None;
    for (i, &l) in pattern.graph.labels().iter().enumerate() {
        for &parent in taxonomy.parents(l) {
            if taxonomy.is_artificial(parent) {
                continue;
            }
            let f_l = label_freq[l.index()] as f64; // tsg-lint: allow(index) — concept ids are dense indices into the frequency table
            let f_p = label_freq[parent.index()] as f64; // tsg-lint: allow(index) — concept ids are dense indices into the frequency table
            if f_l == 0.0 || f_p == 0.0 {
                continue;
            }
            let mut gen = pattern.graph.clone();
            gen.set_label(i, parent);
            let gen_sup = batched
                .caches()
                .iter()
                .filter(|c| contains_subgraph_cached(&gen, c))
                .count() as f64;
            if gen_sup == 0.0 {
                continue;
            }
            let expected = gen_sup * f_l / f_p;
            let ratio = pattern.support_count as f64 / expected;
            min_ratio = Some(min_ratio.map_or(ratio, |m: f64| m.min(ratio)));
        }
    }
    InterestScore { min_ratio }
}

/// Filters a mined pattern set down to the R-interesting ones, preserving
/// order. `r = 1.0` keeps patterns at least as frequent as label
/// statistics predict; Srikant & Agrawal suggest `r > 1` (e.g. 1.1) to
/// keep only those that beat the prediction.
pub fn r_interesting<'a>(
    patterns: &'a [Pattern],
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    r: f64,
) -> Vec<(&'a Pattern, InterestScore)> {
    let label_freq = taxonomy.generalized_label_frequencies(db);
    patterns
        .iter()
        .filter_map(|p| {
            let score = score_pattern(p, db, taxonomy, &label_freq);
            score.is_interesting(r).then_some((p, score))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Taxogram, TaxogramConfig};
    use tsg_graph::{EdgeLabel, LabeledGraph, NodeLabel};
    use tsg_taxonomy::taxonomy_from_edges;

    fn edge(a: u32, b: u32) -> LabeledGraph {
        let mut g = LabeledGraph::with_nodes([NodeLabel(a), NodeLabel(b)]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        g
    }

    /// Taxonomy 0 > {1, 2}; labels 1 and 2 equally frequent, but edges
    /// 1—1 appear far more often than independence predicts.
    fn skewed_db() -> (Taxonomy, GraphDatabase) {
        let t = taxonomy_from_edges(3, [(1, 0), (2, 0)]).unwrap();
        // 4 graphs with a 1—1 edge, 4 graphs holding 2s but paired 2—1.
        let mut graphs = vec![];
        for _ in 0..4 {
            graphs.push(edge(1, 1));
        }
        for _ in 0..4 {
            graphs.push(edge(2, 2));
        }
        (t, GraphDatabase::from_graphs(graphs))
    }

    #[test]
    fn root_only_patterns_are_vacuously_interesting() {
        let (t, db) = skewed_db();
        let p = Pattern {
            graph: edge(0, 0),
            support_count: 8,
            support: 1.0,
        };
        let freq = t.generalized_label_frequencies(&db);
        let s = score_pattern(&p, &db, &t, &freq);
        assert!(s.min_ratio.is_none());
        assert!(s.is_interesting(10.0));
    }

    #[test]
    fn concentrated_specializations_score_above_one() {
        let (t, db) = skewed_db();
        // sup(1—1) = 4; generalizations 0—1 (sup 4) and 1—0 (sup 4).
        // f(1) = 4, f(0) = 8 → expected = 4 · 4/8 = 2 → ratio = 2.
        let p = Pattern {
            graph: edge(1, 1),
            support_count: 4,
            support: 0.5,
        };
        let freq = t.generalized_label_frequencies(&db);
        let s = score_pattern(&p, &db, &t, &freq);
        let r = s.min_ratio.unwrap();
        assert!((r - 2.0).abs() < 1e-9, "ratio {r}");
        assert!(s.is_interesting(1.5));
        assert!(!s.is_interesting(2.5));
    }

    #[test]
    fn filter_runs_on_mined_output() {
        // 3×(1—1), 3×(2—2), 2×(1—2): the mixed edge 1—2 occurs exactly as
        // often as label statistics predict would be 3.1 graphs — it is
        // *under*-represented (ratio ≈ 0.64) and must be filtered at
        // r = 1.5, while the vacuously-interesting root pattern stays.
        let t = taxonomy_from_edges(3, [(1, 0), (2, 0)]).unwrap();
        let mut graphs = vec![];
        graphs.extend((0..3).map(|_| edge(1, 1)));
        graphs.extend((0..3).map(|_| edge(2, 2)));
        graphs.extend((0..2).map(|_| edge(1, 2)));
        let db = GraphDatabase::from_graphs(graphs);
        let result = Taxogram::new(TaxogramConfig::with_threshold(0.25))
            .mine(&db, &t)
            .unwrap();
        let all = r_interesting(&result.patterns, &db, &t, 0.0);
        assert_eq!(all.len(), result.patterns.len(), "r=0 keeps everything");
        let strict = r_interesting(&result.patterns, &db, &t, 1.5);
        assert!(strict.len() < all.len(), "r=1.5 filters the predictable");
        let has = |set: &[(&Pattern, InterestScore)], g: &LabeledGraph| {
            set.iter().any(|(p, _)| tsg_iso::is_isomorphic(&p.graph, g))
        };
        assert!(has(&all, &edge(1, 2)), "1—2 is frequent");
        assert!(!has(&strict, &edge(1, 2)), "…but predictable, so filtered");
        assert!(has(&strict, &edge(0, 0)), "root pattern is vacuous");
        for (p, score) in &strict {
            assert!(score.is_interesting(1.5));
            assert!(p.support_count >= result.min_support_count);
        }
    }

    #[test]
    fn uniform_data_scores_near_one() {
        // Labels 1 and 2 used interchangeably: ratios hover around 1.
        let t = taxonomy_from_edges(3, [(1, 0), (2, 0)]).unwrap();
        let db = GraphDatabase::from_graphs(vec![
            edge(1, 1),
            edge(1, 2),
            edge(2, 1),
            edge(2, 2),
        ]);
        let p = Pattern {
            graph: edge(1, 1),
            support_count: 1,
            support: 0.25,
        };
        let freq = t.generalized_label_frequencies(&db);
        let s = score_pattern(&p, &db, &t, &freq);
        // f(1) = 3 graphs, f(0) = 4; sup(0—1) = 3 → expected 2.25,
        // ratio ≈ 0.44 — below 1, not interesting at r = 1.
        assert!(!s.is_interesting(1.0));
    }
}
