//! The paper's complexity lemmas as computable bounds, with their
//! hypotheses checkable against real mining runs (the proofs are omitted
//! in the paper "for the lack of space"; here they are executable).

use crate::miner::MiningStats;
use tsg_graph::{GraphDatabase, LabeledGraph};
use tsg_taxonomy::Taxonomy;

/// Lemma 1: the number of generalized patterns of `pattern` — label
/// vectors obtainable by replacing each vertex label with one of its
/// (reflexive) ancestors — is exactly `Π_i |Anc(l_i)|`, which is `O(dⁿ)`
/// for `d` the mean ancestor count. Saturates at `u128::MAX`.
pub fn lemma1_generalization_count(pattern: &LabeledGraph, taxonomy: &Taxonomy) -> u128 {
    pattern
        .labels()
        .iter()
        .map(|&l| taxonomy.ancestor_count(l) as u128)
        .try_fold(1u128, |acc, n| acc.checked_mul(n))
        .unwrap_or(u128::MAX)
}

/// Lemma 4's occurrence-count factor: `Σ_G |G|! / (|G| − |P|)!` — the
/// maximum number of injective placements of a `|P|`-vertex pattern across
/// the database's graphs, which bounds every occurrence set's size.
/// Saturates at `u128::MAX`.
pub fn lemma4_max_occurrences(db: &GraphDatabase, pattern_nodes: usize) -> u128 {
    let mut total: u128 = 0;
    for (_, g) in db.iter() {
        let n = g.node_count();
        if pattern_nodes > n {
            continue;
        }
        // n! / (n-p)! = n · (n-1) · … · (n-p+1)
        let mut falling: u128 = 1;
        for k in 0..pattern_nodes {
            falling = falling.saturating_mul((n - k) as u128);
        }
        total = total.saturating_add(falling);
    }
    total
}

/// Lemma 5's update-count bound for one pattern class:
/// `|P| · (|T| − 1)/2 · Σ_G |G|!/(|G|−|P|)!` — pattern size times the
/// worst-case mean ancestor count times the occurrence bound.
pub fn lemma5_update_bound(db: &GraphDatabase, pattern_nodes: usize, taxonomy: &Taxonomy) -> u128 {
    let occ = lemma4_max_occurrences(db, pattern_nodes);
    let anc_factor = (taxonomy.present_count().saturating_sub(1) / 2).max(1) as u128;
    occ.saturating_mul(pattern_nodes as u128)
        .saturating_mul(anc_factor)
}

/// Checks a finished run's counters against the Lemma 4/5 bounds: the
/// recorded occurrence total and occurrence-index updates must not exceed
/// what the lemmas allow for the largest pattern mined. Returns a
/// violation description, or `None` when the bounds hold (they always
/// should — this is a verification hook used by tests).
pub fn check_stats_against_bounds(
    stats: &MiningStats,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    max_pattern_nodes: usize,
) -> Option<String> {
    let occ_bound = lemma4_max_occurrences(db, max_pattern_nodes)
        .saturating_mul(stats.classes.max(1) as u128);
    if (stats.occurrences as u128) > occ_bound {
        return Some(format!(
            "occurrences {} exceed Lemma 4 bound {}",
            stats.occurrences, occ_bound
        ));
    }
    let upd_bound = lemma5_update_bound(db, max_pattern_nodes, taxonomy)
        .saturating_mul(stats.classes.max(1) as u128);
    if (stats.oi_updates as u128) > upd_bound {
        return Some(format!(
            "oi_updates {} exceed Lemma 5 bound {}",
            stats.oi_updates, upd_bound
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Taxogram, TaxogramConfig};
    use tsg_graph::{EdgeLabel, NodeLabel};
    use tsg_taxonomy::{samples, taxonomy_from_edges};

    #[test]
    fn lemma1_count_is_exact() {
        // Chain 0 > 1 > 2: |Anc(2)| = 3, |Anc(1)| = 2, |Anc(0)| = 1.
        let t = taxonomy_from_edges(3, [(1, 0), (2, 1)]).unwrap();
        let mut g = LabeledGraph::with_nodes([NodeLabel(2), NodeLabel(1), NodeLabel(0)]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        g.add_edge(1, 2, EdgeLabel(0)).unwrap();
        assert_eq!(lemma1_generalization_count(&g, &t), 3 * 2);
        // Cross-check against the reference miner's generalization product
        // (counted via the ancestor closure directly).
        let manual: usize = g
            .labels()
            .iter()
            .map(|&l| t.ancestor_count(l))
            .product();
        assert_eq!(lemma1_generalization_count(&g, &t), manual as u128);
    }

    #[test]
    fn lemma4_counts_injective_placements() {
        // One graph with 4 nodes, pattern of 2: 4·3 = 12 placements.
        let g = LabeledGraph::with_nodes(vec![NodeLabel(0); 4]);
        let db = GraphDatabase::from_graphs(vec![g]);
        assert_eq!(lemma4_max_occurrences(&db, 2), 12);
        assert_eq!(lemma4_max_occurrences(&db, 5), 0, "pattern larger than graph");
        assert_eq!(lemma4_max_occurrences(&db, 0), 1, "empty pattern: one placement");
    }

    #[test]
    fn real_run_respects_the_bounds() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let r = Taxogram::new(TaxogramConfig::with_threshold(1.0 / 3.0))
            .mine(&db, &t)
            .unwrap();
        let max_nodes = r
            .patterns
            .iter()
            .map(|p| p.graph.node_count())
            .max()
            .unwrap_or(1);
        assert_eq!(check_stats_against_bounds(&r.stats, &db, &t, max_nodes), None);
    }

    #[test]
    fn saturation_does_not_panic() {
        // A pathological bound: huge graph, huge pattern.
        let g = LabeledGraph::with_nodes(vec![NodeLabel(0); 60]);
        let db = GraphDatabase::from_graphs(vec![g]);
        let b = lemma4_max_occurrences(&db, 40);
        assert!(b > 0);
        let t = taxonomy_from_edges(2, [(1, 0)]).unwrap();
        let _ = lemma5_update_bound(&db, 40, &t);
    }
}
