//! **Taxogram** — taxonomy-superimposed graph mining (Cakmak & Ozsoyoglu,
//! EDBT 2008).
//!
//! Given a database of labeled graphs whose vertex labels belong to an
//! is-a taxonomy, Taxogram finds every frequent pattern under *generalized*
//! subgraph isomorphism (a pattern label matches itself or any descendant)
//! while excluding *over-generalized* patterns (those with an equally
//! frequent specialization), in three steps:
//!
//! 1. **Relabel** every vertex with the most general ancestor of its label
//!    (keeping originals), collapsing each pattern class to one
//!    representative ([`relabel`]).
//! 2. **Mine pattern classes** with ordinary gSpan on the relabeled
//!    database, building a taxonomy-projected *occurrence index* per class
//!    from the embeddings gSpan already maintains — one isomorphism test
//!    per occurrence, shared by every member of the class ([`oi`]).
//! 3. **Enumerate specialized patterns** per class by child-label
//!    replacement; each candidate's support is a single bitset
//!    intersection (Lemma 7), over-generalized members are detected by
//!    equal-support children, and no further isomorphism tests or database
//!    scans are needed ([`enumerate`]).
//!
//! # Quick start
//!
//! ```
//! use taxogram_core::{Taxogram, TaxogramConfig};
//! use tsg_taxonomy::samples;
//!
//! // The paper's running example: Figure 1.4's database over the
//! // Figure 2.1-style taxonomy.
//! let (c, taxonomy) = samples::sample_taxonomy();
//! let db = samples::figure_1_4_database(&c);
//!
//! let result = Taxogram::new(TaxogramConfig::with_threshold(2.0 / 3.0))
//!     .mine(&db, &taxonomy)
//!     .unwrap();
//! assert!(!result.patterns.is_empty());
//! ```

mod channel;
mod config;
pub mod enumerate;
mod error;
mod gauge;
pub mod govern;
pub mod interest;
pub mod lemmas;
mod miner;
pub mod oi;
pub mod parallel;
pub mod pipeline;
pub mod postprocess;
pub mod reference;
pub mod relabel;
pub mod shard;
pub mod son;
pub mod steal;

/// Sync facade: every atomic, lock, condvar, and thread spawn in this
/// crate's concurrent engines goes through here. In normal builds these
/// are zero-cost re-exports of the `std::sync` / `std::thread` types; a
/// build with `RUSTFLAGS='--cfg tsg_model'` swaps in the `tsg-check`
/// model runtime, whose deterministic scheduler explores thread
/// interleavings and whose vector-clock detector flags data races (see
/// DESIGN.md §12 and `crates/core/tests/model.rs`).
pub mod sync {
    pub use tsg_check::sync::*;
    pub use tsg_check::thread;
}

/// Internals re-exported for the model-checker contract tests only
/// (`crates/core/tests/model.rs`); not part of the public API.
#[cfg(tsg_model)]
#[doc(hidden)]
pub mod model_support {
    pub use crate::channel::Bounded;
    pub use crate::gauge::MemoryGauge;
    pub use crate::govern::Governor;
    pub use crate::steal::prefix_cut;
}

pub use config::{Enhancements, TaxogramConfig};
pub use error::TaxogramError;
pub use govern::{
    Budget, BudgetKind, CancelToken, GovernOptions, MiningOutcome, Termination,
    TerminationReason,
};
pub use miner::{MiningResult, MiningStats, Pattern, Taxogram};
pub use parallel::{mine_parallel, mine_parallel_governed};
pub use pipeline::{
    mine_pipelined, mine_pipelined_governed, mine_pipelined_with, PipelineOptions,
};
pub use shard::{
    mine_sharded, mine_sharded_governed, ShardOptions, ShardStats, ShardedOutcome,
    ShardedSonMiner,
};
pub use steal::{mine_stealing, mine_stealing_governed, mine_stealing_with, StealOptions};
#[doc(hidden)]
pub use shard::{mine_sharded_faulted, ShardFaults};
#[doc(hidden)]
pub use pipeline::{mine_pipelined_faulted, mine_pipelined_governed_faulted, PipelineFaults};
#[doc(hidden)]
pub use steal::{mine_stealing_faulted, mine_stealing_governed_faulted};
#[doc(hidden)]
pub use tsg_gspan::FaultInjection as SearchFaults;
