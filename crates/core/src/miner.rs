//! The Taxogram pipeline: Step 1 → Step 2 → Step 3.

use crate::config::TaxogramConfig;
use crate::enumerate::EnumerationStats;
use crate::error::TaxogramError;
use crate::govern::{GovernOptions, Governor, MiningOutcome, Termination};
use crate::oi::{OccurrenceIndex, OiOptions};
use crate::relabel::relabel;
use tsg_bitset::BitSet;
use tsg_graph::{GraphDatabase, LabeledGraph};
use tsg_gspan::{GSpan, GSpanConfig, Grow, MinedPattern, PatternSink};
use tsg_taxonomy::Taxonomy;

/// A mined taxonomy-superimposed pattern.
#[derive(Clone, Debug)]
pub struct Pattern {
    /// The pattern graph (labels are taxonomy concepts, possibly interior
    /// ones that never appear verbatim in the database).
    pub graph: LabeledGraph,
    /// Number of distinct database graphs generalized-containing it.
    pub support_count: usize,
    /// `support_count / |D|`.
    pub support: f64,
}

/// Aggregate counters for a mining run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MiningStats {
    /// Pattern classes mined from the relabeled database (Step 2).
    pub classes: usize,
    /// Occurrence-index update operations (Lemma 5's cost unit).
    pub oi_updates: usize,
    /// Peak approximate heap footprint of *concurrently resident*
    /// occurrence indices, in bytes. Serially one class is resident at a
    /// time (gSpan's depth-first discipline — the paper's Step 2 space
    /// argument), so this is the largest single index; the parallel and
    /// pipelined engines track a true high-water mark across workers.
    pub peak_oi_bytes: usize,
    /// Peak heap footprint of pattern-class embedding lists resident at
    /// once, in bytes. Zero for the serial miner (embeddings live only
    /// inside gSpan's own recursion). The barrier engine holds every
    /// class across its collect-all barrier, so this is the total; the
    /// pipelined engine's value is bounded by its channel capacity.
    pub peak_embedding_bytes: usize,
    /// Total occurrences (embeddings) across classes.
    pub occurrences: usize,
    /// Wall-clock milliseconds spent building occurrence indices.
    pub oi_build_ms: f64,
    /// Wall-clock milliseconds spent enumerating specialized patterns.
    pub enumerate_ms: f64,
    /// Step 3 counters summed over classes.
    pub enumeration: EnumerationStats,
    /// Search-tree tasks taken from another worker's deque. Zero for
    /// every engine except the work-stealing one ([`crate::mine_stealing`]).
    pub steals: usize,
}

/// The result of a mining run.
#[derive(Clone, Debug)]
pub struct MiningResult {
    /// All frequent, non-over-generalized patterns.
    pub patterns: Vec<Pattern>,
    /// Run counters.
    pub stats: MiningStats,
    /// The absolute support floor used (`⌈θ·|D|⌉`, min 1).
    pub min_support_count: usize,
    /// Database size, for interpreting support fractions.
    pub database_size: usize,
}

impl MiningResult {
    /// Finds a pattern isomorphic to `g`, if present.
    pub fn find_isomorphic(&self, g: &LabeledGraph) -> Option<&Pattern> {
        self.patterns.iter().find(|p| tsg_iso::is_isomorphic(&p.graph, g))
    }

    /// Patterns sorted by descending support, then ascending size — a
    /// stable presentation order for reports.
    pub fn sorted_patterns(&self) -> Vec<&Pattern> {
        let mut v: Vec<&Pattern> = self.patterns.iter().collect();
        v.sort_by(|a, b| {
            b.support_count
                .cmp(&a.support_count)
                .then(a.graph.edge_count().cmp(&b.graph.edge_count()))
        });
        v
    }
}

/// The Taxogram miner (paper §3). See the crate docs for the three-step
/// pipeline.
#[derive(Clone, Debug)]
pub struct Taxogram {
    config: TaxogramConfig,
}

impl Taxogram {
    /// Creates a miner with the given configuration.
    pub fn new(config: TaxogramConfig) -> Self {
        Taxogram { config }
    }

    /// Mines `db` over `taxonomy`.
    ///
    /// # Errors
    /// Fails if the threshold is outside `[0, 1]` or some vertex label is
    /// not a taxonomy concept.
    pub fn mine(
        &self,
        db: &GraphDatabase,
        taxonomy: &Taxonomy,
    ) -> Result<MiningResult, TaxogramError> {
        Ok(self.mine_with(db, taxonomy, &Governor::disabled())?.0)
    }

    /// [`Taxogram::mine`] under governance: the run polls `govern`'s
    /// cancel token and budget at every class admission and, on an early
    /// stop, returns the patterns of the classes finished so far — a
    /// byte-identical prefix of the full run's output — together with a
    /// truthful [`Termination`] report.
    ///
    /// # Errors
    /// Same conditions as [`Taxogram::mine`]; early termination is *not*
    /// an error.
    pub fn mine_governed(
        &self,
        db: &GraphDatabase,
        taxonomy: &Taxonomy,
        govern: &GovernOptions,
    ) -> Result<MiningOutcome, TaxogramError> {
        let governor = Governor::new(govern);
        let (result, termination) = self.mine_with(db, taxonomy, &governor)?;
        Ok(MiningOutcome {
            result,
            termination,
        })
    }

    fn mine_with(
        &self,
        db: &GraphDatabase,
        taxonomy: &Taxonomy,
        governor: &Governor,
    ) -> Result<(MiningResult, Termination), TaxogramError> {
        let theta = self.config.threshold;
        if !(0.0..=1.0).contains(&theta) || theta.is_nan() {
            return Err(TaxogramError::InvalidThreshold { theta });
        }
        let min_support = db.min_support_count(theta);
        if db.is_empty() {
            return Ok((
                MiningResult {
                    patterns: Vec::new(),
                    stats: MiningStats::default(),
                    min_support_count: min_support,
                    database_size: 0,
                },
                Termination::completed(0),
            ));
        }

        // Step 1: relabel with most-general ancestors.
        let rel = relabel(db, taxonomy)?;

        // Enhancement (b): compute which concepts are generalized-frequent.
        let frequent_mask = if self.config.enhancements.prune_infrequent_labels {
            let freqs = rel.taxonomy.generalized_label_frequencies(db);
            let mut mask = BitSet::new(rel.taxonomy.concept_count());
            for (i, &f) in freqs.iter().enumerate() {
                if f >= min_support {
                    mask.insert(i);
                }
            }
            Some(mask)
        } else {
            None
        };

        // Steps 2+3 interleaved: each class reported by gSpan is indexed
        // and enumerated immediately, so only one occurrence index is
        // resident at a time.
        let mut sink = ClassSink {
            rel: &rel,
            db_len: db.len(),
            min_support,
            config: &self.config,
            frequent: frequent_mask.as_ref(),
            patterns: Vec::new(),
            stats: MiningStats::default(),
            governor,
            rejected: None,
        };
        GSpan::new(
            &rel.dmg,
            GSpanConfig {
                min_support,
                max_edges: self.config.max_edges,
            },
        )
        .mine(&mut sink);

        // Classes are admitted in canonical pre-order on this one thread,
        // so at most one class — the rejected one — is ever abandoned,
        // and the output is exactly the first `classes` classes.
        let rejected = sink.rejected;
        let termination = governor.finish(
            sink.stats.classes,
            usize::from(rejected.is_some()),
            rejected.into_iter().collect(),
        );
        Ok((
            MiningResult {
                patterns: sink.patterns,
                stats: sink.stats,
                min_support_count: min_support,
                database_size: db.len(),
            },
            termination,
        ))
    }
}

struct ClassSink<'a> {
    rel: &'a crate::relabel::Relabeled,
    db_len: usize,
    min_support: usize,
    config: &'a TaxogramConfig,
    frequent: Option<&'a BitSet>,
    patterns: Vec<Pattern>,
    stats: MiningStats,
    governor: &'a Governor,
    /// DFS code of the class rejected at admission, if the run stopped.
    rejected: Option<String>,
}

impl PatternSink for ClassSink<'_> {
    fn report(&mut self, class: &MinedPattern<'_>) -> Grow {
        // Governance poll point: serially one occurrence index is
        // resident at a time, so the running `peak_oi_bytes` maximum is
        // this engine's true memory high-water mark.
        if !self.governor.admit_class(self.stats.peak_oi_bytes) {
            self.rejected = Some(class.code.to_string());
            return Grow::Stop;
        }
        self.stats.classes += 1;
        self.stats.occurrences += class.embeddings.len();
        let t_oi = std::time::Instant::now();
        let oi = OccurrenceIndex::build(
            class.embeddings,
            &self.rel.originals,
            class.graph.labels(),
            &self.rel.taxonomy,
            OiOptions {
                frequent: self.frequent,
                contract_equal_sets: self.config.enhancements.contract_equal_sets,
                predescend_roots: self.config.enhancements.predescend_roots,
            },
        );
        self.stats.oi_build_ms += t_oi.elapsed().as_secs_f64() * 1000.0;
        self.stats.oi_updates += oi.updates;
        self.stats.peak_oi_bytes = self.stats.peak_oi_bytes.max(oi.heap_bytes());
        let db_len = self.db_len;
        let taxonomy = &self.rel.taxonomy;
        let skeleton = class.graph;
        let t_enum = std::time::Instant::now();
        let (patterns, stats) = {
            let mut emitted: Vec<Pattern> = Vec::new();
            let s = crate::enumerate::enumerate_class_full(
                skeleton,
                &oi,
                taxonomy,
                self.min_support,
                db_len,
                &self.config.enhancements,
                self.config.keep_overgeneralized,
                |p| {
                    let mut g = skeleton.clone();
                    for (i, &l) in p.labels.iter().enumerate() {
                        g.set_label(i, l);
                    }
                    emitted.push(Pattern {
                        graph: g,
                        support_count: p.support,
                        support: p.support as f64 / db_len as f64,
                    });
                },
            );
            (emitted, s)
        };
        self.stats.enumerate_ms += t_enum.elapsed().as_secs_f64() * 1000.0;
        self.stats.enumeration.vectors_visited += stats.vectors_visited;
        self.stats.enumeration.intersections += stats.intersections;
        self.stats.enumeration.emitted += stats.emitted;
        self.stats.enumeration.overgeneralized += stats.overgeneralized;
        self.governor.add_patterns(patterns.len());
        self.patterns.extend(patterns);
        Grow::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_graph::{EdgeLabel, NodeLabel};
    use tsg_taxonomy::{samples, taxonomy_from_edges};

    #[test]
    fn rejects_bad_threshold() {
        let (_, t) = samples::sample_taxonomy();
        let db = GraphDatabase::new();
        for theta in [-0.1, 1.5, f64::NAN] {
            let err = Taxogram::new(TaxogramConfig::with_threshold(theta))
                .mine(&db, &t)
                .unwrap_err();
            assert!(matches!(err, TaxogramError::InvalidThreshold { .. }));
        }
    }

    #[test]
    fn empty_database_yields_no_patterns() {
        let (_, t) = samples::sample_taxonomy();
        let r = Taxogram::new(TaxogramConfig::with_threshold(0.5))
            .mine(&GraphDatabase::new(), &t)
            .unwrap();
        assert!(r.patterns.is_empty());
        assert_eq!(r.database_size, 0);
    }

    #[test]
    fn example_1_1_go_pathways() {
        // Paper Example 1.1: traditional mining finds nothing shared
        // between Pathway 1 and Pathway 2, but taxonomy-superimposed
        // mining discovers implicit patterns like
        // Transporter—Helicase (P1).
        let (names, t, db) = samples::go_excerpt();
        // Traditional (exact) mining at θ = 1: no shared edge patterns.
        let exact = tsg_gspan::mine_frequent(&db, 2, None);
        assert!(
            exact.is_empty(),
            "no explicit pattern appears in both pathways"
        );
        // Taxogram at θ = 1 finds generalized patterns.
        let r = Taxogram::new(TaxogramConfig::with_threshold(1.0))
            .mine(&db, &t)
            .unwrap();
        assert!(!r.patterns.is_empty(), "implicit patterns exist");
        for p in &r.patterns {
            assert_eq!(p.support_count, 2);
            assert!((p.support - 1.0).abs() < 1e-12);
        }
        // P1 from Figure 1.3: Transporter—Helicase — or a specialization
        // of its endpoints with the same support — must be found. In this
        // database Pathway 1 pairs Protein Carrier (under Transporter)
        // with DNA Helicase (under Helicase); Pathway 2 pairs Cation
        // Transp. with Helicase. The most specific common generalization
        // is exactly Transporter—Helicase.
        let transporter = names.get("transporter").unwrap();
        let helicase = names.get("helicase").unwrap();
        let mut want = LabeledGraph::with_nodes([transporter, helicase]);
        want.add_edge(0, 1, EdgeLabel(0)).unwrap();
        assert!(
            r.find_isomorphic(&want).is_some(),
            "Transporter—Helicase missing; got {:?}",
            r.patterns
                .iter()
                .map(|p| p.graph.labels().to_vec())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn no_over_generalized_pattern_in_output() {
        // Minimality (Lemma 8) checked directly on the sample fixture:
        // no output pattern has an output specialization with equal
        // support (checking positionwise under both edge orientations).
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let r = Taxogram::new(TaxogramConfig::with_threshold(1.0 / 3.0))
            .mine(&db, &t)
            .unwrap();
        for p in &r.patterns {
            for q in &r.patterns {
                if std::ptr::eq(p, q) || p.support_count != q.support_count {
                    continue;
                }
                if p.graph.node_count() != q.graph.node_count()
                    || p.graph.edge_count() != q.graph.edge_count()
                {
                    continue;
                }
                let strictly_gen = tsg_iso::is_gen_iso(&p.graph, &q.graph, &t)
                    && !tsg_iso::is_isomorphic(&p.graph, &q.graph);
                assert!(
                    !strictly_gen,
                    "{:?} over-generalizes {:?} at equal support {}",
                    p.graph.labels(),
                    q.graph.labels(),
                    p.support_count
                );
            }
        }
        assert!(!r.patterns.is_empty());
    }

    #[test]
    fn baseline_and_enhanced_agree() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        for theta in [1.0, 2.0 / 3.0, 1.0 / 3.0] {
            let full = Taxogram::new(TaxogramConfig::with_threshold(theta))
                .mine(&db, &t)
                .unwrap();
            let base = Taxogram::new(TaxogramConfig::baseline(theta))
                .mine(&db, &t)
                .unwrap();
            assert_eq!(full.patterns.len(), base.patterns.len(), "θ = {theta}");
            for p in &full.patterns {
                let q = base.find_isomorphic(&p.graph).unwrap_or_else(|| {
                    panic!("baseline missing {:?}", p.graph.labels())
                });
                assert_eq!(p.support_count, q.support_count);
            }
        }
    }

    #[test]
    fn multi_root_taxonomy_artificial_labels_never_emitted() {
        // Roots 0 and 1 share child 2; child 3 under 2.
        let t = taxonomy_from_edges(4, [(2, 0), (2, 1), (3, 2)]).unwrap();
        let mk = |l: u32| {
            let mut g = LabeledGraph::with_nodes([NodeLabel(l), NodeLabel(l)]);
            g.add_edge(0, 1, EdgeLabel(0)).unwrap();
            g
        };
        let db = GraphDatabase::from_graphs(vec![mk(2), mk(3)]);
        let r = Taxogram::new(TaxogramConfig::with_threshold(1.0))
            .mine(&db, &t)
            .unwrap();
        for p in &r.patterns {
            for &l in p.graph.labels() {
                assert!(l.index() < 4, "artificial label {l} leaked into output");
            }
        }
        // 2—2 occurs in both graphs (3 is-a 2): it must be found.
        assert!(r.find_isomorphic(&mk(2)).is_some());
    }

    #[test]
    fn max_edges_caps_pattern_size() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let r = Taxogram::new(TaxogramConfig::with_threshold(1.0 / 3.0).max_edges(1))
            .mine(&db, &t)
            .unwrap();
        assert!(r.patterns.iter().all(|p| p.graph.edge_count() == 1));
    }

    #[test]
    fn stats_are_populated() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let r = Taxogram::new(TaxogramConfig::with_threshold(2.0 / 3.0))
            .mine(&db, &t)
            .unwrap();
        assert!(r.stats.classes >= 1);
        assert!(r.stats.oi_updates > 0);
        assert!(r.stats.occurrences > 0);
        assert!(r.stats.enumeration.intersections > 0);
        assert_eq!(r.stats.enumeration.emitted, r.patterns.len());
        assert_eq!(r.min_support_count, 2);
        assert_eq!(r.database_size, 3);
    }

    #[test]
    fn sorted_patterns_order() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let r = Taxogram::new(TaxogramConfig::with_threshold(1.0 / 3.0))
            .mine(&db, &t)
            .unwrap();
        let sorted = r.sorted_patterns();
        for w in sorted.windows(2) {
            assert!(w[0].support_count >= w[1].support_count);
        }
    }
}
