//! Taxonomy-projected occurrence indices (paper §3, Step 2).
//!
//! For a pattern class `P` (a frequent pattern of the relabeled database),
//! the occurrence index `OI(P)` holds one *occurrence index entry* (OIE)
//! per pattern node: a projection of the taxonomy onto the labels covered
//! by the pattern at that position (plus their ancestors), each label
//! carrying the set of occurrences observed under it. Occurrences are
//! gSpan embeddings, numbered densely per class; a map from occurrence to
//! database graph supports the paper's per-graph support counting.
//!
//! Two representation choices matter for performance:
//!
//! * **Occurrence sets are adaptive** ([`AdaptiveBitSet`]): most labels
//!   cover few occurrences and store them as 2-byte sorted arrays, labels
//!   near the root cover nearly everything and collapse into flat bitmap
//!   or run containers — so storage stays proportional to content (the
//!   paper's Lemma 4 bound) rather than `labels × occurrence-universe`,
//!   while the near-full sets keep word-parallel kernels. Sets are
//!   [`optimize`](AdaptiveBitSet::optimize)d once at build time (the root
//!   label's set is the contiguous run `0..universe`, the ideal run
//!   container). The enumerator's working set stays a dense bitset —
//!   there is exactly one per recursion level.
//! * **Labels are interned per entry** into dense local ids. Entries
//!   routinely hold hundreds of labels, and hash-mapping every label
//!   touch dominated index construction before interning; now each label
//!   pays one hash insertion, and construction, contraction, and child
//!   iteration run on dense vectors.

// tsg-lint: allow(index) — occurrence-index rows are indexed by dense entry ids issued during construction of the same index

use std::collections::HashMap;
use tsg_bitset::{AdaptiveBitSet, BitSet};
use tsg_graph::{GraphId, NodeLabel};
use tsg_gspan::Embedding;
use tsg_taxonomy::Taxonomy;

/// Local (per-entry) label id.
pub type LocalId = u32;

/// One taxonomy label's slot inside an OIE.
#[derive(Debug, Clone)]
pub struct OiNode {
    /// The occurrences of the class whose original label at this position
    /// is a (reflexive) descendant of this label.
    pub occs: AdaptiveBitSet,
    /// Children of this label *within the entry* (taxonomy children
    /// restricted to covered labels, possibly rewired by contraction), as
    /// local ids.
    pub children: Vec<LocalId>,
    /// `false` once removed by contraction.
    alive: bool,
}

/// The occurrence index entry of one pattern node: a sub-taxonomy rooted
/// at the node's most-general label, with labels interned to local ids.
#[derive(Debug, Clone)]
pub struct OiEntry {
    index: HashMap<NodeLabel, LocalId>,
    labels: Vec<NodeLabel>,
    nodes: Vec<OiNode>,
    root: LocalId,
}

impl OiEntry {
    /// The entry's root (the pattern node's most-general label, possibly
    /// replaced by an equal-occurrence child via enhancement *c*/*d*).
    pub fn root(&self) -> LocalId {
        self.root
    }

    /// The taxonomy label behind a local id.
    #[inline]
    pub fn label_of(&self, id: LocalId) -> NodeLabel {
        self.labels[id as usize]
    }

    /// The local id of a taxonomy label, if present (and alive).
    pub fn lookup(&self, label: NodeLabel) -> Option<LocalId> {
        self.index
            .get(&label)
            .copied()
            .filter(|&id| self.nodes[id as usize].alive)
    }

    /// The occurrence set of a local id.
    #[inline]
    pub fn occs(&self, id: LocalId) -> &AdaptiveBitSet {
        &self.nodes[id as usize].occs
    }

    /// Children of a local id within the entry.
    #[inline]
    pub fn children(&self, id: LocalId) -> &[LocalId] {
        &self.nodes[id as usize].children
    }

    /// `true` iff `label` is present (and not contracted away).
    pub fn contains(&self, label: NodeLabel) -> bool {
        self.lookup(label).is_some()
    }

    /// Number of live labels in the entry.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// `true` iff the entry has no live labels.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the live labels (unordered).
    pub fn live_labels(&self) -> impl Iterator<Item = NodeLabel> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| self.labels[i])
    }

    /// Approximate heap footprint, for the memory accounting the scaling
    /// experiments report.
    pub fn heap_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.occs.heap_bytes() + n.children.len() * std::mem::size_of::<LocalId>())
            .sum::<usize>()
            + self.labels.len() * (std::mem::size_of::<NodeLabel>() + 16)
    }
}

/// The occurrence index of one pattern class.
#[derive(Debug, Clone)]
pub struct OccurrenceIndex {
    /// Number of occurrences (embeddings) of the class — the bitset
    /// universe.
    pub universe: usize,
    /// Occurrence id → database graph id.
    pub occ_graph: Vec<u32>,
    /// One entry per pattern node, indexed by DFS vertex id.
    pub entries: Vec<OiEntry>,
    /// Number of `(occurrence, ancestor-label)` insertions performed —
    /// the update count of the paper's Lemma 5 cost model.
    pub updates: usize,
}

/// Options controlling index construction.
#[derive(Debug, Clone, Copy)]
pub struct OiOptions<'a> {
    /// When `Some`, only labels in this set are materialized (enhancement
    /// *b* / Step 2 note (ii): generalized-infrequent labels are skipped).
    pub frequent: Option<&'a BitSet>,
    /// Contract labels whose occurrence set equals their unique equal
    /// child's, anywhere in the entry (enhancement *d*).
    pub contract_equal_sets: bool,
    /// Contract at entry roots only (enhancement *c*); subsumed by
    /// `contract_equal_sets`.
    pub predescend_roots: bool,
}

/// Reusable per-worker scratch for index construction: the by-original
/// grouping table and its retired occurrence vectors. One `OiScratch`
/// serves any number of classes in sequence; the grouping hash table and
/// its vectors are recycled instead of reallocated per pattern node.
#[derive(Debug, Default)]
pub struct OiScratch {
    by_original: HashMap<NodeLabel, Vec<usize>>,
    spare_vecs: Vec<Vec<usize>>,
}

impl OiScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        OiScratch::default()
    }
}

impl OccurrenceIndex {
    /// Builds the index for a pattern class from gSpan's embeddings.
    ///
    /// `mg_labels` are the class's most-general labels per pattern node;
    /// `originals[gid][v]` gives pre-relabeling vertex labels.
    pub fn build(
        embeddings: &[Embedding],
        originals: &[Vec<NodeLabel>],
        mg_labels: &[NodeLabel],
        taxonomy: &Taxonomy,
        options: OiOptions<'_>,
    ) -> OccurrenceIndex {
        let mut scratch = OiScratch::new();
        OccurrenceIndex::build_with_scratch(
            embeddings,
            originals,
            mg_labels,
            taxonomy,
            options,
            &mut scratch,
        )
    }

    /// Like [`OccurrenceIndex::build`], reusing a caller-owned
    /// [`OiScratch`] across classes (the streaming pipeline's workers hold
    /// one per thread).
    pub fn build_with_scratch(
        embeddings: &[Embedding],
        originals: &[Vec<NodeLabel>],
        mg_labels: &[NodeLabel],
        taxonomy: &Taxonomy,
        options: OiOptions<'_>,
        scratch: &mut OiScratch,
    ) -> OccurrenceIndex {
        let universe = embeddings.len();
        let occ_graph: Vec<u32> = embeddings.iter().map(|e| e.gid as u32).collect();
        let mut updates = 0usize;
        let mut entries = Vec::with_capacity(mg_labels.len());
        let OiScratch {
            by_original,
            spare_vecs,
        } = scratch;
        for (pos, &mg) in mg_labels.iter().enumerate() {
            // Group occurrences by original label: original labels repeat
            // heavily across a class's occurrences, so all per-label work
            // below runs once per (distinct original, ancestor). The
            // grouping table and its vectors come from (and return to) the
            // caller's scratch.
            for (occ, emb) in embeddings.iter().enumerate() {
                by_original
                    .entry(originals[emb.gid][emb.map[pos]])
                    .or_insert_with(|| spare_vecs.pop().unwrap_or_default())
                    .push(occ);
            }
            let mut index: HashMap<NodeLabel, LocalId> = HashMap::new();
            let mut labels: Vec<NodeLabel> = Vec::new();
            let mut raw: Vec<Vec<usize>> = Vec::new();
            // Iterate originals in label order: interning order — and with
            // it entry-children order and final emission order — becomes
            // deterministic across runs and across the serial/parallel
            // pipelines.
            let mut originals_sorted: Vec<(&NodeLabel, &Vec<usize>)> = by_original.iter().collect();
            originals_sorted.sort_unstable_by_key(|(l, _)| **l);
            for (original, occs) in originals_sorted {
                for anc_idx in taxonomy.ancestors(*original).iter() {
                    if options.frequent.is_some_and(|f| !f.contains(anc_idx)) {
                        continue;
                    }
                    let label = NodeLabel(anc_idx as u32);
                    let id = *index.entry(label).or_insert_with(|| {
                        labels.push(label);
                        raw.push(spare_vecs.pop().unwrap_or_default());
                        (labels.len() - 1) as LocalId
                    });
                    raw[id as usize].extend_from_slice(occs);
                    updates += occs.len();
                }
            }
            for (_, mut v) in by_original.drain() {
                v.clear();
                spare_vecs.push(v);
            }
            // Container encodings are chosen byte-cheapest at
            // construction (contiguous near-root occurrence ranges come
            // out run-encoded); the member buffers return to the scratch
            // pool for the next entry.
            let mut nodes: Vec<OiNode> = raw
                .into_iter()
                .map(|mut members| {
                    let occs = AdaptiveBitSet::from_scratch(&mut members);
                    spare_vecs.push(members);
                    OiNode {
                        occs,
                        children: Vec::new(),
                        alive: true,
                    }
                })
                .collect();
            // Wire children within the entry, iterating each covered
            // label's *parents* (typically one or two on real ontologies)
            // rather than its taxonomy children (hundreds for top-level
            // concepts in wide taxonomies). Every covered label's admitted
            // ancestors are present — the frequency mask is monotone
            // upward — so parent lookups resolve whenever admitted.
            for id in 0..nodes.len() as u32 {
                for p in taxonomy.parents(labels[id as usize]) {
                    if let Some(&pid) = index.get(p) {
                        nodes[pid as usize].children.push(id);
                    }
                }
            }
            let root = *index
                .get(&mg)
                .expect("the most-general label is an ancestor of every original, so it is covered"); // tsg-lint: allow(panic) — the most-general label covers every original, so the index has it
            let mut entry = OiEntry {
                index,
                labels,
                nodes,
                root,
            };
            if options.contract_equal_sets {
                contract(&mut entry, false);
            } else if options.predescend_roots {
                contract(&mut entry, true);
            }
            entries.push(entry);
        }
        OccurrenceIndex {
            universe,
            occ_graph,
            entries,
            updates,
        }
    }

    /// The full occurrence set of the class (every bit set).
    pub fn full_set(&self) -> BitSet {
        BitSet::full(self.universe)
    }

    /// The number of distinct graphs among all occurrences. Walks the
    /// occurrence→graph projection directly — the full occurrence set is
    /// by definition all-ones, so materializing it buys nothing.
    pub fn graph_support(&self, db_len: usize) -> usize {
        let mut scratch = BitSet::new(db_len);
        let mut n = 0;
        for &g in &self.occ_graph {
            if scratch.insert(g as usize) {
                n += 1;
            }
        }
        n
    }

    /// Approximate heap footprint of all entries.
    pub fn heap_bytes(&self) -> usize {
        self.entries.iter().map(OiEntry::heap_bytes).sum::<usize>()
            + self.occ_graph.len() * std::mem::size_of::<u32>()
    }
}

/// Contracts labels whose occurrence set equals exactly one child's set:
/// the label is removed and the child rewired to its parents (enhancement
/// *d*; with `roots_only`, applied only while the entry root qualifies —
/// enhancement *c*). Any pattern using a removed label is necessarily
/// over-generalized: replacing it by the equal child preserves the
/// occurrence set, hence the support, of every pattern in the class.
fn contract(entry: &mut OiEntry, roots_only: bool) {
    let n = entry.nodes.len();
    // Occurrence sets never change during contraction (only the DAG
    // structure does), so labels are partitioned into equal-set groups up
    // front — one verified comparison per label — and every later
    // equality question is a group-id comparison. Equal sets are the
    // *common* case here (that is why enhancements (c)/(d) exist).
    let group_of = equal_set_groups(entry);
    // Reverse (parent) adjacency, maintained across contractions.
    let mut parents: Vec<Vec<LocalId>> = vec![Vec::new(); n];
    for (id, node) in entry.nodes.iter().enumerate() {
        for &c in &node.children {
            parents[c as usize].push(id as LocalId);
        }
    }
    let mut queue: Vec<LocalId> = if roots_only {
        vec![entry.root]
    } else {
        (0..n as LocalId).collect()
    };
    while let Some(parent) = queue.pop() {
        if roots_only && parent != entry.root {
            continue;
        }
        if !entry.nodes[parent as usize].alive {
            continue;
        }
        let Some(child) = equal_unique_child(entry, parent, &group_of) else {
            continue;
        };
        entry.nodes[parent as usize].alive = false;
        // Rewire: everything that listed `parent` as a child now lists
        // `child` (deduplicated) — and becomes a candidate itself.
        let parent_parents = std::mem::take(&mut parents[parent as usize]);
        for gp in parent_parents {
            if !entry.nodes[gp as usize].alive {
                continue;
            }
            let node = &mut entry.nodes[gp as usize];
            if let Some(i) = node.children.iter().position(|&c| c == parent) {
                node.children.remove(i);
                if !node.children.contains(&child) {
                    node.children.push(child);
                    parents[child as usize].push(gp);
                }
                queue.push(gp);
            }
        }
        // `parent`'s other children were siblings of `child`; they remain
        // reachable below `child` (their sets are subsets of `parent`'s
        // = `child`'s, so the generalization order is preserved).
        let orphans: Vec<LocalId> = entry.nodes[parent as usize]
            .children
            .iter()
            .copied()
            .filter(|&c| c != child)
            .collect();
        for c in orphans {
            if !entry.nodes[child as usize].children.contains(&c) {
                entry.nodes[child as usize].children.push(c);
                parents[c as usize].push(child);
            }
        }
        if entry.root == parent {
            entry.root = child;
            queue.push(child);
        }
    }
}

/// An order-sensitive fingerprint of a sorted occurrence set; equal sets
/// always collide, unequal ones almost never do.
fn set_fingerprint(set: &AdaptiveBitSet) -> u64 {
    let mut h = set.len() as u64;
    set.for_each(|o| {
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(o as u64 + 1);
    });
    h
}

/// Partitions the entry's labels into equal-occurrence-set groups: equal
/// group id ⇔ equal set. Fingerprints bucket the labels; within a bucket
/// each label is verified element-wise against its subgroup's
/// representative, so correctness never rests on hash quality.
fn equal_set_groups(entry: &OiEntry) -> Vec<u32> {
    let mut buckets: HashMap<(usize, u64), Vec<LocalId>> = HashMap::new();
    for (id, node) in entry.nodes.iter().enumerate() {
        buckets
            .entry((node.occs.len(), set_fingerprint(&node.occs)))
            .or_default()
            .push(id as LocalId);
    }
    let mut group_of = vec![0u32; entry.nodes.len()];
    let mut next_group = 0u32;
    for (_, members) in buckets {
        let mut reps: Vec<(LocalId, u32)> = Vec::new();
        for l in members {
            let set = &entry.nodes[l as usize].occs;
            match reps
                .iter()
                .find(|(r, _)| entry.nodes[*r as usize].occs == *set)
            {
                Some(&(_, g)) => group_of[l as usize] = g,
                None => {
                    reps.push((l, next_group));
                    group_of[l as usize] = next_group;
                    next_group += 1;
                }
            }
        }
    }
    group_of
}

/// If exactly one child of `l` has an occurrence set equal to `l`'s,
/// returns it.
fn equal_unique_child(entry: &OiEntry, l: LocalId, group_of: &[u32]) -> Option<LocalId> {
    let node = &entry.nodes[l as usize];
    let group = group_of[l as usize];
    let mut equal = None;
    for &c in &node.children {
        if group_of[c as usize] == group {
            if equal.is_some() {
                return None; // ambiguous — skip contraction for safety
            }
            equal = Some(c);
        }
    }
    equal
}

/// Convenience for tests and examples: the graph ids (sorted,
/// deduplicated) covered by an occurrence set (any iterable of occurrence
/// ids).
pub fn occ_set_graphs(set: impl IntoIterator<Item = usize>, occ_graph: &[u32]) -> Vec<GraphId> {
    let mut gids: Vec<GraphId> = set.into_iter().map(|o| occ_graph[o] as GraphId).collect();
    gids.sort_unstable();
    gids.dedup();
    gids
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_taxonomy::samples;

    /// Grabs the 1-edge (`a—a`) pattern class of the relabeled Figure 1.4
    /// database: its embeddings and most-general labels.
    fn grab_edge_class(
        rel: &crate::relabel::Relabeled,
    ) -> (Vec<tsg_gspan::Embedding>, Vec<NodeLabel>) {
        struct Grab {
            embs: Vec<tsg_gspan::Embedding>,
            labels: Vec<NodeLabel>,
        }
        impl tsg_gspan::PatternSink for Grab {
            fn report(&mut self, p: &tsg_gspan::MinedPattern<'_>) -> tsg_gspan::Grow {
                if p.graph.edge_count() == 1 && self.embs.is_empty() {
                    self.embs = p.embeddings.to_vec();
                    self.labels = p.graph.labels().to_vec();
                }
                tsg_gspan::Grow::Continue
            }
        }
        let mut grab = Grab {
            embs: vec![],
            labels: vec![],
        };
        tsg_gspan::GSpan::new(
            &rel.dmg,
            tsg_gspan::GSpanConfig {
                min_support: 2,
                max_edges: None,
            },
        )
        .mine(&mut grab);
        assert!(!grab.embs.is_empty(), "the a—a class is frequent");
        (grab.embs, grab.labels)
    }

    /// Builds the paper's Figure 3.2 scenario: pattern class `a—a` over
    /// the Figure 1.4 database.
    fn figure_3_2_index() -> (samples::SampleConcepts, OccurrenceIndex) {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let rel = crate::relabel::relabel(&db, &t).unwrap();
        let (embs, labels) = grab_edge_class(&rel);
        let oi = OccurrenceIndex::build(
            &embs,
            &rel.originals,
            &labels,
            &rel.taxonomy,
            OiOptions {
                frequent: None,
                contract_equal_sets: false,
                predescend_roots: false,
            },
        );
        (c, oi)
    }

    #[test]
    fn figure_3_2_entry_structure() {
        let (c, oi) = figure_3_2_index();
        assert_eq!(oi.entries.len(), 2, "one OIE per pattern node");
        // Paper: a—a has 4 subgraph occurrences (1.1, 2.1, 2.2, 3.1); each
        // is found in both vertex orders by gSpan, so 8 embeddings.
        assert_eq!(oi.universe, 8);
        for entry in &oi.entries {
            assert_eq!(entry.label_of(entry.root()), c.a);
            // Root covers every occurrence.
            assert_eq!(entry.occs(entry.root()).len(), 8);
            // b and c are covered (as ancestors of d/b resp. f/g/w/c).
            assert!(entry.contains(c.b));
            assert!(entry.contains(c.c));
            // Deep unrelated labels are not.
            assert!(!entry.contains(c.k));
            let root_children: Vec<NodeLabel> = entry
                .children(entry.root())
                .iter()
                .map(|&id| entry.label_of(id))
                .collect();
            assert!(root_children.contains(&c.b));
            assert!(root_children.contains(&c.c));
        }
        // Each occurrence of graph 0 (d—b) has a b-descendant original at
        // some position, so OcS(b) covers graph 0.
        let e0 = &oi.entries[0];
        let b_id = e0.lookup(c.b).unwrap();
        let graphs_of_b = occ_set_graphs(e0.occs(b_id).iter(), &oi.occ_graph);
        assert!(graphs_of_b.contains(&0));
        assert_eq!(oi.graph_support(3), 3);
    }

    #[test]
    fn frequency_filter_drops_labels() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let rel = crate::relabel::relabel(&db, &t).unwrap();
        let (embs, labels) = grab_edge_class(&rel);
        // Admit only a and b into the index.
        let mut frequent = BitSet::new(rel.taxonomy.concept_count());
        frequent.insert(c.a.index());
        frequent.insert(c.b.index());
        let oi = OccurrenceIndex::build(
            &embs,
            &rel.originals,
            &labels,
            &rel.taxonomy,
            OiOptions {
                frequent: Some(&frequent),
                contract_equal_sets: false,
                predescend_roots: false,
            },
        );
        for e in &oi.entries {
            assert!(e.contains(c.a));
            assert!(e.contains(c.b));
            assert!(!e.contains(c.c), "c filtered out");
            assert!(!e.contains(c.d), "d filtered out");
        }
    }

    /// Hand-builds an entry from `(label, occurrences, children)` rows.
    fn make_entry(rows: &[(u32, &[usize], &[u32])], root: u32) -> OiEntry {
        let mut index = HashMap::new();
        let mut labels = Vec::new();
        let mut nodes = Vec::new();
        for (i, (label, occs, children)) in rows.iter().enumerate() {
            index.insert(NodeLabel(*label), i as LocalId);
            labels.push(NodeLabel(*label));
            nodes.push(OiNode {
                occs: AdaptiveBitSet::from_members(occs.to_vec()),
                children: children.to_vec(),
                alive: true,
            });
        }
        OiEntry {
            index,
            labels,
            nodes,
            root,
        }
    }

    #[test]
    fn contraction_removes_equal_parent() {
        // root r (occs {0,1}) → x (occs {0,1}) → y (occs {0}):
        // contraction removes r, x becomes root.
        let mut entry = make_entry(
            &[(0, &[0, 1], &[1]), (1, &[0, 1], &[2]), (2, &[0], &[])],
            0,
        );
        contract(&mut entry, false);
        assert!(!entry.contains(NodeLabel(0)));
        assert_eq!(entry.label_of(entry.root()), NodeLabel(1));
        assert_eq!(entry.children(entry.root()), &[2]);
        assert_eq!(entry.len(), 2);
    }

    #[test]
    fn ambiguous_equal_children_are_not_contracted() {
        let mut entry = make_entry(
            &[(0, &[0, 1], &[1, 2]), (1, &[0, 1], &[]), (2, &[0, 1], &[])],
            0,
        );
        contract(&mut entry, false);
        assert!(entry.contains(NodeLabel(0)), "two equal children: skipped");
        assert_eq!(entry.len(), 3);
    }

    #[test]
    fn roots_only_contraction_stops_below_root() {
        // r(={0,1}) → {x(={0}), w(={1})}, x → x2(={0}): the non-root pair
        // (x, x2) is only contracted in full mode.
        let rows: &[(u32, &[usize], &[u32])] = &[
            (0, &[0, 1], &[1, 2]),
            (1, &[0], &[3]),
            (2, &[1], &[]),
            (3, &[0], &[]),
        ];
        let mut roots_only_entry = make_entry(rows, 0);
        contract(&mut roots_only_entry, true);
        assert!(
            roots_only_entry.contains(NodeLabel(1)),
            "non-root pair untouched"
        );
        assert_eq!(roots_only_entry.len(), 4);
        let mut full_entry = make_entry(rows, 0);
        contract(&mut full_entry, false);
        assert!(!full_entry.contains(NodeLabel(1)), "full mode removes x");
        let root_children: Vec<NodeLabel> = full_entry
            .children(full_entry.root())
            .iter()
            .map(|&id| full_entry.label_of(id))
            .collect();
        assert!(root_children.contains(&NodeLabel(2)));
        assert!(root_children.contains(&NodeLabel(3)));
    }

    #[test]
    fn contraction_chain_collapses_fully() {
        // r = x = y (all {0,1}), y → z ({0}): r and x both contract down
        // to y; z stays.
        let mut entry = make_entry(
            &[
                (0, &[0, 1], &[1]),
                (1, &[0, 1], &[2]),
                (2, &[0, 1], &[3]),
                (3, &[0], &[]),
            ],
            0,
        );
        contract(&mut entry, false);
        assert_eq!(entry.len(), 2);
        assert_eq!(entry.label_of(entry.root()), NodeLabel(2));
    }

    #[test]
    fn equal_set_groups_verified() {
        let entry = make_entry(
            &[
                (0, &[0, 1], &[]),
                (1, &[0, 1], &[]),
                (2, &[0], &[]),
                (3, &[1], &[]),
            ],
            0,
        );
        let g = equal_set_groups(&entry);
        assert_eq!(g[0], g[1], "equal sets share a group");
        assert_ne!(g[0], g[2]);
        assert_ne!(g[2], g[3], "different singletons differ");
    }
}
