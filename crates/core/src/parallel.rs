//! Parallel Step 3: enumerate pattern classes on multiple threads.
//!
//! Serial Taxogram interleaves Steps 2 and 3 so only one occurrence index
//! is resident at a time (the paper's Step 2 space argument). Pattern
//! classes are, however, *independent* once their embeddings are known,
//! which makes Step 3 embarrassingly parallel. [`mine_parallel`] trades
//! the one-index-at-a-time memory discipline for wall-clock speed:
//!
//! 1. run gSpan once, collecting every class's skeleton and embedding
//!    list (this is the extra memory: all embeddings at once);
//! 2. fan the classes out to a thread pool; each worker builds the
//!    class's occurrence index and enumerates it independently;
//! 3. merge per-class outputs in class order, so the result is
//!    byte-for-byte identical to the serial pipeline's.
//!
//! The paper lists distributed/disk-based processing as future work (§6);
//! this is the shared-memory half of that direction.

use crate::config::TaxogramConfig;

use crate::error::TaxogramError;
use crate::miner::{MiningResult, MiningStats, Pattern};
use crate::oi::{OccurrenceIndex, OiOptions};
use crate::relabel::relabel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tsg_bitset::BitSet;
use tsg_graph::{GraphDatabase, LabeledGraph};
use tsg_gspan::{Embedding, GSpan, GSpanConfig, Grow, MinedPattern, PatternSink};
use tsg_taxonomy::Taxonomy;

/// One collected pattern class awaiting enumeration.
struct ClassWork {
    skeleton: LabeledGraph,
    embeddings: Vec<Embedding>,
}

/// Per-class enumeration output, merged in class order at the end.
#[derive(Default)]
struct ClassOutput {
    patterns: Vec<Pattern>,
    stats: MiningStats,
}

/// Mines like [`crate::Taxogram::mine`], but enumerates pattern classes on
/// `threads` worker threads. Produces exactly the serial result (same
/// patterns, same order); `stats` are summed across workers, with
/// `peak_oi_bytes` the maximum over classes as in the serial pipeline.
///
/// With `threads == 0` or `1`, falls back to the serial miner.
///
/// # Errors
/// Same conditions as the serial miner.
pub fn mine_parallel(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    threads: usize,
) -> Result<MiningResult, TaxogramError> {
    if threads <= 1 {
        return crate::Taxogram::new(*config).mine(db, taxonomy);
    }
    let theta = config.threshold;
    if !(0.0..=1.0).contains(&theta) || theta.is_nan() {
        return Err(TaxogramError::InvalidThreshold { theta });
    }
    let min_support = db.min_support_count(theta);
    if db.is_empty() {
        return Ok(MiningResult {
            patterns: Vec::new(),
            stats: MiningStats::default(),
            min_support_count: min_support,
            database_size: 0,
        });
    }

    let rel = relabel(db, taxonomy)?;
    let frequent_mask = if config.enhancements.prune_infrequent_labels {
        let freqs = rel.taxonomy.generalized_label_frequencies(db);
        let mut mask = BitSet::new(rel.taxonomy.concept_count());
        for (i, &f) in freqs.iter().enumerate() {
            if f >= min_support {
                mask.insert(i);
            }
        }
        Some(mask)
    } else {
        None
    };

    // Step 2 (collection): gather every class up front.
    struct Collect {
        classes: Vec<ClassWork>,
    }
    impl PatternSink for Collect {
        fn report(&mut self, p: &MinedPattern<'_>) -> Grow {
            self.classes.push(ClassWork {
                skeleton: p.graph.clone(),
                embeddings: p.embeddings.to_vec(),
            });
            Grow::Continue
        }
    }
    let mut collect = Collect { classes: Vec::new() };
    GSpan::new(
        &rel.dmg,
        GSpanConfig {
            min_support,
            max_edges: config.max_edges,
        },
    )
    .mine(&mut collect);
    let classes = collect.classes;

    // Step 3 (fan-out): one slot per class, claimed via an atomic cursor.
    let outputs: Vec<Mutex<ClassOutput>> = (0..classes.len())
        .map(|_| Mutex::new(ClassOutput::default()))
        .collect();
    let cursor = AtomicUsize::new(0);
    let db_len = db.len();
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(classes.len().max(1)) {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(class) = classes.get(i) else { break };
                let out = enumerate_one(
                    class,
                    &rel,
                    frequent_mask.as_ref(),
                    config,
                    min_support,
                    db_len,
                );
                *outputs[i].lock().expect("no worker panicked holding this lock") = out;
            });
        }
    })
    .expect("class workers do not panic");

    // Merge in class order → identical to the serial pipeline's output.
    let mut patterns = Vec::new();
    let mut stats = MiningStats {
        classes: classes.len(),
        ..MiningStats::default()
    };
    for slot in outputs {
        let out = slot.into_inner().expect("workers finished");
        patterns.extend(out.patterns);
        stats.oi_updates += out.stats.oi_updates;
        stats.occurrences += out.stats.occurrences;
        stats.peak_oi_bytes = stats.peak_oi_bytes.max(out.stats.peak_oi_bytes);
        stats.oi_build_ms += out.stats.oi_build_ms;
        stats.enumerate_ms += out.stats.enumerate_ms;
        stats.enumeration.vectors_visited += out.stats.enumeration.vectors_visited;
        stats.enumeration.intersections += out.stats.enumeration.intersections;
        stats.enumeration.emitted += out.stats.enumeration.emitted;
        stats.enumeration.overgeneralized += out.stats.enumeration.overgeneralized;
    }
    Ok(MiningResult {
        patterns,
        stats,
        min_support_count: min_support,
        database_size: db_len,
    })
}

fn enumerate_one(
    class: &ClassWork,
    rel: &crate::relabel::Relabeled,
    frequent: Option<&BitSet>,
    config: &TaxogramConfig,
    min_support: usize,
    db_len: usize,
) -> ClassOutput {
    let mut out = ClassOutput::default();
    out.stats.occurrences = class.embeddings.len();
    let t_oi = std::time::Instant::now();
    let oi = OccurrenceIndex::build(
        &class.embeddings,
        &rel.originals,
        class.skeleton.labels(),
        &rel.taxonomy,
        OiOptions {
            frequent,
            contract_equal_sets: config.enhancements.contract_equal_sets,
            predescend_roots: config.enhancements.predescend_roots,
        },
    );
    out.stats.oi_build_ms = t_oi.elapsed().as_secs_f64() * 1000.0;
    out.stats.oi_updates = oi.updates;
    out.stats.peak_oi_bytes = oi.heap_bytes();
    let t_enum = std::time::Instant::now();
    let skeleton = &class.skeleton;
    let stats = crate::enumerate::enumerate_class_full(
        skeleton,
        &oi,
        &rel.taxonomy,
        min_support,
        db_len,
        &config.enhancements,
        config.keep_overgeneralized,
        |p| {
            let mut g = skeleton.clone();
            for (i, &l) in p.labels.iter().enumerate() {
                g.set_label(i, l);
            }
            out.patterns.push(Pattern {
                graph: g,
                support_count: p.support,
                support: p.support as f64 / db_len as f64,
            });
        },
    );
    out.stats.enumerate_ms = t_enum.elapsed().as_secs_f64() * 1000.0;
    out.stats.enumeration = stats;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxogramConfig;
    use tsg_taxonomy::samples;

    fn serial_and_parallel(threads: usize) -> (MiningResult, MiningResult) {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let cfg = TaxogramConfig::with_threshold(1.0 / 3.0);
        let serial = crate::Taxogram::new(cfg).mine(&db, &t).unwrap();
        let parallel = mine_parallel(&cfg, &db, &t, threads).unwrap();
        (serial, parallel)
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        for threads in [2, 4, 8] {
            let (serial, parallel) = serial_and_parallel(threads);
            assert_eq!(serial.patterns.len(), parallel.patterns.len());
            for (a, b) in serial.patterns.iter().zip(&parallel.patterns) {
                assert_eq!(a.graph.labels(), b.graph.labels(), "order preserved");
                assert_eq!(a.graph.edges(), b.graph.edges());
                assert_eq!(a.support_count, b.support_count);
            }
            assert_eq!(serial.stats.classes, parallel.stats.classes);
            assert_eq!(
                serial.stats.enumeration.emitted,
                parallel.stats.enumeration.emitted
            );
            assert_eq!(
                serial.stats.enumeration.intersections,
                parallel.stats.enumeration.intersections
            );
        }
    }

    #[test]
    fn one_thread_falls_back_to_serial() {
        let (serial, parallel) = serial_and_parallel(1);
        assert_eq!(serial.patterns.len(), parallel.patterns.len());
    }

    #[test]
    fn parallel_handles_empty_database() {
        let (_, t) = samples::sample_taxonomy();
        let cfg = TaxogramConfig::with_threshold(0.5);
        let r = mine_parallel(&cfg, &GraphDatabase::new(), &t, 4).unwrap();
        assert!(r.patterns.is_empty());
    }

    #[test]
    fn parallel_rejects_bad_threshold() {
        let (_, t) = samples::sample_taxonomy();
        let cfg = TaxogramConfig::with_threshold(2.0);
        assert!(matches!(
            mine_parallel(&cfg, &GraphDatabase::new(), &t, 4),
            Err(TaxogramError::InvalidThreshold { .. })
        ));
    }
}
