//! Barrier-parallel Step 3: collect every class, then fan out.
//!
//! Serial Taxogram interleaves Steps 2 and 3 so only one occurrence index
//! is resident at a time (the paper's Step 2 space argument). Pattern
//! classes are, however, *independent* once their embeddings are known,
//! which makes Step 3 embarrassingly parallel. [`mine_parallel`] trades
//! the one-index-at-a-time memory discipline for wall-clock speed:
//!
//! 1. run gSpan once, collecting every class's skeleton and embedding
//!    list (this is the extra memory: all embeddings at once);
//! 2. fan the classes out to a thread pool; each worker builds the
//!    class's occurrence index and enumerates it independently;
//! 3. merge per-class outputs in class order, so the result is
//!    byte-for-byte identical to the serial pipeline's.
//!
//! The collect-all barrier in step 1 is this engine's weakness: workers
//! idle until mining finishes, and every embedding list is resident at
//! once. [`crate::mine_pipelined`] removes the barrier by streaming
//! classes to workers as gSpan closes them, and [`crate::mine_stealing`]
//! goes further by parallelizing the gSpan search itself on a
//! work-stealing scheduler; this engine is kept as the simplest baseline
//! the others are benchmarked against.

use crate::config::TaxogramConfig;
use crate::enumerate::EnumScratch;
use crate::error::TaxogramError;
use crate::gauge::MemoryGauge;
use crate::govern::{GovernOptions, Governor, MiningOutcome};
use crate::miner::MiningResult;
use crate::oi::OiScratch;
use crate::pipeline::{
    embedding_heap_bytes, enumerate_class, merge_outputs, prepare, ClassOutput, Prologue,
};
use crate::sync::thread;
use crate::sync::{AtomicUsize, Mutex, Ordering};
use tsg_graph::{GraphDatabase, LabeledGraph};
use tsg_gspan::{DfsCode, Embedding, GSpan, GSpanConfig, Grow, MinedPattern, PatternSink};
use tsg_taxonomy::Taxonomy;

/// One collected pattern class awaiting enumeration.
struct ClassWork {
    code: DfsCode,
    skeleton: LabeledGraph,
    embeddings: Vec<Embedding>,
}

/// Mines like [`crate::Taxogram::mine`], but enumerates pattern classes on
/// `threads` worker threads. Produces exactly the serial result (same
/// patterns, same order); `stats` are summed across workers, with
/// `peak_oi_bytes` the high-water mark of concurrently resident indices
/// and `peak_embedding_bytes` the total collected embedding heap (all
/// classes are resident at once across the barrier).
///
/// With `threads == 0` or `1`, falls back to the serial miner.
///
/// # Errors
/// Same conditions as the serial miner.
pub fn mine_parallel(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    threads: usize,
) -> Result<MiningResult, TaxogramError> {
    if threads <= 1 {
        return crate::Taxogram::new(*config).mine(db, taxonomy);
    }
    Ok(mine_parallel_with_governor(config, db, taxonomy, threads, &Governor::disabled())?.result)
}

/// [`mine_parallel`] under governance: admission is gated per class while
/// collecting (in serial class order, against the collected embedding
/// residency), Step 3 workers poll the cancel token/deadline between
/// classes, and an early stop returns the longest fully-enumerated class
/// prefix — byte-identical to the serial output's prefix — with a
/// truthful [`crate::Termination`].
///
/// # Errors
/// Same conditions as [`mine_parallel`]; early termination is not an
/// error.
pub fn mine_parallel_governed(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    threads: usize,
    govern: &GovernOptions,
) -> Result<MiningOutcome, TaxogramError> {
    if threads <= 1 {
        return crate::Taxogram::new(*config).mine_governed(db, taxonomy, govern);
    }
    mine_parallel_with_governor(config, db, taxonomy, threads, &Governor::new(govern))
}

fn mine_parallel_with_governor(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    threads: usize,
    governor: &Governor,
) -> Result<MiningOutcome, TaxogramError> {
    let prepared = match prepare(config, db, taxonomy)? {
        Prologue::Done(result) => {
            return Ok(MiningOutcome {
                result,
                termination: crate::govern::Termination::completed(0),
            })
        }
        Prologue::Ready(p) => p,
    };

    // Step 2 (collection): gather every class up front. This sink
    // deliberately stays on the borrowing `report` API — cloning each
    // skeleton and embedding list is the collect-all barrier's inherent
    // cost, which the pipelined engine's move-based `complete` handoff
    // eliminates. Admission is checked here, in serial class order,
    // against the running collected-embedding residency (this engine's
    // true memory high-water mark: everything survives the barrier).
    struct Collect<'a> {
        classes: Vec<ClassWork>,
        emb_bytes: usize,
        governor: &'a Governor,
        rejected: Option<String>,
    }
    impl PatternSink for Collect<'_> {
        fn report(&mut self, p: &MinedPattern<'_>) -> Grow {
            if !self.governor.admit_class(self.emb_bytes) {
                self.rejected = Some(p.code.to_string());
                return Grow::Stop;
            }
            self.emb_bytes += tsg_gspan::embedding_list_bytes(p.embeddings);
            self.classes.push(ClassWork {
                code: p.code.clone(),
                skeleton: p.graph.clone(),
                embeddings: p.embeddings.to_vec(),
            });
            Grow::Continue
        }
    }
    let mut collect = Collect {
        classes: Vec::new(),
        emb_bytes: 0,
        governor,
        rejected: None,
    };
    GSpan::new(
        &prepared.rel.dmg,
        GSpanConfig {
            min_support: prepared.min_support,
            max_edges: config.max_edges,
        },
    )
    .mine(&mut collect);
    let classes = collect.classes;

    // Everything survives the barrier together: the resident embedding
    // peak is simply the total.
    let peak_embedding_bytes: usize = classes
        .iter()
        .map(|c| embedding_heap_bytes(&c.embeddings))
        .sum();

    // Step 3 (fan-out): one slot per class, claimed via an atomic cursor.
    // `None` slots mark classes abandoned by a mid-fan-out stop.
    let outputs: Vec<Mutex<Option<ClassOutput>>> =
        (0..classes.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let oi_gauge = MemoryGauge::new();
    thread::scope(|scope| {
        for _ in 0..threads.min(classes.len().max(1)) {
            scope.spawn(|| {
                let mut enum_scratch = EnumScratch::new();
                let mut oi_scratch = OiScratch::new();
                loop {
                    // Governance poll point: the deadline, the token, or
                    // the pattern ceiling (collection admitted every
                    // class before a single pattern existed) can trip
                    // *during* the fan-out; each worker observes it
                    // before claiming its next class.
                    if governor.should_stop_class_boundary() {
                        break;
                    }
                    // Genuinely relaxed: the claimed index is the whole
                    // payload (RMW modification order hands out each slot
                    // exactly once); slot contents synchronize via the
                    // slot mutex and the scope join.
                    let i = cursor.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-08)
                    let Some(class) = classes.get(i) else { break };
                    let out = enumerate_class(
                        &class.skeleton,
                        &class.embeddings,
                        &prepared,
                        config,
                        Some(&oi_gauge),
                        &mut enum_scratch,
                        &mut oi_scratch,
                    );
                    governor.add_patterns(out.patterns.len());
                    // tsg-lint: allow(index) — i enumerates outputs' own indices
                    *outputs[i].lock().expect("no worker panicked holding this lock") = Some(out); // tsg-lint: allow(panic) — poison implies a worker panicked, which the scope re-raises anyway
                }
            });
        }
    });

    // Keep the longest fully-enumerated prefix: sequence order is serial
    // class order, so cutting at the first missing slot preserves the
    // byte-identical-prefix contract even if later slots completed.
    let mut slots: Vec<Option<ClassOutput>> = outputs
        .into_iter()
        .map(|slot| slot.into_inner().expect("workers finished")) // tsg-lint: allow(panic) — after scope join; a poisoned lock would already have re-panicked
        .collect();
    let finished = slots.iter().take_while(|s| s.is_some()).count();
    let total = classes.len();
    let abandoned = total - finished + usize::from(collect.rejected.is_some());
    let frontier: Vec<String> = classes[finished..] // tsg-lint: allow(index) — finished <= classes.len() by take_while
        .iter()
        .map(|c| c.code.to_string())
        .chain(collect.rejected)
        .collect();
    let termination = governor.finish(finished, abandoned, frontier);
    slots.truncate(finished);
    let mut result = merge_outputs(slots.into_iter().flatten(), finished, &prepared);
    result.stats.peak_oi_bytes = oi_gauge.peak();
    result.stats.peak_embedding_bytes = peak_embedding_bytes;
    Ok(MiningOutcome {
        result,
        termination,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxogramConfig;
    use tsg_taxonomy::samples;

    fn serial_and_parallel(threads: usize) -> (MiningResult, MiningResult) {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let cfg = TaxogramConfig::with_threshold(1.0 / 3.0);
        let serial = crate::Taxogram::new(cfg).mine(&db, &t).unwrap();
        let parallel = mine_parallel(&cfg, &db, &t, threads).unwrap();
        (serial, parallel)
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        for threads in [2, 4, 8] {
            let (serial, parallel) = serial_and_parallel(threads);
            assert_eq!(serial.patterns.len(), parallel.patterns.len());
            for (a, b) in serial.patterns.iter().zip(&parallel.patterns) {
                assert_eq!(a.graph.labels(), b.graph.labels(), "order preserved");
                assert_eq!(a.graph.edges(), b.graph.edges());
                assert_eq!(a.support_count, b.support_count);
            }
            assert_eq!(serial.stats.classes, parallel.stats.classes);
            assert_eq!(
                serial.stats.enumeration.emitted,
                parallel.stats.enumeration.emitted
            );
            assert_eq!(
                serial.stats.enumeration.intersections,
                parallel.stats.enumeration.intersections
            );
        }
    }

    #[test]
    fn barrier_embedding_peak_counts_all_classes() {
        let (_, parallel) = serial_and_parallel(2);
        assert!(
            parallel.stats.peak_embedding_bytes > 0,
            "collected embeddings have nonzero footprint"
        );
    }

    #[test]
    fn one_thread_falls_back_to_serial() {
        let (serial, parallel) = serial_and_parallel(1);
        assert_eq!(serial.patterns.len(), parallel.patterns.len());
    }

    #[test]
    fn parallel_handles_empty_database() {
        let (_, t) = samples::sample_taxonomy();
        let cfg = TaxogramConfig::with_threshold(0.5);
        let r = mine_parallel(&cfg, &GraphDatabase::new(), &t, 4).unwrap();
        assert!(r.patterns.is_empty());
    }

    #[test]
    fn parallel_rejects_bad_threshold() {
        let (_, t) = samples::sample_taxonomy();
        let cfg = TaxogramConfig::with_threshold(2.0);
        assert!(matches!(
            mine_parallel(&cfg, &GraphDatabase::new(), &t, 4),
            Err(TaxogramError::InvalidThreshold { .. })
        ));
    }
}
