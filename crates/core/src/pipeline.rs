//! Streaming pipelined mining: Step 2 and Step 3 overlapped.
//!
//! The barrier engine ([`crate::mine_parallel`]) runs gSpan to completion,
//! collecting **every** class's embedding list, before any Step 3 work
//! starts. That collect-all barrier costs twice: wall-clock (workers idle
//! while mining runs, the miner idles while workers drain) and memory
//! (all embedding lists resident at once, forfeiting the paper's Step 2
//! space argument entirely).
//!
//! [`mine_pipelined`] removes the barrier. The gSpan producer pushes each
//! completed pattern class — skeleton plus embeddings, **moved, not
//! cloned** via [`tsg_gspan::PatternSink::complete`] — into a bounded
//! channel the moment its DFS-code subtree closes. A worker pool builds
//! occurrence indices and enumerates specializations *while mining is
//! still running*. Three properties make this safe and fast:
//!
//! - **Determinism.** `complete` fires in report (pre-order DFS) order,
//!   so the sink stamps each class with a sequence number equal to its
//!   serial class index. Workers process classes in whatever order the
//!   channel hands them out, but the merge sorts per-class outputs by
//!   sequence number — a reorder buffer — so the pattern list is
//!   byte-for-byte identical to the serial miner's.
//! - **Bounded memory.** The channel holds at most `channel_capacity`
//!   classes; a full channel blocks the producer. Peak resident embedding
//!   bytes are therefore bounded by the classes in flight (queued plus
//!   one per worker plus the one the producer holds), not by the class
//!   count. [`crate::MiningStats::peak_embedding_bytes`] records the
//!   observed high-water mark.
//! - **Zero steady-state allocation.** Each worker owns a reusable
//!   scratch arena ([`crate::enumerate::EnumScratch`] +
//!   [`crate::oi::OiScratch`]): dense bitset pools, interning tables, and
//!   specialization work stacks are recycled across classes, so the hot
//!   loop stops allocating once warm.

use crate::channel::{recover, Bounded};
use crate::config::TaxogramConfig;
use crate::enumerate::EnumScratch;
use crate::error::TaxogramError;
use crate::gauge::MemoryGauge;
use crate::govern::{GovernOptions, Governor, MiningOutcome, Termination};
use crate::miner::{MiningResult, MiningStats, Pattern};
use crate::oi::{OccurrenceIndex, OiOptions, OiScratch};
use crate::relabel::{relabel, Relabeled};
use tsg_bitset::BitSet;
use tsg_graph::{GraphDatabase, LabeledGraph};
use crate::sync::thread;
use crate::sync::Mutex;
use std::panic::AssertUnwindSafe;
use tsg_gspan::{ClassHandoff, Embedding, GSpan, GSpanConfig, Grow, MinedPattern, PatternSink};
use tsg_taxonomy::Taxonomy;

/// Tuning knobs for [`mine_pipelined_with`].
#[derive(Clone, Copy, Debug)]
pub struct PipelineOptions {
    /// Total mining threads: the gSpan producer (which steals Step 3
    /// work whenever the channel backs up) plus `threads - 1` dedicated
    /// workers. `0` or `1` falls back to the serial miner.
    pub threads: usize,
    /// Bounded channel capacity in pattern classes; `0` means
    /// `2 × threads`. Smaller values bound resident embedding memory
    /// tighter at the cost of more producer stalls.
    pub channel_capacity: usize,
    /// Clamp `threads` to the machine's available parallelism (default).
    /// When the clamp leaves no dedicated worker (a single-core host),
    /// classes are streamed *inline* on the producer thread — same
    /// move-handoff, scratch reuse, and memory accounting, zero
    /// synchronization. Disable to force the channel machinery at any
    /// thread count (used by the determinism tests).
    pub clamp_to_cores: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            threads: 2,
            channel_capacity: 0,
            clamp_to_cores: true,
        }
    }
}

/// Deterministic fault injector for the pipelined engine. Test-only
/// plumbing (driven by `tsg-testkit`); every field defaults to "no
/// fault", in which case [`mine_pipelined_faulted`] behaves exactly like
/// [`mine_pipelined_with`].
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineFaults {
    /// Panic while enumerating the class with this 1-based *serial class
    /// index*. Sequence numbers are assigned in serial (pre-order) class
    /// order, so the faulting class is fixed regardless of which thread —
    /// dedicated worker or stealing producer — happens to process it.
    pub panic_at_class: Option<usize>,
    /// Simulate a dropped `PipeSink` receiver: each dedicated worker stops
    /// receiving (returns, dropping its end of the channel loop) after
    /// processing this many items. Queued classes stay in the channel and
    /// are drained by the producer after close, so the run still succeeds
    /// with byte-identical output.
    pub drop_receiver_after: Option<usize>,
}

/// Renders a caught panic payload as text (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Records the first panic; later panics are dropped (first-wins, like
/// the search scheduler's recorder).
fn record_panic(slot: &Mutex<Option<String>>, message: String) {
    let mut guard = recover(slot.lock());
    if guard.is_none() {
        *guard = Some(message);
    }
}

/// Trips the injected panic for class `seq` (0-based) if armed.
fn maybe_injected_panic(faults: &PipelineFaults, seq: usize) {
    if faults.panic_at_class == Some(seq + 1) {
        panic!("injected fault: pipeline worker panicked at class {}", seq + 1); // tsg-lint: allow(panic) — deliberate fault-injection trip point, armed only by tests
    }
}

/// Mines like [`crate::Taxogram::mine`] with Step 2 and Step 3 overlapped
/// on `threads` workers. Output is exactly the serial result (same
/// patterns, same order, same supports).
///
/// # Errors
/// Same conditions as the serial miner.
pub fn mine_pipelined(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    threads: usize,
) -> Result<MiningResult, TaxogramError> {
    mine_pipelined_with(
        config,
        db,
        taxonomy,
        PipelineOptions {
            threads,
            channel_capacity: 0,
            clamp_to_cores: true,
        },
    )
}

/// [`mine_pipelined`] with an explicit channel capacity.
///
/// # Errors
/// Same conditions as the serial miner, plus
/// [`TaxogramError::WorkerPanicked`] if an enumeration thread panicked
/// (the panic is caught, every thread unwinds cleanly, and the run
/// surfaces the first panic instead of aborting or deadlocking).
pub fn mine_pipelined_with(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: PipelineOptions,
) -> Result<MiningResult, TaxogramError> {
    mine_pipelined_faulted(config, db, taxonomy, options, PipelineFaults::default())
}

/// [`mine_pipelined_with`] plus the deterministic fault injector.
/// Test-only plumbing (driven by `tsg-testkit`).
#[doc(hidden)]
pub fn mine_pipelined_faulted(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: PipelineOptions,
    faults: PipelineFaults,
) -> Result<MiningResult, TaxogramError> {
    if options.threads <= 1 {
        return crate::Taxogram::new(*config).mine(db, taxonomy);
    }
    Ok(mine_pipelined_impl(config, db, taxonomy, options, faults, &Governor::disabled())?.result)
}

/// [`mine_pipelined_with`] under governance: the producer gates class
/// admission (in serial class order) on `govern`'s cancel token and
/// budget; on an early stop the channel closes and drains cleanly, every
/// *admitted* class is still enumerated, and the output is exactly the
/// admitted prefix of the serial class stream — byte-identical to a
/// prefix of the full serial output.
///
/// # Errors
/// Same conditions as [`mine_pipelined_with`]; early termination is not
/// an error.
pub fn mine_pipelined_governed(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: PipelineOptions,
    govern: &GovernOptions,
) -> Result<MiningOutcome, TaxogramError> {
    mine_pipelined_governed_faulted(config, db, taxonomy, options, PipelineFaults::default(), govern)
}

/// [`mine_pipelined_governed`] plus the deterministic fault injector.
/// Test-only plumbing (driven by `tsg-testkit`).
#[doc(hidden)]
pub fn mine_pipelined_governed_faulted(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: PipelineOptions,
    faults: PipelineFaults,
    govern: &GovernOptions,
) -> Result<MiningOutcome, TaxogramError> {
    if options.threads <= 1 {
        return crate::Taxogram::new(*config).mine_governed(db, taxonomy, govern);
    }
    mine_pipelined_impl(config, db, taxonomy, options, faults, &Governor::new(govern))
}

fn mine_pipelined_impl(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: PipelineOptions,
    faults: PipelineFaults,
    governor: &Governor,
) -> Result<MiningOutcome, TaxogramError> {
    let threads = options.threads;
    let prepared = match prepare(config, db, taxonomy)? {
        Prologue::Done(result) => {
            return Ok(MiningOutcome {
                result,
                termination: Termination::completed(0),
            })
        }
        Prologue::Ready(p) => p,
    };
    let effective = if options.clamp_to_cores {
        thread::available_parallelism()
            .map(|n| threads.min(n.get()))
            .unwrap_or(threads)
    } else {
        threads
    };
    if effective <= 1 {
        // No dedicated worker to be had: stream inline. Still the
        // pipelined engine — classes hand off by move and scratch arenas
        // persist — just with the channel optimized away.
        return Ok(mine_inline(config, &prepared, governor));
    }
    let threads = effective;
    let capacity = if options.channel_capacity == 0 {
        2 * threads
    } else {
        options.channel_capacity
    };

    let channel: Bounded<WorkItem> = Bounded::new(capacity);
    let emb_gauge = MemoryGauge::new();
    let oi_gauge = MemoryGauge::new();
    // First panic from any enumeration thread; a set slot turns the whole
    // run into `Err(WorkerPanicked)` after every thread has unwound.
    let panic_slot: Mutex<Option<String>> = Mutex::new(None);

    let mut classes = 0usize;
    let mut rejected: Option<String> = None;
    let mut outputs: Vec<(usize, ClassOutput)> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads - 1)
            .map(|_| {
                let channel = &channel;
                let emb_gauge = &emb_gauge;
                let oi_gauge = &oi_gauge;
                let prepared = &prepared;
                let panic_slot = &panic_slot;
                scope.spawn(move || {
                    let mut local: Vec<(usize, ClassOutput)> = Vec::new();
                    let mut enum_scratch = EnumScratch::new();
                    let mut oi_scratch = OiScratch::new();
                    let mut received = 0usize;
                    while let Some(item) = channel.recv() {
                        received += 1;
                        let (seq, emb_bytes) = (item.seq, item.emb_bytes);
                        // Catch panics per item: a dead worker must not
                        // leave the producer blocked or the process
                        // aborted. The item unwinding mid-enumeration is
                        // lost, which is exactly why a recorded panic
                        // fails the whole run below.
                        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            maybe_injected_panic(&faults, item.seq);
                            let out = enumerate_class(
                                &item.skeleton,
                                &item.embeddings,
                                prepared,
                                config,
                                Some(oi_gauge),
                                &mut enum_scratch,
                                &mut oi_scratch,
                            );
                            // Embeddings die here (with the item).
                            drop(item.embeddings);
                            out
                        }));
                        // Release the reservation on *both* paths: an item
                        // destroyed by an unwinding worker is just as dead
                        // as an enumerated one, and leaking it would leave
                        // the gauge's running total permanently inflated.
                        emb_gauge.sub(emb_bytes);
                        match caught {
                            Ok(out) => {
                                governor.add_patterns(out.patterns.len());
                                local.push((seq, out));
                            }
                            Err(payload) => {
                                record_panic(panic_slot, panic_message(payload.as_ref()));
                                return local;
                            }
                        }
                        // Simulated receiver drop: stop pulling from the
                        // channel; the producer's post-close drain picks
                        // up whatever this worker abandons.
                        if faults.drop_receiver_after == Some(received) {
                            return local;
                        }
                    }
                    local
                })
            })
            .collect();

        // Producer: gSpan on the calling thread, streaming into the
        // channel with backpressure. On a full channel the producer
        // steals an item and enumerates it itself rather than sleeping.
        let mut sink = PipeSink {
            channel: &channel,
            emb_gauge: &emb_gauge,
            oi_gauge: &oi_gauge,
            prepared: &prepared,
            config,
            faults,
            governor,
            rejected: None,
            enum_scratch: EnumScratch::new(),
            oi_scratch: OiScratch::new(),
            outputs: Vec::new(),
            next_seq: 0,
        };
        // The producer can panic too — the injected class may land on it
        // via a backpressure steal. Catch so the channel still closes:
        // an unclosed channel would park every worker on `recv` forever.
        let mined = std::panic::catch_unwind(AssertUnwindSafe(|| {
            GSpan::new(
                &prepared.rel.dmg,
                GSpanConfig {
                    min_support: prepared.min_support,
                    max_edges: config.max_edges,
                },
            )
            .mine(&mut sink);
        }));
        classes = sink.next_seq;
        rejected = sink.rejected.take();
        channel.close();
        if let Err(payload) = mined {
            record_panic(&panic_slot, panic_message(payload.as_ref()));
        }
        // Mining is done; the producer joins the drain instead of idling.
        // This drain is also what rescues classes abandoned by a dropped
        // receiver, so no item is ever lost to a worker that quit early.
        while let Some(item) = channel.try_recv() {
            let emb_bytes = item.emb_bytes;
            if let Err(payload) =
                std::panic::catch_unwind(AssertUnwindSafe(|| sink.process(item)))
            {
                // `process` panicked before its own release; the item died
                // in the unwind, so release its reservation here.
                emb_gauge.sub(emb_bytes);
                record_panic(&panic_slot, panic_message(payload.as_ref()));
            }
        }
        outputs = sink.outputs;

        for h in handles {
            // A panic that somehow escaped the per-item catch (e.g. from
            // the channel itself) still surfaces as an error, not an
            // abort-on-join.
            match h.join() {
                Ok(local) => outputs.extend(local),
                Err(payload) => record_panic(&panic_slot, panic_message(payload.as_ref())),
            }
        }
    });

    if let Some(message) = recover(panic_slot.lock()).take() {
        return Err(TaxogramError::WorkerPanicked { message });
    }
    // Gauge balance: every enqueued reservation was released — by
    // `process`, by a displaced-item steal, or by the post-close drain —
    // even when the run stopped early. (The governance tests' partial
    // runs exercise this; a leak here was the original abandoned-class
    // accounting bug.)
    debug_assert_eq!(emb_gauge.current(), 0, "embedding reservations leaked");

    // Reorder buffer: sequence numbers are serial class indices, so
    // sorting restores exactly the serial output order. On an early stop
    // every admitted class was still drained and enumerated (admission
    // is the only gate), so the output is the exact admitted prefix and
    // nothing needs cutting.
    outputs.sort_unstable_by_key(|(seq, _)| *seq);
    let termination = governor.finish(
        classes,
        usize::from(rejected.is_some()),
        rejected.into_iter().collect(),
    );
    let mut result = merge_outputs(outputs.into_iter().map(|(_, out)| out), classes, &prepared);
    result.stats.peak_oi_bytes = oi_gauge.peak();
    result.stats.peak_embedding_bytes = emb_gauge.peak();
    Ok(MiningOutcome {
        result,
        termination,
    })
}

/// Single-thread streaming: each class is enumerated the moment gSpan
/// completes it, on the mining thread, with persistent scratch arenas.
/// Used when the core clamp leaves no dedicated worker; also the
/// fairest possible single-core baseline for the channel pipeline.
fn mine_inline(
    config: &TaxogramConfig,
    prepared: &Prepared,
    governor: &Governor,
) -> MiningOutcome {
    struct InlineSink<'a> {
        prepared: &'a Prepared,
        config: &'a TaxogramConfig,
        emb_gauge: &'a MemoryGauge,
        oi_gauge: &'a MemoryGauge,
        governor: &'a Governor,
        rejected: Option<String>,
        enum_scratch: EnumScratch,
        oi_scratch: OiScratch,
        outputs: Vec<ClassOutput>,
    }
    impl PatternSink for InlineSink<'_> {
        fn report(&mut self, class: &MinedPattern<'_>) -> Grow {
            // Governance poll point (same contract as the channel path's
            // producer sink): admission in serial class order.
            if !self
                .governor
                .admit_class(self.emb_gauge.peak() + self.oi_gauge.peak())
            {
                self.rejected = Some(class.code.to_string());
                return Grow::Stop;
            }
            Grow::Continue
        }
        fn complete(&mut self, class: ClassHandoff) {
            let emb_bytes = embedding_heap_bytes(&class.embeddings);
            self.emb_gauge.add(emb_bytes);
            let out = enumerate_class(
                &class.graph,
                &class.embeddings,
                self.prepared,
                self.config,
                Some(self.oi_gauge),
                &mut self.enum_scratch,
                &mut self.oi_scratch,
            );
            drop(class);
            self.emb_gauge.sub(emb_bytes);
            self.governor.add_patterns(out.patterns.len());
            self.outputs.push(out);
        }
    }
    let emb_gauge = MemoryGauge::new();
    let oi_gauge = MemoryGauge::new();
    let mut sink = InlineSink {
        prepared,
        config,
        emb_gauge: &emb_gauge,
        oi_gauge: &oi_gauge,
        governor,
        rejected: None,
        enum_scratch: EnumScratch::new(),
        oi_scratch: OiScratch::new(),
        outputs: Vec::new(),
    };
    GSpan::new(
        &prepared.rel.dmg,
        GSpanConfig {
            min_support: prepared.min_support,
            max_edges: config.max_edges,
        },
    )
    .mine(&mut sink);
    let classes = sink.outputs.len();
    let rejected = sink.rejected;
    let termination = governor.finish(
        classes,
        usize::from(rejected.is_some()),
        rejected.into_iter().collect(),
    );
    let mut result = merge_outputs(sink.outputs.into_iter(), classes, prepared);
    result.stats.peak_oi_bytes = oi_gauge.peak();
    result.stats.peak_embedding_bytes = emb_gauge.peak();
    MiningOutcome {
        result,
        termination,
    }
}

/// A pattern class in flight from the gSpan producer to a worker.
struct WorkItem {
    /// Serial class index (assigned in report order).
    seq: usize,
    skeleton: LabeledGraph,
    embeddings: Vec<Embedding>,
    /// Heap bytes of `embeddings`, precomputed for the gauge.
    emb_bytes: usize,
}

struct PipeSink<'a> {
    channel: &'a Bounded<WorkItem>,
    emb_gauge: &'a MemoryGauge,
    oi_gauge: &'a MemoryGauge,
    prepared: &'a Prepared,
    config: &'a TaxogramConfig,
    faults: PipelineFaults,
    governor: &'a Governor,
    /// DFS code of the class rejected at admission, if the run stopped.
    rejected: Option<String>,
    /// Scratch arenas for classes the producer enumerates itself when
    /// the channel is full (work stealing instead of blocking).
    enum_scratch: EnumScratch,
    oi_scratch: OiScratch,
    outputs: Vec<(usize, ClassOutput)>,
    next_seq: usize,
}

impl PipeSink<'_> {
    fn process(&mut self, item: WorkItem) {
        maybe_injected_panic(&self.faults, item.seq);
        let out = enumerate_class(
            &item.skeleton,
            &item.embeddings,
            self.prepared,
            self.config,
            Some(self.oi_gauge),
            &mut self.enum_scratch,
            &mut self.oi_scratch,
        );
        drop(item.embeddings);
        self.emb_gauge.sub(item.emb_bytes);
        self.governor.add_patterns(out.patterns.len());
        self.outputs.push((item.seq, out));
    }
}

impl PatternSink for PipeSink<'_> {
    fn report(&mut self, class: &MinedPattern<'_>) -> Grow {
        // Governance poll point: report fires in serial (pre-order) class
        // order on the producer, so admissions form an exact serial
        // prefix. The tracked high-water mark is in-flight embeddings
        // plus resident occurrence indices.
        if !self
            .governor
            .admit_class(self.emb_gauge.peak() + self.oi_gauge.peak())
        {
            self.rejected = Some(class.code.to_string());
            return Grow::Stop;
        }
        Grow::Continue
    }

    fn complete(&mut self, class: ClassHandoff) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let emb_bytes = embedding_heap_bytes(&class.embeddings);
        // Account before send: the bytes are resident from this moment
        // until a worker (or the producer itself) finishes with them.
        self.emb_gauge.add(emb_bytes);
        let item = WorkItem {
            seq,
            skeleton: class.graph,
            embeddings: class.embeddings,
            emb_bytes,
        };
        // Backpressure as work stealing: a full channel means the
        // workers are saturated, so this class displaces the oldest
        // queued one — a single-lock exchange — and the producer
        // enumerates the displaced class itself. Resident embedding
        // memory stays bounded by capacity + threads + 1 items, no
        // thread ever sleeps while there is work to do, and (unlike the
        // old try_send/try_recv pairing) the producer cannot spin when
        // workers race it for queue slots.
        if let Some(stolen) = self.channel.send_or_swap(item) {
            self.process(stolen);
        }
    }
}

/// Approximate heap footprint of an embedding list (the miner crate owns
/// the canonical accounting; re-exported here for the engines).
pub(crate) fn embedding_heap_bytes(embeddings: &[Embedding]) -> usize {
    tsg_gspan::embedding_list_bytes(embeddings)
}

/// Shared Step 0/1 prologue: threshold validation, support floor, empty
/// database short-circuit, relabeling, and the generalized-frequent mask.
pub(crate) enum Prologue {
    /// The run is already over (empty database).
    Done(MiningResult),
    Ready(Prepared),
}

/// Everything Step 3 workers need, computed once per run.
pub(crate) struct Prepared {
    pub rel: Relabeled,
    pub frequent_mask: Option<BitSet>,
    pub min_support: usize,
    pub db_len: usize,
}

pub(crate) fn prepare(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
) -> Result<Prologue, TaxogramError> {
    let theta = config.threshold;
    if !(0.0..=1.0).contains(&theta) || theta.is_nan() {
        return Err(TaxogramError::InvalidThreshold { theta });
    }
    let min_support = db.min_support_count(theta);
    if db.is_empty() {
        return Ok(Prologue::Done(MiningResult {
            patterns: Vec::new(),
            stats: MiningStats::default(),
            min_support_count: min_support,
            database_size: 0,
        }));
    }
    let rel = relabel(db, taxonomy)?;
    let frequent_mask = if config.enhancements.prune_infrequent_labels {
        let freqs = rel.taxonomy.generalized_label_frequencies(db);
        let mut mask = BitSet::new(rel.taxonomy.concept_count());
        for (i, &f) in freqs.iter().enumerate() {
            if f >= min_support {
                mask.insert(i);
            }
        }
        Some(mask)
    } else {
        None
    };
    Ok(Prologue::Ready(Prepared {
        rel,
        frequent_mask,
        min_support,
        db_len: db.len(),
    }))
}

/// Per-class enumeration output, merged in class order at the end.
#[derive(Default)]
pub(crate) struct ClassOutput {
    pub patterns: Vec<Pattern>,
    pub stats: MiningStats,
}

/// Builds one class's occurrence index and enumerates its
/// specializations, reusing the caller's scratch arenas. When `oi_gauge`
/// is given, the index's heap bytes are charged to it for the duration
/// of the enumeration (true concurrent-residency accounting).
pub(crate) fn enumerate_class(
    skeleton: &LabeledGraph,
    embeddings: &[Embedding],
    prepared: &Prepared,
    config: &TaxogramConfig,
    oi_gauge: Option<&MemoryGauge>,
    enum_scratch: &mut EnumScratch,
    oi_scratch: &mut OiScratch,
) -> ClassOutput {
    let mut out = ClassOutput::default();
    out.stats.occurrences = embeddings.len();
    let t_oi = std::time::Instant::now();
    let oi = OccurrenceIndex::build_with_scratch(
        embeddings,
        &prepared.rel.originals,
        skeleton.labels(),
        &prepared.rel.taxonomy,
        OiOptions {
            frequent: prepared.frequent_mask.as_ref(),
            contract_equal_sets: config.enhancements.contract_equal_sets,
            predescend_roots: config.enhancements.predescend_roots,
        },
        oi_scratch,
    );
    out.stats.oi_build_ms = t_oi.elapsed().as_secs_f64() * 1000.0;
    out.stats.oi_updates = oi.updates;
    let oi_bytes = oi.heap_bytes();
    out.stats.peak_oi_bytes = oi_bytes;
    if let Some(g) = oi_gauge {
        g.add(oi_bytes);
    }
    let db_len = prepared.db_len;
    let t_enum = std::time::Instant::now();
    let stats = crate::enumerate::enumerate_class_scratch(
        skeleton,
        &oi,
        &prepared.rel.taxonomy,
        prepared.min_support,
        db_len,
        &config.enhancements,
        config.keep_overgeneralized,
        enum_scratch,
        |p| {
            let mut g = skeleton.clone();
            for (i, &l) in p.labels.iter().enumerate() {
                g.set_label(i, l);
            }
            out.patterns.push(Pattern {
                graph: g,
                support_count: p.support,
                support: p.support as f64 / db_len as f64,
            });
        },
    );
    out.stats.enumerate_ms = t_enum.elapsed().as_secs_f64() * 1000.0;
    out.stats.enumeration = stats;
    drop(oi);
    if let Some(g) = oi_gauge {
        g.sub(oi_bytes);
    }
    out
}

/// Sums per-class outputs (already in class order) into a result.
/// `peak_oi_bytes`/`peak_embedding_bytes` are left as max-over-classes /
/// zero; engines with gauge-based accounting overwrite them.
pub(crate) fn merge_outputs(
    outputs: impl Iterator<Item = ClassOutput>,
    classes: usize,
    prepared: &Prepared,
) -> MiningResult {
    let mut patterns = Vec::new();
    let mut stats = MiningStats {
        classes,
        ..MiningStats::default()
    };
    for out in outputs {
        patterns.extend(out.patterns);
        stats.oi_updates += out.stats.oi_updates;
        stats.occurrences += out.stats.occurrences;
        stats.peak_oi_bytes = stats.peak_oi_bytes.max(out.stats.peak_oi_bytes);
        stats.oi_build_ms += out.stats.oi_build_ms;
        stats.enumerate_ms += out.stats.enumerate_ms;
        stats.enumeration.vectors_visited += out.stats.enumeration.vectors_visited;
        stats.enumeration.intersections += out.stats.enumeration.intersections;
        stats.enumeration.emitted += out.stats.enumeration.emitted;
        stats.enumeration.overgeneralized += out.stats.enumeration.overgeneralized;
    }
    MiningResult {
        patterns,
        stats,
        min_support_count: prepared.min_support,
        database_size: prepared.db_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxogramConfig;
    use tsg_taxonomy::samples;

    fn serial_and_pipelined(threads: usize, capacity: usize) -> (MiningResult, MiningResult) {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let cfg = TaxogramConfig::with_threshold(1.0 / 3.0);
        let serial = crate::Taxogram::new(cfg).mine(&db, &t).unwrap();
        // clamp_to_cores off: always exercise the channel machinery,
        // even when the test host has a single core.
        let piped = mine_pipelined_with(
            &cfg,
            &db,
            &t,
            PipelineOptions {
                threads,
                channel_capacity: capacity,
                clamp_to_cores: false,
            },
        )
        .unwrap();
        (serial, piped)
    }

    fn assert_identical(serial: &MiningResult, piped: &MiningResult) {
        assert_eq!(serial.patterns.len(), piped.patterns.len());
        for (a, b) in serial.patterns.iter().zip(&piped.patterns) {
            assert_eq!(a.graph.labels(), b.graph.labels(), "order preserved");
            assert_eq!(a.graph.edges(), b.graph.edges());
            assert_eq!(a.support_count, b.support_count);
        }
        assert_eq!(serial.stats.classes, piped.stats.classes);
        assert_eq!(
            serial.stats.enumeration.emitted,
            piped.stats.enumeration.emitted
        );
        assert_eq!(
            serial.stats.enumeration.intersections,
            piped.stats.enumeration.intersections
        );
    }

    #[test]
    fn pipelined_matches_serial_exactly() {
        for threads in [2, 4, 8] {
            let (serial, piped) = serial_and_pipelined(threads, 0);
            assert_identical(&serial, &piped);
        }
    }

    #[test]
    fn tiny_channel_forces_backpressure_and_stays_correct() {
        // Capacity 1: the producer blocks after every class until a
        // worker drains it — maximum reordering pressure on the merge.
        let (serial, piped) = serial_and_pipelined(4, 1);
        assert_identical(&serial, &piped);
        assert!(piped.stats.peak_embedding_bytes > 0);
    }

    #[test]
    fn one_thread_falls_back_to_serial() {
        let (serial, piped) = serial_and_pipelined(1, 0);
        assert_eq!(serial.patterns.len(), piped.patterns.len());
    }

    #[test]
    fn pipelined_handles_empty_database() {
        let (_, t) = samples::sample_taxonomy();
        let cfg = TaxogramConfig::with_threshold(0.5);
        let r = mine_pipelined(&cfg, &GraphDatabase::new(), &t, 4).unwrap();
        assert!(r.patterns.is_empty());
    }

    #[test]
    fn pipelined_rejects_bad_threshold() {
        let (_, t) = samples::sample_taxonomy();
        let cfg = TaxogramConfig::with_threshold(-0.5);
        assert!(matches!(
            mine_pipelined(&cfg, &GraphDatabase::new(), &t, 4),
            Err(TaxogramError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn pipelined_reports_memory_gauges() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let cfg = TaxogramConfig::with_threshold(1.0 / 3.0);
        let r = mine_pipelined(&cfg, &db, &t, 2).unwrap();
        assert!(r.stats.peak_oi_bytes > 0);
        assert!(r.stats.peak_embedding_bytes > 0);
    }
}
