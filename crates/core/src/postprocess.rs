//! Post-processing of mined pattern sets: closed and maximal projections.
//!
//! The paper's related work (§5) contrasts Taxogram with CloseGraph-style
//! condensed representations. Taxogram's minimality already removes
//! redundancy along the *generalization* axis (over-generalized patterns);
//! these helpers additionally condense along the *structural* axis, using
//! the taxonomy-aware containment order:
//!
//! `P ⊑ Q` iff `P` is generalized subgraph isomorphic to `Q` — i.e. `Q`
//! extends `P` structurally and/or specializes its labels.
//!
//! * a pattern is **maximal** if no other result pattern strictly
//!   contains it;
//! * a pattern is **closed** if no other result pattern strictly contains
//!   it *at equal support*.
//!
//! Both projections preserve the ability to list all frequent patterns
//! (maximal) or all frequent patterns with their supports (closed) from
//! the condensed set, as in itemset mining.

use crate::miner::Pattern;
use tsg_iso::{contains_subgraph, is_isomorphic, GeneralizedMatcher};
use tsg_taxonomy::Taxonomy;

/// `true` iff `p ⊑ q` strictly: `q` contains a (generalized) image of `p`
/// and they are not isomorphic.
pub fn strictly_contained(p: &Pattern, q: &Pattern, taxonomy: &Taxonomy) -> bool {
    if p.graph.node_count() > q.graph.node_count()
        || p.graph.edge_count() > q.graph.edge_count()
    {
        return false;
    }
    let m = GeneralizedMatcher::new(taxonomy);
    contains_subgraph(&p.graph, &q.graph, &m) && !is_isomorphic(&p.graph, &q.graph)
}

/// The maximal patterns of a result set: those not strictly contained in
/// any other. Order is preserved.
pub fn maximal_patterns<'a>(patterns: &'a [Pattern], taxonomy: &Taxonomy) -> Vec<&'a Pattern> {
    patterns
        .iter()
        .filter(|p| {
            !patterns
                .iter()
                .any(|q| !std::ptr::eq(*p, q) && strictly_contained(p, q, taxonomy))
        })
        .collect()
}

/// The closed patterns of a result set: those not strictly contained in
/// any other pattern of equal support. Order is preserved.
pub fn closed_patterns<'a>(patterns: &'a [Pattern], taxonomy: &Taxonomy) -> Vec<&'a Pattern> {
    patterns
        .iter()
        .filter(|p| {
            !patterns.iter().any(|q| {
                !std::ptr::eq(*p, q)
                    && q.support_count == p.support_count
                    && strictly_contained(p, q, taxonomy)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Taxogram, TaxogramConfig};
    use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
    use tsg_taxonomy::taxonomy_from_edges;

    fn path(labels: &[u32]) -> LabeledGraph {
        let mut g = LabeledGraph::with_nodes(labels.iter().map(|&l| NodeLabel(l)));
        for i in 1..labels.len() {
            g.add_edge(i - 1, i, EdgeLabel(0)).unwrap();
        }
        g
    }

    /// Chain taxonomy 0 > 1; database of two identical paths 1—1—1.
    fn mined() -> (Taxonomy, crate::MiningResult) {
        let t = taxonomy_from_edges(2, [(1, 0)]).unwrap();
        let db = GraphDatabase::from_graphs(vec![path(&[1, 1, 1]), path(&[1, 1, 1])]);
        let r = Taxogram::new(TaxogramConfig::with_threshold(1.0))
            .mine(&db, &t)
            .unwrap();
        (t, r)
    }

    #[test]
    fn containment_order_is_strict() {
        let (t, r) = mined();
        // The 1-edge pattern is contained in the 2-edge pattern.
        let small = r
            .patterns
            .iter()
            .find(|p| p.graph.edge_count() == 1)
            .unwrap();
        let big = r
            .patterns
            .iter()
            .find(|p| p.graph.edge_count() == 2)
            .unwrap();
        assert!(strictly_contained(small, big, &t));
        assert!(!strictly_contained(big, small, &t));
        assert!(!strictly_contained(small, small, &t), "not reflexive");
    }

    #[test]
    fn maximal_keeps_only_the_largest() {
        let (t, r) = mined();
        let maximal = maximal_patterns(&r.patterns, &t);
        assert_eq!(maximal.len(), 1);
        assert_eq!(maximal[0].graph.edge_count(), 2);
    }

    #[test]
    fn closed_folds_equal_support_chains() {
        let (t, r) = mined();
        // Both patterns (1—1 and 1—1—1) have support 2, so only the larger
        // is closed.
        let closed = closed_patterns(&r.patterns, &t);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].graph.edge_count(), 2);
    }

    #[test]
    fn closed_keeps_support_distinct_patterns() {
        // DB where the 1-edge pattern has strictly higher support than the
        // 2-edge one: both are closed.
        let t = taxonomy_from_edges(2, [(1, 0)]).unwrap();
        let db = GraphDatabase::from_graphs(vec![
            path(&[1, 1, 1]),
            path(&[1, 1, 1]),
            path(&[1, 1]),
        ]);
        let r = Taxogram::new(TaxogramConfig::with_threshold(0.5))
            .mine(&db, &t)
            .unwrap();
        let closed = closed_patterns(&r.patterns, &t);
        let maximal = maximal_patterns(&r.patterns, &t);
        assert!(closed.len() > maximal.len());
        assert!(closed.iter().any(|p| p.graph.edge_count() == 1));
        assert!(maximal.iter().all(|p| p.graph.edge_count() == 2));
    }

    #[test]
    fn containment_respects_taxonomy_direction() {
        // Pattern 0—0 (general) is contained in 1—1 (specific), not the
        // other way around.
        let t = taxonomy_from_edges(2, [(1, 0)]).unwrap();
        let mk = |l: u32, sup| Pattern {
            graph: path(&[l, l]),
            support_count: sup,
            support: 1.0,
        };
        let general = mk(0, 2);
        let specific = mk(1, 2);
        assert!(strictly_contained(&general, &specific, &t));
        assert!(!strictly_contained(&specific, &general, &t));
    }
}
