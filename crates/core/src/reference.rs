//! A brute-force reference implementation of taxonomy-superimposed graph
//! mining, straight from the problem definition (paper §2).
//!
//! Independent of every optimized code path: candidates come from explicit
//! subgraph enumeration plus exhaustive ancestor generalization, supports
//! from direct generalized-subgraph-isomorphism tests, and minimality from
//! pairwise over-generalization checks. Exponential — a test oracle for
//! tiny inputs only, mirroring [`tsg_gspan::oracle`] one level up.
//!
//! ### Interpretation note (documented in DESIGN.md)
//!
//! The paper's `IS_GEN_ISO` definition technically lets the specialized
//! graph carry extra edges, which would make a path over-generalized by an
//! equally-frequent triangle. Every construction in the paper (pattern
//! classes, occurrence indices, label-replacement enumeration, the
//! examples) treats generalization as *label-wise* over a fixed structure,
//! so this oracle requires equal edge counts in the over-generalization
//! test — the within-class reading that Taxogram (and the original AcGM
//! extension) implements.

// tsg-lint: allow(index) — the reference oracle enumerates masks and position maps over its own small vectors

use tsg_graph::{GraphDatabase, LabeledGraph, NodeLabel};
use tsg_iso::{is_gen_iso, is_isomorphic, BatchedMatcher, GeneralizedMatcher};
use tsg_taxonomy::Taxonomy;

/// Mines all frequent, non-over-generalized patterns by brute force.
///
/// `max_edges` caps candidate size (the oracle is exponential in it).
/// Returns `(pattern, support_count)` pairs, one per isomorphism class.
///
/// # Panics
/// Panics if a database graph has more than 16 edges.
pub fn reference_mine(
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    theta: f64,
    max_edges: usize,
) -> Vec<(LabeledGraph, usize)> {
    let min_support = db.min_support_count(theta);
    let matcher = GeneralizedMatcher::new(taxonomy);

    // 1. Candidates: every connected edge-subset subgraph of every database
    //    graph, generalized by every combination of ancestor labels.
    let mut candidates: Vec<LabeledGraph> = Vec::new();
    for (_, g) in db.iter() {
        let m = g.edge_count();
        assert!(m <= 16, "reference miner limited to tiny graphs, got {m} edges");
        for mask in 1u32..(1 << m) {
            if (mask.count_ones() as usize) > max_edges {
                continue;
            }
            let Some(sub) = edge_subset_subgraph(g, mask) else {
                continue;
            };
            if !sub.is_connected() {
                continue;
            }
            for gen in generalizations(&sub, taxonomy) {
                if !candidates.iter().any(|c| is_isomorphic(c, &gen)) {
                    candidates.push(gen);
                }
            }
        }
    }

    // 2. Frequency. One candidate-set index over the database serves
    //    every recount; generalized candidates reuse cached label sets
    //    heavily (ancestor combinations repeat the same few labels).
    let batched = BatchedMatcher::new(db, &matcher);
    let frequent: Vec<(LabeledGraph, usize)> = candidates
        .into_iter()
        .filter_map(|p| {
            let sup = batched.support_count(&p);
            (sup >= min_support).then_some((p, sup))
        })
        .collect();

    // 3. Minimality: drop P if some *distinct* frequent Q with the same
    //    structure and support specializes it.
    frequent
        .iter()
        .filter(|(p, sup)| {
            !frequent.iter().any(|(q, qsup)| {
                qsup == sup
                    && p.node_count() == q.node_count()
                    && p.edge_count() == q.edge_count()
                    && !is_isomorphic(p, q)
                    && is_gen_iso(p, q, taxonomy)
            })
        })
        .cloned()
        .collect()
}

/// All label-wise generalizations of `g` (each vertex label replaced by
/// each of its reflexive ancestors), including `g` itself.
fn generalizations(g: &LabeledGraph, taxonomy: &Taxonomy) -> Vec<LabeledGraph> {
    let anc_sets: Vec<Vec<NodeLabel>> = g
        .labels()
        .iter()
        .map(|&l| {
            taxonomy
                .ancestors(l)
                .iter()
                .map(|i| NodeLabel(i as u32))
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    let mut choice = vec![0usize; g.node_count()];
    loop {
        let mut gen = g.clone();
        for (v, &c) in choice.iter().enumerate() {
            gen.set_label(v, anc_sets[v][c]);
        }
        out.push(gen);
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == choice.len() {
                return out;
            }
            choice[pos] += 1;
            if choice[pos] < anc_sets[pos].len() {
                break;
            }
            choice[pos] = 0;
            pos += 1;
        }
    }
}

/// The subgraph induced by an edge subset; `None` if the mask is empty.
fn edge_subset_subgraph(g: &LabeledGraph, mask: u32) -> Option<LabeledGraph> {
    if mask == 0 {
        return None;
    }
    let mut nodes: Vec<usize> = Vec::new();
    for (i, e) in g.edges().iter().enumerate() {
        if mask & (1 << i) != 0 {
            nodes.push(e.u);
            nodes.push(e.v);
        }
    }
    nodes.sort_unstable();
    nodes.dedup();
    let mut pos = std::collections::HashMap::new();
    for (i, &v) in nodes.iter().enumerate() {
        pos.insert(v, i);
    }
    let mut sub = if g.is_directed() {
        LabeledGraph::with_nodes_directed(nodes.iter().map(|&v| g.label(v)))
    } else {
        LabeledGraph::with_nodes(nodes.iter().map(|&v| g.label(v)))
    };
    for (i, e) in g.edges().iter().enumerate() {
        if mask & (1 << i) != 0 {
            sub.add_edge(pos[&e.u], pos[&e.v], e.label)
                .expect("edge subset of a simple graph is simple"); // tsg-lint: allow(panic) — edge subset of a simple graph stays simple
        }
    }
    Some(sub)
}

/// Compares a [`crate::MiningResult`]'s patterns with a reference set,
/// up to isomorphism and with equal supports. Returns a mismatch
/// description, or `None` on agreement.
pub fn compare_with_reference(
    got: &[crate::Pattern],
    want: &[(LabeledGraph, usize)],
) -> Option<String> {
    if got.len() != want.len() {
        return Some(format!(
            "pattern count mismatch: taxogram {}, reference {} (taxogram: {:?}, reference: {:?})",
            got.len(),
            want.len(),
            got.iter().map(|p| (p.graph.labels().to_vec(), p.support_count)).collect::<Vec<_>>(),
            want.iter().map(|(g, s)| (g.labels().to_vec(), *s)).collect::<Vec<_>>(),
        ));
    }
    let mut used = vec![false; want.len()];
    for p in got {
        let hit = want.iter().enumerate().find(|(i, (w, s))| {
            !used[*i] && *s == p.support_count && is_isomorphic(&p.graph, w)
        });
        match hit {
            Some((i, _)) => used[i] = true,
            None => {
                return Some(format!(
                    "pattern {:?} (support {}) not in reference set",
                    p.graph.labels(),
                    p.support_count
                ))
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_graph::EdgeLabel;
    use tsg_taxonomy::{samples, taxonomy_from_edges};

    #[test]
    fn generalizations_cover_the_ancestor_product() {
        // Taxonomy 0 > 1 > 2; graph: single vertex pair 2—2.
        let t = taxonomy_from_edges(3, [(1, 0), (2, 1)]).unwrap();
        let mut g = LabeledGraph::with_nodes([NodeLabel(2), NodeLabel(2)]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        let gens = generalizations(&g, &t);
        assert_eq!(gens.len(), 9, "3 ancestors per vertex, 3×3 combinations");
    }

    #[test]
    fn reference_finds_the_go_pattern() {
        let (names, t, db) = samples::go_excerpt();
        let got = reference_mine(&db, &t, 1.0, 2);
        assert!(!got.is_empty());
        let transporter = names.get("transporter").unwrap();
        let helicase = names.get("helicase").unwrap();
        let mut want = LabeledGraph::with_nodes([transporter, helicase]);
        want.add_edge(0, 1, EdgeLabel(0)).unwrap();
        assert!(
            got.iter().any(|(p, _)| is_isomorphic(p, &want)),
            "reference must find Transporter—Helicase"
        );
        // Minimality: molecular function—molecular function is over-
        // generalized (same support as deeper patterns) and must be gone.
        let mf = names.get("molecular function").unwrap();
        let mut over = LabeledGraph::with_nodes([mf, mf]);
        over.add_edge(0, 1, EdgeLabel(0)).unwrap();
        assert!(!got.iter().any(|(p, _)| is_isomorphic(p, &over)));
    }

    #[test]
    fn reference_agrees_with_taxogram_on_fixture() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        for theta in [1.0, 2.0 / 3.0, 1.0 / 3.0] {
            let r = crate::Taxogram::new(crate::TaxogramConfig::with_threshold(theta).max_edges(2))
                .mine(&db, &t)
                .unwrap();
            let want = reference_mine(&db, &t, theta, 2);
            if let Some(msg) = compare_with_reference(&r.patterns, &want) {
                panic!("θ = {theta}: {msg}");
            }
        }
    }
}
