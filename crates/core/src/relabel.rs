//! Step 1: relabeling the input database with most-general ancestors.
//!
//! Every vertex label is replaced by *the* most general ancestor of its
//! label; original labels are retained for occurrence-index construction
//! (paper §3 Step 1, Example 3.1 / Figure 3.1). When the taxonomy has
//! several roots reachable from one label, artificial roots are introduced
//! first so the most general ancestor is unique.

use crate::TaxogramError;
use std::sync::Arc;
use tsg_graph::{GraphDatabase, NodeLabel};
use tsg_taxonomy::Taxonomy;

/// The relabeled database `D_mg` plus everything Step 2 needs to recover
/// original labels.
#[derive(Debug, Clone)]
pub struct Relabeled {
    /// The database with every vertex relabeled to its most general
    /// ancestor.
    pub dmg: GraphDatabase,
    /// `originals[gid][node]` — the pre-relabeling label of each vertex
    /// (the "labels kept in parenthesis" of Figure 3.1).
    pub originals: Vec<Vec<NodeLabel>>,
    /// The working taxonomy: the input taxonomy, with artificial roots
    /// added if unification was necessary. All later stages must use this
    /// one (concept ids are a superset of the input's). Shared behind an
    /// `Arc` so cloning a `Relabeled` (the parallel engines fan one out
    /// per worker) shares the closure memo instead of duplicating it.
    pub taxonomy: Arc<Taxonomy>,
}

/// Performs Step 1.
///
/// # Errors
/// Returns [`TaxogramError::LabelNotInTaxonomy`] if some vertex label is
/// not a present concept of `taxonomy`.
pub fn relabel(db: &GraphDatabase, taxonomy: &Taxonomy) -> Result<Relabeled, TaxogramError> {
    // Validate labels first so unification work isn't wasted on bad input.
    for (gid, g) in db.iter() {
        for (node, &l) in g.labels().iter().enumerate() {
            if !taxonomy.contains(l) {
                return Err(TaxogramError::LabelNotInTaxonomy {
                    graph: gid,
                    node,
                    label: l,
                });
            }
        }
    }
    let taxonomy = taxonomy.unify_most_general();
    let mut dmg = db.clone();
    let mut originals = Vec::with_capacity(db.len());
    // Memoize label → most-general ancestor; label sets are small compared
    // to vertex counts.
    let mut mga_cache: std::collections::HashMap<NodeLabel, NodeLabel> =
        std::collections::HashMap::new();
    for (gid, g) in db.iter() {
        originals.push(g.labels().to_vec());
        for (node, &l) in g.labels().iter().enumerate() {
            let mg = *mga_cache.entry(l).or_insert_with(|| {
                taxonomy
                    .most_general_ancestor(l)
                    .expect("unify_most_general makes every concept's root unique") // tsg-lint: allow(panic) — unify_most_general gives every concept a unique root
            });
            dmg.graph_mut(gid).set_label(node, mg);
        }
    }
    Ok(Relabeled {
        dmg,
        originals,
        taxonomy: Arc::new(taxonomy),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_graph::{EdgeLabel, LabeledGraph};
    use tsg_taxonomy::{samples, taxonomy_from_edges};

    #[test]
    fn figure_3_1_relabeling() {
        // Figure 1.4's database over the sample taxonomy: every vertex
        // relabels to `a`, originals preserved.
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let r = relabel(&db, &t).unwrap();
        for (gid, g) in r.dmg.iter() {
            for (node, &l) in g.labels().iter().enumerate() {
                assert_eq!(l, c.a, "every vertex becomes a");
                assert_eq!(r.originals[gid][node], db[gid].label(node));
            }
        }
        assert_eq!(r.taxonomy.concept_count(), t.concept_count(), "no unification needed");
    }

    #[test]
    fn multi_root_labels_get_artificial_ancestor() {
        // Roots 0, 1 share child 2; a graph labeled {2} must relabel to the
        // artificial root, not to either real root.
        let t = taxonomy_from_edges(3, [(2, 0), (2, 1)]).unwrap();
        let mut g = LabeledGraph::with_nodes([NodeLabel(2), NodeLabel(2)]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        let db = GraphDatabase::from_graphs(vec![g]);
        let r = relabel(&db, &t).unwrap();
        let mg = r.dmg[0].label(0);
        assert!(r.taxonomy.is_artificial(mg));
        assert_eq!(r.taxonomy.concept_count(), 4);
    }

    #[test]
    fn unknown_label_is_an_error() {
        let t = taxonomy_from_edges(2, [(1, 0)]).unwrap();
        let mut g = LabeledGraph::with_nodes([NodeLabel(9)]);
        let _ = &mut g;
        let db = GraphDatabase::from_graphs(vec![g]);
        let err = relabel(&db, &t).unwrap_err();
        assert_eq!(
            err,
            TaxogramError::LabelNotInTaxonomy {
                graph: 0,
                node: 0,
                label: NodeLabel(9)
            }
        );
    }

    #[test]
    fn pruned_concepts_count_as_unknown() {
        let t = taxonomy_from_edges(3, [(1, 0), (2, 1)]).unwrap();
        let keep = tsg_bitset::BitSet::from_iter_with_universe(3, [0usize, 1]);
        let restricted = t.restrict(&keep);
        let g = LabeledGraph::with_nodes([NodeLabel(2)]);
        let db = GraphDatabase::from_graphs(vec![g]);
        assert!(relabel(&db, &restricted).is_err());
    }
}
