//! Parallel out-of-core sharded mining — the industrialized SON path
//! (DESIGN.md §15).
//!
//! [`crate::son::mine_partitioned`] proves the two-pass partition
//! algorithm correct but keeps every partition in memory and runs
//! serially. This module promotes it into the scale path:
//!
//! 1. **Spill.** The database is split into contiguous graph-id ranges
//!    and written to disk as length-prefixed binary shard files
//!    ([`tsg_graph::binary`]), validating labels in global order along
//!    the way. [`ShardOptions::resident_cap_bytes`] raises the shard
//!    count until each file fits the cap, so the resident working set is
//!    one shard per worker regardless of database size.
//! 2. **Pass 1 — local class discovery** ([`pass1`]): workers claim
//!    shards from a shared counter, each reading its shard back,
//!    relabeling it, and mining locally frequent pattern *classes* on
//!    the work-stealing gSpan engine. Only (canonical DFS code,
//!    skeleton) pairs survive; by the SON pigeonhole their union is a
//!    complete candidate superset of the globally frequent classes.
//! 3. **Pass 2a — exact global supports** ([`pass2`]): the shards are
//!    streamed again and every candidate's support is recounted with
//!    batched candidate-cache matching; per-shard counts sum to exactly
//!    the serial engine's class supports.
//! 4. **Pass 2b — global Step 3**: each globally frequent class, taken
//!    in canonical (= serial) order in batches of
//!    [`ShardOptions::class_batch`], has its embeddings re-enumerated
//!    over the shard stream and is then enumerated by the ordinary
//!    class pipeline ([`crate::pipeline`]) against the global database
//!    size — so specialization supports, the minimality filter, and the
//!    emission order are *byte-identical* to the single-pass serial
//!    miner. (This sidesteps the locally-over-generalized corner of
//!    [`crate::son`] entirely: class membership is re-derived globally,
//!    never reconstructed from local verdicts.)
//!
//! Governance threads through end to end: the cancel token and deadline
//! are polled at every shard claim, budgets gate each Pass 2b class
//! admission in serial class order, and an early stop yields a truthful
//! [`Termination`] whose finished classes form a byte-identical prefix
//! of the serial pattern stream. Spill files are removed when the run
//! ends — success, error, or early termination — unless
//! [`ShardOptions::keep_spill`] asks otherwise.

mod pass1;
mod pass2;
mod spill;

use crate::channel::recover;
use crate::config::TaxogramConfig;
use crate::enumerate::EnumScratch;
use crate::error::TaxogramError;
use crate::gauge::MemoryGauge;
use crate::govern::{GovernOptions, Governor, Termination, FRONTIER_CAP};
use crate::miner::{MiningResult, MiningStats};
use crate::oi::OiScratch;
use crate::pipeline::{
    embedding_heap_bytes, enumerate_class, merge_outputs, panic_message, ClassOutput, Prepared,
};
use crate::relabel::Relabeled;
use crate::sync::{thread, Arc, AtomicBool, AtomicUsize, Mutex, Ordering};
use spill::{read_shard, spill, SpillSet};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use tsg_bitset::BitSet;
use tsg_gspan::DfsCode;
use tsg_graph::{GraphDatabase, LabeledGraph};
use tsg_taxonomy::Taxonomy;

/// Tuning knobs for the sharded out-of-core miner.
#[derive(Clone, Debug)]
pub struct ShardOptions {
    /// Minimum shard count. Raised automatically when
    /// [`ShardOptions::resident_cap_bytes`] demands smaller shards.
    pub shards: usize,
    /// Worker threads for the shard-parallel passes. Each worker holds
    /// at most one shard resident at a time.
    pub threads: usize,
    /// Directory for spill files; defaults to the system temp dir. A
    /// unique per-run subdirectory is always created beneath it.
    pub spill_dir: Option<PathBuf>,
    /// Pass 2b classes whose embeddings are collected per shard stream;
    /// larger batches trade resident embedding memory for fewer passes
    /// over the spill files.
    pub class_batch: usize,
    /// Keep the spill directory after the run instead of deleting it.
    pub keep_spill: bool,
    /// Approximate ceiling on a single shard file's size: the shard
    /// count grows until the encoded database splits into files no
    /// larger than this, making the per-worker resident set independent
    /// of the database size.
    pub resident_cap_bytes: Option<u64>,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 1,
            threads: 1,
            spill_dir: None,
            class_batch: 8,
            keep_spill: false,
            resident_cap_bytes: None,
        }
    }
}

/// Deterministic spill-I/O fault injector. Test-only plumbing (driven by
/// `tsg-testkit`); every field defaults to "no fault".
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardFaults {
    /// Fail the spill write at this global record index.
    pub write_error_at_record: Option<usize>,
    /// After spilling, truncate this shard's file mid-stream.
    pub truncate_shard: Option<usize>,
    /// After spilling, overwrite this shard's first record length prefix
    /// with an absurd value.
    pub corrupt_prefix: Option<usize>,
    /// After spilling, delete this shard's file.
    pub delete_shard: Option<usize>,
}

/// Counters specific to a sharded run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Shards the database was split into (after the resident-cap raise).
    pub shards: usize,
    /// Candidate classes after Pass 1 (union of local frequent sets).
    pub candidates: usize,
    /// Candidates discarded as globally infrequent in Pass 2a.
    pub globally_infrequent: usize,
    /// Total bytes written to spill files.
    pub spilled_bytes: u64,
    /// Largest single shard file — the per-worker resident-set unit.
    pub largest_shard_bytes: u64,
    /// Full streaming passes over the shard files (Pass 1 + Pass 2a +
    /// one per Pass 2b class batch).
    pub db_streams: usize,
}

/// The result of a sharded run: the mining result (byte-identical to the
/// serial engine's, or a prefix of it under governance), its termination
/// report, and the sharding counters.
#[derive(Clone, Debug)]
pub struct ShardedOutcome {
    /// The (possibly partial) mining result.
    pub result: MiningResult,
    /// Why and where the run stopped.
    pub termination: Termination,
    /// Sharding counters.
    pub shard_stats: ShardStats,
}

/// The sharded out-of-core SON miner. A thin handle around
/// [`ShardOptions`]; see the module docs for the pass structure.
#[derive(Clone, Debug, Default)]
pub struct ShardedSonMiner {
    options: ShardOptions,
}

impl ShardedSonMiner {
    /// A miner with the given sharding options.
    pub fn new(options: ShardOptions) -> Self {
        ShardedSonMiner { options }
    }

    /// Mines `db` over `taxonomy`, spilling shards to disk. Output is
    /// byte-identical to [`crate::Taxogram::mine`].
    ///
    /// # Errors
    /// Same conditions as the serial miner, plus
    /// [`TaxogramError::ShardIo`] if a spill file cannot be written or
    /// read back intact.
    pub fn mine(
        &self,
        config: &TaxogramConfig,
        db: &GraphDatabase,
        taxonomy: &Taxonomy,
    ) -> Result<ShardedOutcome, TaxogramError> {
        mine_sharded(config, db, taxonomy, &self.options)
    }

    /// [`ShardedSonMiner::mine`] under governance: budgets and
    /// cancellation gate Pass 2b class admission in serial class order,
    /// and shard claims poll the cancel token and deadline, so an early
    /// stop yields a sound serial-prefix partial result.
    ///
    /// # Errors
    /// Same conditions as [`ShardedSonMiner::mine`]; early termination
    /// is not an error.
    pub fn mine_governed(
        &self,
        config: &TaxogramConfig,
        db: &GraphDatabase,
        taxonomy: &Taxonomy,
        govern: &GovernOptions,
    ) -> Result<ShardedOutcome, TaxogramError> {
        mine_sharded_governed(config, db, taxonomy, &self.options, govern)
    }
}

/// Mines `db` sharded out-of-core; see [`ShardedSonMiner::mine`].
///
/// # Errors
/// Same conditions as [`ShardedSonMiner::mine`].
pub fn mine_sharded(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: &ShardOptions,
) -> Result<ShardedOutcome, TaxogramError> {
    mine_impl(
        config,
        db,
        taxonomy,
        options,
        &Governor::disabled(),
        &ShardFaults::default(),
    )
}

/// Governed sharded mining; see [`ShardedSonMiner::mine_governed`].
///
/// # Errors
/// Same conditions as [`ShardedSonMiner::mine`]; early termination is
/// not an error.
pub fn mine_sharded_governed(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: &ShardOptions,
    govern: &GovernOptions,
) -> Result<ShardedOutcome, TaxogramError> {
    mine_impl(config, db, taxonomy, options, &Governor::new(govern), &ShardFaults::default())
}

/// [`mine_sharded`] / [`mine_sharded_governed`] plus the deterministic
/// spill-fault injector. Test-only plumbing (driven by `tsg-testkit`).
#[doc(hidden)]
pub fn mine_sharded_faulted(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: &ShardOptions,
    govern: Option<&GovernOptions>,
    faults: ShardFaults,
) -> Result<ShardedOutcome, TaxogramError> {
    let governor = match govern {
        Some(g) => Governor::new(g),
        None => Governor::disabled(),
    };
    mine_impl(config, db, taxonomy, options, &governor, &faults)
}

/// Splits `0..db.len()` into contiguous shard ranges: at least
/// `options.shards` of them, more when the resident cap demands smaller
/// files (shard size estimated from the binary encoding's exact
/// per-record arithmetic).
fn plan_shards(db: &GraphDatabase, options: &ShardOptions) -> Vec<(usize, usize)> {
    let mut shards = options.shards.max(1);
    let sizes: Vec<u64> = db.graphs().iter().map(encoded_record_bytes).collect();
    let total: u64 = sizes.iter().sum();
    if let Some(cap) = options.resident_cap_bytes {
        shards = shards.max((16 + total).div_ceil(cap.max(1)) as usize);
    }
    // Partition by cumulative encoded bytes, not graph count: with
    // skewed graph sizes a count split makes one shard carry most of
    // the resident footprint, defeating the cap. Boundary k sits at the
    // first record whose running prefix reaches k/shards of the total —
    // each shard's byte weight lands within one record of total/shards,
    // which is the best any contiguous split can do. Shard-count
    // invariance (metamorphic relation 9) is untouched: pass 2b
    // re-derives global supports from the union of local candidates for
    // *any* contiguous partition.
    let shards = shards.min(db.len().max(1)) as u64;
    let mut boundaries = Vec::with_capacity(shards as usize);
    let mut prefix = 0u64;
    let mut start = 0usize;
    let mut next_target = 1u64;
    for (i, sz) in sizes.iter().enumerate() {
        prefix += sz;
        // Close every shard whose byte target this record crossed; a
        // single record spanning several targets consumes them without
        // emitting empty ranges (the plan then has fewer, fuller shards).
        while next_target < shards && prefix * shards >= next_target * total {
            if i + 1 > start {
                boundaries.push((start, i + 1));
                start = i + 1;
            }
            next_target += 1;
        }
    }
    if start < db.len() {
        boundaries.push((start, db.len()));
    }
    boundaries
}

/// Exact encoded size of one graph record in the `TSGB` spill format:
/// length prefix + body prefix + labels + edge triples.
fn encoded_record_bytes(g: &LabeledGraph) -> u64 {
    4 + 9 + 4 * g.node_count() as u64 + 12 * g.edge_count() as u64
}

/// Runs `f` once per shard across `threads` claiming workers, each
/// holding one shard resident at a time. Claims poll the governor (a
/// tripped cancel token or deadline stops further claims within one
/// shard); the first error — lowest shard index on a tie — aborts the
/// scan and is returned after every worker has unwound. Worker panics
/// surface as [`TaxogramError::WorkerPanicked`], never as an abort or a
/// deadlock. Returns the per-shard results plus whether the scan was
/// stopped early by governance.
fn scan_shards<T: Send>(
    set: &SpillSet,
    threads: usize,
    governor: &Governor,
    f: impl Fn(usize, GraphDatabase) -> Result<T, TaxogramError> + Sync,
) -> Result<(Vec<Option<T>>, bool), TaxogramError> {
    let n = set.shard_count();
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let first_error: Mutex<Option<(usize, TaxogramError)>> = Mutex::new(None);
    let workers = threads.min(n).max(1);
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if stop.load(Ordering::Acquire) { // tsg-lint: ordering(ORD-12)
                    break;
                }
                if governor.should_stop() {
                    stop.store(true, Ordering::Release); // tsg-lint: ordering(ORD-12)
                    break;
                }
                let shard = next.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-13)
                if shard >= n {
                    break;
                }
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    read_shard(set, shard).and_then(|shard_db| f(shard, shard_db))
                }));
                let err = match outcome {
                    Ok(Ok(v)) => {
                        recover(slots.lock())[shard] = Some(v); // tsg-lint: allow(index) — shard < shard_count and slots is sized to shard_count
                        continue;
                    }
                    Ok(Err(e)) => e,
                    Err(payload) => TaxogramError::WorkerPanicked {
                        message: panic_message(payload.as_ref()),
                    },
                };
                let mut guard = recover(first_error.lock());
                let replace = match guard.as_ref() {
                    Some((held, _)) => *held > shard,
                    None => true,
                };
                if replace {
                    *guard = Some((shard, err));
                }
                drop(guard);
                stop.store(true, Ordering::Release); // tsg-lint: ordering(ORD-12)
                break;
            });
        }
    });
    if let Some((_, e)) = recover(first_error.lock()).take() {
        return Err(e);
    }
    let stopped = stop.load(Ordering::Acquire); // tsg-lint: ordering(ORD-12)
    let slots = {
        let mut guard = recover(slots.lock());
        std::mem::take(&mut *guard)
    };
    Ok((slots, stopped))
}

/// A governance stop during Pass 1 or Pass 2a: nothing finished, so the
/// sound serial prefix is empty. The abandoned count is at least 1 (the
/// run lost work) and the frontier lists the candidate codes known so
/// far.
fn early_stop<'a>(
    governor: &Governor,
    codes: impl Iterator<Item = &'a DfsCode>,
    known: usize,
    min_support: usize,
    db_len: usize,
    shard_stats: ShardStats,
) -> ShardedOutcome {
    let frontier: Vec<String> = codes.take(FRONTIER_CAP).map(|c| c.to_string()).collect();
    ShardedOutcome {
        result: MiningResult {
            patterns: Vec::new(),
            stats: MiningStats::default(),
            min_support_count: min_support,
            database_size: db_len,
        },
        termination: governor.finish(0, known.max(1), frontier),
        shard_stats,
    }
}

fn mine_impl(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: &ShardOptions,
    governor: &Governor,
    faults: &ShardFaults,
) -> Result<ShardedOutcome, TaxogramError> {
    let theta = config.threshold;
    if !(0.0..=1.0).contains(&theta) || theta.is_nan() {
        return Err(TaxogramError::InvalidThreshold { theta });
    }
    let min_support = db.min_support_count(theta);
    let db_len = db.len();
    if db.is_empty() {
        return Ok(ShardedOutcome {
            result: MiningResult {
                patterns: Vec::new(),
                stats: MiningStats::default(),
                min_support_count: min_support,
                database_size: 0,
            },
            termination: Termination::completed(0),
            shard_stats: ShardStats::default(),
        });
    }

    let boundaries = plan_shards(db, options);
    let parent = options
        .spill_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir);
    let set = spill(db, taxonomy, &boundaries, &parent, options.keep_spill, faults)?;
    let mut shard_stats = ShardStats {
        shards: set.shard_count(),
        spilled_bytes: set.spilled_bytes,
        largest_shard_bytes: set.largest_shard_bytes,
        ..ShardStats::default()
    };
    let threads = options.threads.max(1);

    // Pass 1: local class discovery, one resident shard per worker.
    let (slots, stopped) = scan_shards(&set, threads, governor, |_, shard_db| {
        pass1::mine_shard(&shard_db, taxonomy, config)
    })?;
    shard_stats.db_streams += 1;
    if stopped {
        let partial = pass1::merge_candidates(
            slots.into_iter().flatten().map(|s| s.classes).collect(),
        );
        shard_stats.candidates = partial.len();
        return Ok(early_stop(
            governor,
            partial.iter().map(|(c, _)| c),
            partial.len(),
            min_support,
            db_len,
            shard_stats,
        ));
    }
    let mut freq_sums: Vec<usize> = Vec::new();
    let mut per_shard_classes = Vec::with_capacity(set.shard_count());
    for slot in slots {
        let s = slot.expect("unstopped scan fills every slot"); // tsg-lint: allow(panic) — unstopped scan fills every slot; stop was checked above
        if freq_sums.len() < s.label_frequencies.len() {
            freq_sums.resize(s.label_frequencies.len(), 0);
        }
        for (acc, f) in freq_sums.iter_mut().zip(&s.label_frequencies) {
            *acc += f;
        }
        per_shard_classes.push(s.classes);
    }
    let candidates = pass1::merge_candidates(per_shard_classes);
    shard_stats.candidates = candidates.len();

    // Pass 2a: exact global class supports across a second shard stream.
    let (slots, stopped) = scan_shards(&set, threads, governor, |_, shard_db| {
        pass2::shard_supports(&shard_db, taxonomy, &candidates)
    })?;
    shard_stats.db_streams += 1;
    if stopped {
        return Ok(early_stop(
            governor,
            candidates.iter().map(|(c, _)| c),
            candidates.len(),
            min_support,
            db_len,
            shard_stats,
        ));
    }
    let mut supports = vec![0usize; candidates.len()];
    for shard_counts in slots.into_iter().flatten() {
        for (acc, c) in supports.iter_mut().zip(&shard_counts) {
            *acc += c;
        }
    }
    let frequent: Vec<(DfsCode, LabeledGraph)> = candidates
        .into_iter()
        .zip(&supports)
        .filter(|&(_, &sup)| sup >= min_support)
        .map(|(cand, _)| cand)
        .collect();
    shard_stats.globally_infrequent = shard_stats.candidates - frequent.len();

    // Step 3 scaffold on *global* data: the unified taxonomy (database-
    // independent, so identical to every shard's), the summed frequent-
    // label mask, and an originals table filled lazily per batch with
    // the rows the occurrence indices actually touch.
    let unified = Arc::new(taxonomy.unify_most_general());
    let frequent_mask = if config.enhancements.prune_infrequent_labels {
        let mut mask = BitSet::new(unified.concept_count());
        for (i, &f) in freq_sums.iter().enumerate() {
            if f >= min_support {
                mask.insert(i);
            }
        }
        Some(mask)
    } else {
        None
    };
    let mut prepared = Prepared {
        rel: Relabeled {
            dmg: GraphDatabase::new(),
            originals: vec![Vec::new(); db_len],
            taxonomy: unified,
        },
        frequent_mask,
        min_support,
        db_len,
    };

    // Pass 2b: batched global re-enumeration in canonical class order.
    let emb_gauge = MemoryGauge::new();
    let oi_gauge = MemoryGauge::new();
    let mut enum_scratch = EnumScratch::new();
    let mut oi_scratch = OiScratch::new();
    let mut outputs: Vec<ClassOutput> = Vec::new();
    let mut finished = 0usize;
    let batch_size = options.class_batch.max(1);
    'batches: for batch in frequent.chunks(batch_size) {
        let (slots, stopped) = scan_shards(&set, threads, governor, |shard, shard_db| {
            pass2::collect_shard_embeddings(&shard_db, taxonomy, batch, set.range(shard).0)
        })?;
        shard_stats.db_streams += 1;
        if stopped {
            break 'batches;
        }
        let mut per_class: Vec<Vec<tsg_gspan::Embedding>> =
            (0..batch.len()).map(|_| Vec::new()).collect();
        for slot in slots {
            let shard_out = slot.expect("unstopped scan fills every slot"); // tsg-lint: allow(panic) — unstopped scan fills every slot; stop was checked above
            for (gid, labels) in shard_out.originals {
                prepared.rel.originals[gid] = labels; // tsg-lint: allow(index) — graph ids in shard output index the originals they were scanned from
            }
            // Shard order = ascending graph-id order, the single-pass
            // engines' embedding order.
            for (acc, embeddings) in per_class.iter_mut().zip(shard_out.per_class) {
                acc.extend(embeddings);
            }
        }
        for ((_, skeleton), embeddings) in batch.iter().zip(per_class) {
            let emb_bytes = embedding_heap_bytes(&embeddings);
            emb_gauge.add(emb_bytes);
            // Admission in serial class order — the same gate, in the
            // same order, as the single-pass engines, so budget and
            // cancel-after trip points line up exactly.
            if !governor.admit_class(emb_gauge.peak() + oi_gauge.peak()) {
                emb_gauge.sub(emb_bytes);
                break 'batches;
            }
            let out = enumerate_class(
                skeleton,
                &embeddings,
                &prepared,
                config,
                Some(&oi_gauge),
                &mut enum_scratch,
                &mut oi_scratch,
            );
            drop(embeddings);
            emb_gauge.sub(emb_bytes);
            governor.add_patterns(out.patterns.len());
            outputs.push(out);
            finished += 1;
            if governor.should_stop_class_boundary() {
                break 'batches;
            }
        }
    }

    let abandoned = frequent.len() - finished;
    let frontier: Vec<String> = frequent[finished..] // tsg-lint: allow(index) — finished <= frequent.len() by take_while
        .iter()
        .take(FRONTIER_CAP)
        .map(|(code, _)| code.to_string())
        .collect();
    let termination = governor.finish(finished, abandoned, frontier);
    let mut result = merge_outputs(outputs.into_iter(), finished, &prepared);
    result.stats.peak_oi_bytes = oi_gauge.peak();
    result.stats.peak_embedding_bytes = emb_gauge.peak();
    Ok(ShardedOutcome {
        result,
        termination,
        shard_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Taxogram;
    use tsg_taxonomy::samples;

    fn options(shards: usize, threads: usize) -> ShardOptions {
        ShardOptions {
            shards,
            threads,
            ..ShardOptions::default()
        }
    }

    #[test]
    fn sharded_matches_serial_exactly() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        for theta in [1.0, 2.0 / 3.0, 1.0 / 3.0] {
            let cfg = TaxogramConfig::with_threshold(theta);
            let serial = Taxogram::new(cfg).mine(&db, &t).unwrap();
            for shards in [1, 2, 3, 8] {
                for threads in [1, 4] {
                    let sharded = mine_sharded(&cfg, &db, &t, &options(shards, threads)).unwrap();
                    assert!(sharded.termination.is_complete());
                    assert_eq!(serial.patterns.len(), sharded.result.patterns.len());
                    for (a, b) in serial.patterns.iter().zip(&sharded.result.patterns) {
                        assert_eq!(a.graph.labels(), b.graph.labels());
                        assert_eq!(a.graph.edges(), b.graph.edges());
                        assert_eq!(a.support_count, b.support_count);
                    }
                    assert_eq!(serial.stats.classes, sharded.result.stats.classes);
                }
            }
        }
    }

    #[test]
    fn shard_plan_balances_bytes_not_counts() {
        use tsg_graph::NodeLabel;
        // Four heavyweight graphs up front, then a tail of tiny ones: a
        // count split would stack every heavy record into shard 0.
        let mut graphs = Vec::new();
        for _ in 0..4 {
            graphs.push(LabeledGraph::with_nodes((0..120).map(|_| NodeLabel(0))));
        }
        for _ in 0..60 {
            graphs.push(LabeledGraph::with_nodes([NodeLabel(0), NodeLabel(1)]));
        }
        let db = GraphDatabase::from_graphs(graphs);
        let sizes: Vec<u64> = db.graphs().iter().map(encoded_record_bytes).collect();
        let total: u64 = sizes.iter().sum();
        let heaviest = *sizes.iter().max().unwrap();

        for shards in [2usize, 3, 4, 7] {
            let plan = plan_shards(&db, &options(shards, 1));
            // Exact contiguous partition, no empty ranges.
            assert!(!plan.is_empty() && plan.len() <= shards);
            assert_eq!(plan[0].0, 0);
            assert_eq!(plan.last().unwrap().1, db.len());
            for w in plan.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            // Every shard's byte weight lands within one record of the
            // ideal total/shards — the bound a contiguous split admits.
            for &(lo, hi) in &plan {
                assert!(lo < hi, "no empty shard ranges");
                let weight: u64 = sizes[lo..hi].iter().sum();
                assert!(
                    weight <= total / shards as u64 + heaviest,
                    "shard {lo}..{hi} weighs {weight} bytes against a \
                     {total}/{shards} target"
                );
            }
        }
    }

    #[test]
    fn shard_plan_never_emits_empty_ranges_under_extreme_skew() {
        use tsg_graph::NodeLabel;
        // One record holding ~all the bytes: it crosses several byte
        // targets at once, which must collapse into fewer, fuller
        // shards rather than zero-width ones.
        let mut graphs = vec![LabeledGraph::with_nodes(
            (0..400).map(|_| NodeLabel(0)),
        )];
        for _ in 0..3 {
            graphs.push(LabeledGraph::with_nodes([NodeLabel(0)]));
        }
        let db = GraphDatabase::from_graphs(graphs);
        let plan = plan_shards(&db, &options(4, 1));
        assert_eq!(plan[0].0, 0);
        assert_eq!(plan.last().unwrap().1, db.len());
        for &(lo, hi) in &plan {
            assert!(lo < hi, "empty range in {plan:?}");
        }
    }

    #[test]
    fn resident_cap_raises_the_shard_count() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let cfg = TaxogramConfig::with_threshold(1.0 / 3.0);
        let opts = ShardOptions {
            resident_cap_bytes: Some(64),
            ..ShardOptions::default()
        };
        let out = mine_sharded(&cfg, &db, &t, &opts).unwrap();
        assert!(out.shard_stats.shards > 1, "a 64-byte cap must split");
        assert!(out.shard_stats.largest_shard_bytes > 0);
        assert!(out.shard_stats.spilled_bytes >= out.shard_stats.largest_shard_bytes);
    }

    #[test]
    fn spill_directory_is_removed_on_success() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let cfg = TaxogramConfig::with_threshold(1.0 / 3.0);
        let root = std::env::temp_dir().join(format!("tsg-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        let opts = ShardOptions {
            shards: 3,
            spill_dir: Some(root.clone()),
            ..ShardOptions::default()
        };
        mine_sharded(&cfg, &db, &t, &opts).unwrap();
        let leftovers = std::fs::read_dir(&root).unwrap().count();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(leftovers, 0, "spill subdirectory must be cleaned up");
    }

    #[test]
    fn sharded_handles_empty_database() {
        let (_, t) = samples::sample_taxonomy();
        let cfg = TaxogramConfig::with_threshold(0.5);
        let out = mine_sharded(&cfg, &GraphDatabase::new(), &t, &ShardOptions::default()).unwrap();
        assert!(out.result.patterns.is_empty());
        assert!(out.termination.is_complete());
        assert_eq!(out.shard_stats.spilled_bytes, 0);
    }

    #[test]
    fn sharded_rejects_bad_threshold() {
        let (_, t) = samples::sample_taxonomy();
        let cfg = TaxogramConfig::with_threshold(1.5);
        assert!(matches!(
            mine_sharded(&cfg, &GraphDatabase::new(), &t, &ShardOptions::default()),
            Err(TaxogramError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn unknown_label_reports_the_serial_error() {
        use tsg_graph::NodeLabel;
        let t = tsg_taxonomy::taxonomy_from_edges(2, [(1, 0)]).unwrap();
        let good = LabeledGraph::with_nodes([NodeLabel(0), NodeLabel(1)]);
        let bad = LabeledGraph::with_nodes([NodeLabel(0), NodeLabel(9)]);
        let db = GraphDatabase::from_graphs(vec![good, bad]);
        let cfg = TaxogramConfig::with_threshold(0.5);
        let err = mine_sharded(&cfg, &db, &t, &options(2, 1)).unwrap_err();
        assert_eq!(
            err,
            TaxogramError::LabelNotInTaxonomy {
                graph: 1,
                node: 1,
                label: NodeLabel(9)
            }
        );
    }
}
