//! Pass 1: local candidate-class discovery, one resident shard at a time.
//!
//! Each shard is relabeled and mined independently at the *same
//! fractional* threshold θ. By pigeonhole, a pattern class frequent in
//! the whole database (`sup ≥ ⌈θ·N⌉`) must be frequent in at least one
//! shard (`supᵢ ≥ ⌈θ·nᵢ⌉`): if it were locally infrequent everywhere,
//! `supᵢ < θ·nᵢ` for every shard and the global support would fall below
//! `θ·N ≤ ⌈θ·N⌉`. The union of local class sets is therefore a complete
//! candidate superset; Pass 2 computes exact global supports.
//!
//! Only the class *identity* survives this pass — the canonical DFS code
//! and its skeleton graph. Local embeddings and local supports are
//! dropped on the spot: they are per-shard artifacts, and keeping them
//! would tie resident memory to the database instead of the shard.
//! Global embeddings are re-enumerated from the spill files in Pass 2b.
//!
//! The pass also sums each shard's generalized-label frequency vector.
//! [`tsg_taxonomy::Taxonomy::generalized_label_frequencies`] counts
//! distinct ancestor concepts *per graph* and sums over graphs, so the
//! element-wise sum over shards equals the whole-database vector — the
//! prune-infrequent-labels mask comes out identical to the single-pass
//! miner's without a second streaming pass.

use crate::config::TaxogramConfig;
use crate::error::TaxogramError;
use crate::relabel::relabel;
use tsg_gspan::{mine_parallel_classes, DfsCode, GSpanConfig, ParallelOptions};
use tsg_graph::{GraphDatabase, LabeledGraph};
use tsg_taxonomy::Taxonomy;

/// What one shard contributes to Pass 1.
pub(crate) struct ShardCandidates {
    /// Locally frequent pattern classes: canonical code plus skeleton,
    /// in canonical code order (the class miner's output order).
    pub classes: Vec<(DfsCode, LabeledGraph)>,
    /// This shard's generalized-label frequency vector, indexed by
    /// unified-taxonomy concept id.
    pub label_frequencies: Vec<usize>,
}

/// Mines one resident shard for locally frequent classes. The shard's
/// labels were validated at spill time, so `relabel` cannot fail on a
/// healthy spill file; its unification is database-independent, which is
/// what makes per-shard relabelings mutually consistent.
pub(crate) fn mine_shard(
    shard_db: &GraphDatabase,
    taxonomy: &Taxonomy,
    config: &TaxogramConfig,
) -> Result<ShardCandidates, TaxogramError> {
    let rel = relabel(shard_db, taxonomy)?;
    let label_frequencies = rel.taxonomy.generalized_label_frequencies(shard_db);
    let local_min = shard_db.min_support_count(config.threshold);
    // The existing work-stealing class miner, scheduled single-threaded:
    // shard-level parallelism lives in the scan loop (one resident shard
    // per worker), so the intra-shard search must not multiply it.
    let (classes, _steals) = mine_parallel_classes(
        &rel.dmg,
        GSpanConfig {
            min_support: local_min,
            max_edges: config.max_edges,
        },
        ParallelOptions::default(),
        None,
    )
    .map_err(|p| TaxogramError::WorkerPanicked { message: p.message })?;
    Ok(ShardCandidates {
        classes: classes.into_iter().map(|c| (c.code, c.graph)).collect(),
        label_frequencies,
    })
}

/// Merges per-shard class lists into the global candidate set: sorted by
/// canonical DFS-code order — which equals the serial miner's class
/// report order, so downstream passes inherit serial ordering for free —
/// and deduplicated by code equality (equal codes imply equal skeletons).
pub(crate) fn merge_candidates(
    per_shard: Vec<Vec<(DfsCode, LabeledGraph)>>,
) -> Vec<(DfsCode, LabeledGraph)> {
    let mut all: Vec<(DfsCode, LabeledGraph)> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| a.0.cmp_code(&b.0));
    all.dedup_by(|a, b| a.0 == b.0);
    all
}
