//! Pass 2: exact global verification, streaming the shards again.
//!
//! * **Pass 2a** recounts every candidate class's support over each
//!   shard with [`tsg_iso::BatchedMatcher`] — one candidate-set cache
//!   per resident graph amortizes label-compatibility scans across the
//!   whole candidate list. Matching the most-general skeleton *exactly*
//!   against the relabeled shard is the same predicate gSpan's class
//!   support uses on the whole relabeled database, so summing per-shard
//!   counts yields exactly the serial engine's class supports.
//! * **Pass 2b** re-enumerates each globally frequent class's
//!   embeddings on global data, shard by shard, via
//!   [`BatchedMatcher::for_each_embedding`]. Concatenating per-shard
//!   embedding lists in shard order restores ascending graph-id order,
//!   and each embedding's `map` is indexed by skeleton vertex id = DFS
//!   id — the exact shape Step 3's occurrence index expects from the
//!   single-pass engines.

use crate::error::TaxogramError;
use crate::relabel::relabel;
use tsg_gspan::{DfsCode, Embedding};
use tsg_graph::{GraphDatabase, LabeledGraph, NodeLabel};
use tsg_iso::{BatchedMatcher, ExactMatcher};
use tsg_taxonomy::Taxonomy;

/// Counts, for each candidate class, how many graphs of this resident
/// shard contain its skeleton (exact matching on the relabeled shard).
pub(crate) fn shard_supports(
    shard_db: &GraphDatabase,
    taxonomy: &Taxonomy,
    candidates: &[(DfsCode, LabeledGraph)],
) -> Result<Vec<usize>, TaxogramError> {
    let rel = relabel(shard_db, taxonomy)?;
    let matcher = ExactMatcher;
    let batched = BatchedMatcher::new(&rel.dmg, &matcher);
    Ok(candidates
        .iter()
        .map(|(_, skeleton)| batched.support_count(skeleton))
        .collect())
}

/// What one shard contributes to a Pass 2b class batch.
pub(crate) struct ShardEmbeddings {
    /// Per batch class: this shard's embeddings, graph ids already
    /// globalized.
    pub per_class: Vec<Vec<Embedding>>,
    /// `(global graph id, original vertex labels)` for every shard graph
    /// that hosts at least one embedding — the rows of the global
    /// originals table the occurrence index will actually read.
    pub originals: Vec<(usize, Vec<NodeLabel>)>,
}

/// Collects every embedding of every batch class within one resident
/// shard. `start` is the shard's first global graph id.
pub(crate) fn collect_shard_embeddings(
    shard_db: &GraphDatabase,
    taxonomy: &Taxonomy,
    batch: &[(DfsCode, LabeledGraph)],
    start: usize,
) -> Result<ShardEmbeddings, TaxogramError> {
    let rel = relabel(shard_db, taxonomy)?;
    let matcher = ExactMatcher;
    let batched = BatchedMatcher::new(&rel.dmg, &matcher);
    let mut touched = vec![false; shard_db.len()];
    let mut per_class = Vec::with_capacity(batch.len());
    for (_, skeleton) in batch {
        let mut embeddings = Vec::new();
        batched.for_each_embedding(skeleton, |local, map| {
            touched[local] = true; // tsg-lint: allow(index) — local < batch length by the grouping above
            embeddings.push(Embedding {
                gid: start + local,
                map: map.to_vec(),
                // Step 3 reads only `gid` and `map`; code-edge ids are a
                // gSpan-internal bookkeeping detail with no consumer here.
                edges: Vec::new(),
            });
        });
        per_class.push(embeddings);
    }
    let mut rows = rel.originals;
    let originals = touched
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t)
        .map(|(local, _)| (start + local, std::mem::take(&mut rows[local]))) // tsg-lint: allow(index) — local enumerates rows' own indices
        .collect();
    Ok(ShardEmbeddings {
        per_class,
        originals,
    })
}
