//! Spill files: writing partitions to disk and reading them back.
//!
//! The sharded miner materializes the input database as one length-
//! prefixed binary file per shard ([`tsg_graph::binary`], the `TSGB`
//! format), so each pass holds exactly one shard resident per worker.
//! A [`SpillSet`] owns the files for the duration of the run and removes
//! them on drop — on success, on error, and on early termination alike —
//! unless the caller asked to keep them.
//!
//! Vertex labels are validated against the input taxonomy *while
//! spilling*, in global database order, so a bad label surfaces as the
//! exact [`TaxogramError::LabelNotInTaxonomy`] the serial miner would
//! report, before any mining work starts. Everything that goes wrong at
//! the file layer — a failed write, a truncated or corrupt file on
//! read-back, a missing shard — surfaces as [`TaxogramError::ShardIo`];
//! a damaged shard can never produce a silently short mining result.

// tsg-lint: allow(index) — spill buffers are indexed by offsets the writer itself recorded

use super::ShardFaults;
use crate::error::TaxogramError;
use std::fs;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering}; // tsg-lint: allow(facade) — AtomicU64 name ticket; the facade exports no AtomicU64 and a spill-dir suffix needs no model coverage
use tsg_graph::binary::{write_binary_graph, write_binary_header};
use tsg_graph::binary::ShardReader;
use tsg_graph::GraphDatabase;
use tsg_taxonomy::Taxonomy;

/// Distinguishes spill directories of concurrent runs in one process.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Wraps a shard-level failure as the typed mining error.
pub(crate) fn shard_io(shard: usize, message: impl Into<String>) -> TaxogramError {
    TaxogramError::ShardIo {
        shard,
        message: message.into(),
    }
}

/// The on-disk shard files of one sharded run. Owns a unique directory
/// under the configured spill root; dropping the set deletes the
/// directory unless `keep` was requested.
#[derive(Debug)]
pub(crate) struct SpillSet {
    dir: PathBuf,
    files: Vec<PathBuf>,
    /// `[start, end)` global graph-id range of each shard, in shard order.
    ranges: Vec<(usize, usize)>,
    keep: bool,
    /// Total bytes written across all shard files.
    pub spilled_bytes: u64,
    /// Size of the largest single shard file — the resident-set unit.
    pub largest_shard_bytes: u64,
}

impl SpillSet {
    pub(crate) fn shard_count(&self) -> usize {
        self.files.len()
    }

    pub(crate) fn range(&self, shard: usize) -> (usize, usize) {
        self.ranges[shard]
    }
}

impl Drop for SpillSet {
    fn drop(&mut self) {
        if !self.keep {
            // Best-effort: a cleanup failure must not panic in a drop
            // (possibly during unwinding from a mining error).
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

/// Writes `db` to one binary file per shard under a fresh unique
/// directory inside `parent`, validating every vertex label against
/// `taxonomy` in global database order. `boundaries` are the shards'
/// `[start, end)` graph-id ranges. Injected faults (test-only) fire
/// during the write (`write_error_at_record`) or damage the finished
/// files afterwards.
pub(crate) fn spill(
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    boundaries: &[(usize, usize)],
    parent: &Path,
    keep: bool,
    faults: &ShardFaults,
) -> Result<SpillSet, TaxogramError> {
    let dir = parent.join(format!(
        "tsg-spill-{}-{}",
        std::process::id(),
        SPILL_COUNTER.fetch_add(1, Ordering::Relaxed) // tsg-lint: ordering(ORD-14)
    ));
    fs::create_dir_all(&dir).map_err(|e| shard_io(0, format!("create {}: {e}", dir.display())))?;
    // Construct the owning set before the first write so a mid-spill
    // error still cleans up the partial files on the error return path.
    let mut set = SpillSet {
        dir,
        files: Vec::with_capacity(boundaries.len()),
        ranges: boundaries.to_vec(),
        keep,
        spilled_bytes: 0,
        largest_shard_bytes: 0,
    };
    for (shard, &(start, end)) in boundaries.iter().enumerate() {
        let path = set.dir.join(format!("shard-{shard:04}.tsgb"));
        set.files.push(path.clone());
        let io = |e: std::io::Error| shard_io(shard, format!("write {}: {e}", path.display()));
        let file = fs::File::create(&path).map_err(io)?;
        let mut w = BufWriter::new(file);
        write_binary_header(&mut w, (end - start) as u64).map_err(io)?;
        for gid in start..end {
            if faults.write_error_at_record == Some(gid) {
                return Err(shard_io(
                    shard,
                    format!("injected fault: write error at record {gid}"),
                ));
            }
            let g = &db.graphs()[gid];
            for (node, &label) in g.labels().iter().enumerate() {
                if !taxonomy.contains(label) {
                    return Err(TaxogramError::LabelNotInTaxonomy {
                        graph: gid,
                        node,
                        label,
                    });
                }
            }
            write_binary_graph(&mut w, g).map_err(io)?;
        }
        w.flush().map_err(io)?;
        let bytes = fs::metadata(&path).map_err(io)?.len();
        set.spilled_bytes += bytes;
        set.largest_shard_bytes = set.largest_shard_bytes.max(bytes);
    }
    apply_post_write_faults(&set, faults)?;
    Ok(set)
}

/// Damages finished shard files per the injected fault plan: truncation
/// mid-stream, an absurd length prefix on the first record, or outright
/// deletion. Applied after the spill so the write path itself stays
/// honest — these model external corruption, not writer bugs.
fn apply_post_write_faults(set: &SpillSet, faults: &ShardFaults) -> Result<(), TaxogramError> {
    let io = |shard: usize, e: std::io::Error| shard_io(shard, format!("injecting fault: {e}"));
    if let Some(shard) = faults.truncate_shard {
        let path = &set.files[shard];
        let len = fs::metadata(path).map_err(|e| io(shard, e))?.len();
        let cut = len.saturating_sub((len / 3).max(1));
        fs::OpenOptions::new()
            .write(true)
            .open(path)
            .and_then(|f| f.set_len(cut))
            .map_err(|e| io(shard, e))?;
    }
    if let Some(shard) = faults.corrupt_prefix {
        let path = &set.files[shard];
        let mut bytes = fs::read(path).map_err(|e| io(shard, e))?;
        if bytes.len() >= 20 {
            // Offset 16 is the first record's length prefix (after the
            // 16-byte header): an absurd declared size.
            bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        } else {
            // An empty shard has no record prefix; break the header.
            bytes.truncate(8);
        }
        fs::write(path, bytes).map_err(|e| io(shard, e))?;
    }
    if let Some(shard) = faults.delete_shard {
        fs::remove_file(&set.files[shard]).map_err(|e| io(shard, e))?;
    }
    Ok(())
}

/// Reads one shard back into memory, mapping every failure — a missing
/// file, a malformed header, a truncated or corrupt record — to
/// [`TaxogramError::ShardIo`]. Defensively cross-checks the declared
/// graph count against the shard's planned range so a swapped or
/// rewritten file cannot smuggle in the wrong partition size.
pub(crate) fn read_shard(set: &SpillSet, shard: usize) -> Result<GraphDatabase, TaxogramError> {
    let path = &set.files[shard];
    let file = fs::File::open(path)
        .map_err(|e| shard_io(shard, format!("open {}: {e}", path.display())))?;
    let reader = ShardReader::new(BufReader::new(file))
        .map_err(|e| shard_io(shard, e.to_string()))?;
    let (start, end) = set.ranges[shard];
    let expected = end - start;
    if reader.graph_count() != expected as u64 {
        return Err(shard_io(
            shard,
            format!(
                "shard declares {} graphs, expected {expected}",
                reader.graph_count()
            ),
        ));
    }
    let mut graphs = Vec::with_capacity(expected);
    for g in reader {
        graphs.push(g.map_err(|e| shard_io(shard, e.to_string()))?);
    }
    Ok(GraphDatabase::from_graphs(graphs))
}
