//! Two-pass partitioned mining — the paper's stated future work
//! ("As future work, we plan to develop disk-based algorithms for
//! taxonomy-based graph mining", §6) in the style of the
//! Savasere–Omiecinski–Navathe (SON) partition algorithm from itemset
//! mining:
//!
//! * **Pass 1** mines each partition *independently* at the same
//!   fractional threshold `θ`. By pigeonhole, any globally frequent
//!   pattern is frequent in at least one partition, so the union of local
//!   results is a complete candidate set. Only one partition needs to be
//!   in memory at a time.
//! * **Pass 2** streams the partitions again, counting each candidate's
//!   exact global support with generalized subgraph-isomorphism tests,
//!   then applies the global minimality filter.
//!
//! One subtlety is specific to the taxonomy setting: a pattern can be
//! over-generalized in *every* partition where it is frequent yet
//! globally minimal (supports that tie locally need not tie globally), so
//! pass 1 must keep over-generalized patterns
//! ([`TaxogramConfig::keep_overgeneralized`]) — with occurrence-index
//! contraction disabled, since enhancements (c)/(d) remove exactly those
//! labels. The result is exactly the single-pass output (verified by the
//! `son_agreement` property test).

use crate::config::TaxogramConfig;
use crate::error::TaxogramError;
use crate::Taxogram;
use tsg_graph::{GraphDatabase, LabeledGraph};
use tsg_iso::{
    contains_subgraph_cached, is_gen_iso, is_isomorphic, CandidateCache, GeneralizedMatcher,
};
use tsg_taxonomy::Taxonomy;

/// A mined pattern with its exact global support.
#[derive(Clone, Debug)]
pub struct SonPattern {
    /// The pattern graph.
    pub graph: LabeledGraph,
    /// Distinct-graph support count over all partitions.
    pub support_count: usize,
}

/// Counters for a two-pass run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SonStats {
    /// Partitions processed.
    pub partitions: usize,
    /// Candidates after pass 1 (union of local frequent sets, deduplicated
    /// up to isomorphism).
    pub candidates: usize,
    /// Candidates discarded as globally infrequent in pass 2.
    pub globally_infrequent: usize,
    /// Candidates discarded as globally over-generalized.
    pub overgeneralized: usize,
}

/// The result of [`mine_partitioned`].
#[derive(Clone, Debug)]
pub struct SonResult {
    /// The globally frequent, minimal pattern set — identical to what the
    /// single-pass miner produces on the concatenated database.
    pub patterns: Vec<SonPattern>,
    /// Run counters.
    pub stats: SonStats,
    /// The global absolute support floor.
    pub min_support_count: usize,
}

/// Mines a database presented as partitions, holding only one partition's
/// mining state in memory at a time (pass 2 additionally holds the
/// candidate set).
///
/// `config.threshold` is interpreted globally; partitions are mined at the
/// same fraction. Empty partitions are allowed.
///
/// # Errors
/// Propagates the first partition-level mining error.
pub fn mine_partitioned(
    config: &TaxogramConfig,
    partitions: &[GraphDatabase],
    taxonomy: &Taxonomy,
) -> Result<SonResult, TaxogramError> {
    let theta = config.threshold;
    if !(0.0..=1.0).contains(&theta) || theta.is_nan() {
        return Err(TaxogramError::InvalidThreshold { theta });
    }
    let total_graphs: usize = partitions.iter().map(GraphDatabase::len).sum();
    let min_support = {
        let raw = (theta * total_graphs as f64).ceil() as usize;
        raw.max(1)
    };
    let mut stats = SonStats {
        partitions: partitions.len(),
        ..SonStats::default()
    };

    // Pass 1: local mining with the minimality filter off (see module
    // docs) and contraction disabled, since (c)/(d) drop exactly the
    // over-generalized members pass 2 may still need.
    let mut local_cfg = *config;
    local_cfg.keep_overgeneralized = true;
    local_cfg.enhancements.contract_equal_sets = false;
    local_cfg.enhancements.predescend_roots = false;
    let mut candidates: Vec<LabeledGraph> = Vec::new();
    for part in partitions {
        if part.is_empty() {
            continue;
        }
        let local = Taxogram::new(local_cfg).mine(part, taxonomy)?;
        for p in local.patterns {
            if !candidates.iter().any(|c| is_isomorphic(c, &p.graph)) {
                candidates.push(p.graph);
            }
        }
    }
    stats.candidates = candidates.len();

    // Pass 2a: exact global supports, streaming the partitions. Every
    // candidate is matched against each graph, so one candidate-set
    // cache per graph amortizes label-compatibility work across the
    // whole candidate list.
    let matcher = GeneralizedMatcher::new(taxonomy);
    let mut supports = vec![0usize; candidates.len()];
    for part in partitions {
        for (_, g) in part.iter() {
            let cache = CandidateCache::new(g, &matcher);
            for (i, c) in candidates.iter().enumerate() {
                if contains_subgraph_cached(c, &cache) {
                    supports[i] += 1; // tsg-lint: allow(index) — i enumerates candidates and supports is sized to match
                }
            }
        }
    }

    // Pass 2b: global frequency and minimality filters.
    let frequent: Vec<(LabeledGraph, usize)> = candidates
        .into_iter()
        .zip(supports)
        .filter(|&(_, sup)| {
            let keep = sup >= min_support;
            if !keep {
                stats.globally_infrequent += 1;
            }
            keep
        })
        .collect();
    let patterns: Vec<SonPattern> = frequent
        .iter()
        .filter(|(p, sup)| {
            let overgen = frequent.iter().any(|(q, qsup)| {
                qsup == sup
                    && p.node_count() == q.node_count()
                    && p.edge_count() == q.edge_count()
                    && !is_isomorphic(p, q)
                    && is_gen_iso(p, q, taxonomy)
            });
            if overgen {
                stats.overgeneralized += 1;
            }
            !overgen
        })
        .map(|(graph, support_count)| SonPattern {
            graph: graph.clone(),
            support_count: *support_count,
        })
        .collect();

    Ok(SonResult {
        patterns,
        stats,
        min_support_count: min_support,
    })
}

/// Splits a database into `chunks` partitions of near-equal size (the
/// in-memory stand-in for on-disk segments).
pub fn partition(db: &GraphDatabase, chunks: usize) -> Vec<GraphDatabase> {
    let chunks = chunks.max(1);
    let per = db.len().div_ceil(chunks).max(1);
    db.graphs()
        .chunks(per)
        .map(|c| GraphDatabase::from_graphs(c.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_taxonomy::samples;

    fn compare_with_single_pass(db: &GraphDatabase, taxonomy: &Taxonomy, theta: f64, chunks: usize) {
        let cfg = TaxogramConfig::with_threshold(theta).max_edges(3);
        let single = Taxogram::new(cfg).mine(db, taxonomy).unwrap();
        let parts = partition(db, chunks);
        let two_pass = mine_partitioned(&cfg, &parts, taxonomy).unwrap();
        assert_eq!(
            single.patterns.len(),
            two_pass.patterns.len(),
            "single: {:?}\ntwo-pass: {:?}",
            single
                .patterns
                .iter()
                .map(|p| (p.graph.labels().to_vec(), p.support_count))
                .collect::<Vec<_>>(),
            two_pass
                .patterns
                .iter()
                .map(|p| (p.graph.labels().to_vec(), p.support_count))
                .collect::<Vec<_>>(),
        );
        for p in &single.patterns {
            let hit = two_pass
                .patterns
                .iter()
                .find(|q| is_isomorphic(&p.graph, &q.graph))
                .unwrap_or_else(|| panic!("two-pass missing {:?}", p.graph.labels()));
            assert_eq!(p.support_count, hit.support_count);
        }
    }

    #[test]
    fn agrees_with_single_pass_on_fixture() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        for chunks in [1, 2, 3] {
            for theta in [1.0, 2.0 / 3.0, 1.0 / 3.0] {
                compare_with_single_pass(&db, &t, theta, chunks);
            }
        }
    }

    #[test]
    fn partition_splits_evenly() {
        let (c, t) = samples::sample_taxonomy();
        let _ = t;
        let db = samples::figure_1_4_database(&c);
        let parts = partition(&db, 2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(GraphDatabase::len).sum::<usize>(), db.len());
        // More chunks than graphs: every chunk holds one graph.
        let parts = partition(&db, 10);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn empty_partitions_are_skipped() {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let mut parts = partition(&db, 2);
        parts.push(GraphDatabase::new());
        let cfg = TaxogramConfig::with_threshold(1.0 / 3.0).max_edges(2);
        let r = mine_partitioned(&cfg, &parts, &t).unwrap();
        assert!(!r.patterns.is_empty());
        assert_eq!(r.stats.partitions, 3);
    }

    #[test]
    fn locally_overgeneralized_globally_minimal_pattern_survives() {
        // Taxonomy 0 > 1. Partition A = {1—1}: locally, 0—0 ties 1—1 and
        // is over-generalized. Partition B = {0—0}: only 0—0 occurs. At
        // θ = 1.0 globally, 0—0 has support 2, 1—1 support 1: 0—0 is the
        // *only* frequent pattern and is NOT over-generalized globally. A
        // naive pass 1 that drops local over-generalizations would lose
        // it.
        use tsg_graph::{EdgeLabel, LabeledGraph, NodeLabel};
        let t = tsg_taxonomy::taxonomy_from_edges(2, [(1, 0)]).unwrap();
        let mk = |l: u32| {
            let mut g = LabeledGraph::with_nodes([NodeLabel(l), NodeLabel(l)]);
            g.add_edge(0, 1, EdgeLabel(0)).unwrap();
            g
        };
        let parts = vec![
            GraphDatabase::from_graphs(vec![mk(1)]),
            GraphDatabase::from_graphs(vec![mk(0)]),
        ];
        let cfg = TaxogramConfig::with_threshold(1.0);
        let r = mine_partitioned(&cfg, &parts, &t).unwrap();
        assert_eq!(r.patterns.len(), 1);
        assert_eq!(
            r.patterns[0].graph.labels(),
            &[NodeLabel(0), NodeLabel(0)],
            "the generalized pattern must survive"
        );
        assert_eq!(r.patterns[0].support_count, 2);
    }
}
