//! Fully parallel mining: work-stealing Step 1 fused with Steps 2–3.
//!
//! The pipelined engine ([`crate::mine_pipelined`]) parallelized the
//! *consumers* of pattern classes, but gSpan's Step-1 search stayed a
//! single producer — and on taxonomy workloads the search (embedding
//! maintenance plus minimality checks) dominates end-to-end time, so the
//! pipeline's speedup flattened once one core was saturated by mining.
//!
//! [`mine_stealing`] parallelizes the search itself using the miner
//! crate's work-stealing scheduler ([`tsg_gspan::mine_parallel_with`]):
//! every DFS-code subtree is a stealable task, and each worker *fuses*
//! Steps 2–3 into its search loop — the moment a worker's search
//! completes a class, that same worker builds the occurrence index and
//! enumerates specializations in place, with its own persistent scratch
//! arenas ([`EnumScratch`], [`OiScratch`], and the miner's minimality
//! scratch). There is no handoff channel at all: the class's embeddings
//! never leave the worker that computed them.
//!
//! Determinism is inherited from the scheduler's canonical-merge
//! argument (see `tsg_gspan::parallel`): per-class work is schedule
//! independent, classes carry their minimal DFS code, and sorting
//! per-worker outputs by [`tsg_gspan::DfsCode::cmp_code`] reproduces the
//! serial class order exactly — so the merged pattern list is
//! byte-identical to the serial miner's at any thread count.

use crate::config::TaxogramConfig;
use crate::enumerate::EnumScratch;
use crate::error::TaxogramError;
use crate::gauge::MemoryGauge;
use crate::govern::{GovernOptions, Governor, MiningOutcome, Termination};
use crate::miner::MiningResult;
use crate::oi::OiScratch;
use crate::pipeline::{enumerate_class, merge_outputs, prepare, ClassOutput, Prepared, Prologue};
use crate::sync::thread;
use tsg_graph::GraphDatabase;
use tsg_gspan::{
    mine_parallel_with_faults, ClassHandoff, DfsCode, FaultInjection, GSpanConfig, Grow, // tsg-lint: allow(fault-hook) — the stealing engine's faulted entry point is the sanctioned conduit into the gspan-level hook (driven by tsg-testkit plans)
    MinedPattern, ParallelOptions, PatternSink,
};
use tsg_taxonomy::Taxonomy;

/// Tuning knobs for [`mine_stealing_with`].
#[derive(Clone, Copy, Debug)]
pub struct StealOptions {
    /// Worker thread count. Every worker both searches and enumerates;
    /// `0`/`1` run the whole fused loop on the calling thread (still
    /// through the scheduler, so behavior is identical at every count).
    pub threads: usize,
    /// Per-worker deque capacity; overflow spills to the shared
    /// injector. `0` picks the scheduler default. Capacity 1 forces
    /// nearly every task through the injector (maximal stealing) — used
    /// by the determinism tests.
    pub deque_capacity: usize,
    /// Clamp `threads` to the machine's available parallelism (default).
    /// Disable to force a given worker count regardless of cores (the
    /// determinism tests exercise 8 workers on any host).
    pub clamp_to_cores: bool,
}

impl Default for StealOptions {
    fn default() -> Self {
        StealOptions {
            threads: 2,
            deque_capacity: 0,
            clamp_to_cores: true,
        }
    }
}

/// Mines like [`crate::Taxogram::mine`] with Step 1 search, Step 2 index
/// construction, and Step 3 enumeration all running on `threads`
/// work-stealing workers. Output is exactly the serial result (same
/// patterns, same order, same supports); `stats.steals` counts tasks
/// taken cross-worker.
///
/// # Errors
/// Same conditions as the serial miner.
pub fn mine_stealing(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    threads: usize,
) -> Result<MiningResult, TaxogramError> {
    mine_stealing_with(
        config,
        db,
        taxonomy,
        StealOptions {
            threads,
            ..StealOptions::default()
        },
    )
}

/// [`mine_stealing`] with explicit scheduler knobs.
///
/// # Errors
/// Same conditions as the serial miner, plus
/// [`TaxogramError::WorkerPanicked`] if a search worker panicked (the
/// panic is caught, every worker unwinds cleanly, and the run surfaces
/// the first panic instead of aborting or deadlocking).
pub fn mine_stealing_with(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: StealOptions,
) -> Result<MiningResult, TaxogramError> {
    mine_stealing_faulted(config, db, taxonomy, options, FaultInjection::default())
}

/// [`mine_stealing_with`] plus the deterministic fault/schedule injector.
/// Test-only plumbing (driven by `tsg-testkit`).
#[doc(hidden)]
pub fn mine_stealing_faulted(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: StealOptions,
    faults: FaultInjection,
) -> Result<MiningResult, TaxogramError> {
    Ok(mine_stealing_impl(config, db, taxonomy, options, faults, &Governor::disabled())?.result)
}

/// [`mine_stealing_with`] under governance. Admission happens in schedule
/// order (workers race), so the stop *point* is nondeterministic — but the
/// returned patterns are still a byte-identical prefix of the serial
/// output: the merge cuts the completed classes at the smallest unfinished
/// DFS code (rejected ∪ still-queued), and the canonical-order argument
/// guarantees every class below that cut completed.
///
/// # Errors
/// Same conditions as [`mine_stealing_with`]; early termination is not an
/// error.
pub fn mine_stealing_governed(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: StealOptions,
    govern: &GovernOptions,
) -> Result<MiningOutcome, TaxogramError> {
    mine_stealing_governed_faulted(config, db, taxonomy, options, FaultInjection::default(), govern)
}

/// [`mine_stealing_governed`] plus the fault injector (test plumbing).
#[doc(hidden)]
pub fn mine_stealing_governed_faulted(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: StealOptions,
    faults: FaultInjection,
    govern: &GovernOptions,
) -> Result<MiningOutcome, TaxogramError> {
    mine_stealing_impl(config, db, taxonomy, options, faults, &Governor::new(govern))
}

fn mine_stealing_impl(
    config: &TaxogramConfig,
    db: &GraphDatabase,
    taxonomy: &Taxonomy,
    options: StealOptions,
    faults: FaultInjection,
    governor: &Governor,
) -> Result<MiningOutcome, TaxogramError> {
    let prepared = match prepare(config, db, taxonomy)? {
        Prologue::Done(result) => {
            return Ok(MiningOutcome {
                result,
                termination: Termination::completed(0),
            })
        }
        Prologue::Ready(p) => p,
    };
    let threads = if options.clamp_to_cores {
        thread::available_parallelism()
            .map(|n| options.threads.min(n.get()))
            .unwrap_or(options.threads)
    } else {
        options.threads
    }
    .max(1);
    let parallel = ParallelOptions {
        threads,
        deque_capacity: if options.deque_capacity == 0 {
            ParallelOptions::default().deque_capacity
        } else {
            options.deque_capacity
        },
    };

    let emb_gauge = MemoryGauge::new();
    let oi_gauge = MemoryGauge::new();
    let run = mine_parallel_with_faults( // tsg-lint: allow(fault-hook) — clean path calls the same parameterized search with FaultInjection::none()
        &prepared.rel.dmg,
        GSpanConfig {
            min_support: prepared.min_support,
            max_edges: config.max_edges,
        },
        parallel,
        Some(&emb_gauge),
        |_| FusedSink {
            prepared: &prepared,
            config,
            emb_gauge: &emb_gauge,
            oi_gauge: &oi_gauge,
            governor,
            enum_scratch: EnumScratch::new(),
            oi_scratch: OiScratch::new(),
            outputs: Vec::new(),
            rejected: Vec::new(),
        },
        faults,
    )
    .map_err(|p| TaxogramError::WorkerPanicked { message: p.message })?;
    // Gauge balance: the scheduler releases every task reservation, even
    // for tasks stranded in deques by an early stop (`drain_leftovers`).
    debug_assert_eq!(emb_gauge.current(), 0, "task reservations leaked");

    // Reorder by canonical code: lexicographic DFS-code order *is* the
    // serial class order, so the merge sees outputs exactly as the
    // serial engine would produce them.
    let mut outputs: Vec<(DfsCode, ClassOutput)> = Vec::new();
    // Unfinished work: classes a sink refused admission plus tasks the
    // scheduler abandoned in its deques when the stop tripped.
    let mut unfinished: Vec<DfsCode> = run.frontier;
    for sink in run.sinks {
        outputs.extend(sink.outputs);
        unfinished.extend(sink.rejected);
    }
    outputs.sort_by(|(a, _), (b, _)| a.cmp_code(b));

    // Prefix cut: admission raced across workers, so classes *past* the
    // smallest unfinished code may have completed out of order. Discard
    // them — every class strictly below the cut is guaranteed complete
    // (had it been skipped, it or a pre-order ancestor would itself sit
    // in `unfinished` at a code ≤ its own, since a parent's DFS code is a
    // strict prefix of its descendants'). What remains is byte-identical
    // to the serial output's first `finished` classes.
    prefix_cut(&mut outputs, &mut unfinished, DfsCode::cmp_code);

    let finished = outputs.len();
    let frontier: Vec<String> = unfinished
        .iter()
        .take(crate::govern::FRONTIER_CAP)
        .map(|code| code.to_string())
        .collect();
    let termination = governor.finish(finished, unfinished.len(), frontier);
    let mut result = merge_outputs(outputs.into_iter().map(|(_, out)| out), finished, &prepared);
    result.stats.peak_oi_bytes = oi_gauge.peak();
    result.stats.peak_embedding_bytes = emb_gauge.peak();
    result.stats.steals = run.stats.steals;
    Ok(MiningOutcome {
        result,
        termination,
    })
}

/// Cuts `outputs` to the longest prefix strictly below the smallest
/// `unfinished` key (per `cmp`); everything at or past the cut moves into
/// `unfinished`. Both lists come back sorted. Pure and schedule-free —
/// the soundness of the cut (every kept class is complete) rests on the
/// prefix property of DFS codes argued at the call site, and the
/// model-checker contract tests exercise this helper directly against
/// racing admission orders.
#[doc(hidden)] // public only for the model-checker contract tests
pub fn prefix_cut<K, V>(
    outputs: &mut Vec<(K, V)>,
    unfinished: &mut Vec<K>,
    mut cmp: impl FnMut(&K, &K) -> std::cmp::Ordering,
) {
    unfinished.sort_by(&mut cmp);
    if let Some(cut) = unfinished.first() {
        let keep = outputs
            .iter()
            .take_while(|(key, _)| cmp(key, cut).is_lt())
            .count();
        unfinished.extend(outputs.drain(keep..).map(|(key, _)| key));
        unfinished.sort_by(&mut cmp);
    }
}

/// Per-worker sink fusing Steps 2–3 into the search loop: every
/// completed class is enumerated immediately, on the worker that mined
/// it, against worker-owned scratch arenas.
struct FusedSink<'a> {
    prepared: &'a Prepared,
    config: &'a TaxogramConfig,
    emb_gauge: &'a MemoryGauge,
    oi_gauge: &'a MemoryGauge,
    governor: &'a Governor,
    enum_scratch: EnumScratch,
    oi_scratch: OiScratch,
    outputs: Vec<(DfsCode, ClassOutput)>,
    rejected: Vec<DfsCode>,
}

impl PatternSink for FusedSink<'_> {
    fn report(&mut self, class: &MinedPattern<'_>) -> Grow {
        // Admission gate (schedule order): tracked residency is the sum
        // of the cross-worker embedding and index high-water marks.
        if !self
            .governor
            .admit_class(self.emb_gauge.peak() + self.oi_gauge.peak())
        {
            self.rejected.push(class.code.clone());
            return Grow::Stop;
        }
        Grow::Continue
    }

    fn complete(&mut self, class: ClassHandoff) {
        let out = enumerate_class(
            &class.graph,
            &class.embeddings,
            self.prepared,
            self.config,
            Some(self.oi_gauge),
            &mut self.enum_scratch,
            &mut self.oi_scratch,
        );
        self.governor.add_patterns(out.patterns.len());
        self.outputs.push((class.code, out));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxogramConfig;
    use tsg_taxonomy::samples;

    fn serial_and_stealing(threads: usize, deque_capacity: usize) -> (MiningResult, MiningResult) {
        let (c, t) = samples::sample_taxonomy();
        let db = samples::figure_1_4_database(&c);
        let cfg = TaxogramConfig::with_threshold(1.0 / 3.0);
        let serial = crate::Taxogram::new(cfg).mine(&db, &t).unwrap();
        let stealing = mine_stealing_with(
            &cfg,
            &db,
            &t,
            StealOptions {
                threads,
                deque_capacity,
                clamp_to_cores: false,
            },
        )
        .unwrap();
        (serial, stealing)
    }

    fn assert_identical(serial: &MiningResult, stealing: &MiningResult) {
        assert_eq!(serial.patterns.len(), stealing.patterns.len());
        for (a, b) in serial.patterns.iter().zip(&stealing.patterns) {
            assert_eq!(a.graph.labels(), b.graph.labels(), "order preserved");
            assert_eq!(a.graph.edges(), b.graph.edges());
            assert_eq!(a.support_count, b.support_count);
        }
        assert_eq!(serial.stats.classes, stealing.stats.classes);
        assert_eq!(
            serial.stats.enumeration.emitted,
            stealing.stats.enumeration.emitted
        );
        assert_eq!(
            serial.stats.enumeration.intersections,
            stealing.stats.enumeration.intersections
        );
        assert_eq!(serial.stats.oi_updates, stealing.stats.oi_updates);
    }

    #[test]
    fn stealing_matches_serial_at_every_thread_count() {
        for threads in [1, 2, 4, 8] {
            let (serial, stealing) = serial_and_stealing(threads, 0);
            assert_identical(&serial, &stealing);
        }
    }

    #[test]
    fn forced_steals_stay_correct() {
        // Deque capacity 1: nearly every spawned task overflows to the
        // injector, so siblings constantly run on different workers.
        for threads in [2, 4, 8] {
            let (serial, stealing) = serial_and_stealing(threads, 1);
            assert_identical(&serial, &stealing);
        }
    }

    #[test]
    fn stealing_reports_memory_gauges() {
        let (_, stealing) = serial_and_stealing(4, 0);
        assert!(stealing.stats.peak_oi_bytes > 0);
        assert!(stealing.stats.peak_embedding_bytes > 0);
    }

    #[test]
    fn stealing_handles_empty_database() {
        let (_, t) = samples::sample_taxonomy();
        let cfg = TaxogramConfig::with_threshold(0.5);
        let r = mine_stealing(&cfg, &GraphDatabase::new(), &t, 4).unwrap();
        assert!(r.patterns.is_empty());
    }

    #[test]
    fn stealing_rejects_bad_threshold() {
        let (_, t) = samples::sample_taxonomy();
        let cfg = TaxogramConfig::with_threshold(f64::NAN);
        assert!(matches!(
            mine_stealing(&cfg, &GraphDatabase::new(), &t, 4),
            Err(TaxogramError::InvalidThreshold { .. })
        ));
    }
}
