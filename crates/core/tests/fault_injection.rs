//! Fault-injection matrix for the parallel engines: injected worker
//! panics, simulated receiver drops, seeded forced-steal schedules, and
//! capacity sweeps — all deterministic, all at the acceptance matrix's
//! thread counts (1/2/4) with deque/channel capacity 1 (maximum
//! contention).
//!
//! The invariant under every fault: the run *returns* — an
//! `Err(WorkerPanicked)` when a panic was injected and fired, a
//! byte-identical `Ok` otherwise. No abort, no deadlock, no poisoned-lock
//! `.expect` cascade. Every test here would hang or abort the process on
//! the pre-panic-safety engines.

use taxogram_core::{MiningResult, Taxogram, TaxogramConfig, TaxogramError};
use tsg_testkit::fault::{FaultPlan, FAULT_CAPACITIES, FAULT_THREADS};
use tsg_testkit::gen::{case, Case};
use tsg_testkit::metamorphic::{assert_engines_identical, MAX_EDGES};

/// Seeds chosen so the suite sees several distinct input shapes; each is
/// deterministic via `tsg_testkit::case(seed)`.
const CASE_SEEDS: [u64; 4] = [3, 17, 101, 0xbeef];

fn serial(c: &Case) -> MiningResult {
    Taxogram::new(TaxogramConfig::with_threshold(c.theta).max_edges(MAX_EDGES))
        .mine(&c.db, &c.taxonomy)
        .unwrap()
}

/// Panic injected into the `n`th search task of the work-stealing
/// engine, for every `n` in a prefix sweep: either the task exists and
/// the run must return the panic as an error, or it does not and the
/// run must be byte-identical to serial. Threads 1/2/4, capacity 1.
#[test]
fn stealing_panic_at_every_early_task_returns_error() {
    for &seed in &CASE_SEEDS {
        let c = case(seed);
        let want = serial(&c);
        for &threads in &FAULT_THREADS {
            for n in 1..=8usize {
                let plan = FaultPlan::shape(threads, 1).panic_at(n);
                match plan.run_stealing(&c) {
                    Err(TaxogramError::WorkerPanicked { message }) => {
                        assert!(
                            message.contains("injected fault"),
                            "seed {seed:#x} t={threads} n={n}: unexpected panic: {message}"
                        );
                    }
                    Ok(got) => {
                        // The injection point lies past the task count;
                        // the run must be untouched.
                        assert_engines_identical(&want, &got).unwrap_or_else(|msg| {
                            panic!("seed {seed:#x} t={threads} n={n}: {msg}")
                        });
                    }
                    Err(e) => panic!("seed {seed:#x} t={threads} n={n}: wrong error {e}"),
                }
            }
        }
    }
}

/// Same sweep for the pipelined engine's per-class injection. The
/// pipeline needs ≥ 2 threads for the channel to exist, so the matrix
/// starts at 2.
#[test]
fn pipelined_panic_at_every_early_class_returns_error() {
    for &seed in &CASE_SEEDS {
        let c = case(seed);
        let want = serial(&c);
        for threads in [2usize, 3, 4] {
            for n in 1..=6usize {
                let plan = FaultPlan::shape(threads, 1).panic_at(n);
                match plan.run_pipelined(&c) {
                    Err(TaxogramError::WorkerPanicked { message }) => {
                        assert!(
                            message.contains("injected fault"),
                            "seed {seed:#x} t={threads} n={n}: unexpected panic: {message}"
                        );
                    }
                    Ok(got) => {
                        assert_engines_identical(&want, &got).unwrap_or_else(|msg| {
                            panic!("seed {seed:#x} t={threads} n={n}: {msg}")
                        });
                    }
                    Err(e) => panic!("seed {seed:#x} t={threads} n={n}: wrong error {e}"),
                }
            }
        }
    }
}

/// A worker that stops receiving (simulated dropped `PipeSink` receiver)
/// must not lose classes: the producer's post-close drain rescues them
/// and the output stays byte-identical.
#[test]
fn pipelined_receiver_drop_loses_nothing() {
    for &seed in &CASE_SEEDS {
        let c = case(seed);
        let want = serial(&c);
        for threads in [2usize, 4] {
            for after in [1usize, 2, 3] {
                let plan = FaultPlan::shape(threads, 1).drop_receiver_after(after);
                let got = plan.run_pipelined(&c).unwrap_or_else(|e| {
                    panic!("seed {seed:#x} t={threads} drop-after={after}: {e}")
                });
                assert_engines_identical(&want, &got).unwrap_or_else(|msg| {
                    panic!("seed {seed:#x} t={threads} drop-after={after}: {msg}")
                });
            }
        }
    }
}

/// Seeded forced-steal schedules perturb task placement as hard as the
/// scheduler allows; output must not move by a byte.
#[test]
fn forced_steal_schedules_preserve_byte_identity() {
    for &seed in &CASE_SEEDS[..2] {
        let c = case(seed);
        let want = serial(&c);
        for &threads in &FAULT_THREADS {
            for schedule in [1u64, 7, 42, 0xdead_beef] {
                let plan = FaultPlan::shape(threads, 1).steal_schedule(schedule);
                let got = plan.run_stealing(&c).unwrap();
                assert_engines_identical(&want, &got).unwrap_or_else(|msg| {
                    panic!("seed {seed:#x} t={threads} schedule={schedule:#x}: {msg}")
                });
            }
        }
    }
}

/// Bounded channel/deque capacity sweep: every (threads, capacity) cell
/// of the clean matrix reproduces serial output exactly.
#[test]
fn capacity_matrix_is_clean() {
    for &seed in &CASE_SEEDS[..2] {
        let c = case(seed);
        let want = serial(&c);
        for &threads in &FAULT_THREADS {
            for &capacity in &FAULT_CAPACITIES {
                let plan = FaultPlan::shape(threads, capacity);
                let got = plan.run_stealing(&c).unwrap();
                assert_engines_identical(&want, &got).unwrap();
                if threads >= 2 {
                    let got = plan.run_pipelined(&c).unwrap();
                    assert_engines_identical(&want, &got).unwrap();
                }
            }
        }
    }
}

/// Panic + forced steals + capacity 1 together: the compound worst case
/// still terminates with a clean error or untouched output.
#[test]
fn compound_faults_terminate_cleanly() {
    let c = case(CASE_SEEDS[0]);
    let want = serial(&c);
    for &threads in &FAULT_THREADS {
        for n in [1usize, 3, 30] {
            let plan = FaultPlan::shape(threads, 1).panic_at(n).steal_schedule(7);
            match plan.run_stealing(&c) {
                Err(TaxogramError::WorkerPanicked { .. }) => {}
                Ok(got) => assert_engines_identical(&want, &got).unwrap(),
                Err(e) => panic!("t={threads} n={n}: wrong error {e}"),
            }
        }
    }
}
