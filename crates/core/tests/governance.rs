//! Governance acceptance matrix: deterministic cancellation triggers and
//! budget ceilings across all four engines, at the acceptance thread
//! counts (1/2/4) with capacity 1 (maximum contention).
//!
//! The invariant under every stop: the run returns `Ok(MiningOutcome)`
//! whose patterns are a **byte-identical completed prefix** of the full
//! serial output — no lost, duplicated, or torn classes — and whose
//! `Termination` is truthful (reason, finished/abandoned arithmetic,
//! frontier only on early stops). The serially-admitting engines
//! (serial, barrier, pipelined) additionally stop at the *exact* Nth
//! class; the work-stealing engine admits in schedule order, so only the
//! prefix contract and the reason are schedule-independent.

use std::time::Duration;
use taxogram_core::{
    mine_parallel_governed, mine_sharded_governed, Budget, CancelToken, GovernOptions,
    MiningOutcome, MiningResult, ShardOptions, ShardedOutcome, Taxogram, TaxogramConfig,
    TerminationReason,
};
use tsg_testkit::fault::{assert_completed_prefix, FaultPlan, FAULT_THREADS};
use tsg_testkit::gen::{case, Case};
use tsg_testkit::metamorphic::{assert_engines_identical, MAX_EDGES};

/// Same seeds as the fault-injection matrix: several distinct shapes,
/// each deterministic via `tsg_testkit::case(seed)`.
const CASE_SEEDS: [u64; 4] = [3, 17, 101, 0xbeef];

fn config(c: &Case) -> TaxogramConfig {
    TaxogramConfig::with_threshold(c.theta).max_edges(MAX_EDGES)
}

fn serial(c: &Case) -> MiningResult {
    Taxogram::new(config(c)).mine(&c.db, &c.taxonomy).unwrap()
}

/// Cancel at the Nth class, swept over N, threads 1/2/4, capacity 1.
/// Serial, barrier, and pipelined admit in serial class order, so each
/// must finish *exactly* min(N, total) classes and emit the
/// byte-identical prefix; stealing must emit a byte-identical prefix of
/// at most N classes with a truthful reason.
#[test]
fn cancel_at_nth_class_yields_exact_prefix() {
    for &seed in &CASE_SEEDS {
        let c = case(seed);
        let full = serial(&c);
        let total = full.stats.classes;
        for &threads in &FAULT_THREADS {
            for n in [0usize, 1, 2, 3, 5, 8] {
                let plan = FaultPlan::shape(threads, 1).cancel_after(n);
                let want_finished = n.min(total);
                let want_reason = if n < total {
                    TerminationReason::Cancelled
                } else {
                    TerminationReason::Completed
                };
                let tag = |engine: &str| format!("seed {seed:#x} {engine} t={threads} n={n}");

                for (engine, outcome) in [
                    ("serial", plan.run_serial_governed(&c)),
                    ("barrier", plan.run_barrier_governed(&c)),
                    ("pipelined", plan.run_pipelined_governed(&c)),
                ] {
                    let outcome = outcome.unwrap_or_else(|e| panic!("{}: {e}", tag(engine)));
                    assert_completed_prefix(&outcome, &full)
                        .unwrap_or_else(|msg| panic!("{}: {msg}", tag(engine)));
                    assert_eq!(
                        outcome.termination.classes_finished,
                        want_finished,
                        "{}: wrong class count",
                        tag(engine)
                    );
                    assert_eq!(
                        outcome.termination.reason,
                        want_reason,
                        "{}: wrong reason",
                        tag(engine)
                    );
                }

                let outcome = plan
                    .run_stealing_governed(&c)
                    .unwrap_or_else(|e| panic!("{}: {e}", tag("stealing")));
                assert_completed_prefix(&outcome, &full)
                    .unwrap_or_else(|msg| panic!("{}: {msg}", tag("stealing")));
                assert!(
                    outcome.termination.classes_finished <= want_finished.max(n.min(total)),
                    "{}: finished more classes than were admitted",
                    tag("stealing")
                );
                if n >= total {
                    assert!(outcome.termination.is_complete(), "{}", tag("stealing"));
                } else {
                    assert_eq!(
                        outcome.termination.reason,
                        TerminationReason::Cancelled,
                        "{}",
                        tag("stealing")
                    );
                }
            }
        }
    }
}

/// The same deterministic stop point must yield the same bytes on every
/// run and at every thread count — partial results are reproducible.
#[test]
fn partial_results_are_schedule_independent() {
    let c = case(CASE_SEEDS[1]);
    let full = serial(&c);
    for n in [1usize, 3] {
        let want = FaultPlan::shape(1, 1)
            .cancel_after(n)
            .run_serial_governed(&c)
            .unwrap();
        for &threads in &FAULT_THREADS {
            let plan = FaultPlan::shape(threads, 1).cancel_after(n);
            for outcome in [
                plan.run_barrier_governed(&c).unwrap(),
                plan.run_pipelined_governed(&c).unwrap(),
            ] {
                assert_engines_identical(&want.result, &outcome.result)
                    .unwrap_or_else(|msg| panic!("t={threads} n={n}: {msg}"));
            }
            // Stealing's stop *depth* is schedule-dependent (admission
            // races the workers), so two runs may legally cut at
            // different lengths — but both must be completed prefixes
            // of the same serial stream, which makes the shorter one a
            // byte-prefix of the longer.
            let a = plan.run_stealing_governed(&c).unwrap();
            let b = plan.run_stealing_governed(&c).unwrap();
            assert_completed_prefix(&a, &full)
                .unwrap_or_else(|msg| panic!("stealing t={threads} n={n}: {msg}"));
            assert_completed_prefix(&b, &full)
                .unwrap_or_else(|msg| panic!("stealing t={threads} n={n}: {msg}"));
        }
    }
}

/// Class-count budget: same exactness contract as cancellation, but the
/// reason must name the ceiling.
#[test]
fn class_budget_stops_exactly() {
    // Seed 23 mines 5 classes (8 patterns) at its θ — enough room for
    // the ceiling to land strictly inside the class stream.
    let c = case(23);
    let full = serial(&c);
    let total = full.stats.classes;
    assert!(total >= 2, "case too small to exercise the budget");
    for &threads in &FAULT_THREADS {
        for n in [1usize, 2] {
            let plan = FaultPlan::shape(threads, 1).budget_classes(n);
            for outcome in [
                plan.run_serial_governed(&c).unwrap(),
                plan.run_barrier_governed(&c).unwrap(),
                plan.run_pipelined_governed(&c).unwrap(),
            ] {
                assert_completed_prefix(&outcome, &full).unwrap();
                assert_eq!(outcome.termination.classes_finished, n);
                assert_eq!(
                    outcome.termination.reason,
                    TerminationReason::BudgetExceeded {
                        which: taxogram_core::BudgetKind::Classes
                    }
                );
                assert!(!outcome.termination.frontier.is_empty());
            }
            let outcome = plan.run_stealing_governed(&c).unwrap();
            assert_completed_prefix(&outcome, &full).unwrap();
            assert!(outcome.termination.classes_finished <= n);
        }
    }
}

/// Pattern-count budget on the serial engine: admission stops at the
/// first class after the ceiling is crossed, so the final count may
/// overshoot by at most one class's patterns and never undershoots a
/// reachable ceiling.
#[test]
fn pattern_budget_stops_after_crossing_class() {
    let mut tripped = 0;
    for &seed in &CASE_SEEDS {
        let c = case(seed);
        let full = serial(&c);
        let outcome = FaultPlan::shape(1, 1)
            .budget_patterns(1)
            .run_serial_governed(&c)
            .unwrap();
        assert_completed_prefix(&outcome, &full).unwrap();
        if outcome.termination.is_complete() {
            // Every pattern came from the final admitted class, so no
            // admission point saw the crossed ceiling; legal, but only
            // if the prefix really is everything (checked above).
            continue;
        }
        tripped += 1;
        assert!(
            !outcome.result.patterns.is_empty(),
            "seed {seed:#x}: the crossing class itself completes"
        );
        assert!(outcome.result.patterns.len() < full.patterns.len());
        assert_eq!(
            outcome.termination.reason,
            TerminationReason::BudgetExceeded {
                which: taxogram_core::BudgetKind::Patterns
            },
            "seed {seed:#x}"
        );
    }
    assert!(tripped >= 1, "no seed ever tripped the pattern budget");
}

/// Pattern-count budget on the parallel engines. The stop point is
/// schedule-dependent (the ceiling is observed by racing workers), but
/// the contract is not: a byte-identical completed prefix, and a
/// truthful `Patterns` reason whenever the stream was actually cut. The
/// barrier engine is the interesting one — it admits every class before
/// a single pattern exists, so the ceiling can only bind at its Step 3
/// class-boundary poll.
#[test]
fn pattern_budget_binds_on_every_parallel_engine() {
    let c = case(23); // 5 classes / 8 patterns: ceiling 1 cuts early
    let full = serial(&c);
    for &threads in &FAULT_THREADS {
        let plan = FaultPlan::shape(threads, 1).budget_patterns(1);
        for (engine, outcome) in [
            ("barrier", plan.run_barrier_governed(&c)),
            ("pipelined", plan.run_pipelined_governed(&c)),
            ("stealing", plan.run_stealing_governed(&c)),
        ] {
            let outcome = outcome.unwrap();
            let tag = format!("{engine} t={threads}");
            assert_completed_prefix(&outcome, &full)
                .unwrap_or_else(|msg| panic!("{tag}: {msg}"));
            // With >1 worker, admission can legally outrun pattern
            // accumulation and complete the run; the barrier engine
            // cannot (its last Step 3 claim requires a poll after some
            // class already finished), and one worker is deterministic
            // on every engine. Wherever a cut happened — or had to —
            // the reason must name the pattern ceiling.
            let must_cut = threads == 1 || engine == "barrier";
            if must_cut {
                assert!(
                    outcome.result.patterns.len() < full.patterns.len(),
                    "{tag}: ceiling 1 of {} patterns must cut the stream",
                    full.patterns.len()
                );
            }
            if !outcome.termination.is_complete() {
                assert_eq!(
                    outcome.termination.reason,
                    TerminationReason::BudgetExceeded {
                        which: taxogram_core::BudgetKind::Patterns
                    },
                    "{tag}"
                );
            } else {
                assert!(!must_cut, "{tag}: complete run where a cut was mandatory");
            }
        }
    }
}

/// A token cancelled before the run starts yields zero classes, zero
/// patterns, and a `Cancelled` report — on every engine.
#[test]
fn pre_cancelled_token_yields_empty_cancelled_outcome() {
    let c = case(CASE_SEEDS[0]);
    let full = serial(&c);
    let token = CancelToken::new();
    token.cancel();
    let govern = GovernOptions::with_cancel(token);
    let outcomes = [
        Taxogram::new(config(&c))
            .mine_governed(&c.db, &c.taxonomy, &govern)
            .unwrap(),
        mine_parallel_governed(&config(&c), &c.db, &c.taxonomy, 2, &govern).unwrap(),
        taxogram_core::mine_pipelined_governed(
            &config(&c),
            &c.db,
            &c.taxonomy,
            taxogram_core::PipelineOptions {
                threads: 2,
                channel_capacity: 1,
                clamp_to_cores: false,
            },
            &govern,
        )
        .unwrap(),
        taxogram_core::mine_stealing_governed(
            &config(&c),
            &c.db,
            &c.taxonomy,
            taxogram_core::StealOptions {
                threads: 2,
                deque_capacity: 1,
                clamp_to_cores: false,
            },
            &govern,
        )
        .unwrap(),
    ];
    for outcome in outcomes {
        assert!(outcome.result.patterns.is_empty());
        assert_eq!(outcome.termination.classes_finished, 0);
        assert_eq!(outcome.termination.reason, TerminationReason::Cancelled);
        assert_completed_prefix(&outcome, &full).unwrap();
    }
}

/// An already-expired deadline stops every engine before any class.
#[test]
fn zero_deadline_stops_immediately() {
    let c = case(CASE_SEEDS[0]);
    let govern = GovernOptions::with_budget(Budget::unlimited().deadline(Duration::ZERO));
    let serial_outcome = Taxogram::new(config(&c))
        .mine_governed(&c.db, &c.taxonomy, &govern)
        .unwrap();
    assert!(serial_outcome.result.patterns.is_empty());
    assert_eq!(
        serial_outcome.termination.reason,
        TerminationReason::DeadlineExceeded
    );
    let stealing = taxogram_core::mine_stealing_governed(
        &config(&c),
        &c.db,
        &c.taxonomy,
        taxogram_core::StealOptions {
            threads: 4,
            deque_capacity: 1,
            clamp_to_cores: false,
        },
        &govern,
    )
    .unwrap();
    assert!(stealing.result.patterns.is_empty());
    assert_eq!(
        stealing.termination.reason,
        TerminationReason::DeadlineExceeded
    );
}

/// A one-byte memory ceiling trips as soon as the tracked peak becomes
/// visible at an admission point; the partial output is still a clean
/// prefix.
#[test]
fn tiny_memory_budget_trips_with_clean_prefix() {
    let c = case(23); // 5 classes: the ceiling trips mid-stream
    let full = serial(&c);
    assert!(full.stats.classes >= 2, "case too small to trip the budget");
    let govern = GovernOptions::with_budget(Budget::unlimited().max_peak_bytes(1));
    let outcome = Taxogram::new(config(&c))
        .mine_governed(&c.db, &c.taxonomy, &govern)
        .unwrap();
    assert_completed_prefix(&outcome, &full).unwrap();
    assert_eq!(
        outcome.termination.reason,
        TerminationReason::BudgetExceeded {
            which: taxogram_core::BudgetKind::Memory
        }
    );
    assert!(outcome.termination.classes_finished < full.stats.classes);
}

/// Governance with an unlimited budget and an untouched token is
/// invisible: every engine produces the byte-identical complete result
/// and reports `Completed` with an empty frontier.
#[test]
fn unlimited_governance_is_invisible() {
    for &seed in &CASE_SEEDS[..2] {
        let c = case(seed);
        let full = serial(&c);
        for &threads in &FAULT_THREADS {
            let plan = FaultPlan::shape(threads, 1);
            for (engine, outcome) in [
                ("serial", plan.run_serial_governed(&c)),
                ("barrier", plan.run_barrier_governed(&c)),
                ("pipelined", plan.run_pipelined_governed(&c)),
                ("stealing", plan.run_stealing_governed(&c)),
            ] {
                let outcome = outcome.unwrap();
                assert!(
                    outcome.termination.is_complete(),
                    "seed {seed:#x} {engine} t={threads}: {:?}",
                    outcome.termination
                );
                assert_eq!(outcome.termination.classes_abandoned, 0);
                assert!(outcome.termination.frontier.is_empty());
                assert_engines_identical(&full, &outcome.result)
                    .unwrap_or_else(|msg| panic!("seed {seed:#x} {engine} t={threads}: {msg}"));
            }
        }
    }
}

/// Views a sharded outcome through the common prefix-contract checker.
fn as_outcome(sharded: ShardedOutcome) -> MiningOutcome {
    MiningOutcome {
        result: sharded.result,
        termination: sharded.termination,
    }
}

/// Cancellation tripping **mid-Pass-2b** of the sharded miner: like the
/// serially-admitting engines, it admits one class at a time in serial
/// code order, so a cancel at the Nth admission finishes *exactly*
/// min(N, total) classes and emits the byte-identical serial prefix —
/// at every shard and thread count.
#[test]
fn sharded_cancel_mid_pass2_yields_exact_prefix() {
    for &seed in &CASE_SEEDS[..2] {
        let c = case(seed);
        let full = serial(&c);
        let total = full.stats.classes;
        for &threads in &FAULT_THREADS {
            for shards in [2usize, 3] {
                for n in [0usize, 1, 2, 5] {
                    let plan = FaultPlan::shape(threads, 1).cancel_after(n);
                    let outcome = as_outcome(plan.run_sharded_governed(&c, shards).unwrap());
                    let tag = format!("seed {seed:#x} P={shards} t={threads} n={n}");
                    assert_completed_prefix(&outcome, &full)
                        .unwrap_or_else(|msg| panic!("{tag}: {msg}"));
                    assert_eq!(
                        outcome.termination.classes_finished,
                        n.min(total),
                        "{tag}: wrong class count"
                    );
                    let want_reason = if n < total {
                        TerminationReason::Cancelled
                    } else {
                        TerminationReason::Completed
                    };
                    assert_eq!(outcome.termination.reason, want_reason, "{tag}");
                    if n < total {
                        assert_eq!(
                            outcome.termination.classes_abandoned,
                            total - n,
                            "{tag}: abandoned arithmetic"
                        );
                        assert!(!outcome.termination.frontier.is_empty(), "{tag}");
                    }
                }
            }
        }
    }
}

/// Budget ceilings binding mid-Pass-2b: the class ceiling stops at
/// exactly N finished classes with the ceiling named in the reason; the
/// pattern ceiling stops at the first admission after crossing.
#[test]
fn sharded_budgets_bind_mid_pass2() {
    let c = case(23); // 5 classes / 8 patterns: ceilings land mid-stream
    let full = serial(&c);
    assert!(full.stats.classes >= 2);
    for &threads in &FAULT_THREADS {
        for n in [1usize, 2] {
            let plan = FaultPlan::shape(threads, 1).budget_classes(n);
            let outcome = as_outcome(plan.run_sharded_governed(&c, 2).unwrap());
            assert_completed_prefix(&outcome, &full).unwrap();
            assert_eq!(outcome.termination.classes_finished, n);
            assert_eq!(
                outcome.termination.reason,
                TerminationReason::BudgetExceeded {
                    which: taxogram_core::BudgetKind::Classes
                }
            );
            assert!(!outcome.termination.frontier.is_empty());
        }
        let plan = FaultPlan::shape(threads, 1).budget_patterns(1);
        let outcome = as_outcome(plan.run_sharded_governed(&c, 2).unwrap());
        assert_completed_prefix(&outcome, &full).unwrap();
        assert!(outcome.result.patterns.len() < full.patterns.len());
        assert_eq!(
            outcome.termination.reason,
            TerminationReason::BudgetExceeded {
                which: taxogram_core::BudgetKind::Patterns
            }
        );
    }
}

/// Governance tripping **mid-Pass-1/2a** of the sharded miner (a
/// pre-cancelled token or an expired deadline is observed at the first
/// shard claim): no class ever finishes, the result is empty, and the
/// termination truthfully reports zero finished, at least one abandoned,
/// and the exact reason — never a silently short "complete" result.
#[test]
fn sharded_trips_mid_pass1_truthfully() {
    let c = case(CASE_SEEDS[0]);
    let full = serial(&c);
    assert!(full.stats.classes >= 1, "case too small to abandon work");
    for &threads in &FAULT_THREADS {
        let opts = ShardOptions {
            shards: 2,
            threads,
            ..ShardOptions::default()
        };

        let token = CancelToken::new();
        token.cancel();
        let cancelled = mine_sharded_governed(
            &config(&c),
            &c.db,
            &c.taxonomy,
            &opts,
            &GovernOptions::with_cancel(token),
        )
        .unwrap();
        assert!(cancelled.result.patterns.is_empty(), "t={threads}");
        assert_eq!(cancelled.termination.classes_finished, 0);
        assert!(cancelled.termination.classes_abandoned >= 1);
        assert_eq!(cancelled.termination.reason, TerminationReason::Cancelled);
        assert_completed_prefix(&as_outcome(cancelled), &full).unwrap();

        let expired = mine_sharded_governed(
            &config(&c),
            &c.db,
            &c.taxonomy,
            &opts,
            &GovernOptions::with_budget(Budget::unlimited().deadline(Duration::ZERO)),
        )
        .unwrap();
        assert!(expired.result.patterns.is_empty(), "t={threads}");
        assert_eq!(expired.termination.classes_finished, 0);
        assert!(expired.termination.classes_abandoned >= 1);
        assert_eq!(
            expired.termination.reason,
            TerminationReason::DeadlineExceeded
        );
        assert_completed_prefix(&as_outcome(expired), &full).unwrap();
    }
}

/// Unlimited governance is invisible on the sharded miner too: complete,
/// nothing abandoned, byte-identical to serial.
#[test]
fn sharded_unlimited_governance_is_invisible() {
    for &seed in &CASE_SEEDS[..2] {
        let c = case(seed);
        let full = serial(&c);
        for &threads in &FAULT_THREADS {
            let outcome = FaultPlan::shape(threads, 1)
                .run_sharded_governed(&c, 3)
                .unwrap();
            assert!(outcome.termination.is_complete());
            assert_eq!(outcome.termination.classes_abandoned, 0);
            assert!(outcome.termination.frontier.is_empty());
            assert_engines_identical(&full, &outcome.result)
                .unwrap_or_else(|msg| panic!("seed {seed:#x} t={threads}: {msg}"));
        }
    }
}

/// Governance composed with injected faults: a cancel trigger and a
/// forced-steal schedule together still yield a clean prefix or a clean
/// panic error — never a hang, a torn class, or a silent loss.
#[test]
fn governance_composes_with_fault_injection() {
    let c = case(CASE_SEEDS[3]);
    let full = serial(&c);
    for &threads in &FAULT_THREADS {
        for n in [1usize, 3] {
            let plan = FaultPlan::shape(threads, 1)
                .cancel_after(n)
                .steal_schedule(7);
            let outcome = plan.run_stealing_governed(&c).unwrap();
            assert_completed_prefix(&outcome, &full).unwrap();
        }
    }
}
