//! The full metamorphic sweep: every relation in
//! [`tsg_testkit::metamorphic`] against every engine (serial, barrier,
//! pipelined, work-stealing) on seeded random inputs.
//!
//! Case count defaults to 256 per relation (the acceptance floor) and
//! honors `PROPTEST_CASES`; all cases derive from the fixed base seed
//! below, so a failure message's seed reproduces standalone via
//! `tsg_testkit::case(seed)`. One `#[test]` per relation keeps the
//! relations independently reportable and lets the harness run them on
//! parallel test threads.

use tsg_testkit::gen::{case_count, cases, Case};
use tsg_testkit::metamorphic::{
    self, Engine, ENGINES,
};

/// Base seed for every sweep in this file. Arbitrary but fixed: results
/// must be reproducible across hosts and runs.
const BASE_SEED: u64 = 0x7a78_6f67_7261_6d01;

fn sweep(relation: &str, mut check: impl FnMut(&Case) -> Result<(), String>) {
    let n = case_count(256);
    for c in cases(BASE_SEED, n) {
        if let Err(msg) = check(&c) {
            panic!("relation {relation} violated: {msg}");
        }
    }
}

#[test]
fn engines_agree_byte_identically() {
    sweep("engines-agree", metamorphic::engines_agree);
}

#[test]
fn flattened_taxonomy_reduces_to_plain_gspan() {
    sweep("flatten", |c| {
        for &e in &ENGINES {
            metamorphic::flattening_matches_gspan(c, e)?;
        }
        Ok(())
    });
}

#[test]
fn threshold_monotonicity() {
    sweep("θ-monotone", |c| {
        for &e in &ENGINES {
            metamorphic::theta_monotonicity(c, e)?;
        }
        Ok(())
    });
}

#[test]
fn database_duplication_doubles_supports_only() {
    sweep("duplication", |c| {
        for &e in &ENGINES {
            metamorphic::duplication_invariance(c, e)?;
        }
        Ok(())
    });
}

#[test]
fn isolated_vertices_are_invisible() {
    sweep("isolated-vertex", |c| {
        for &e in &ENGINES {
            metamorphic::isolated_vertex_invariance(c, e)?;
        }
        Ok(())
    });
}

#[test]
fn consistent_label_permutation_is_equivariant() {
    sweep("permutation", |c| {
        for &e in &ENGINES {
            metamorphic::label_permutation_equivariance(c, e)?;
        }
        Ok(())
    });
}

#[test]
fn specialization_never_gains_support() {
    sweep("anti-monotone", |c| {
        for &e in &ENGINES {
            metamorphic::specialization_anti_monotone(c, e)?;
        }
        Ok(())
    });
}

#[test]
fn output_matches_brute_force_reference() {
    // Includes over-generalization absence: the reference miner applies
    // the minimality filter from the problem definition directly.
    sweep("reference", |c| {
        let want = taxogram_core::reference::reference_mine(
            &c.db,
            &c.taxonomy,
            c.theta,
            metamorphic::MAX_EDGES,
        );
        for &e in &ENGINES {
            metamorphic::matches_reference(c, e, Some(&want))?;
        }
        Ok(())
    });
}

#[test]
fn shard_count_never_changes_the_output() {
    sweep("shard-invariance", metamorphic::shard_count_invariance);
}

#[test]
fn sharding_survives_the_locally_overgeneralized_corner() {
    // The corner that breaks naive partition merging (documented on
    // `son::mine_partitioned`): with taxonomy 0 > 1 and partitions
    // {1—1} and {0—0}, each half mined alone at θ=1.0 reports a
    // *different* most-general pattern — the first shard never sees the
    // label-0 graph, so 1—1 is locally minimal there. The sharded miner
    // must still converge on the single global answer 0—0 with support
    // 2, because Pass 2b re-derives class membership on global data.
    use taxogram_core::{mine_sharded, ShardOptions, TaxogramConfig};
    use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};

    let taxonomy = tsg_taxonomy::taxonomy_from_edges(2, [(1, 0)]).unwrap();
    let mut specific = LabeledGraph::with_nodes([NodeLabel(1), NodeLabel(1)]);
    specific.add_edge(0, 1, EdgeLabel(0)).unwrap();
    let mut general = LabeledGraph::with_nodes([NodeLabel(0), NodeLabel(0)]);
    general.add_edge(0, 1, EdgeLabel(0)).unwrap();
    let db = GraphDatabase::from_graphs(vec![specific, general]);
    let cfg = TaxogramConfig::with_threshold(1.0);

    for threads in [1, 2] {
        let opts = ShardOptions {
            shards: 2,
            threads,
            ..ShardOptions::default()
        };
        let out = mine_sharded(&cfg, &db, &taxonomy, &opts).unwrap();
        assert!(out.termination.is_complete());
        assert_eq!(out.shard_stats.shards, 2);
        assert_eq!(
            out.result.patterns.len(),
            1,
            "exactly the global most-general pattern must survive"
        );
        let p = &out.result.patterns[0];
        assert_eq!(p.graph.labels(), [NodeLabel(0), NodeLabel(0)]);
        assert_eq!(p.support_count, 2);
    }
}

#[test]
fn serial_engine_satisfies_every_relation_jointly() {
    // The per-relation sweeps above share mining work per relation; this
    // sweep runs the whole suite per case on a smaller budget to catch
    // inter-relation interference (e.g. a relation mutating its case).
    let n = case_count(256) / 8;
    for c in cases(BASE_SEED ^ 0xff, n.max(16)) {
        if let Err(msg) = metamorphic::run_suite(&c, &[Engine::Serial]) {
            panic!("joint suite violated: {msg}");
        }
    }
}
