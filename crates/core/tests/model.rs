//! Model-checked concurrency contracts for the mining engines.
//!
//! Compiled only under `RUSTFLAGS='--cfg tsg_model'` (the `model` CI
//! stage): the `tsg-check` runtime replaces the `taxogram_core::sync`
//! facade, runs every closure under a deterministic scheduler that
//! explores thread interleavings (bounded-exhaustive DFS within a
//! preemption bound, seeded-random beyond), and checks each execution
//! with a vector-clock data-race detector. A test here is a *contract*:
//! the asserted property must hold on **every** explored interleaving,
//! and a deadlock, lost wakeup, or Relaxed-ordering race anywhere in the
//! exercised code fails the test with a replayable schedule.
//!
//! The five contracts mirror the invariants the engines' correctness
//! arguments lean on (see DESIGN.md §12):
//!
//! 1. closing the channel on the producer's panic path never strands a
//!    parked consumer;
//! 2. `send_or_swap` neither duplicates nor drops a class under racing
//!    consumers;
//! 3. the governor's CAS admission gate admits *exactly* its class
//!    budget under racing workers;
//! 4. the memory gauge balances back to zero when classes are abandoned
//!    mid-run (asserted here for real — the engines only
//!    `debug_assert` it);
//! 5. the stealing merge's prefix cut keeps exactly the classes below
//!    the smallest unfinished code, whatever order admission raced in.
//!
//! The `replays_bit_for_bit` tests pin three fault-injection scenarios
//! from the testkit matrix to *named deterministic schedules*: the same
//! schedule replays the same interleaving — and therefore the same
//! event log — every time, on any host.

#![cfg(tsg_model)]

use std::panic::AssertUnwindSafe;

use taxogram_core::model_support::{prefix_cut, Bounded, Governor, MemoryGauge};
use taxogram_core::sync::thread;
use taxogram_core::sync::{Arc, AtomicUsize, Mutex, Ordering};
use taxogram_core::{Budget, GovernOptions};
use tsg_check::model::{Checker, Report};

/// Every contract must be checked on at least 1,000 distinct
/// interleavings, or on the complete bounded-exhaustive set if that is
/// smaller.
fn assert_coverage(report: &Report) {
    assert!(
        report.exhaustive || report.interleavings >= 1000,
        "only {} interleavings explored (and not exhaustive)",
        report.interleavings
    );
}

/// Contract 1: the pipeline producer closes the channel on **every**
/// exit path, including a panic mid-stream (pipeline.rs catches the
/// mining panic precisely so the close still runs). If the close were
/// skipped, the parked consumer would never wake — which the model
/// checker reports as a deadlock, failing this test with the schedule
/// that exposed it.
#[test]
fn close_on_panic_never_strands_a_consumer() {
    let report = Checker::new().check(|| {
        let ch = Arc::new(Bounded::new(1));
        let consumer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                let mut got = 0usize;
                while ch.recv().is_some() {
                    got += 1;
                }
                got
            })
        };
        // Producer: one class out, then the injected death — mirroring
        // the pipeline's catch_unwind-then-close recovery.
        let died = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ch.send_or_swap(7usize);
            panic!("injected: producer died mid-stream");
        }));
        assert!(died.is_err());
        ch.close();
        let got = consumer.join().expect("consumer exits cleanly");
        assert!(got <= 1, "one class was sent; consumer saw {got}");
    });
    assert_coverage(&report);
    report.assert_race_free();
}

/// Contract 2: `send_or_swap` is an atomic exchange — across every
/// interleaving of a racing consumer, each class ends up processed
/// exactly once, either by a consumer (received) or by the producer
/// (handed back by the swap). No duplicates, no drops.
#[test]
fn send_or_swap_neither_duplicates_nor_drops() {
    let report = Checker::new().check(|| {
        let ch = Arc::new(Bounded::new(1));
        let received = Arc::new(Mutex::new(Vec::new()));
        let consumer = {
            let ch = Arc::clone(&ch);
            let received = Arc::clone(&received);
            thread::spawn(move || {
                while let Some(v) = ch.recv() {
                    received.lock().expect("unpoisoned").push(v);
                }
            })
        };
        let mut stolen = Vec::new();
        for class in 0..3usize {
            if let Some(back) = ch.send_or_swap(class) {
                stolen.push(back);
            }
        }
        ch.close();
        consumer.join().expect("consumer exits cleanly");
        let mut all = received.lock().expect("unpoisoned").clone();
        all.extend(stolen);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "every class exactly once");
    });
    assert_coverage(&report);
    report.assert_race_free();
}

/// Contract 3: the governor's CAS admission gate (`fetch_update` on the
/// admitted counter) lets *exactly* `max_classes` admissions win, no
/// matter how the workers' calls interleave — and the run reports a
/// truthful non-complete termination.
#[test]
fn governor_cas_admits_exactly_the_class_budget() {
    let report = Checker::new().check(|| {
        let gov = Arc::new(Governor::new(&GovernOptions::with_budget(
            Budget::unlimited().max_classes(2),
        )));
        let wins = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let gov = Arc::clone(&gov);
                let wins = Arc::clone(&wins);
                thread::spawn(move || {
                    if gov.admit_class(0) {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        // The root races a third admission against the two workers.
        if gov.admit_class(0) {
            wins.fetch_add(1, Ordering::SeqCst);
        }
        for w in workers {
            w.join().expect("worker exits cleanly");
        }
        assert_eq!(
            wins.load(Ordering::SeqCst),
            2,
            "exactly the class budget admits"
        );
        let termination = gov.finish(2, 1, vec!["frontier".into()]);
        assert!(
            !termination.is_complete(),
            "a rejected class is a partial run"
        );
    });
    assert_coverage(&report);
    report.assert_race_free();
}

/// Contract 4: the gauge balances back to zero when classes are
/// abandoned — workers release every reservation they took, even for
/// classes they never enumerated (the stealing engine's
/// `drain_leftovers` path). The engines only `debug_assert_eq!` this;
/// here it is a hard assertion on every interleaving, and the peak must
/// land between the largest single reservation and the sum.
#[test]
fn gauge_balances_to_zero_on_abandoned_classes() {
    let report = Checker::new().check(|| {
        let gauge = Arc::new(MemoryGauge::new());
        let worker = {
            let gauge = Arc::clone(&gauge);
            thread::spawn(move || {
                gauge.add(100);
                // Abandoned: the stop tripped before enumeration, but the
                // reservation is still released on the drain path.
                gauge.sub(100);
            })
        };
        gauge.add(50);
        gauge.sub(50);
        worker.join().expect("worker exits cleanly");
        assert_eq!(gauge.current(), 0, "every reservation released");
        let peak = gauge.peak();
        assert!(
            (100..=150).contains(&peak),
            "peak {peak} outside [max single, sum]"
        );
    });
    assert_coverage(&report);
    report.assert_race_free();
}

/// Contract 5: the stealing merge's prefix cut is sound under racing
/// admission. Two workers claim classes off a shared cursor (exactly
/// the engines' Relaxed ticket idiom) and race a class-budget governor;
/// whatever order admission lands in, the cut keeps precisely the
/// contiguous prefix of classes below the smallest rejected one, and no
/// class is duplicated or lost across the kept/unfinished partition.
#[test]
fn prefix_cut_is_sound_under_racing_admission() {
    const CLASSES: usize = 5;
    let report = Checker::new().check(|| {
        let gov = Arc::new(Governor::new(&GovernOptions::with_budget(
            Budget::unlimited().max_classes(3),
        )));
        let cursor = Arc::new(AtomicUsize::new(0));
        let outputs = Arc::new(Mutex::new(Vec::new()));
        let unfinished = Arc::new(Mutex::new(Vec::new()));
        let worker = |gov: Arc<Governor>,
                      cursor: Arc<AtomicUsize>,
                      outputs: Arc<Mutex<Vec<(usize, ())>>>,
                      unfinished: Arc<Mutex<Vec<usize>>>| {
            move || loop {
                let key = cursor.fetch_add(1, Ordering::Relaxed);
                if key >= CLASSES {
                    break;
                }
                if gov.admit_class(0) {
                    outputs.lock().expect("unpoisoned").push((key, ()));
                } else {
                    unfinished.lock().expect("unpoisoned").push(key);
                }
            }
        };
        let spawned = thread::spawn(worker(
            Arc::clone(&gov),
            Arc::clone(&cursor),
            Arc::clone(&outputs),
            Arc::clone(&unfinished),
        ));
        worker(
            Arc::clone(&gov),
            Arc::clone(&cursor),
            Arc::clone(&outputs),
            Arc::clone(&unfinished),
        )();
        spawned.join().expect("worker exits cleanly");

        let mut outputs = std::mem::take(&mut *outputs.lock().expect("unpoisoned"));
        let mut unfinished = std::mem::take(&mut *unfinished.lock().expect("unpoisoned"));
        outputs.sort_by(|(a, _), (b, _)| a.cmp(b));
        prefix_cut(&mut outputs, &mut unfinished, |a, b| a.cmp(b));

        // Kept classes form the exact contiguous prefix below the cut…
        let kept: Vec<usize> = outputs.iter().map(|(k, ())| *k).collect();
        assert_eq!(kept, (0..kept.len()).collect::<Vec<_>>());
        assert!(kept.len() <= 3, "cannot keep more than the budget");
        // …and the partition is exhaustive and duplicate-free.
        let mut all = kept;
        all.extend(&unfinished);
        all.sort_unstable();
        assert_eq!(all, (0..CLASSES).collect::<Vec<_>>());
    });
    assert_coverage(&report);
    report.assert_race_free();
}

// ---------------------------------------------------------------------
// Named deterministic schedules: three scenarios from the testkit
// fault-injection matrix, pinned to the explicit schedules published in
// `tsg_testkit::schedules`. A schedule is a list of scheduler decisions
// (ordinals into the sorted set of runnable threads at each visible
// op); replaying one reproduces the exact interleaving — and hence the
// exact event log — on any host.
// ---------------------------------------------------------------------

/// Matches the workspace's pinned proptest seed convention
/// (PROPTEST_RNG_SEED); used by the replay harness for its random
/// top-up phase, irrelevant to the pinned prefix itself.
const PINNED_SEED: u64 = 0x007a_78c0_ffee;

/// Runs `scenario` once under `schedule` (prefix decisions; the
/// scheduler continues prev-first past the end) and returns its event
/// log.
fn replay_logged<F>(schedule: &[usize], scenario: F) -> Vec<String>
where
    F: Fn(&Mutex<Vec<String>>),
{
    let captured = std::sync::Mutex::new(Vec::new());
    Checker::new().seed(PINNED_SEED).replay(schedule, || {
        let log = Mutex::new(Vec::new());
        scenario(&log);
        // Only the root vthread runs here, after all joins: move the
        // facade-logged events out to the (off-model) capture slot.
        let events = std::mem::take(&mut *log.lock().expect("unpoisoned"));
        *captured.lock().expect("unpoisoned") = events;
    });
    captured.into_inner().expect("unpoisoned")
}

fn log_event(log: &Mutex<Vec<String>>, event: String) {
    log.lock().expect("unpoisoned").push(event);
}

/// Scenario: the receiver drops mid-stream (testkit `recv_drop` fault).
/// The producer keeps swapping into a full channel, closes, then drains
/// the leftovers itself — the pipeline's gauge-balancing recovery path.
fn receiver_drop_scenario(log: &Mutex<Vec<String>>) {
    let ch = Arc::new(Bounded::new(1));
    let consumer = {
        let ch = Arc::clone(&ch);
        thread::spawn(move || ch.recv())
    };
    for class in 0..3usize {
        if let Some(back) = ch.send_or_swap(class) {
            log_event(log, format!("producer reclaimed {back}"));
        } else {
            log_event(log, format!("producer queued {class}"));
        }
    }
    ch.close();
    let first = consumer.join().expect("consumer exits cleanly");
    log_event(log, format!("consumer took {first:?} then dropped"));
    while let Some(left) = ch.try_recv() {
        log_event(log, format!("producer drained {left}"));
    }
}

#[test]
fn receiver_drop_mid_stream_replays_bit_for_bit() {
    const SCHEDULE: &[usize] = tsg_testkit::schedules::RECEIVER_DROP_MID_STREAM;
    let first = replay_logged(SCHEDULE, receiver_drop_scenario);
    let second = replay_logged(SCHEDULE, receiver_drop_scenario);
    assert!(!first.is_empty(), "scenario logged nothing");
    assert_eq!(first, second, "same schedule, same event log");
}

/// Scenario: a worker panics at the Nth claimed task (testkit
/// `panic_at_task` fault). Tickets come off the engines' Relaxed
/// cursor; the surviving worker finishes its share, and the panic
/// propagates through `join` exactly like `SearchPanicked` does.
fn panic_at_nth_steal_scenario(log: &Mutex<Vec<String>>) {
    const PANIC_AT: usize = 2;
    let cursor = Arc::new(AtomicUsize::new(0));
    let faulty = {
        let cursor = Arc::clone(&cursor);
        thread::spawn(move || loop {
            let ticket = cursor.fetch_add(1, Ordering::Relaxed);
            if ticket >= 4 {
                break;
            }
            assert_ne!(ticket, PANIC_AT, "injected: panic at steal {PANIC_AT}");
        })
    };
    loop {
        let ticket = cursor.fetch_add(1, Ordering::Relaxed);
        if ticket >= 4 {
            break;
        }
        log_event(log, format!("survivor executed {ticket}"));
    }
    match faulty.join() {
        Ok(()) => log_event(log, "faulty worker finished clean".into()),
        Err(_) => log_event(log, "faulty worker panicked; caught at join".into()),
    }
}

#[test]
fn panic_at_nth_steal_replays_bit_for_bit() {
    const SCHEDULE: &[usize] = tsg_testkit::schedules::PANIC_AT_NTH_STEAL;
    let first = replay_logged(SCHEDULE, panic_at_nth_steal_scenario);
    let second = replay_logged(SCHEDULE, panic_at_nth_steal_scenario);
    assert!(!first.is_empty(), "scenario logged nothing");
    assert_eq!(first, second, "same schedule, same event log");
}

/// Scenario: a budget trip races admission (testkit `cancel_after` /
/// class-budget fault). Two workers hit a one-class governor; under a
/// pinned schedule the *same* worker wins every replay, and exactly one
/// admission ever succeeds.
fn budget_trip_scenario(log: &Mutex<Vec<String>>) {
    let gov = Arc::new(Governor::new(&GovernOptions::with_budget(
        Budget::unlimited().max_classes(1),
    )));
    let racer = {
        let gov = Arc::clone(&gov);
        thread::spawn(move || gov.admit_class(0))
    };
    let root_won = gov.admit_class(0);
    let racer_won = racer.join().expect("racer exits cleanly");
    assert!(
        root_won ^ racer_won,
        "exactly one admission wins a one-class budget"
    );
    let winner = if root_won { "root" } else { "racer" };
    log_event(log, format!("{winner} admitted the class"));
}

#[test]
fn budget_trip_racing_admission_replays_bit_for_bit() {
    const SCHEDULE: &[usize] = tsg_testkit::schedules::BUDGET_TRIP_RACING_ADMISSION;
    let first = replay_logged(SCHEDULE, budget_trip_scenario);
    let second = replay_logged(SCHEDULE, budget_trip_scenario);
    assert_eq!(first.len(), 1, "one winner per run");
    assert_eq!(first, second, "same schedule, same winner");
}
