//! Structural invariants of occurrence indices on random inputs:
//!
//! * the entry root covers every occurrence of the class;
//! * each child's occurrence set is a subset of its parent's (Lemma 2 at
//!   the index level — this is what makes the enumeration's intersections
//!   antitone);
//! * each label's occurrence set is exactly the set of occurrences whose
//!   original label at that position is a (reflexive) descendant of the
//!   label — verified directly against the embeddings.

use proptest::prelude::*;
use taxogram_core::oi::{OccurrenceIndex, OiOptions};
use taxogram_core::relabel::relabel;
use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
use tsg_gspan::{Embedding, GSpan, GSpanConfig, Grow, MinedPattern, PatternSink};
use tsg_taxonomy::{Taxonomy, TaxonomyBuilder};

fn arb_taxonomy(max_concepts: usize) -> impl Strategy<Value = Taxonomy> {
    (2..=max_concepts)
        .prop_flat_map(|n| {
            let parents: Vec<_> = (1..n)
                .map(|i| prop::collection::vec(0..i, 1..=2.min(i)))
                .collect();
            (Just(n), parents)
        })
        .prop_map(|(n, parents)| {
            let mut b = TaxonomyBuilder::with_concepts(n);
            for (i, ps) in parents.into_iter().enumerate() {
                let mut seen = vec![];
                for p in ps {
                    if !seen.contains(&p) {
                        seen.push(p);
                        b.is_a(NodeLabel((i + 1) as u32), NodeLabel(p as u32)).unwrap();
                    }
                }
            }
            b.build().unwrap()
        })
}

fn arb_db(concepts: usize) -> impl Strategy<Value = GraphDatabase> {
    prop::collection::vec(
        (
            prop::collection::vec(0..concepts, 2..5),
            prop::collection::vec(0..2u32, 1..4),
        ),
        2..5,
    )
    .prop_map(|graphs| {
        let mut db = GraphDatabase::new();
        for (labels, elabels) in graphs {
            let mut g = LabeledGraph::with_nodes(labels.iter().map(|&l| NodeLabel(l as u32)));
            for i in 1..labels.len() {
                let el = elabels[(i - 1) % elabels.len()];
                g.add_edge(i - 1, i, EdgeLabel(el)).unwrap();
            }
            db.push(g);
        }
        db
    })
}

struct Classes {
    items: Vec<(LabeledGraph, Vec<Embedding>)>,
}

impl PatternSink for Classes {
    fn report(&mut self, p: &MinedPattern<'_>) -> Grow {
        self.items.push((p.graph.clone(), p.embeddings.to_vec()));
        Grow::Continue
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn oi_invariants_hold((taxonomy, db) in arb_taxonomy(6).prop_flat_map(|t| {
        let n = t.concept_count();
        (Just(t), arb_db(n))
    })) {
        let rel = relabel(&db, &taxonomy).unwrap();
        let mut classes = Classes { items: vec![] };
        GSpan::new(&rel.dmg, GSpanConfig { min_support: 1, max_edges: Some(3) })
            .mine(&mut classes);
        for (skeleton, embeddings) in &classes.items {
            let oi = OccurrenceIndex::build(
                embeddings,
                &rel.originals,
                skeleton.labels(),
                &rel.taxonomy,
                OiOptions { frequent: None, contract_equal_sets: false, predescend_roots: false },
            );
            prop_assert_eq!(oi.universe, embeddings.len());
            prop_assert_eq!(oi.entries.len(), skeleton.node_count());
            for (pos, entry) in oi.entries.iter().enumerate() {
                // Root covers everything.
                let root = entry.root();
                prop_assert_eq!(entry.occs(root).len(), oi.universe);
                // Every live label's set matches the embedding-level
                // definition exactly, and children's sets are subsets.
                for label in entry.live_labels() {
                    let id = entry.lookup(label).unwrap();
                    let got: Vec<usize> = entry.occs(id).iter().collect();
                    let want: Vec<usize> = embeddings
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| {
                            let original = rel.originals[e.gid][e.map[pos]];
                            rel.taxonomy.is_ancestor(label, original)
                        })
                        .map(|(i, _)| i)
                        .collect();
                    prop_assert_eq!(&got, &want, "label {} at position {}", label, pos);
                    prop_assert!(!got.is_empty(), "covered labels have occurrences");
                    for &child in entry.children(id) {
                        let cset: Vec<usize> = entry.occs(child).iter().collect();
                        prop_assert!(
                            cset.iter().all(|o| got.contains(o)),
                            "child set must be a subset of the parent's"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn contraction_preserves_mining_output((taxonomy, db) in arb_taxonomy(6).prop_flat_map(|t| {
        let n = t.concept_count();
        (Just(t), arb_db(n))
    })) {
        // Contraction only removes labels whose patterns would all be
        // over-generalized; outputs with and without it must agree.
        use taxogram_core::{Enhancements, Taxogram, TaxogramConfig};
        let mut with = TaxogramConfig::with_threshold(0.5).max_edges(3);
        with.enhancements = Enhancements { contract_equal_sets: true, ..Enhancements::all() };
        let mut without = with;
        without.enhancements.contract_equal_sets = false;
        without.enhancements.predescend_roots = false;
        let a = Taxogram::new(with).mine(&db, &taxonomy).unwrap();
        let b = Taxogram::new(without).mine(&db, &taxonomy).unwrap();
        prop_assert_eq!(a.patterns.len(), b.patterns.len());
        for p in &a.patterns {
            prop_assert!(
                b.patterns.iter().any(|q| q.support_count == p.support_count
                    && tsg_iso::is_isomorphic(&p.graph, &q.graph)),
                "pattern lost by contraction"
            );
        }
    }
}
