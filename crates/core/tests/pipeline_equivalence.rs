//! Serial equivalence of the parallel engines: on random small inputs,
//! the streaming pipelined miner (and the barrier miner it supersedes)
//! must reproduce the serial result *exactly* — same patterns, same
//! order, same supports — at every thread count. The reorder buffer is
//! what makes this hold for the pipeline; these tests are its contract.

use proptest::prelude::*;
use taxogram_core::{
    mine_parallel, mine_pipelined_with, MiningResult, PipelineOptions, Taxogram, TaxogramConfig,
};
use tsg_graph::GraphDatabase;
use tsg_taxonomy::Taxonomy;

/// Coupled inputs at this suite's historical shape (up to 6 concepts,
/// 2–5 graphs of up to 5 vertices), via the shared [`tsg_testkit::gen`]
/// generators.
fn arb_input() -> impl Strategy<Value = (Taxonomy, GraphDatabase)> {
    tsg_testkit::gen::arb_input_sized(6, 5, 5)
}

/// Patterns, order, and supports must all match — not just as sets.
fn assert_streams_identical(serial: &MiningResult, other: &MiningResult, what: &str) {
    assert_eq!(
        serial.patterns.len(),
        other.patterns.len(),
        "{what}: pattern count"
    );
    for (i, (a, b)) in serial.patterns.iter().zip(&other.patterns).enumerate() {
        assert_eq!(a.graph.labels(), b.graph.labels(), "{what}: labels at {i}");
        assert_eq!(a.graph.edges(), b.graph.edges(), "{what}: edges at {i}");
        assert_eq!(
            a.support_count, b.support_count,
            "{what}: support at {i}"
        );
    }
    assert_eq!(serial.stats.classes, other.stats.classes, "{what}: classes");
    assert_eq!(
        serial.stats.enumeration.emitted, other.stats.enumeration.emitted,
        "{what}: emitted"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pipelined_equals_serial_at_every_thread_count(
        (taxonomy, db) in arb_input(),
        theta in prop::sample::select(vec![1.0f64, 0.6, 0.4, 0.25]),
    ) {
        let cfg = TaxogramConfig::with_threshold(theta).max_edges(3);
        let serial = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
        for threads in [1usize, 2, 8] {
            // clamp_to_cores off: the reorder buffer must be exercised
            // regardless of how many cores the test host has.
            let piped = mine_pipelined_with(
                &cfg,
                &db,
                &taxonomy,
                PipelineOptions { threads, channel_capacity: 0, clamp_to_cores: false },
            )
            .unwrap();
            assert_streams_identical(&serial, &piped, &format!("pipelined t={threads}"));
        }
    }

    #[test]
    fn pipelined_survives_minimal_channel_capacity(
        (taxonomy, db) in arb_input(),
    ) {
        // Capacity 1 maximizes producer/worker interleavings: any
        // ordering bug in the reorder buffer shows up here first.
        let cfg = TaxogramConfig::with_threshold(0.4).max_edges(3);
        let serial = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
        let piped = mine_pipelined_with(
            &cfg,
            &db,
            &taxonomy,
            PipelineOptions { threads: 4, channel_capacity: 1, clamp_to_cores: false },
        )
        .unwrap();
        assert_streams_identical(&serial, &piped, "pipelined cap=1");
    }

    #[test]
    fn barrier_equals_serial(
        (taxonomy, db) in arb_input(),
        theta in prop::sample::select(vec![1.0f64, 0.5, 0.3]),
    ) {
        let cfg = TaxogramConfig::with_threshold(theta).max_edges(3);
        let serial = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
        for threads in [2usize, 4] {
            let barrier = mine_parallel(&cfg, &db, &taxonomy, threads).unwrap();
            assert_streams_identical(&serial, &barrier, &format!("barrier t={threads}"));
        }
    }
}
