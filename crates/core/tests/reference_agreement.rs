//! The load-bearing correctness test for Taxogram: on random small
//! inputs, the full pipeline (all enhancement combinations) must produce
//! exactly the frequent, minimal, complete pattern set computed by the
//! brute-force reference implementation of the problem definition.

use proptest::prelude::*;
use taxogram_core::reference::{compare_with_reference, reference_mine};
use taxogram_core::{Enhancements, Taxogram, TaxogramConfig};
use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
use tsg_taxonomy::Taxonomy;
use tsg_testkit::gen::arb_taxonomy;

/// Coupled inputs at this suite's historical shape (up to 6 concepts,
/// 2–4 graphs of up to 4 vertices — small enough for the brute-force
/// reference), via the shared [`tsg_testkit::gen`] generators.
fn arb_input() -> impl Strategy<Value = (Taxonomy, GraphDatabase)> {
    tsg_testkit::gen::arb_input_sized(6, 4, 4)
}

fn all_enhancement_combos() -> Vec<Enhancements> {
    let mut v = Vec::new();
    for a in [false, true] {
        for b in [false, true] {
            for c in [false, true] {
                for d in [false, true] {
                    v.push(Enhancements {
                        apriori_child_prune: a,
                        prune_infrequent_labels: b,
                        predescend_roots: c,
                        contract_equal_sets: d,
                    });
                }
            }
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn taxogram_equals_reference((taxonomy, db) in arb_input(), theta in prop::sample::select(vec![1.0f64, 0.75, 0.5, 0.3])) {
        let max_edges = 3;
        let want = reference_mine(&db, &taxonomy, theta, max_edges);
        for enh in [Enhancements::all(), Enhancements::none()] {
            let mut cfg = TaxogramConfig::with_threshold(theta).max_edges(max_edges);
            cfg.enhancements = enh;
            let got = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
            if let Some(msg) = compare_with_reference(&got.patterns, &want) {
                let dump = tsg_graph::io::write_database(&db);
                let edges: Vec<_> = taxonomy.edge_list();
                prop_assert!(
                    false,
                    "θ={theta} enh={enh:?}: {msg}\ntaxonomy edges: {edges:?}\n{dump}"
                );
            }
        }
    }

    #[test]
    fn every_enhancement_combo_agrees((taxonomy, db) in arb_input()) {
        let theta = 0.5;
        let max_edges = 3;
        let mut baseline: Option<Vec<(Vec<NodeLabel>, usize)>> = None;
        for enh in all_enhancement_combos() {
            let mut cfg = TaxogramConfig::with_threshold(theta).max_edges(max_edges);
            cfg.enhancements = enh;
            let got = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
            // Signature: sorted (sorted-label-multiset + edge count, support).
            let mut sig: Vec<(Vec<NodeLabel>, usize)> = got
                .patterns
                .iter()
                .map(|p| {
                    let mut ls = p.graph.labels().to_vec();
                    ls.sort();
                    ls.push(NodeLabel(p.graph.edge_count() as u32));
                    (ls, p.support_count)
                })
                .collect();
            sig.sort();
            match &baseline {
                None => baseline = Some(sig),
                Some(b) => prop_assert_eq!(b, &sig, "enhancements {:?} diverged", enh),
            }
        }
    }
}

#[test]
fn multi_root_random_case() {
    // A hand-picked multi-root case: roots 0 and 1, concept 2 under both,
    // 3 under 2, 4 under 1 only.
    let t = tsg_taxonomy::taxonomy_from_edges(5, [(2, 0), (2, 1), (3, 2), (4, 1)]).unwrap();
    let mk = |labels: &[u32]| {
        let mut g = LabeledGraph::with_nodes(labels.iter().map(|&l| NodeLabel(l)));
        for i in 1..labels.len() {
            g.add_edge(i - 1, i, EdgeLabel(0)).unwrap();
        }
        g
    };
    let db = GraphDatabase::from_graphs(vec![mk(&[3, 4]), mk(&[2, 4, 3]), mk(&[3, 1])]);
    for theta in [1.0, 0.6, 0.3] {
        let want = reference_mine(&db, &t, theta, 2);
        let got = Taxogram::new(TaxogramConfig::with_threshold(theta).max_edges(2))
            .mine(&db, &t)
            .unwrap();
        if let Some(msg) = compare_with_reference(&got.patterns, &want) {
            panic!("θ = {theta}: {msg}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two-pass partitioned miner (the paper's "disk-based" future
    /// work, SON-style) must produce exactly the single-pass result on
    /// random inputs and partitionings.
    #[test]
    fn son_agreement((taxonomy, db) in arb_input(), chunks in 1usize..4) {
        let cfg = TaxogramConfig::with_threshold(0.5).max_edges(3);
        let single = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
        let parts = taxogram_core::son::partition(&db, chunks);
        let two_pass = taxogram_core::son::mine_partitioned(&cfg, &parts, &taxonomy).unwrap();
        prop_assert_eq!(single.patterns.len(), two_pass.patterns.len());
        for p in &single.patterns {
            let hit = two_pass.patterns.iter().find(|q| {
                q.support_count == p.support_count && tsg_iso::is_isomorphic(&p.graph, &q.graph)
            });
            prop_assert!(hit.is_some(), "two-pass missing {:?}", p.graph.labels());
        }
    }
}

/// A random connected directed graph over the taxonomy's concepts.
fn arb_digraph(concepts: usize, max_nodes: usize) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let labels = prop::collection::vec(0..concepts, n);
            let chain = prop::collection::vec((0..2u32, prop::bool::ANY), n - 1);
            let extras = prop::collection::vec(((0..n), (0..n), 0..2u32), 0..=2);
            (labels, chain, extras)
        })
        .prop_map(|(labels, chain, extras)| {
            let mut g = LabeledGraph::with_nodes_directed(
                labels.iter().map(|&l| NodeLabel(l as u32)),
            );
            for (i, &(el, flip)) in chain.iter().enumerate() {
                let (u, v) = if flip { (i + 1, i) } else { (i, i + 1) };
                g.add_edge(u, v, EdgeLabel(el)).unwrap();
            }
            for (u, v, el) in extras {
                if u != v {
                    let _ = g.add_edge(u, v, EdgeLabel(el));
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Directed taxonomy-superimposed mining — the capability the paper
    /// claims for Taxogram but could not evaluate ("gSpan does not support
    /// directed graphs") — must match the brute-force reference.
    #[test]
    fn directed_taxogram_equals_reference(
        (taxonomy, db) in arb_taxonomy(5).prop_flat_map(|t| {
            let n = t.concept_count();
            let db = prop::collection::vec(arb_digraph(n, 4), 2..=4)
                .prop_map(GraphDatabase::from_graphs);
            (Just(t), db)
        }),
        theta in prop::sample::select(vec![1.0f64, 0.6, 0.4]),
    ) {
        let max_edges = 3;
        let want = reference_mine(&db, &taxonomy, theta, max_edges);
        let got = Taxogram::new(TaxogramConfig::with_threshold(theta).max_edges(max_edges))
            .mine(&db, &taxonomy)
            .unwrap();
        if let Some(msg) = compare_with_reference(&got.patterns, &want) {
            let dump = tsg_graph::io::write_database(&db);
            prop_assert!(false, "θ={theta}: {msg}\ntaxonomy: {:?}\n{dump}", taxonomy.edge_list());
        }
        for p in &got.patterns {
            prop_assert!(p.graph.is_directed(), "directed patterns from directed data");
        }
    }
}
