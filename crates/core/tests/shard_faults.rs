//! Spill-I/O fault matrix for the sharded out-of-core miner.
//!
//! Every way a spill file can go wrong — the write fails partway, a
//! finished file is truncated or its length prefix corrupted, a whole
//! shard vanishes — must surface as the typed
//! [`TaxogramError::ShardIo`], never as a hang, a panic, or (worst) a
//! silently short mining result. The matrix drives each fault through
//! [`tsg_testkit::fault::FaultPlan`] across the standard thread and
//! shard sweeps, and checks that spill directories are cleaned up on
//! the error path just as on success.

use taxogram_core::{mine_sharded, ShardOptions, Taxogram, TaxogramConfig, TaxogramError};
use tsg_testkit::fault::{FaultPlan, FAULT_THREADS};
use tsg_testkit::gen::{case, cases};
use tsg_testkit::metamorphic::{assert_engines_identical, MAX_EDGES};

const SHARD_SWEEP: [usize; 3] = [1, 2, 3];

/// Every post-write fault targeting shard `s`, labeled for messages.
fn damage_plans(shape: FaultPlan, s: usize) -> [(&'static str, FaultPlan); 3] {
    [
        ("truncate", shape.truncate_shard(s)),
        ("corrupt-prefix", shape.corrupt_length_prefix(s)),
        ("missing", shape.missing_shard(s)),
    ]
}

/// Shards actually produced for `len` graphs at a requested count: the
/// planner's contiguous ranges (`per = ⌈len/requested⌉`) can merge the
/// tail, so the file count may be lower than requested.
fn actual_shards(len: usize, requested: usize) -> usize {
    let per = len.div_ceil(requested.max(1)).max(1);
    len.div_ceil(per)
}

#[test]
fn every_spill_fault_surfaces_as_shard_io() {
    let c = case(21);
    for &threads in &FAULT_THREADS {
        for shards in SHARD_SWEEP {
            let shape = FaultPlan::shape(threads, 2);
            for target in 0..actual_shards(c.db.len(), shards) {
                for (what, plan) in damage_plans(shape, target) {
                    match plan.run_sharded(&c, shards) {
                        Err(TaxogramError::ShardIo { shard, .. }) => {
                            assert_eq!(
                                shard, target,
                                "{what}: error blames shard {shard}, fault hit {target}"
                            );
                        }
                        Err(e) => panic!(
                            "{what}[t={threads},P={shards},s={target}]: wrong error {e}"
                        ),
                        Ok(_) => panic!(
                            "{what}[t={threads},P={shards},s={target}]: damaged spill mined 'successfully'"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn write_errors_surface_as_shard_io() {
    let c = case(22);
    for record in 0..c.db.len() {
        let plan = FaultPlan::shape(1, 2).spill_write_error_at(record);
        match plan.run_sharded(&c, 2) {
            Err(TaxogramError::ShardIo { message, .. }) => {
                assert!(
                    message.contains("injected fault"),
                    "unexpected message: {message}"
                );
            }
            other => panic!("write fault at record {record}: got {other:?}"),
        }
    }
}

#[test]
fn governed_runs_report_faults_not_partial_results() {
    // A spill fault beats governance: even with a budget that would stop
    // the run early, a damaged shard must yield the typed error rather
    // than a "sound prefix" mined from damaged data.
    let c = case(23);
    let plan = FaultPlan::shape(2, 1).budget_classes(1).truncate_shard(0);
    assert!(matches!(
        plan.run_sharded_governed(&c, 2),
        Err(TaxogramError::ShardIo { .. })
    ));
}

#[test]
fn clean_plans_match_serial_across_the_matrix() {
    for c in cases(0x5eed_5a0e, 8) {
        let serial = Taxogram::new(TaxogramConfig::with_threshold(c.theta).max_edges(MAX_EDGES))
            .mine(&c.db, &c.taxonomy)
            .unwrap();
        for &threads in &FAULT_THREADS {
            for shards in SHARD_SWEEP {
                let out = FaultPlan::shape(threads, 2).run_sharded(&c, shards).unwrap();
                assert!(out.termination.is_complete());
                assert_engines_identical(&serial, &out.result).unwrap();
            }
        }
    }
}

#[test]
fn spill_directory_is_cleaned_up_on_fault() {
    let c = case(24);
    let root = std::env::temp_dir().join(format!("tsg-fault-spill-{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();
    let cfg = TaxogramConfig::with_threshold(c.theta).max_edges(MAX_EDGES);
    let opts = ShardOptions {
        shards: 2,
        spill_dir: Some(root.clone()),
        ..ShardOptions::default()
    };

    // Success leaves nothing behind...
    mine_sharded(&cfg, &c.db, &c.taxonomy, &opts).unwrap();
    assert_eq!(
        std::fs::read_dir(&root).unwrap().count(),
        0,
        "success must clean up its spill subdirectory"
    );

    // ...and so does every fault, including one that kills the write
    // mid-spill (the partial files of earlier shards must go too).
    for faults in [
        taxogram_core::ShardFaults {
            truncate_shard: Some(1),
            ..Default::default()
        },
        taxogram_core::ShardFaults {
            write_error_at_record: Some(c.db.len().saturating_sub(1)),
            ..Default::default()
        },
    ] {
        let err = taxogram_core::mine_sharded_faulted(&cfg, &c.db, &c.taxonomy, &opts, None, faults)
            .unwrap_err();
        assert!(matches!(err, TaxogramError::ShardIo { .. }));
        assert_eq!(
            std::fs::read_dir(&root).unwrap().count(),
            0,
            "fault path must clean up its spill subdirectory"
        );
    }
    std::fs::remove_dir_all(&root).unwrap();
}
