//! Serial equivalence of the fused work-stealing engine: on random
//! inputs, [`taxogram_core::mine_stealing_with`] must reproduce the
//! serial Taxogram result *exactly* — same patterns, same order, same
//! supports, same stats — at 1/2/4/8 threads, including under forced
//! steals (deque capacity 1). Unlike the pipelined engine, the stealing
//! engine parallelizes the gSpan search itself, so these tests cover
//! the canonical-code sort merge rather than a reorder buffer.

use proptest::prelude::*;
use taxogram_core::{mine_stealing_with, MiningResult, StealOptions, Taxogram, TaxogramConfig};
use tsg_graph::GraphDatabase;
use tsg_taxonomy::Taxonomy;

/// Coupled inputs at this suite's historical shape (up to 6 concepts,
/// 2–5 graphs of up to 5 vertices), via the shared [`tsg_testkit::gen`]
/// generators.
fn arb_input() -> impl Strategy<Value = (Taxonomy, GraphDatabase)> {
    tsg_testkit::gen::arb_input_sized(6, 5, 5)
}

/// Patterns, order, supports, and enumeration stats must all match — not
/// just as sets.
fn assert_streams_identical(serial: &MiningResult, other: &MiningResult, what: &str) {
    assert_eq!(
        serial.patterns.len(),
        other.patterns.len(),
        "{what}: pattern count"
    );
    for (i, (a, b)) in serial.patterns.iter().zip(&other.patterns).enumerate() {
        assert_eq!(a.graph.labels(), b.graph.labels(), "{what}: labels at {i}");
        assert_eq!(a.graph.edges(), b.graph.edges(), "{what}: edges at {i}");
        assert_eq!(
            a.support_count, b.support_count,
            "{what}: support at {i}"
        );
    }
    assert_eq!(serial.stats.classes, other.stats.classes, "{what}: classes");
    assert_eq!(
        serial.stats.enumeration.emitted, other.stats.enumeration.emitted,
        "{what}: emitted"
    );
    assert_eq!(
        serial.stats.enumeration.intersections, other.stats.enumeration.intersections,
        "{what}: intersections"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stealing_equals_serial_at_every_thread_count(
        (taxonomy, db) in arb_input(),
        theta in prop::sample::select(vec![1.0f64, 0.6, 0.4, 0.25]),
    ) {
        let cfg = TaxogramConfig::with_threshold(theta).max_edges(3);
        let serial = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
        for threads in [1usize, 2, 4, 8] {
            // clamp_to_cores off: the merge must be exercised at every
            // worker count regardless of how many cores the host has.
            let stolen = mine_stealing_with(
                &cfg,
                &db,
                &taxonomy,
                StealOptions { threads, deque_capacity: 0, clamp_to_cores: false },
            )
            .unwrap();
            assert_streams_identical(&serial, &stolen, &format!("stealing t={threads}"));
        }
    }

    #[test]
    fn stealing_survives_forced_steals(
        (taxonomy, db) in arb_input(),
    ) {
        // Deque capacity 1 spills nearly every spawned task to the shared
        // injector, maximizing cross-worker movement of sibling subtrees.
        let cfg = TaxogramConfig::with_threshold(0.25).max_edges(3);
        let serial = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
        for threads in [2usize, 4, 8] {
            let stolen = mine_stealing_with(
                &cfg,
                &db,
                &taxonomy,
                StealOptions { threads, deque_capacity: 1, clamp_to_cores: false },
            )
            .unwrap();
            assert_streams_identical(&serial, &stolen, &format!("steal-forced t={threads}"));
        }
    }
}
