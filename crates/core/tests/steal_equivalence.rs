//! Serial equivalence of the fused work-stealing engine: on random
//! inputs, [`taxogram_core::mine_stealing_with`] must reproduce the
//! serial Taxogram result *exactly* — same patterns, same order, same
//! supports, same stats — at 1/2/4/8 threads, including under forced
//! steals (deque capacity 1). Unlike the pipelined engine, the stealing
//! engine parallelizes the gSpan search itself, so these tests cover
//! the canonical-code sort merge rather than a reorder buffer.

use proptest::prelude::*;
use taxogram_core::{mine_stealing_with, MiningResult, StealOptions, Taxogram, TaxogramConfig};
use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
use tsg_taxonomy::{Taxonomy, TaxonomyBuilder};

/// A random DAG taxonomy over `n` concepts: each non-root concept gets 1–2
/// parents among lower-numbered concepts (so acyclicity is structural).
fn arb_taxonomy(max_concepts: usize) -> impl Strategy<Value = Taxonomy> {
    (2..=max_concepts)
        .prop_flat_map(|n| {
            let parent_choices: Vec<_> = (1..n)
                .map(|i| prop::collection::vec(0..i, 1..=2.min(i)))
                .collect();
            (Just(n), parent_choices)
        })
        .prop_map(|(n, parents)| {
            let mut b = TaxonomyBuilder::with_concepts(n);
            for (i, ps) in parents.into_iter().enumerate() {
                let child = NodeLabel((i + 1) as u32);
                let mut seen = vec![];
                for p in ps {
                    if !seen.contains(&p) {
                        seen.push(p);
                        b.is_a(child, NodeLabel(p as u32)).unwrap();
                    }
                }
            }
            b.build().expect("parents < child ⇒ acyclic")
        })
}

/// A random connected graph whose labels are drawn from the taxonomy's
/// concepts.
fn arb_graph(concepts: usize, max_nodes: usize) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let labels = prop::collection::vec(0..concepts, n);
            let chain_elabels = prop::collection::vec(0..2u32, n - 1);
            let extras = prop::collection::vec(((0..n), (0..n), 0..2u32), 0..=2);
            (labels, chain_elabels, extras)
        })
        .prop_map(|(labels, chain, extras)| {
            let mut g = LabeledGraph::with_nodes(labels.iter().map(|&l| NodeLabel(l as u32)));
            for (i, &el) in chain.iter().enumerate() {
                g.add_edge(i, i + 1, EdgeLabel(el)).unwrap();
            }
            for (u, v, el) in extras {
                if u != v {
                    let _ = g.add_edge(u, v, EdgeLabel(el));
                }
            }
            g
        })
}

fn arb_input() -> impl Strategy<Value = (Taxonomy, GraphDatabase)> {
    arb_taxonomy(6).prop_flat_map(|t| {
        let n = t.concept_count();
        let db = prop::collection::vec(arb_graph(n, 5), 2..=5)
            .prop_map(GraphDatabase::from_graphs);
        (Just(t), db)
    })
}

/// Patterns, order, supports, and enumeration stats must all match — not
/// just as sets.
fn assert_streams_identical(serial: &MiningResult, other: &MiningResult, what: &str) {
    assert_eq!(
        serial.patterns.len(),
        other.patterns.len(),
        "{what}: pattern count"
    );
    for (i, (a, b)) in serial.patterns.iter().zip(&other.patterns).enumerate() {
        assert_eq!(a.graph.labels(), b.graph.labels(), "{what}: labels at {i}");
        assert_eq!(a.graph.edges(), b.graph.edges(), "{what}: edges at {i}");
        assert_eq!(
            a.support_count, b.support_count,
            "{what}: support at {i}"
        );
    }
    assert_eq!(serial.stats.classes, other.stats.classes, "{what}: classes");
    assert_eq!(
        serial.stats.enumeration.emitted, other.stats.enumeration.emitted,
        "{what}: emitted"
    );
    assert_eq!(
        serial.stats.enumeration.intersections, other.stats.enumeration.intersections,
        "{what}: intersections"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stealing_equals_serial_at_every_thread_count(
        (taxonomy, db) in arb_input(),
        theta in prop::sample::select(vec![1.0f64, 0.6, 0.4, 0.25]),
    ) {
        let cfg = TaxogramConfig::with_threshold(theta).max_edges(3);
        let serial = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
        for threads in [1usize, 2, 4, 8] {
            // clamp_to_cores off: the merge must be exercised at every
            // worker count regardless of how many cores the host has.
            let stolen = mine_stealing_with(
                &cfg,
                &db,
                &taxonomy,
                StealOptions { threads, deque_capacity: 0, clamp_to_cores: false },
            )
            .unwrap();
            assert_streams_identical(&serial, &stolen, &format!("stealing t={threads}"));
        }
    }

    #[test]
    fn stealing_survives_forced_steals(
        (taxonomy, db) in arb_input(),
    ) {
        // Deque capacity 1 spills nearly every spawned task to the shared
        // injector, maximizing cross-worker movement of sibling subtrees.
        let cfg = TaxogramConfig::with_threshold(0.25).max_edges(3);
        let serial = Taxogram::new(cfg).mine(&db, &taxonomy).unwrap();
        for threads in [2usize, 4, 8] {
            let stolen = mine_stealing_with(
                &cfg,
                &db,
                &taxonomy,
                StealOptions { threads, deque_capacity: 1, clamp_to_cores: false },
            )
            .unwrap();
            assert_streams_identical(&serial, &stolen, &format!("steal-forced t={threads}"));
        }
    }
}
