//! Property tests for the per-step support modules on seeded
//! [`tsg_testkit`] inputs: Step 1 relabeling (`relabel`), the SON-style
//! two-pass partitioned miner (`son`), and the Srikant–Agrawal
//! R-interestingness filter (`interest`).
//!
//! The full-pipeline agreement suites already exercise these modules
//! end-to-end; the relations here pin down each module's own contract so
//! a regression localizes to the step that broke it.

use taxogram_core::interest::{r_interesting, score_pattern};
use taxogram_core::relabel::relabel;
use taxogram_core::son::{mine_partitioned, partition};
use taxogram_core::{Taxogram, TaxogramConfig};
use tsg_testkit::gen::{case_count, cases, Case};
use tsg_testkit::metamorphic::MAX_EDGES;

const BASE_SEED: u64 = 0x7a78_6f67_7261_6d02;

fn sweep(what: &str, mut check: impl FnMut(&Case) -> Result<(), String>) {
    for c in cases(BASE_SEED, case_count(64)) {
        if let Err(msg) = check(&c) {
            panic!("{what} violated on seed {:#x}: {msg}", c.seed);
        }
    }
}

fn config(c: &Case) -> TaxogramConfig {
    TaxogramConfig::with_threshold(c.theta).max_edges(MAX_EDGES)
}

// ---------------------------------------------------------------- relabel

/// Step 1 contract: every vertex's new label is *the* most general
/// ancestor of its old one (unique after unification), the old labels are
/// preserved verbatim in `originals`, and the graph structure does not
/// move at all.
#[test]
fn relabel_maps_every_vertex_to_its_most_general_ancestor() {
    sweep("relabel/mga", |c| {
        let r = relabel(&c.db, &c.taxonomy).map_err(|e| e.to_string())?;
        for (gid, g) in c.db.iter() {
            let relabeled = &r.dmg[gid];
            if relabeled.edges() != g.edges() {
                return Err(format!("graph {gid}: edges changed"));
            }
            for (node, &orig) in g.labels().iter().enumerate() {
                if r.originals[gid][node] != orig {
                    return Err(format!("graph {gid} node {node}: original label lost"));
                }
                let mga = r
                    .taxonomy
                    .most_general_ancestor(orig)
                    .ok_or_else(|| format!("no unique mga for {orig:?} after unification"))?;
                if relabeled.label(node) != mga {
                    return Err(format!(
                        "graph {gid} node {node}: relabeled to {:?}, mga is {mga:?}",
                        relabeled.label(node)
                    ));
                }
            }
        }
        Ok(())
    });
}

/// Relabeling is idempotent: running Step 1 on `D_mg` (under the working
/// taxonomy) changes nothing — most-general ancestors are fixed points.
#[test]
fn relabel_is_idempotent() {
    sweep("relabel/idempotent", |c| {
        let once = relabel(&c.db, &c.taxonomy).map_err(|e| e.to_string())?;
        let twice = relabel(&once.dmg, &once.taxonomy).map_err(|e| e.to_string())?;
        for (gid, g) in once.dmg.iter() {
            if twice.dmg[gid].labels() != g.labels() {
                return Err(format!("graph {gid}: labels moved on second pass"));
            }
        }
        Ok(())
    });
}

// -------------------------------------------------------------------- son

/// `partition(db, k)` is an ordered disjoint cover: concatenating the
/// chunks reproduces the database's graphs exactly, in order, for every
/// chunk count (including k larger than the database).
#[test]
fn partition_concatenates_back_to_the_database() {
    sweep("son/partition-cover", |c| {
        for k in 1..=c.db.len() + 2 {
            let parts = partition(&c.db, k);
            let flat: Vec<_> = parts.iter().flat_map(|p| p.graphs().iter()).collect();
            if flat.len() != c.db.len() {
                return Err(format!("k={k}: {} graphs of {}", flat.len(), c.db.len()));
            }
            for (i, g) in flat.into_iter().enumerate() {
                if g.labels() != c.db[i].labels() || g.edges() != c.db[i].edges() {
                    return Err(format!("k={k}: graph {i} altered by partitioning"));
                }
            }
        }
        Ok(())
    });
}

/// The SON two-pass result equals the single-pass miner for every
/// partitioning — same patterns (up to isomorphism), same supports, same
/// global support floor — even with empty partitions interleaved.
#[test]
fn partitioned_mining_equals_single_pass() {
    sweep("son/agreement", |c| {
        let single = Taxogram::new(config(c))
            .mine(&c.db, &c.taxonomy)
            .map_err(|e| e.to_string())?;
        for k in [1usize, 2, 3] {
            let mut parts = partition(&c.db, k);
            // Empty partitions are legal input and must not perturb counts.
            parts.push(tsg_graph::GraphDatabase::from_graphs(vec![]));
            let two_pass =
                mine_partitioned(&config(c), &parts, &c.taxonomy).map_err(|e| e.to_string())?;
            if two_pass.min_support_count != single.min_support_count {
                return Err(format!(
                    "k={k}: support floor {} vs {}",
                    two_pass.min_support_count, single.min_support_count
                ));
            }
            if two_pass.patterns.len() != single.patterns.len() {
                return Err(format!(
                    "k={k}: {} patterns vs {}",
                    two_pass.patterns.len(),
                    single.patterns.len()
                ));
            }
            let mut used = vec![false; two_pass.patterns.len()];
            for p in &single.patterns {
                let hit = two_pass.patterns.iter().enumerate().find(|(i, q)| {
                    !used[*i]
                        && q.support_count == p.support_count
                        && tsg_iso::is_isomorphic(&q.graph, &p.graph)
                });
                match hit {
                    Some((i, _)) => used[i] = true,
                    None => {
                        return Err(format!(
                            "k={k}: two-pass missing {:?} (sup {})",
                            p.graph.labels(),
                            p.support_count
                        ))
                    }
                }
            }
        }
        Ok(())
    });
}

// --------------------------------------------------------------- interest

/// The R-interestingness filter is monotone in `r`: `r = 0` keeps every
/// mined pattern, raising `r` only removes patterns, and the survivor set
/// at a higher `r` is a subset of the survivor set at any lower `r`.
#[test]
fn interest_filter_is_monotone_in_r() {
    sweep("interest/monotone", |c| {
        let mined = Taxogram::new(config(c))
            .mine(&c.db, &c.taxonomy)
            .map_err(|e| e.to_string())?;
        let mut previous = mined.patterns.len();
        let all = r_interesting(&mined.patterns, &c.db, &c.taxonomy, 0.0);
        if all.len() != mined.patterns.len() {
            return Err(format!(
                "r=0 kept {} of {} patterns",
                all.len(),
                mined.patterns.len()
            ));
        }
        for r in [0.5, 1.0, 1.5, 10.0] {
            let kept = r_interesting(&mined.patterns, &c.db, &c.taxonomy, r);
            if kept.len() > previous {
                return Err(format!("r={r}: {} survivors > {previous} at lower r", kept.len()));
            }
            for (_, score) in &kept {
                if !score.is_interesting(r) {
                    return Err(format!("r={r}: filter kept an uninteresting score"));
                }
            }
            previous = kept.len();
        }
        Ok(())
    });
}

/// Patterns labeled entirely by root concepts have no one-step
/// generalization, so they are vacuously interesting at every factor.
#[test]
fn root_only_patterns_are_vacuously_interesting() {
    sweep("interest/root-vacuous", |c| {
        let mined = Taxogram::new(config(c))
            .mine(&c.db, &c.taxonomy)
            .map_err(|e| e.to_string())?;
        let freq = c.taxonomy.generalized_label_frequencies(&c.db);
        for p in &mined.patterns {
            let root_only = p
                .graph
                .labels()
                .iter()
                .all(|&l| c.taxonomy.parents(l).is_empty());
            let score = score_pattern(p, &c.db, &c.taxonomy, &freq);
            if root_only && score.min_ratio.is_some() {
                return Err(format!(
                    "root-only pattern {:?} got ratio {:?}",
                    p.graph.labels(),
                    score.min_ratio
                ));
            }
            if root_only && !score.is_interesting(f64::MAX) {
                return Err("vacuous pattern rejected".into());
            }
        }
        Ok(())
    });
}
