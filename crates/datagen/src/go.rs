//! A Gene-Ontology-like label taxonomy.
//!
//! The paper uses the molecular-function subontology of Gene Ontology
//! (May 2007 snapshot): "over 7,800 concepts organized into a 14-level
//! hierarchy". The snapshot is not redistributable here, so this module
//! builds a deterministic synthetic DAG with the same shape parameters:
//! 7,800 concepts, 14 levels, single root, ~10% multi-parent concepts.
//! Every experiment in §4 depends only on these shape parameters, not on
//! concept identities (DESIGN.md §4 records this substitution).

use crate::synth::{generate_taxonomy, SynthTaxonomyConfig};
use tsg_taxonomy::Taxonomy;

/// Concept count of the full GO-like taxonomy.
pub const GO_CONCEPTS: usize = 7800;
/// Levels of the full GO-like taxonomy (root at level 0, 14 levels below).
pub const GO_DEPTH: usize = 14;

/// The full-size GO-molecular-function-like taxonomy (7,800 concepts, 14
/// levels). Deterministic: every call returns the same DAG.
pub fn go_like_taxonomy() -> Taxonomy {
    go_like_taxonomy_scaled(GO_CONCEPTS)
}

/// A GO-like taxonomy scaled to `concepts` (same depth and multi-parent
/// rate, fewer concepts) — used by the quick benchmark profiles and
/// tests. Deterministic per size.
///
/// # Panics
/// Panics if `concepts < 15` (cannot realize 14 levels).
pub fn go_like_taxonomy_scaled(concepts: usize) -> Taxonomy {
    generate_taxonomy(&SynthTaxonomyConfig {
        concepts,
        // GO-MF has ≈1.1 parents per concept.
        relationships: concepts - 1 + concepts / 10,
        depth: GO_DEPTH,
        seed: 0x60_F0_01,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_taxonomy_matches_paper_shape() {
        let t = go_like_taxonomy();
        assert_eq!(t.concept_count(), 7800);
        assert_eq!(t.max_depth(), 14);
        assert_eq!(t.roots().len(), 1);
        let rels = t.relationship_count();
        assert!(rels > 7800, "DAG with multi-parents: {rels}");
        // Mean ancestor count stays modest (paper's d in Lemma 1).
        let d = t.avg_ancestor_count();
        assert!((3.0..25.0).contains(&d), "avg ancestors {d}");
    }

    #[test]
    fn scaled_taxonomy_keeps_depth() {
        let t = go_like_taxonomy_scaled(300);
        assert_eq!(t.concept_count(), 300);
        assert_eq!(t.max_depth(), 14);
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(
            go_like_taxonomy_scaled(100).edge_list(),
            go_like_taxonomy_scaled(100).edge_list()
        );
    }
}
