//! Synthetic data generators reproducing the Taxogram paper's workloads.
//!
//! The paper evaluates on (§4.1):
//!
//! * synthetic graph databases over the Gene Ontology molecular-function
//!   subontology (~7,800 concepts, 14 levels), varying database size,
//!   graph size, and edge density (Table 1 rows `D*`, `NC*`, `ED*`);
//! * synthetic graph databases over synthetic taxonomies of varying depth
//!   (`TD*`) and concept count (`TS*`);
//! * 25 KEGG metabolic pathways across 30 prokaryotic organisms (Table 2);
//! * the PTC/NTP carcinogenicity molecules (416 graphs) under the atom
//!   taxonomy of Figure 4.1 (`PTE`).
//!
//! GO, KEGG, and PTC snapshots from May 2007 are not redistributable
//! here, so this crate builds *statistical stand-ins* with the same shape
//! parameters (documented per generator and in DESIGN.md §4). All
//! generators are deterministic given a seed.

mod go;
mod pathways;
mod pte;
pub mod registry;
mod synth;

pub use go::{go_like_taxonomy, go_like_taxonomy_scaled, GO_CONCEPTS, GO_DEPTH};
pub use pathways::{pathway_corpus, pathway_database, PathwayDataset, PathwaySpec, PATHWAYS};
pub use pte::{pte_atom_taxonomy, pte_like_dataset, PteDataset, BOND_LABELS};
pub use synth::{
    generate_database, generate_scaled_taxonomy, generate_taxonomy, GraphGenConfig, LabelPool,
    ScaledTaxonomyConfig, Sizing, SynthTaxonomyConfig,
};
