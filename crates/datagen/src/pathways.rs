//! A KEGG-like metabolic-pathway corpus (paper Table 2).
//!
//! The paper mines 25 metabolic pathways across 30 prokaryotic organisms
//! (KEGG, May 2007): per pathway, each organism contributes one
//! "pathway functionality template" — a graph whose nodes are GO
//! molecular-function annotations of the catalyzing enzymes and whose
//! edges are shared substrates/products. KEGG snapshots are not
//! redistributable here, so this simulator reproduces the two properties
//! Table 2 actually measures:
//!
//! * per-pathway graph sizes (taken verbatim from Table 2's
//!   `Avg. Graph Size` columns), and
//! * per-pathway *conservation* — how much of the annotation structure is
//!   shared across organisms — which drives pattern counts and hence
//!   running time. Conservation here is calibrated from Table 2's pattern
//!   counts (e.g. Nitrogen metabolism, 1486 patterns → highly conserved;
//!   Vitamin B6 metabolism, 2 patterns → barely conserved).
//!
//! Each organism's variant keeps a conserved core of the pathway template
//! (same topology, labels re-drawn within the same taxonomy subtree, so
//! generalized patterns exist at the subtree roots) and rewires the rest.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
use tsg_taxonomy::Taxonomy;

/// Static description of one pathway (name and Table 2 shape numbers).
#[derive(Clone, Copy, Debug)]
pub struct PathwaySpec {
    /// KEGG pathway name as listed in Table 2.
    pub name: &'static str,
    /// Average vertex count per organism variant (Table 2).
    pub avg_nodes: f64,
    /// Average edge count per organism variant (Table 2).
    pub avg_edges: f64,
    /// Fraction of the template conserved across organisms, calibrated
    /// from Table 2's pattern counts into `[0.15, 0.95]`.
    pub conservation: f64,
}

/// One generated pathway dataset: the spec plus one graph per organism.
#[derive(Clone, Debug)]
pub struct PathwayDataset {
    /// The pathway description.
    pub spec: PathwaySpec,
    /// One annotation graph per organism.
    pub database: GraphDatabase,
}

/// The 25 pathways of Table 2 (name, avg nodes, avg edges) with
/// conservation calibrated from the reported pattern counts.
pub const PATHWAYS: [PathwaySpec; 25] = [
    PathwaySpec { name: "Vitamin B6 metabolism", avg_nodes: 7.03, avg_edges: 4.03, conservation: 0.16 },
    PathwaySpec { name: "Inositol phosphate metabolism", avg_nodes: 4.33, avg_edges: 3.33, conservation: 0.28 },
    PathwaySpec { name: "Sulfur metabolism", avg_nodes: 5.17, avg_edges: 3.23, conservation: 0.28 },
    PathwaySpec { name: "Benzoate degradation via hydroxylation", avg_nodes: 7.60, avg_edges: 5.30, conservation: 0.48 },
    PathwaySpec { name: "Riboflavin metabolism", avg_nodes: 7.63, avg_edges: 4.73, conservation: 0.33 },
    PathwaySpec { name: "Nicotinate and nicotinamide metabolism", avg_nodes: 6.67, avg_edges: 4.40, conservation: 0.44 },
    PathwaySpec { name: "Thiamine metabolism", avg_nodes: 4.57, avg_edges: 3.60, conservation: 0.40 },
    PathwaySpec { name: "Lysine biosynthesis", avg_nodes: 8.73, avg_edges: 7.67, conservation: 0.48 },
    PathwaySpec { name: "Pentose and glucuronate interconversions", avg_nodes: 10.83, avg_edges: 6.70, conservation: 0.47 },
    PathwaySpec { name: "Synthesis and degradation of ketone bodies", avg_nodes: 4.97, avg_edges: 4.10, conservation: 0.42 },
    PathwaySpec { name: "Histidine metabolism", avg_nodes: 8.83, avg_edges: 6.60, conservation: 0.40 },
    PathwaySpec { name: "Tyrosine metabolism", avg_nodes: 7.93, avg_edges: 6.13, conservation: 0.47 },
    PathwaySpec { name: "Phenylalanine metabolism", avg_nodes: 5.80, avg_edges: 4.40, conservation: 0.42 },
    PathwaySpec { name: "Nucleotide sugars metabolism", avg_nodes: 7.57, avg_edges: 6.30, conservation: 0.54 },
    PathwaySpec { name: "Aminosugars metabolism", avg_nodes: 8.20, avg_edges: 6.60, conservation: 0.58 },
    PathwaySpec { name: "Citrate cycle (TCA cycle)", avg_nodes: 10.80, avg_edges: 8.63, conservation: 0.44 },
    PathwaySpec { name: "Glyoxylate and dicarboxylate metabolism", avg_nodes: 9.10, avg_edges: 7.53, conservation: 0.52 },
    PathwaySpec { name: "Selenoamino acid metabolism", avg_nodes: 6.90, avg_edges: 6.50, conservation: 0.57 },
    PathwaySpec { name: "Valine, leucine and isoleucine biosynthesis", avg_nodes: 5.23, avg_edges: 4.70, conservation: 0.50 },
    PathwaySpec { name: "Butanoate metabolism", avg_nodes: 10.57, avg_edges: 8.80, conservation: 0.52 },
    PathwaySpec { name: "beta-Alanine metabolism", avg_nodes: 5.10, avg_edges: 5.60, conservation: 0.72 },
    PathwaySpec { name: "Glycerolipid metabolism", avg_nodes: 8.10, avg_edges: 7.23, conservation: 0.60 },
    PathwaySpec { name: "Biosynthesis of steroids", avg_nodes: 7.97, avg_edges: 8.87, conservation: 0.62 },
    PathwaySpec { name: "Nitrogen metabolism", avg_nodes: 7.20, avg_edges: 7.27, conservation: 0.93 },
    PathwaySpec { name: "Pantothenate and CoA biosynthesis", avg_nodes: 10.43, avg_edges: 9.53, conservation: 0.46 },
];

/// Generates the pathway corpus over a GO-like taxonomy: for each of the
/// 25 pathways, one database with `organisms` graphs.
///
/// Conserved template nodes keep their taxonomy *subtree*: every organism
/// draws a (reflexive) descendant of the template concept, so the
/// template concept itself generalizes all variants — exactly the pattern
/// structure Taxogram is meant to find. Non-conserved nodes are relabeled
/// freely and their edges rewired.
pub fn pathway_corpus(taxonomy: &Taxonomy, organisms: usize, seed: u64) -> Vec<PathwayDataset> {
    PATHWAYS
        .iter()
        .enumerate()
        .map(|(i, spec)| PathwayDataset {
            spec: *spec,
            database: pathway_database(taxonomy, spec, organisms, seed ^ (i as u64) << 8),
        })
        .collect()
}

/// Generates the per-organism database for one pathway.
pub fn pathway_database(
    taxonomy: &Taxonomy,
    spec: &PathwaySpec,
    organisms: usize,
    seed: u64,
) -> GraphDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    // Template concepts: interior concepts at mid depth, so each has a
    // proper subtree for organisms to draw specializations from.
    let mid: Vec<NodeLabel> = taxonomy
        .concepts()
        .filter(|&c| {
            let d = taxonomy.depth(c);
            d >= taxonomy.max_depth() / 3
                && d <= 2 * taxonomy.max_depth() / 3
                && !taxonomy.children(c).is_empty()
        })
        .collect();
    let all: Vec<NodeLabel> = taxonomy.concepts().collect();
    assert!(!mid.is_empty(), "taxonomy too small for pathway templates");

    let n_nodes = spec.avg_nodes.round().max(2.0) as usize;
    let n_edges = spec.avg_edges.round().max(1.0) as usize;
    // The pathway template: concepts and topology shared by all organisms.
    let template_labels: Vec<NodeLabel> =
        (0..n_nodes).map(|_| mid[rng.random_range(0..mid.len())]).collect(); // tsg-lint: allow(index) — index drawn from 0..len of the same vec
    let mut template_edges: Vec<(usize, usize)> = Vec::new();
    // A connected backbone plus extra reaction links.
    for v in 1..n_nodes {
        let u = rng.random_range(0..v);
        template_edges.push((u, v));
    }
    let mut guard = 0;
    while template_edges.len() < n_edges.max(n_nodes - 1) && guard < 100 {
        guard += 1;
        let u = rng.random_range(0..n_nodes);
        let v = rng.random_range(0..n_nodes);
        if u != v && !template_edges.contains(&(u, v)) && !template_edges.contains(&(v, u)) {
            template_edges.push((u, v));
        }
    }

    let interaction = EdgeLabel(0);
    let mut db = GraphDatabase::new();
    for _ in 0..organisms {
        let mut g = LabeledGraph::new();
        for &tl in &template_labels {
            let label = if rng.random_bool(spec.conservation) {
                // Conserved: some enzyme whose annotation specializes the
                // template concept.
                let subtree: Vec<usize> = taxonomy.descendants(tl).iter().collect();
                NodeLabel(subtree[rng.random_range(0..subtree.len())] as u32) // tsg-lint: allow(index) — index drawn from 0..len of the same vec
            } else {
                // Organism-specific enzyme: arbitrary annotation.
                all[rng.random_range(0..all.len())] // tsg-lint: allow(index) — index drawn from 0..len of the same vec
            };
            g.add_node(label);
        }
        for &(u, v) in &template_edges {
            // Reaction links survive with probability tied to conservation.
            if rng.random_bool(0.5 + spec.conservation / 2.0) {
                let _ = g.add_edge(u, v, interaction);
            }
        }
        db.push(g);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::go::go_like_taxonomy_scaled;

    #[test]
    fn corpus_has_25_pathways_and_30_organisms() {
        let t = go_like_taxonomy_scaled(400);
        let corpus = pathway_corpus(&t, 30, 99);
        assert_eq!(corpus.len(), 25);
        for ds in &corpus {
            assert_eq!(ds.database.len(), 30);
        }
    }

    #[test]
    fn sizes_track_table_2() {
        let t = go_like_taxonomy_scaled(400);
        let ds = pathway_database(&t, &PATHWAYS[15], 30, 5); // TCA cycle
        let s = ds.stats();
        assert!((s.avg_nodes - PATHWAYS[15].avg_nodes).abs() < 2.0, "{}", s.avg_nodes);
        assert!(s.avg_edges > 4.0);
    }

    #[test]
    fn conserved_pathways_share_generalized_structure() {
        // High-conservation pathway (Nitrogen metabolism) must yield more
        // generalized overlap than the low-conservation one (Vitamin B6):
        // measure by Taxogram pattern counts at θ = 0.5.
        let t = go_like_taxonomy_scaled(400);
        let hi = pathway_database(&t, &PATHWAYS[23], 12, 5);
        let lo = pathway_database(&t, &PATHWAYS[0], 12, 5);
        let mine = |db: &GraphDatabase| {
            taxogram_core::Taxogram::new(taxogram_core::TaxogramConfig::with_threshold(0.5))
                .mine(db, &t)
                .unwrap()
                .patterns
                .len()
        };
        let (hi_n, lo_n) = (mine(&hi), mine(&lo));
        assert!(
            hi_n > lo_n,
            "nitrogen metabolism ({hi_n}) should out-pattern vitamin B6 ({lo_n})"
        );
    }

    #[test]
    fn determinism() {
        let t = go_like_taxonomy_scaled(200);
        let a = pathway_database(&t, &PATHWAYS[3], 5, 1);
        let b = pathway_database(&t, &PATHWAYS[3], 5, 1);
        assert_eq!(
            tsg_graph::io::write_database(&a),
            tsg_graph::io::write_database(&b)
        );
    }
}
