//! A PTE-like chemical compound dataset (paper Figure 4.8, Table 1 row
//! `PTE`).
//!
//! The paper's second real dataset is the Predictive Toxicology
//! Challenge / NTP carcinogenicity set: "416 molecular structures where
//! atoms are organized hierarchically as illustrated in Figure 4.1 …
//! small-case letters represent aromatic atoms while upper-case letters
//! stand for non-aromatic atoms". Table 1 reports 416 graphs, 22.6 avg
//! nodes, 23.0 avg edges, 24 distinct labels, density 0.12.
//!
//! This module builds (a) a concrete rendition of the Figure 4.1 atom
//! taxonomy — element-family groupings over 24 atom leaves, with aromatic
//! and non-aromatic variants of C/N/O/S under their family — and (b) a
//! 416-molecule synthetic set whose composition is dominated by carbon,
//! hydrogen and oxygen ("most of the compounds … highly consist of three
//! atoms, namely, C, H, and O"), which is what drives Figure 4.8's
//! pattern-count explosion at high support thresholds.

// tsg-lint: allow(index) — indexes the hardcoded Table 1 constant arrays

// tsg-lint: allow(panic) — generator builds from the hardcoded Table 1 constants; the expects assert that static data, not input

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tsg_graph::{EdgeLabel, GraphDatabase, LabelTable, LabeledGraph, NodeLabel};
use tsg_taxonomy::{Taxonomy, TaxonomyBuilder};

/// The PTE bundle: names, taxonomy, and the leaf labels used as atoms.
#[derive(Clone, Debug)]
pub struct PteDataset {
    /// Label names ("atom", "carbon family", "C", "c", …).
    pub names: LabelTable,
    /// The Figure 4.1-style atom taxonomy (3 levels).
    pub taxonomy: Taxonomy,
    /// The 416 molecule graphs.
    pub database: GraphDatabase,
}

/// Builds the Figure 4.1-style atom taxonomy and its label table.
///
/// Layout: a root `atom`; one grouping concept per element family; under
/// each family the concrete atom labels (24 leaves), with lowercase
/// aromatic variants where chemistry has them.
pub fn pte_atom_taxonomy() -> (LabelTable, Taxonomy, Vec<NodeLabel>) {
    let mut names = LabelTable::new();
    let mut b = TaxonomyBuilder::new();
    let declare = |names: &mut LabelTable, b: &mut TaxonomyBuilder, n: &str| {
        let l = names.intern(n);
        let c = b.add_concept();
        assert_eq!(l, c, "label table and taxonomy ids stay aligned");
        l
    };
    let root = declare(&mut names, &mut b, "atom");
    let families: [(&str, &[&str]); 8] = [
        ("carbon family", &["C", "c"]),
        ("nitrogen family", &["N", "n"]),
        ("oxygen family", &["O", "o"]),
        ("sulfur family", &["S", "s"]),
        ("phosphorus family", &["P", "p"]),
        ("halogen", &["F", "Cl", "Br", "I"]),
        ("metal", &["Na", "K", "Ca", "Zn", "Cu", "Pb", "Sn", "Te", "Mn"]),
        ("hydrogen family", &["H"]),
    ];
    let mut leaves = Vec::new();
    for (family, atoms) in families {
        let f = declare(&mut names, &mut b, family);
        b.is_a(f, root).expect("family under root");
        for atom in atoms {
            let a = declare(&mut names, &mut b, atom);
            b.is_a(a, f).expect("atom under family");
            leaves.push(a);
        }
    }
    let taxonomy = b.build().expect("three-level tree is acyclic");
    assert_eq!(leaves.len(), 24, "Table 1: 24 distinct atom labels");
    (names, taxonomy, leaves)
}

/// Bond labels: single, double, triple, aromatic.
pub const BOND_LABELS: u32 = 4;

/// Builds the 416-molecule PTE-like dataset. Deterministic per seed.
pub fn pte_like_dataset(seed: u64) -> PteDataset {
    let (names, taxonomy, leaves) = pte_atom_taxonomy();
    let by_name = |n: &str| names.get(n).expect("atom interned");
    let c = by_name("C");
    let c_ar = by_name("c");
    let h = by_name("H");
    let o = by_name("O");
    let n_at = by_name("N");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDatabase::new();
    for _ in 0..416 {
        db.push(random_molecule(
            &mut rng,
            &leaves,
            (c, c_ar, h, o, n_at),
        ));
    }
    PteDataset {
        names,
        taxonomy,
        database: db,
    }
}

/// One random molecule: a carbon skeleton (with occasional aromatic
/// rings), heteroatom substitutions, and hydrogens attached to fill —
/// sized to match Table 1's PTE row (≈22.6 atoms, ≈23 bonds).
fn random_molecule(
    rng: &mut StdRng,
    leaves: &[NodeLabel],
    (c, c_ar, h, o, n_at): (NodeLabel, NodeLabel, NodeLabel, NodeLabel, NodeLabel),
) -> LabeledGraph {
    let single = EdgeLabel(0);
    let double = EdgeLabel(1);
    let aromatic = EdgeLabel(3);
    let mut g = LabeledGraph::new();

    // Skeleton: 4–14 heavy atoms in a chain with branches.
    let heavy = rng.random_range(4..=14);
    let mut heavy_nodes = Vec::with_capacity(heavy);
    for i in 0..heavy {
        let label = match rng.random_range(0..100) {
            0..=64 => c,
            65..=79 => o,
            80..=89 => n_at,
            _ => leaves[rng.random_range(0..leaves.len())],
        };
        let v = g.add_node(label);
        heavy_nodes.push(v);
        if i > 0 {
            let anchor = heavy_nodes[rng.random_range(0..i)];
            let bond = if rng.random_bool(0.15) { double } else { single };
            let _ = g.add_edge(anchor, v, bond);
        }
    }
    // Occasionally fuse an aromatic 6-ring.
    if rng.random_bool(0.45) {
        let mut ring = Vec::with_capacity(6);
        for _ in 0..6 {
            ring.push(g.add_node(c_ar));
        }
        for i in 0..6 {
            let _ = g.add_edge(ring[i], ring[(i + 1) % 6], aromatic);
        }
        let attach = heavy_nodes[rng.random_range(0..heavy_nodes.len())];
        let _ = g.add_edge(attach, ring[0], single);
    }
    // Hydrogens: fill carbons toward valence (1–3 H per heavy atom site).
    let sites: Vec<usize> = (0..g.node_count()).collect();
    for &v in &sites {
        if g.label(v) == c || g.label(v) == o || g.label(v) == n_at {
            let free = 4usize.saturating_sub(g.degree(v));
            let hydrogens = rng.random_range(0..=free.min(3));
            for _ in 0..hydrogens {
                let hv = g.add_node(h);
                let _ = g.add_edge(v, hv, single);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_matches_figure_4_1_shape() {
        let (names, t, leaves) = pte_atom_taxonomy();
        assert_eq!(leaves.len(), 24);
        assert_eq!(t.max_depth(), 2);
        assert_eq!(t.roots().len(), 1);
        let c = names.get("C").unwrap();
        let c_ar = names.get("c").unwrap();
        let fam = names.get("carbon family").unwrap();
        assert!(t.is_ancestor(fam, c));
        assert!(t.is_ancestor(fam, c_ar));
        assert!(!t.is_ancestor(c, c_ar), "aromatic and plain C are siblings");
    }

    #[test]
    fn dataset_matches_table_1_row() {
        let ds = pte_like_dataset(2008);
        let s = ds.database.stats();
        assert_eq!(s.graph_count, 416);
        assert!((15.0..30.0).contains(&s.avg_nodes), "avg nodes {}", s.avg_nodes);
        assert!((15.0..30.0).contains(&s.avg_edges), "avg edges {}", s.avg_edges);
        assert!(s.distinct_node_labels <= 24);
        assert!(
            (0.05..0.2).contains(&s.avg_edge_density),
            "density {}",
            s.avg_edge_density
        );
    }

    #[test]
    fn composition_is_cho_dominated() {
        let ds = pte_like_dataset(2008);
        let (c, h, o) = (
            ds.names.get("C").unwrap(),
            ds.names.get("H").unwrap(),
            ds.names.get("O").unwrap(),
        );
        let mut cho = 0usize;
        let mut total = 0usize;
        for (_, g) in ds.database.iter() {
            for &l in g.labels() {
                total += 1;
                if l == c || l == h || l == o {
                    cho += 1;
                }
            }
        }
        assert!(
            cho as f64 / total as f64 > 0.6,
            "C/H/O fraction {}",
            cho as f64 / total as f64
        );
    }

    #[test]
    fn all_labels_are_atoms() {
        let ds = pte_like_dataset(1);
        for (_, g) in ds.database.iter() {
            for &l in g.labels() {
                assert!(ds.taxonomy.contains(l));
                assert!(
                    ds.taxonomy.children(l).is_empty(),
                    "molecules carry leaf atom labels only"
                );
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = pte_like_dataset(5);
        let b = pte_like_dataset(5);
        assert_eq!(
            tsg_graph::io::write_database(&a.database),
            tsg_graph::io::write_database(&b.database)
        );
    }
}
