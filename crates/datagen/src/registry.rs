//! The dataset registry: every Table 1 dataset, reconstructible at any
//! scale.
//!
//! Table 1 rows and their generator parameters:
//!
//! | family | varies | fixed |
//! |---|---|---|
//! | `D1000`–`D5000` | database size | GO taxonomy, max 20 edges, 10 edge labels, density ≈0.26 |
//! | `NC10`–`NC40` | max graph size (edges) | database 4000, GO taxonomy |
//! | `ED06`–`ED11` | edge density | database 3000, GO taxonomy |
//! | `TD5`–`TD15` | taxonomy depth | 1000 concepts / 2000 relationships, database 4000, max 40 edges |
//! | `TS25`–`TS3200` | taxonomy concept count | fixed depth, database 4000, max 40 edges |
//! | `PTE` | — | 416 molecules, Figure 4.1 atom taxonomy |
//!
//! `scale` multiplies database sizes (and shrinks the GO-like taxonomy
//! proportionally for sub-1.0 scales) so the full experiment suite runs in
//! minutes on a laptop while preserving every curve's *shape*; scale 1.0
//! reproduces the paper's sizes. EXPERIMENTS.md records which scale each
//! reported run used.

use crate::go::{go_like_taxonomy_scaled, GO_CONCEPTS};
use crate::pte::pte_like_dataset;
use crate::synth::{
    generate_database, generate_taxonomy, GraphGenConfig, LabelPool, Sizing, SynthTaxonomyConfig,
};
use tsg_graph::GraphDatabase;
use tsg_taxonomy::Taxonomy;

/// Identifies one Table 1 dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DatasetId {
    /// `D{n}`: database-size family (n ∈ 1000..=5000).
    D(usize),
    /// `NC{m}`: max-graph-size family (m ∈ {10, 20, 30, 40} edges).
    NC(usize),
    /// `ED{d}`: edge-density family (d ∈ {0.06, 0.09, 0.10, 0.11}).
    ED(f64),
    /// `TD{k}`: taxonomy-depth family (k ∈ 5..=15).
    TD(usize),
    /// `TS{c}`: taxonomy-size family (c ∈ {25, 50, …, 3200} concepts).
    TS(usize),
    /// The PTE chemical dataset.
    PTE,
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetId::D(n) => write!(f, "D{n}"),
            DatasetId::NC(m) => write!(f, "NC{m}"),
            DatasetId::ED(d) => write!(f, "ED{:02}", (d * 100.0).round() as u32),
            DatasetId::TD(k) => write!(f, "TD{k}"),
            DatasetId::TS(c) => write!(f, "TS{c}"),
            DatasetId::PTE => write!(f, "PTE"),
        }
    }
}

/// A generated dataset: id, taxonomy, database.
pub struct Dataset {
    /// The Table 1 identifier.
    pub id: DatasetId,
    /// The label taxonomy the database is defined over.
    pub taxonomy: Taxonomy,
    /// The graph database.
    pub database: GraphDatabase,
}

/// Builds one dataset at the given scale (`1.0` = paper size).
///
/// # Panics
/// Panics if `scale` is not in `(0, 1]` or the id's parameter is outside
/// the families above.
pub fn build(id: DatasetId, scale: f64) -> Dataset {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let db_size = |n: usize| ((n as f64 * scale).round() as usize).max(10);
    let go_size = || {
        let c = ((GO_CONCEPTS as f64 * scale.max(0.02)).round() as usize).max(120);
        go_like_taxonomy_scaled(c)
    };
    match id {
        DatasetId::D(n) => {
            assert!((1000..=5000).contains(&n));
            let taxonomy = go_size();
            let database = generate_database(
                &taxonomy,
                &GraphGenConfig {
                    graph_count: db_size(n),
                    max_edges: 20,
                    edge_density: 0.26,
                    sizing: Sizing::EdgeDriven,
                    edge_labels: 10,
                    label_pool: LabelPool::ByLevelUniform,
                    directed: false,
                    seed: 0xD000 + n as u64,
                },
            );
            Dataset { id, taxonomy, database }
        }
        DatasetId::NC(m) => {
            assert!(matches!(m, 10 | 20 | 30 | 40));
            // Densities from Table 1: NC10 0.32, NC20 0.27, NC30 0.23, NC40 0.20.
            let density = match m {
                10 => 0.32,
                20 => 0.27,
                30 => 0.23,
                _ => 0.20,
            };
            let taxonomy = go_size();
            let database = generate_database(
                &taxonomy,
                &GraphGenConfig {
                    graph_count: db_size(4000),
                    max_edges: m,
                    edge_density: density,
                    sizing: Sizing::EdgeDriven,
                    edge_labels: 10,
                    label_pool: LabelPool::ByLevelUniform,
                    directed: false,
                    seed: 0xAC00 + m as u64,
                },
            );
            Dataset { id, taxonomy, database }
        }
        DatasetId::ED(d) => {
            let taxonomy = go_size();
            // Table 1's ED rows hold node counts near 13 and let edge
            // counts follow the density (6.5 → 10.3 edges as density goes
            // 0.06 → 0.11), so sizing is node-driven here.
            let database = generate_database(
                &taxonomy,
                &GraphGenConfig {
                    graph_count: db_size(3000),
                    max_edges: 24,
                    edge_density: d,
                    sizing: Sizing::NodeDriven { min_nodes: 10, max_nodes: 17 },
                    edge_labels: 10,
                    label_pool: LabelPool::ByLevelUniform,
                    directed: false,
                    seed: 0xED00 + (d * 100.0) as u64,
                },
            );
            Dataset { id, taxonomy, database }
        }
        DatasetId::TD(k) => {
            assert!((5..=15).contains(&k));
            let taxonomy = generate_taxonomy(&SynthTaxonomyConfig {
                concepts: 1000,
                relationships: 2000,
                depth: k,
                seed: 0x7D00 + k as u64,
            });
            let database = generate_database(
                &taxonomy,
                &GraphGenConfig {
                    graph_count: db_size(4000),
                    max_edges: 40,
                    edge_density: 0.20,
                    sizing: Sizing::EdgeDriven,
                    edge_labels: 10,
                    label_pool: LabelPool::ByLevelUniform,
                    directed: false,
                    seed: 0x7D00 + k as u64,
                },
            );
            Dataset { id, taxonomy, database }
        }
        DatasetId::TS(c) => {
            assert!(matches!(c, 25 | 50 | 100 | 200 | 400 | 800 | 1600 | 3200));
            // Fixed depth; relationships scale 2× concepts as in TD.
            let depth = 6.min(c - 1);
            let taxonomy = generate_taxonomy(&SynthTaxonomyConfig {
                concepts: c,
                relationships: c * 2,
                depth,
                seed: 0x7500 + c as u64,
            });
            let database = generate_database(
                &taxonomy,
                &GraphGenConfig {
                    graph_count: db_size(4000),
                    max_edges: 40,
                    edge_density: 0.21,
                    sizing: Sizing::EdgeDriven,
                    edge_labels: 10,
                    label_pool: LabelPool::ByLevelUniform,
                    directed: false,
                    seed: 0x7500 + c as u64,
                },
            );
            Dataset { id, taxonomy, database }
        }
        DatasetId::PTE => {
            let pte = pte_like_dataset(2008);
            Dataset {
                id,
                taxonomy: pte.taxonomy,
                database: pte.database,
            }
        }
    }
}

/// All Table 1 ids in the paper's row order.
pub fn table1_ids() -> Vec<DatasetId> {
    let mut ids = vec![];
    for n in [1000, 2000, 3000, 4000, 5000] {
        ids.push(DatasetId::D(n));
    }
    for m in [10, 20, 30, 40] {
        ids.push(DatasetId::NC(m));
    }
    for d in [0.06, 0.09, 0.10, 0.11] {
        ids.push(DatasetId::ED(d));
    }
    for k in 5..=15 {
        ids.push(DatasetId::TD(k));
    }
    for c in [25, 50, 100, 200, 400, 800, 1600, 3200] {
        ids.push(DatasetId::TS(c));
    }
    ids.push(DatasetId::PTE);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_33_rows() {
        assert_eq!(table1_ids().len(), 33);
    }

    #[test]
    fn display_matches_paper_ids() {
        assert_eq!(DatasetId::D(1000).to_string(), "D1000");
        assert_eq!(DatasetId::NC(20).to_string(), "NC20");
        assert_eq!(DatasetId::ED(0.06).to_string(), "ED06");
        assert_eq!(DatasetId::TD(5).to_string(), "TD5");
        assert_eq!(DatasetId::TS(3200).to_string(), "TS3200");
        assert_eq!(DatasetId::PTE.to_string(), "PTE");
    }

    #[test]
    fn scaled_build_produces_sane_stats() {
        let ds = build(DatasetId::D(1000), 0.05);
        assert_eq!(ds.database.len(), 50);
        let s = ds.database.stats();
        assert!((6.0..13.0).contains(&s.avg_nodes));
        let ds = build(DatasetId::TD(5), 0.01);
        assert_eq!(ds.taxonomy.max_depth(), 5);
        assert_eq!(ds.database.len(), 40);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_zero_scale() {
        build(DatasetId::D(1000), 0.0);
    }

    #[test]
    fn pte_is_unscaled() {
        let ds = build(DatasetId::PTE, 0.5);
        assert_eq!(ds.database.len(), 416);
    }
}
