//! The synthetic taxonomy and graph generators of §4.1.
//!
//! * The taxonomy generator "expects taxonomy size which is characterized
//!   by both the number of concepts and relationships among concepts,
//!   [and] taxonomy depth which defines the number of levels".
//! * The graph generator "expects a label taxonomy, maximum node and edge
//!   counts for graphs. The edges are created based on an edge density
//!   parameter … edge density is defined as 2·#edges/(#nodes)²"
//!   (after Worlein et al.).
//!
//! Given an edge count `E` drawn uniformly up to the configured maximum
//! and the target density `d`, the vertex count follows as
//! `n = round(√(2E/d))` — this reproduces the node/edge/density columns of
//! the paper's Table 1 (e.g. max 20 edges at density 0.27 gives ≈9.4-node,
//! ≈11-edge graphs, exactly the `D*` rows).

// tsg-lint: allow(index) — the generator indexes its own level/label vectors with rng draws bounded by their lengths

// tsg-lint: allow(panic) — levelled construction orders parents before children, so the asserted acyclicity/freshness invariants hold by construction

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
use tsg_taxonomy::{Taxonomy, TaxonomyBuilder};

/// Parameters for [`generate_taxonomy`].
#[derive(Clone, Copy, Debug)]
pub struct SynthTaxonomyConfig {
    /// Total number of concepts.
    pub concepts: usize,
    /// Total number of is-a relationships; the excess over `concepts - 1`
    /// becomes extra (multi-parent, DAG) edges.
    pub relationships: usize,
    /// Number of levels below the root: the built taxonomy has
    /// `max_depth() == depth` exactly (provided `concepts > depth`).
    pub depth: usize,
    /// RNG seed; equal configs with equal seeds are identical.
    pub seed: u64,
}

/// Generates a single-rooted DAG taxonomy.
///
/// Concept 0 is the root. Every other concept sits at an exact level in
/// `1..=depth` with all parents at the previous level, so the depth
/// guarantee is structural. Level populations grow geometrically, which
/// matches the fan-out shape of real annotation ontologies.
///
/// # Panics
/// Panics if `concepts < depth + 1` (cannot realize the depth) or
/// `depth == 0`.
pub fn generate_taxonomy(config: &SynthTaxonomyConfig) -> Taxonomy {
    assert!(config.depth >= 1, "depth must be at least 1");
    assert!(
        config.concepts > config.depth,
        "need more than {} concepts to realize depth {}",
        config.depth,
        config.depth
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.concepts;
    let depth = config.depth;

    // Pick a level for every non-root concept: the first `depth` concepts
    // pin levels 1..=depth (so the full depth exists), the rest draw a
    // level with geometric weights favoring deeper levels (shape of GO).
    let mut level_of = vec![0usize; n];
    let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); depth + 1];
    by_level[0].push(0);
    #[allow(clippy::needless_range_loop)] // c indexes level_of and by_level together
    for c in 1..n {
        let lvl = if c <= depth {
            c
        } else {
            // Geometric-ish weights: level l gets weight ~ 1.35^l.
            let total: f64 = (1..=depth).map(|l| 1.35f64.powi(l as i32)).sum();
            let mut pick = rng.random::<f64>() * total;
            let mut chosen = depth;
            for l in 1..=depth {
                let w = 1.35f64.powi(l as i32);
                if pick < w {
                    chosen = l;
                    break;
                }
                pick -= w;
            }
            chosen
        };
        level_of[c] = lvl;
        by_level[lvl].push(c);
    }

    let mut b = TaxonomyBuilder::with_concepts(n);
    // Primary parent: uniform among previous level.
    for c in 1..n {
        let prev = &by_level[level_of[c] - 1];
        let p = prev[rng.random_range(0..prev.len())];
        b.is_a(NodeLabel(c as u32), NodeLabel(p as u32))
            .expect("fresh primary parent edge");
    }
    // Extra relationships: additional parents one level up.
    let extra = config.relationships.saturating_sub(n - 1);
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < extra * 20 {
        attempts += 1;
        let c = rng.random_range(1..n);
        let prev = &by_level[level_of[c] - 1];
        if prev.len() <= 1 {
            continue;
        }
        let p = prev[rng.random_range(0..prev.len())];
        if b.is_a(NodeLabel(c as u32), NodeLabel(p as u32)).is_ok() {
            added += 1;
        }
    }
    b.build().expect("levelled construction is acyclic")
}

/// Parameters for [`generate_scaled_taxonomy`].
#[derive(Clone, Copy, Debug)]
pub struct ScaledTaxonomyConfig {
    /// Total number of concepts (intended range 10⁵–10⁶).
    pub concepts: usize,
    /// Expected number of cross-link (second-parent) edges per 1000
    /// concepts; 0 yields a pure tree (the NCBI shape), 1000 gives every
    /// concept a second parent on average.
    pub cross_links_per_mille: u32,
    /// RNG seed; equal configs with equal seeds are identical.
    pub seed: u64,
}

/// Generates a large random-recursive-tree taxonomy with tunable
/// cross-link density, sized for the interval-reachability scaling
/// benchmarks (10⁵–10⁶ concepts).
///
/// Concept 0 is the root; every later concept's primary parent is drawn
/// uniformly among all earlier concepts, which yields the logarithmic
/// expected depth (≈ `e·ln n`) and heavy-tailed fan-out of real
/// ontologies like NCBI. Cross-links add a second uniformly-drawn
/// earlier parent to randomly chosen concepts, turning the tree into a
/// DAG that exercises the extra-ancestor fallback sets.
///
/// # Panics
/// Panics if `concepts < 2`.
pub fn generate_scaled_taxonomy(config: &ScaledTaxonomyConfig) -> Taxonomy {
    assert!(config.concepts >= 2, "need at least a root and one child");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.concepts;
    let mut b = TaxonomyBuilder::with_concepts(n);
    for c in 1..n {
        let p = rng.random_range(0..c);
        b.is_a(NodeLabel(c as u32), NodeLabel(p as u32))
            .expect("fresh primary parent edge");
        if rng.random_range(0..1000u32) < config.cross_links_per_mille && c > 1 {
            let q = rng.random_range(0..c);
            // A duplicate of the primary parent is simply skipped; the
            // per-mille knob is an expectation, not an exact count.
            let _ = b.is_a(NodeLabel(c as u32), NodeLabel(q as u32));
        }
    }
    b.build().expect("parents precede children, so acyclic")
}

/// How the graph generator draws node labels from the taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelPool {
    /// Uniform over all concepts.
    Uniform,
    /// Pick a level uniformly, then a concept uniformly within it — the
    /// paper's choice for the taxonomy-depth experiments ("node labels …
    /// selected from each level of taxonomy with equal probability").
    ByLevelUniform,
    /// Uniform over leaf concepts only (the realistic annotation case:
    /// curators assign the most specific concept they can).
    Leaves,
}

/// How per-graph sizes are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sizing {
    /// Draw the edge count uniformly in `[2, max_edges]` and derive the
    /// vertex count from the density (`n = √(2E/d)`), as the `D*`/`NC*`
    /// families do.
    EdgeDriven,
    /// Draw the vertex count uniformly in `[min, max]` and derive the
    /// edge count from the density (`E = d·n²/2`) — the `ED*` family
    /// varies density at a fixed node-count range, so edge counts grow
    /// with density (Table 1's ED rows).
    NodeDriven {
        /// Minimum vertex count.
        min_nodes: usize,
        /// Maximum vertex count.
        max_nodes: usize,
    },
}

/// Parameters for [`generate_database`].
#[derive(Clone, Copy, Debug)]
pub struct GraphGenConfig {
    /// Number of graphs.
    pub graph_count: usize,
    /// Maximum edges per graph; per-graph edge counts are uniform in
    /// `[2, max_edges]`.
    pub max_edges: usize,
    /// Target edge density `2·E/n²`.
    pub edge_density: f64,
    /// Size-drawing policy.
    pub sizing: Sizing,
    /// Number of distinct edge labels (10 throughout the paper's
    /// experiments).
    pub edge_labels: u32,
    /// Node label sampling policy.
    pub label_pool: LabelPool,
    /// Generate directed graphs (arc orientation drawn uniformly).
    pub directed: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig {
            graph_count: 1000,
            max_edges: 20,
            edge_density: 0.26,
            sizing: Sizing::EdgeDriven,
            edge_labels: 10,
            label_pool: LabelPool::ByLevelUniform,
            directed: false,
            seed: 7,
        }
    }
}

/// Generates a database of labeled graphs over `taxonomy`.
pub fn generate_database(taxonomy: &Taxonomy, config: &GraphGenConfig) -> GraphDatabase {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Pre-index concepts for the sampling policies.
    let concepts: Vec<NodeLabel> = taxonomy.concepts().collect();
    let max_depth = taxonomy.max_depth() as usize;
    let mut by_level: Vec<Vec<NodeLabel>> = vec![Vec::new(); max_depth + 1];
    for &c in &concepts {
        by_level[taxonomy.depth(c) as usize].push(c);
    }
    by_level.retain(|l| !l.is_empty());
    let leaves: Vec<NodeLabel> = concepts
        .iter()
        .copied()
        .filter(|&c| taxonomy.children(c).is_empty())
        .collect();

    let draw_label = |rng: &mut StdRng| -> NodeLabel {
        match config.label_pool {
            LabelPool::Uniform => concepts[rng.random_range(0..concepts.len())],
            LabelPool::ByLevelUniform => {
                let lvl = &by_level[rng.random_range(0..by_level.len())];
                lvl[rng.random_range(0..lvl.len())]
            }
            LabelPool::Leaves => leaves[rng.random_range(0..leaves.len())],
        }
    };

    let mut db = GraphDatabase::new();
    for _ in 0..config.graph_count {
        let (n, e_target) = match config.sizing {
            Sizing::EdgeDriven => {
                let e = rng.random_range(2..=config.max_edges.max(2));
                let n = ((2.0 * e as f64 / config.edge_density).sqrt().round() as usize).max(2);
                (n, e)
            }
            Sizing::NodeDriven { min_nodes, max_nodes } => {
                let n = rng.random_range(min_nodes.max(2)..=max_nodes.max(2));
                let e = ((config.edge_density * (n * n) as f64 / 2.0).round() as usize)
                    .clamp(1, config.max_edges);
                (n, e)
            }
        };
        let max_possible = n * (n - 1) / 2;
        let e_target = e_target.min(max_possible);
        let nodes = (0..n).map(|_| draw_label(&mut rng)).collect::<Vec<_>>();
        let mut g = if config.directed {
            LabeledGraph::with_nodes_directed(nodes)
        } else {
            LabeledGraph::with_nodes(nodes)
        };
        let mut placed = 0;
        let mut guard = 0;
        while placed < e_target && guard < e_target * 50 {
            guard += 1;
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u == v {
                continue;
            }
            let el = EdgeLabel(rng.random_range(0..config.edge_labels.max(1)));
            if g.add_edge(u, v, el).is_ok() {
                placed += 1;
            }
        }
        db.push(g);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tax() -> SynthTaxonomyConfig {
        SynthTaxonomyConfig {
            concepts: 100,
            relationships: 120,
            depth: 5,
            seed: 1,
        }
    }

    #[test]
    fn taxonomy_has_exact_depth_and_counts() {
        let t = generate_taxonomy(&small_tax());
        assert_eq!(t.concept_count(), 100);
        assert_eq!(t.max_depth(), 5);
        assert_eq!(t.roots().len(), 1);
        assert_eq!(t.relationship_count(), 120);
    }

    #[test]
    fn taxonomy_generation_is_deterministic() {
        let a = generate_taxonomy(&small_tax());
        let b = generate_taxonomy(&small_tax());
        assert_eq!(a.edge_list(), b.edge_list());
        let c = generate_taxonomy(&SynthTaxonomyConfig {
            seed: 2,
            ..small_tax()
        });
        assert_ne!(a.edge_list(), c.edge_list(), "different seed, different DAG");
    }

    #[test]
    fn taxonomy_parents_are_exactly_one_level_up() {
        let t = generate_taxonomy(&small_tax());
        for c in t.concepts() {
            for &p in t.parents(c) {
                assert_eq!(t.depth(p) + 1, t.depth(c));
            }
        }
    }

    #[test]
    #[should_panic(expected = "concepts")]
    fn taxonomy_rejects_impossible_depth() {
        generate_taxonomy(&SynthTaxonomyConfig {
            concepts: 4,
            relationships: 3,
            depth: 10,
            seed: 0,
        });
    }

    #[test]
    fn scaled_taxonomy_is_deterministic_and_dag() {
        let cfg = ScaledTaxonomyConfig {
            concepts: 20_000,
            cross_links_per_mille: 100,
            seed: 3,
        };
        let t = generate_scaled_taxonomy(&cfg);
        assert_eq!(t.concept_count(), 20_000);
        assert_eq!(t.roots(), &[tsg_graph::NodeLabel(0)]);
        assert_eq!(t.edge_list(), generate_scaled_taxonomy(&cfg).edge_list());
        // ~10% of concepts carry a second parent; the extra-ancestor
        // fallback machinery must actually be exercised.
        let extra = t.relationship_count() - (t.concept_count() - 1);
        assert!((1000..3000).contains(&extra), "{extra} cross-links");
        assert!(t.cross_link_concepts() > 0);
        // Random recursive trees have depth ≈ e·ln n (~27 here).
        assert!((10..60).contains(&(t.max_depth() as usize)), "{}", t.max_depth());
        // Zero density degenerates to a pure tree.
        let tree = generate_scaled_taxonomy(&ScaledTaxonomyConfig {
            cross_links_per_mille: 0,
            ..cfg
        });
        assert_eq!(tree.relationship_count(), tree.concept_count() - 1);
        assert_eq!(tree.cross_link_concepts(), 0);
    }

    #[test]
    fn database_matches_density_and_size_targets() {
        let t = generate_taxonomy(&small_tax());
        let cfg = GraphGenConfig {
            graph_count: 200,
            max_edges: 20,
            edge_density: 0.26,
            sizing: Sizing::EdgeDriven,
            edge_labels: 10,
            label_pool: LabelPool::ByLevelUniform,
            directed: false,
            seed: 11,
        };
        let db = generate_database(&t, &cfg);
        let s = db.stats();
        assert_eq!(s.graph_count, 200);
        // Table 1 D* rows: ~9.4 nodes, ~11 edges, density ~0.27.
        assert!((7.0..12.0).contains(&s.avg_nodes), "avg nodes {}", s.avg_nodes);
        assert!((8.0..14.0).contains(&s.avg_edges), "avg edges {}", s.avg_edges);
        assert!(
            (0.18..0.36).contains(&s.avg_edge_density),
            "density {}",
            s.avg_edge_density
        );
        assert!(s.distinct_edge_labels <= 10);
    }

    #[test]
    fn database_generation_is_deterministic() {
        let t = generate_taxonomy(&small_tax());
        let cfg = GraphGenConfig {
            graph_count: 10,
            seed: 3,
            ..Default::default()
        };
        let a = generate_database(&t, &cfg);
        let b = generate_database(&t, &cfg);
        assert_eq!(
            tsg_graph::io::write_database(&a),
            tsg_graph::io::write_database(&b)
        );
    }

    #[test]
    fn labels_come_from_the_taxonomy() {
        let t = generate_taxonomy(&small_tax());
        for pool in [LabelPool::Uniform, LabelPool::ByLevelUniform, LabelPool::Leaves] {
            let db = generate_database(
                &t,
                &GraphGenConfig {
                    graph_count: 5,
                    label_pool: pool,
                    ..Default::default()
                },
            );
            for (_, g) in db.iter() {
                for &l in g.labels() {
                    assert!(t.contains(l), "{pool:?} drew label outside taxonomy");
                    if pool == LabelPool::Leaves {
                        assert!(t.children(l).is_empty());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod directed_tests {
    use super::*;

    #[test]
    fn directed_generation_produces_digraphs() {
        let t = generate_taxonomy(&SynthTaxonomyConfig {
            concepts: 50,
            relationships: 60,
            depth: 4,
            seed: 9,
        });
        let db = generate_database(
            &t,
            &GraphGenConfig {
                graph_count: 20,
                directed: true,
                seed: 5,
                ..Default::default()
            },
        );
        assert!(db.iter().all(|(_, g)| g.is_directed()));
        let s = db.stats();
        assert!(s.avg_edges > 1.0);
        // Mining the directed database end-to-end works.
        // (Smoke check only; correctness is covered by the reference
        // agreement property tests in taxogram-core.)
        assert!(db.graphs().iter().any(|g| g.edge_count() > 2));
    }
}
