//! Compact length-prefixed binary serialization for graph databases —
//! the spill format of the sharded out-of-core miner.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header:  magic "TSGB" | version u32 (= 1) | graph_count u64
//! record:  body_len u32 | body
//! body:    flags u8 (bit0 = directed) | node_count u32 | edge_count u32
//!          | node labels u32 × n | edges (u u32, v u32, label u32) × m
//! ```
//!
//! `body_len` must equal `9 + 4·n + 12·m` exactly; the reader
//! cross-checks the declared counts against the prefix *before*
//! allocating, so a corrupt prefix is rejected with a typed
//! [`GraphError::Binary`] instead of an absurd allocation. Record
//! framing makes the format streamable: [`ShardReader`] yields one
//! graph at a time without ever holding the whole database, which is
//! what lets a pass-2 verification sweep run with one resident shard.
//!
//! Every reader failure carries the byte offset where decoding stopped;
//! truncation, bad magic, length mismatches, and structurally invalid
//! graphs (self-loops, out-of-bounds endpoints, duplicate edges) all
//! surface as structured errors, never a panic — the same contract the
//! text parser in [`crate::io`] owes its mutation suite.

// tsg-lint: allow(panic) — the expects are exact-length slice-to-array conversions and the documented u32 capacity cap from the format header

use crate::{EdgeLabel, GraphDatabase, GraphError, LabeledGraph, NodeLabel};
use std::io::{self, Read, Write};

/// File magic: the first four bytes of every spill file.
pub const MAGIC: [u8; 4] = *b"TSGB";

/// Current format version.
pub const VERSION: u32 = 1;

/// Fixed body prefix: flags u8 + node_count u32 + edge_count u32.
const BODY_PREFIX: u32 = 9;

/// Ceiling on a single record body (256 MiB ≈ a 22-million-edge graph).
/// A corrupt length prefix past this is rejected before any allocation.
const MAX_RECORD_BODY: u32 = 1 << 28;

fn binary_err(offset: u64, msg: impl Into<String>) -> GraphError {
    GraphError::Binary {
        offset,
        msg: msg.into(),
    }
}

/// Writes the stream header for a database of `graph_count` graphs.
///
/// Exposed separately from [`write_binary`] so spill writers can emit
/// records incrementally (and fault-injection can fail between records).
///
/// # Errors
/// Propagates I/O errors from the sink.
pub fn write_binary_header(w: &mut dyn Write, graph_count: u64) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&graph_count.to_le_bytes())
}

/// Writes one length-prefixed graph record.
///
/// # Errors
/// Propagates I/O errors from the sink.
///
/// # Panics
/// Panics if the graph has more than `u32::MAX` vertices or edges, or a
/// record body past 256 MiB — far beyond anything the miner produces.
pub fn write_binary_graph(w: &mut dyn Write, g: &LabeledGraph) -> io::Result<()> {
    let n = u32::try_from(g.node_count()).expect("node count fits u32");
    let m = u32::try_from(g.edge_count()).expect("edge count fits u32");
    let body_len = BODY_PREFIX + 4 * n + 12 * m;
    assert!(body_len <= MAX_RECORD_BODY, "graph record exceeds 256 MiB");
    let mut body = Vec::with_capacity(body_len as usize);
    body.push(u8::from(g.is_directed()));
    body.extend_from_slice(&n.to_le_bytes());
    body.extend_from_slice(&m.to_le_bytes());
    for &label in g.labels() {
        body.extend_from_slice(&label.0.to_le_bytes());
    }
    for e in g.edges() {
        body.extend_from_slice(&(e.u as u32).to_le_bytes());
        body.extend_from_slice(&(e.v as u32).to_le_bytes());
        body.extend_from_slice(&e.label.0.to_le_bytes());
    }
    w.write_all(&body_len.to_le_bytes())?;
    w.write_all(&body)
}

/// Serializes a whole database (header + one record per graph).
///
/// # Errors
/// Propagates I/O errors from the sink.
pub fn write_binary(w: &mut dyn Write, db: &GraphDatabase) -> io::Result<()> {
    write_binary_header(w, db.len() as u64)?;
    for (_, g) in db.iter() {
        write_binary_graph(w, g)?;
    }
    Ok(())
}

/// A streaming reader over a binary graph stream: parses the header
/// eagerly, then yields one decoded graph per `next()` without holding
/// more than a single record in memory.
#[derive(Debug)]
pub struct ShardReader<R> {
    src: R,
    /// Graph count declared by the header.
    declared: u64,
    /// Records decoded so far.
    yielded: u64,
    /// Byte offset of the next unread byte (for error reports).
    offset: u64,
    /// Set after the first error; the iterator then fuses to `None`.
    failed: bool,
}

impl<R: Read> ShardReader<R> {
    /// Opens a stream: reads and validates the header.
    ///
    /// # Errors
    /// Fails on truncation, bad magic, or an unsupported version.
    pub fn new(mut src: R) -> Result<Self, GraphError> {
        let mut offset = 0u64;
        let magic = read_exact_at(&mut src, &mut offset, 4, "file magic")?;
        if magic != MAGIC {
            return Err(binary_err(0, format!("bad magic {magic:?}, expected \"TSGB\"")));
        }
        let version = read_u32_at(&mut src, &mut offset, "format version")?;
        if version != VERSION {
            return Err(binary_err(
                4,
                format!("unsupported format version {version} (reader supports {VERSION})"),
            ));
        }
        let declared = {
            let bytes = read_exact_at(&mut src, &mut offset, 8, "graph count")?;
            u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
        };
        Ok(ShardReader {
            src,
            declared,
            yielded: 0,
            offset,
            failed: false,
        })
    }

    /// Graph count declared by the stream header.
    pub fn graph_count(&self) -> u64 {
        self.declared
    }

    /// Byte offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn next_graph(&mut self) -> Result<LabeledGraph, GraphError> {
        let record_start = self.offset;
        let body_len = read_u32_at(&mut self.src, &mut self.offset, "record length prefix")?;
        if !(BODY_PREFIX..=MAX_RECORD_BODY).contains(&body_len) {
            return Err(binary_err(
                record_start,
                format!("absurd record length {body_len} (valid range {BODY_PREFIX}..={MAX_RECORD_BODY})"),
            ));
        }
        let prefix = read_exact_at(&mut self.src, &mut self.offset, BODY_PREFIX as usize, "record body")?;
        let directed = match prefix[0] { // tsg-lint: allow(index) — prefix was read as exactly BODY_PREFIX bytes
            0 => false,
            1 => true,
            other => {
                return Err(binary_err(record_start + 4, format!("bad flags byte {other:#04x}")))
            }
        };
        let n = u32::from_le_bytes(prefix[1..5].try_into().expect("4 bytes")); // tsg-lint: allow(index) — prefix was read as exactly BODY_PREFIX bytes
        let m = u32::from_le_bytes(prefix[5..9].try_into().expect("4 bytes")); // tsg-lint: allow(index) — prefix was read as exactly BODY_PREFIX bytes
        let expected = BODY_PREFIX as u64 + 4 * n as u64 + 12 * m as u64;
        if expected != body_len as u64 {
            return Err(binary_err(
                record_start,
                format!(
                    "record length mismatch: prefix says {body_len}, counts (n={n}, m={m}) need {expected}"
                ),
            ));
        }
        // Counts are now consistent with the (bounded) prefix, so these
        // allocations are bounded by MAX_RECORD_BODY.
        let mut labels = Vec::with_capacity(n as usize);
        for _ in 0..n {
            labels.push(NodeLabel(read_u32_at(&mut self.src, &mut self.offset, "node label")?));
        }
        let mut g = if directed {
            LabeledGraph::with_nodes_directed(labels)
        } else {
            LabeledGraph::with_nodes(labels)
        };
        for _ in 0..m {
            let edge_start = self.offset;
            let u = read_u32_at(&mut self.src, &mut self.offset, "edge endpoint")?;
            let v = read_u32_at(&mut self.src, &mut self.offset, "edge endpoint")?;
            let label = read_u32_at(&mut self.src, &mut self.offset, "edge label")?;
            g.add_edge(u as usize, v as usize, EdgeLabel(label))
                .map_err(|e| binary_err(edge_start, format!("invalid edge: {e}")))?;
        }
        Ok(g)
    }
}

impl<R: Read> Iterator for ShardReader<R> {
    type Item = Result<LabeledGraph, GraphError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.yielded == self.declared {
            return None;
        }
        match self.next_graph() {
            Ok(g) => {
                self.yielded += 1;
                Some(Ok(g))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Deserializes a whole database, verifying the stream ends exactly at
/// the last declared record (trailing bytes are rejected).
///
/// # Errors
/// Fails on any framing, truncation, or graph-validity error.
pub fn read_binary(src: impl Read) -> Result<GraphDatabase, GraphError> {
    let mut reader = ShardReader::new(src)?;
    let mut graphs = Vec::new();
    for g in reader.by_ref() {
        graphs.push(g?);
    }
    let mut probe = [0u8; 1];
    match reader.src.read(&mut probe) {
        Ok(0) => {}
        Ok(_) => {
            return Err(binary_err(
                reader.offset,
                "trailing bytes after the last declared record",
            ))
        }
        Err(e) => return Err(GraphError::Io { msg: e.to_string() }),
    }
    Ok(GraphDatabase::from_graphs(graphs))
}

/// Reads exactly `len` bytes, translating `UnexpectedEof` into a typed
/// truncation error at the current offset and advancing it on success.
fn read_exact_at(
    src: &mut impl Read,
    offset: &mut u64,
    len: usize,
    what: &str,
) -> Result<Vec<u8>, GraphError> {
    let mut buf = vec![0u8; len];
    match src.read_exact(&mut buf) {
        Ok(()) => {
            *offset += len as u64;
            Ok(buf)
        }
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(binary_err(
            *offset,
            format!("truncated stream while reading {what} ({len} bytes wanted)"),
        )),
        Err(e) => Err(GraphError::Io { msg: e.to_string() }),
    }
}

fn read_u32_at(src: &mut impl Read, offset: &mut u64, what: &str) -> Result<u32, GraphError> {
    let bytes = read_exact_at(src, offset, 4, what)?;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> GraphDatabase {
        let mut a = LabeledGraph::with_nodes([NodeLabel(3), NodeLabel(1), NodeLabel(4)]);
        a.add_edge(0, 1, EdgeLabel(0)).unwrap();
        a.add_edge(1, 2, EdgeLabel(7)).unwrap();
        let mut b = LabeledGraph::with_nodes_directed([NodeLabel(5), NodeLabel(9)]);
        b.add_edge(0, 1, EdgeLabel(2)).unwrap();
        b.add_edge(1, 0, EdgeLabel(2)).unwrap();
        let c = LabeledGraph::with_nodes([NodeLabel(2)]);
        GraphDatabase::from_graphs(vec![a, b, c])
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_binary(&mut buf, &db).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back.len(), db.len());
        for ((_, g), (_, h)) in db.iter().zip(back.iter()) {
            assert_eq!(g, h);
        }
    }

    #[test]
    fn shard_reader_streams_and_counts() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_binary(&mut buf, &db).unwrap();
        let reader = ShardReader::new(&buf[..]).unwrap();
        assert_eq!(reader.graph_count(), 3);
        let graphs: Vec<_> = reader.map(Result::unwrap).collect();
        assert_eq!(graphs.len(), 3);
        assert!(graphs[1].is_directed());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let e = ShardReader::new(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(e, GraphError::Binary { offset: 0, .. }), "{e}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let e = ShardReader::new(&buf[..]).unwrap_err();
        assert!(e.to_string().contains("version 99"), "{e}");
    }

    #[test]
    fn truncation_is_a_typed_error_with_offset() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_binary(&mut buf, &db).unwrap();
        for cut in [3, 10, 17, 25, buf.len() - 1] {
            let e = read_binary(&buf[..cut]).unwrap_err();
            match e {
                GraphError::Binary { msg, .. } => {
                    assert!(msg.contains("truncated"), "cut at {cut}: {msg}");
                }
                other => panic!("cut at {cut}: expected Binary error, got {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_binary(&mut buf, &db).unwrap();
        // The first record's length prefix sits right after the 16-byte
        // header; make it absurd.
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let e = read_binary(&buf[..]).unwrap_err();
        assert!(e.to_string().contains("absurd record length"), "{e}");
        // And inconsistent-but-bounded: declared length disagrees with
        // the counts inside the body.
        let mut buf2 = Vec::new();
        write_binary(&mut buf2, &db).unwrap();
        let original = u32::from_le_bytes(buf2[16..20].try_into().unwrap());
        buf2[16..20].copy_from_slice(&(original + 4).to_le_bytes());
        let e = read_binary(&buf2[..]).unwrap_err();
        assert!(e.to_string().contains("length mismatch"), "{e}");
    }

    #[test]
    fn invalid_edges_surface_as_binary_errors() {
        // One undirected graph with a self-loop encoded by hand.
        let mut buf = Vec::new();
        write_binary_header(&mut buf, 1).unwrap();
        let body_len = BODY_PREFIX + 4 * 2 + 12;
        buf.extend_from_slice(&body_len.to_le_bytes());
        buf.push(0);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // edge 0 -> 0: self-loop
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let e = read_binary(&buf[..]).unwrap_err();
        assert!(e.to_string().contains("invalid edge"), "{e}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_binary(&mut buf, &db).unwrap();
        buf.push(0xAB);
        let e = read_binary(&buf[..]).unwrap_err();
        assert!(e.to_string().contains("trailing bytes"), "{e}");
    }

    #[test]
    fn empty_database_round_trips() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &GraphDatabase::new()).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert!(back.is_empty());
    }
}
