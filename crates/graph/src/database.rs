//! The graph database: an ordered collection of labeled graphs.

use crate::{DatabaseStats, LabeledGraph, NodeLabel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a graph within a [`GraphDatabase`].
pub type GraphId = usize;

/// An ordered collection of labeled graphs mined as one unit.
///
/// Support in the paper is *per graph*: `sup(G) = |GenSet(G)| / |D|`, the
/// fraction of database graphs containing at least one (generalized)
/// occurrence — not the total occurrence count. The database therefore only
/// needs to expose graphs by dense id.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GraphDatabase {
    graphs: Vec<LabeledGraph>,
}

impl GraphDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        GraphDatabase::default()
    }

    /// Wraps existing graphs.
    pub fn from_graphs(graphs: Vec<LabeledGraph>) -> Self {
        GraphDatabase { graphs }
    }

    /// Appends a graph, returning its id.
    pub fn push(&mut self, g: LabeledGraph) -> GraphId {
        self.graphs.push(g);
        self.graphs.len() - 1
    }

    /// Number of graphs.
    #[inline]
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` iff the database holds no graphs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The graph with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn graph(&self, id: GraphId) -> &LabeledGraph {
        &self.graphs[id] // tsg-lint: allow(index) — indexed accessor; a GraphId is issued by this database (documented contract)
    }

    /// Mutable access (used by Taxogram's relabeling step on its private
    /// copy of the database).
    #[inline]
    pub fn graph_mut(&mut self, id: GraphId) -> &mut LabeledGraph {
        &mut self.graphs[id] // tsg-lint: allow(index) — indexed accessor; a GraphId is issued by this database (documented contract)
    }

    /// Iterates `(id, graph)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GraphId, &LabeledGraph)> {
        self.graphs.iter().enumerate()
    }

    /// All graphs as a slice.
    pub fn graphs(&self) -> &[LabeledGraph] {
        &self.graphs
    }

    /// For each vertex label, the number of **distinct graphs** it appears
    /// in. This is the quantity compared against `θ·|D|` when pruning
    /// infrequent taxonomy concepts (paper §3, enhancement *b* needs the
    /// generalized version computed with a taxonomy; this exact version is
    /// the taxonomy-free building block).
    pub fn label_graph_frequencies(&self) -> HashMap<NodeLabel, usize> {
        let mut freq: HashMap<NodeLabel, usize> = HashMap::new();
        let mut seen_in_graph: Vec<NodeLabel> = Vec::new();
        for g in &self.graphs {
            seen_in_graph.clear();
            seen_in_graph.extend_from_slice(g.labels());
            seen_in_graph.sort_unstable();
            seen_in_graph.dedup();
            for &l in &seen_in_graph {
                *freq.entry(l).or_insert(0) += 1;
            }
        }
        freq
    }

    /// Dataset statistics in the shape of the paper's Table 1.
    pub fn stats(&self) -> DatabaseStats {
        DatabaseStats::compute(self)
    }

    /// The minimum number of graphs a pattern must reach for a fractional
    /// support threshold `theta ∈ [0, 1]`: `⌈θ·|D|⌉`, but at least 1 so a
    /// threshold of 0 still requires an actual occurrence.
    pub fn min_support_count(&self, theta: f64) -> usize {
        let raw = (theta * self.len() as f64).ceil() as usize;
        raw.max(1)
    }
}

impl std::ops::Index<GraphId> for GraphDatabase {
    type Output = LabeledGraph;
    fn index(&self, id: GraphId) -> &LabeledGraph {
        &self.graphs[id] // tsg-lint: allow(index) — indexed accessor; a GraphId is issued by this database (documented contract)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeLabel;

    fn graph_with_labels(labels: &[u32]) -> LabeledGraph {
        let mut g = LabeledGraph::with_nodes(labels.iter().map(|&l| NodeLabel(l)));
        for i in 1..labels.len() {
            g.add_edge(i - 1, i, EdgeLabel(0)).unwrap();
        }
        g
    }

    #[test]
    fn push_and_index() {
        let mut db = GraphDatabase::new();
        assert!(db.is_empty());
        let id = db.push(graph_with_labels(&[1, 2]));
        assert_eq!(id, 0);
        assert_eq!(db.len(), 1);
        assert_eq!(db[0].node_count(), 2);
        assert_eq!(db.iter().count(), 1);
    }

    #[test]
    fn label_graph_frequencies_count_graphs_once() {
        let db = GraphDatabase::from_graphs(vec![
            graph_with_labels(&[1, 1, 2]), // label 1 twice in the same graph
            graph_with_labels(&[2, 3]),
        ]);
        let f = db.label_graph_frequencies();
        assert_eq!(f[&NodeLabel(1)], 1, "duplicates within a graph count once");
        assert_eq!(f[&NodeLabel(2)], 2);
        assert_eq!(f[&NodeLabel(3)], 1);
    }

    #[test]
    fn min_support_count_rounds_up_and_floors_at_one() {
        let db = GraphDatabase::from_graphs(vec![
            graph_with_labels(&[1]),
            graph_with_labels(&[1]),
            graph_with_labels(&[1]),
        ]);
        assert_eq!(db.min_support_count(0.0), 1);
        assert_eq!(db.min_support_count(0.2), 1);
        assert_eq!(db.min_support_count(0.34), 2);
        assert_eq!(db.min_support_count(2.0 / 3.0), 2);
        assert_eq!(db.min_support_count(1.0), 3);
    }
}
