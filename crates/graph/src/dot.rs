//! Graphviz DOT export for labeled graphs.
//!
//! Mined patterns are small; a DOT rendering is the quickest way to eyeball
//! them. Node labels resolve through an optional [`LabelTable`]; edge
//! labels print numerically (edge labels carry no names in this model).

use crate::{LabelTable, LabeledGraph, NodeLabel};
use std::fmt::Write as _;

/// Renders a graph as an undirected DOT document.
///
/// `name` is the graph's DOT identifier (sanitized to alphanumerics and
/// `_`); `names` resolves vertex labels where provided.
pub fn to_dot(g: &LabeledGraph, name: &str, names: Option<&LabelTable>) -> String {
    let ident: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let label_text = |l: NodeLabel| -> String {
        names
            .and_then(|n| n.name(l))
            .map(str::to_owned)
            .unwrap_or_else(|| l.to_string())
    };
    let mut out = String::new();
    let _ = writeln!(out, "graph {ident} {{");
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=11];");
    for (v, &l) in g.labels().iter().enumerate() {
        let _ = writeln!(out, "  n{v} [label=\"{}\"];", escape(&label_text(l)));
    }
    for e in g.edges() {
        let _ = writeln!(out, "  n{} -- n{} [label=\"{}\"];", e.u, e.v, e.label);
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeLabel;

    #[test]
    fn renders_nodes_and_edges() {
        let mut names = LabelTable::new();
        let a = names.intern("alpha");
        let b = names.intern("be\"ta");
        let mut g = LabeledGraph::with_nodes([a, b]);
        g.add_edge(0, 1, EdgeLabel(3)).unwrap();
        let dot = to_dot(&g, "pattern-1", Some(&names));
        assert!(dot.starts_with("graph pattern_1 {"));
        assert!(dot.contains("n0 [label=\"alpha\"]"));
        assert!(dot.contains("be\\\"ta"), "quotes escaped");
        assert!(dot.contains("n0 -- n1 [label=\"3\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn numeric_labels_without_table() {
        let g = LabeledGraph::with_nodes([NodeLabel(7)]);
        let dot = to_dot(&g, "x", None);
        assert!(dot.contains("label=\"7\""));
    }
}
