//! The labeled undirected graph.

// tsg-lint: allow(index) — adjacency and label arrays are indexed by vertex ids bounded by node_count; add_edge validates endpoints at the public boundary

use crate::{EdgeLabel, GraphError, NodeLabel};
use serde::{Deserialize, Serialize};

/// Index of a vertex within one [`LabeledGraph`].
pub type NodeId = usize;

/// Index of an edge within one [`LabeledGraph`]'s edge table.
pub type EdgeId = usize;

/// One directed half of an edge, as stored in adjacency lists.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Adjacency {
    /// The neighbor vertex.
    pub to: NodeId,
    /// Label of the connecting edge.
    pub elabel: EdgeLabel,
    /// Index into the edge table (shared by both halves).
    pub edge: EdgeId,
    /// In a directed graph, `true` iff the arc starts at this vertex
    /// (points toward `to`). Always `true` in undirected graphs, where
    /// direction carries no meaning.
    pub outgoing: bool,
}

/// An entry of the edge table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint; the arc's source in a directed graph.
    pub u: NodeId,
    /// The other endpoint; the arc's target in a directed graph.
    pub v: NodeId,
    /// The edge label.
    pub label: EdgeLabel,
}

/// A simple graph with labeled vertices and labeled edges, undirected by
/// default or directed via [`LabeledGraph::new_directed`] /
/// [`LabeledGraph::with_nodes_directed`].
///
/// The paper's §2 defines graphs with directed edges and notes Taxogram
/// itself is direction-agnostic ("Taxogram can handle both directed and
/// undirected graphs"), although its evaluation used undirected data
/// because the underlying gSpan implementation did not support direction.
/// Here both the graph model and the gSpan substrate handle direction.
///
/// Vertices are dense indices `0..node_count()`. The structure is
/// append-only: mining never mutates database graphs, and generators build
/// them once. Self-loops are rejected; in undirected graphs at most one
/// edge may join a vertex pair, while directed graphs may carry both
/// `u→v` and `v→u`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledGraph {
    labels: Vec<NodeLabel>,
    adj: Vec<Vec<Adjacency>>,
    edges: Vec<Edge>,
    #[serde(default)]
    directed: bool,
}

impl LabeledGraph {
    /// Creates an empty undirected graph.
    pub fn new() -> Self {
        LabeledGraph::default()
    }

    /// Creates an empty directed graph.
    pub fn new_directed() -> Self {
        LabeledGraph {
            directed: true,
            ..LabeledGraph::default()
        }
    }

    /// Creates an undirected graph with `labels.len()` vertices, no edges.
    pub fn with_nodes(labels: impl IntoIterator<Item = NodeLabel>) -> Self {
        let labels: Vec<_> = labels.into_iter().collect();
        let adj = vec![Vec::new(); labels.len()];
        LabeledGraph {
            labels,
            adj,
            edges: Vec::new(),
            directed: false,
        }
    }

    /// Creates a directed graph with `labels.len()` vertices, no edges.
    pub fn with_nodes_directed(labels: impl IntoIterator<Item = NodeLabel>) -> Self {
        let mut g = Self::with_nodes(labels);
        g.directed = true;
        g
    }

    /// `true` iff the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Adds a vertex with the given label, returning its id.
    pub fn add_node(&mut self, label: NodeLabel) -> NodeId {
        self.labels.push(label);
        self.adj.push(Vec::new());
        self.labels.len() - 1
    }

    /// Adds an edge with label `elabel`: the undirected edge `{u, v}`, or
    /// the arc `u → v` in a directed graph.
    ///
    /// # Errors
    /// Rejects out-of-bounds endpoints, self-loops, and duplicates — for
    /// undirected graphs any second edge between the pair, for directed
    /// graphs a second arc in the *same* direction (the opposite arc is
    /// legal).
    pub fn add_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        elabel: EdgeLabel,
    ) -> Result<EdgeId, GraphError> {
        let len = self.labels.len();
        for &n in &[u, v] {
            if n >= len {
                return Err(GraphError::NodeOutOfBounds { node: n, len });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let dup = if self.directed {
            self.adj[u].iter().any(|a| a.to == v && a.outgoing)
        } else {
            self.adj[u].iter().any(|a| a.to == v)
        };
        if dup {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        let edge = self.edges.len();
        self.edges.push(Edge { u, v, label: elabel });
        self.adj[u].push(Adjacency {
            to: v,
            elabel,
            edge,
            outgoing: true,
        });
        self.adj[v].push(Adjacency {
            to: u,
            elabel,
            edge,
            outgoing: !self.directed,
        });
        Ok(edge)
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The label of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn label(&self, v: NodeId) -> NodeLabel {
        self.labels[v]
    }

    /// All vertex labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[NodeLabel] {
        &self.labels
    }

    /// Overwrites the label of vertex `v` (used by Taxogram's Step 1
    /// relabeling, which keeps originals separately).
    pub fn set_label(&mut self, v: NodeId, label: NodeLabel) {
        self.labels[v] = label;
    }

    /// The adjacency list of `v` (unordered).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[Adjacency] {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// The edge table.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The label of some edge between `u` and `v` (either direction), if
    /// one exists.
    pub fn edge_label_between(&self, u: NodeId, v: NodeId) -> Option<EdgeLabel> {
        self.adj.get(u)?.iter().find(|a| a.to == v).map(|a| a.elabel)
    }

    /// The label of the arc `u → v`. In an undirected graph this is any
    /// edge between the pair.
    pub fn arc_label(&self, u: NodeId, v: NodeId) -> Option<EdgeLabel> {
        self.adj
            .get(u)?
            .iter()
            .find(|a| a.to == v && (!self.directed || a.outgoing))
            .map(|a| a.elabel)
    }

    /// `true` iff an edge `{u, v}` (either direction) exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_label_between(u, v).is_some()
    }

    /// `true` iff the arc `u → v` exists (any edge, if undirected).
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.arc_label(u, v).is_some()
    }

    /// Edge density as defined in the paper's experiments (after Worlein et
    /// al.): `2·|E| / |V|²`. Zero for the empty graph.
    pub fn edge_density(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / (n * n) as f64
        }
    }

    /// `true` iff the graph is connected (the empty graph counts as
    /// connected; patterns additionally require ≥ 1 edge, checked elsewhere).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for a in &self.adj[v] {
                if !seen[a.to] {
                    seen[a.to] = true;
                    count += 1;
                    stack.push(a.to);
                }
            }
        }
        count == n
    }

    /// Connected components as lists of vertex ids (each ascending;
    /// components ordered by smallest member).
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = vec![];
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for a in &self.adj[v] {
                    if !seen[a.to] {
                        seen[a.to] = true;
                        stack.push(a.to);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// The subgraph induced by `nodes` (edges with both endpoints inside).
    /// Vertex `i` of the result corresponds to `nodes[i]`.
    ///
    /// # Panics
    /// Panics if `nodes` contains an out-of-bounds or duplicate id.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> LabeledGraph {
        let mut pos = vec![usize::MAX; self.node_count()];
        for (i, &v) in nodes.iter().enumerate() {
            assert!(pos[v] == usize::MAX, "duplicate node {v} in induced_subgraph");
            pos[v] = i;
        }
        let mut g = LabeledGraph::with_nodes(nodes.iter().map(|&v| self.labels[v]));
        g.directed = self.directed;
        for e in &self.edges {
            let (pu, pv) = (pos[e.u], pos[e.v]);
            if pu != usize::MAX && pv != usize::MAX {
                g.add_edge(pu, pv, e.label)
                    .expect("induced subgraph edges are valid by construction"); // tsg-lint: allow(panic) — induced-subgraph endpoints were just remapped into range
            }
        }
        g
    }

    /// A multiset signature `(node labels sorted, (elabel, endpoint labels)
    /// sorted)` — a cheap isomorphism-invariant used for hashing and as a
    /// fast negative filter before running real isomorphism tests. In
    /// undirected graphs each edge's endpoint labels are sorted; in
    /// directed graphs the (source, target) orientation is kept, so the
    /// signature distinguishes arc directions.
    pub fn invariant_signature(&self) -> (Vec<NodeLabel>, Vec<(EdgeLabel, NodeLabel, NodeLabel)>) {
        let mut nl = self.labels.clone();
        nl.sort_unstable();
        let mut el: Vec<_> = self
            .edges
            .iter()
            .map(|e| {
                let (a, b) = (self.labels[e.u], self.labels[e.v]);
                let (a, b) = if !self.directed && a > b { (b, a) } else { (a, b) };
                (e.label, a, b)
            })
            .collect();
        el.sort_unstable();
        (nl, el)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(v: u32) -> NodeLabel {
        NodeLabel(v)
    }
    fn e(v: u32) -> EdgeLabel {
        EdgeLabel(v)
    }

    /// The triangle a-b-c with distinct edge labels.
    fn triangle() -> LabeledGraph {
        let mut g = LabeledGraph::with_nodes([l(0), l(1), l(2)]);
        g.add_edge(0, 1, e(0)).unwrap();
        g.add_edge(1, 2, e(1)).unwrap();
        g.add_edge(2, 0, e(2)).unwrap();
        g
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label(1), l(1));
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0), "undirected symmetry");
        assert_eq!(g.edge_label_between(1, 2), Some(e(1)));
        assert_eq!(g.edge_label_between(0, 0), None);
    }

    #[test]
    fn add_edge_rejects_bad_input() {
        let mut g = LabeledGraph::with_nodes([l(0), l(1)]);
        assert_eq!(
            g.add_edge(0, 5, e(0)),
            Err(GraphError::NodeOutOfBounds { node: 5, len: 2 })
        );
        assert_eq!(g.add_edge(1, 1, e(0)), Err(GraphError::SelfLoop { node: 1 }));
        g.add_edge(0, 1, e(0)).unwrap();
        assert_eq!(
            g.add_edge(1, 0, e(3)),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 }),
            "duplicate rejected even with a different label / reversed order"
        );
    }

    #[test]
    fn density_matches_paper_definition() {
        let g = triangle();
        assert!((g.edge_density() - 2.0 * 3.0 / 9.0).abs() < 1e-12);
        assert_eq!(LabeledGraph::new().edge_density(), 0.0);
    }

    #[test]
    fn connectivity() {
        let mut g = triangle();
        assert!(g.is_connected());
        let d = g.add_node(l(9));
        assert!(!g.is_connected());
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![d]]);
        assert!(LabeledGraph::new().is_connected(), "empty graph is connected");
        assert!(LabeledGraph::with_nodes([l(0)]).is_connected());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = triangle();
        let s = g.induced_subgraph(&[2, 0]);
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.labels(), &[l(2), l(0)]);
        assert_eq!(s.edge_count(), 1);
        assert_eq!(s.edge_label_between(0, 1), Some(e(2)));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        triangle().induced_subgraph(&[0, 0]);
    }

    #[test]
    fn invariant_signature_is_order_independent() {
        let g = triangle();
        // Same triangle built in a different vertex/edge order.
        let mut h = LabeledGraph::with_nodes([l(2), l(0), l(1)]);
        h.add_edge(2, 0, e(1)).unwrap(); // 1-2 in g's naming
        h.add_edge(1, 0, e(2)).unwrap(); // 2-0
        h.add_edge(1, 2, e(0)).unwrap(); // 0-1
        assert_eq!(g.invariant_signature(), h.invariant_signature());
    }

    #[test]
    fn set_label_overwrites() {
        let mut g = triangle();
        g.set_label(0, l(42));
        assert_eq!(g.label(0), l(42));
    }
}
