//! A line-oriented text format for graph databases.
//!
//! The format follows the convention of classic subgraph-mining tools
//! (gSpan, ParMol, FSG):
//!
//! ```text
//! t # 0          # start of graph 0
//! v 0 12         # vertex 0 with node label 12
//! v 1 7
//! e 0 1 3        # edge between vertices 0 and 1 with edge label 3
//! ```
//!
//! Comments start with `#` at the beginning of a line; blank lines are
//! ignored. Vertex ids within one graph must be dense and ascending from 0
//! (this is what the classic tools emit, and it keeps parsing unambiguous).

use crate::{EdgeLabel, GraphDatabase, GraphError, LabeledGraph, NodeLabel};
use std::fmt::Write as _;

/// Serializes a database to the `t`/`v`/`e` text format.
pub fn write_database(db: &GraphDatabase) -> String {
    let mut out = String::new();
    for (gid, g) in db.iter() {
        let _ = writeln!(out, "t # {gid}");
        for (v, l) in g.labels().iter().enumerate() {
            let _ = writeln!(out, "v {v} {l}");
        }
        for e in g.edges() {
            let _ = writeln!(out, "e {} {} {}", e.u, e.v, e.label);
        }
    }
    out
}

/// Parses a database from the `t`/`v`/`e` text format.
///
/// # Errors
/// Returns [`GraphError::Parse`] on malformed records, and the underlying
/// construction error (with a line number) on invalid edges.
pub fn read_database(text: &str) -> Result<GraphDatabase, GraphError> {
    let mut db = GraphDatabase::new();
    let mut current: Option<LabeledGraph> = None;

    let parse = |line: usize, msg: &str| GraphError::Parse {
        line,
        msg: msg.to_owned(),
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("t") => {
                if let Some(g) = current.take() {
                    db.push(g);
                }
                current = Some(LabeledGraph::new());
            }
            Some("v") => {
                let g = current
                    .as_mut()
                    .ok_or_else(|| parse(lineno, "vertex record before any 't' record"))?;
                let id: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad vertex id"))?;
                let label: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad vertex label"))?;
                if parts.next().is_some() {
                    return Err(parse(lineno, "trailing tokens after vertex record"));
                }
                if id != g.node_count() {
                    return Err(parse(
                        lineno,
                        &format!("vertex ids must be dense: expected {}, got {id}", g.node_count()),
                    ));
                }
                g.add_node(NodeLabel(label));
            }
            Some("e") => {
                let g = current
                    .as_mut()
                    .ok_or_else(|| parse(lineno, "edge record before any 't' record"))?;
                let mut int = || -> Result<usize, GraphError> {
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| parse(lineno, "bad edge field"))
                };
                let u = int()?;
                let v = int()?;
                // The label is parsed at its real width: a value past
                // u32::MAX is a malformed record, not a silent wrap.
                let l: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad edge label"))?;
                if parts.next().is_some() {
                    return Err(parse(lineno, "trailing tokens after edge record"));
                }
                g.add_edge(u, v, EdgeLabel(l)).map_err(|e| GraphError::Parse {
                    line: lineno,
                    msg: e.to_string(),
                })?;
            }
            Some(other) => {
                return Err(parse(lineno, &format!("unknown record type {other:?}")));
            }
            None => unreachable!("empty lines filtered above"), // tsg-lint: allow(panic) — empty lines are filtered before the match
        }
    }
    if let Some(g) = current.take() {
        db.push(g);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> GraphDatabase {
        let mut g1 = LabeledGraph::with_nodes([NodeLabel(5), NodeLabel(6)]);
        g1.add_edge(0, 1, EdgeLabel(2)).unwrap();
        let mut g2 = LabeledGraph::with_nodes([NodeLabel(1), NodeLabel(1), NodeLabel(3)]);
        g2.add_edge(0, 1, EdgeLabel(0)).unwrap();
        g2.add_edge(1, 2, EdgeLabel(1)).unwrap();
        GraphDatabase::from_graphs(vec![g1, g2])
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let db = sample_db();
        let text = write_database(&db);
        let back = read_database(&text).unwrap();
        assert_eq!(back.len(), db.len());
        for (id, g) in db.iter() {
            assert_eq!(back[id].labels(), g.labels());
            assert_eq!(back[id].edges(), g.edges());
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# header\n\nt # 0\nv 0 1\nv 1 2\n\n# mid comment\ne 0 1 0\n";
        let db = read_database(text).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db[0].node_count(), 2);
        assert_eq!(db[0].edge_count(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = read_database("v 0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));

        let err = read_database("t # 0\nv 0 1\nv 5 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }));

        let err = read_database("t # 0\nv 0 1\ne 0 9 0\n").unwrap_err();
        match err {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 3);
                assert!(msg.contains("out of bounds"));
            }
            other => panic!("unexpected error {other:?}"),
        }

        let err = read_database("x 1 2\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_an_empty_database() {
        assert!(read_database("").unwrap().is_empty());
        assert!(read_database("# only comments\n").unwrap().is_empty());
    }
}
