//! Label ids and the string interner behind them.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A dense id for a vertex label (equivalently, a taxonomy concept).
///
/// Node labels double as taxonomy concept ids: the taxonomy's labeling
/// function is one-to-one and onto (paper §2), so a concept *is* its label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeLabel(pub u32);

/// A dense id for an edge label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeLabel(pub u32);

impl NodeLabel {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeLabel {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for NodeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::fmt::Debug for EdgeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeLabel {
    fn from(v: u32) -> Self {
        NodeLabel(v)
    }
}

impl From<u32> for EdgeLabel {
    fn from(v: u32) -> Self {
        EdgeLabel(v)
    }
}

/// Interns label names to dense [`NodeLabel`] ids.
///
/// A table is shared between a taxonomy and the graph databases defined over
/// it, so that "graph `G` over taxonomy `T`" (`L_G ⊆ L_T`, paper §2) is a
/// property of ids rather than strings.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LabelTable {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl LabelTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LabelTable::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> NodeLabel {
        if let Some(&id) = self.index.get(name) {
            return NodeLabel(id);
        }
        let id = u32::try_from(self.names.len()).expect("more than u32::MAX labels"); // tsg-lint: allow(panic) — more than u32::MAX interned labels exceeds the format's documented capacity
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        NodeLabel(id)
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<NodeLabel> {
        self.index.get(name).map(|&id| NodeLabel(id))
    }

    /// The name behind an id, or `None` if the id was never interned.
    pub fn name(&self, label: NodeLabel) -> Option<&str> {
        self.names.get(label.index()).map(String::as_str)
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuilds the name→id index after deserialization (the map is not
    /// serialized; names are authoritative).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeLabel, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeLabel(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.intern("helicase");
        let b = t.intern("transporter");
        assert_ne!(a, b);
        assert_eq!(t.intern("helicase"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), Some("helicase"));
        assert_eq!(t.get("transporter"), Some(b));
        assert_eq!(t.get("nope"), None);
        assert_eq!(t.name(NodeLabel(99)), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut t = LabelTable::new();
        for i in 0..10 {
            assert_eq!(t.intern(&format!("l{i}")), NodeLabel(i));
        }
        let collected: Vec<_> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut t = LabelTable::new();
        t.intern("x");
        t.intern("y");
        let mut clone = LabelTable {
            names: t.names.clone(),
            index: HashMap::new(),
        };
        assert_eq!(clone.get("x"), None, "index empty before rebuild");
        clone.rebuild_index();
        assert_eq!(clone.get("x"), Some(NodeLabel(0)));
        assert_eq!(clone.get("y"), Some(NodeLabel(1)));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeLabel(7)), "7");
        assert_eq!(format!("{:?}", NodeLabel(7)), "n7");
        assert_eq!(format!("{}", EdgeLabel(3)), "3");
        assert_eq!(format!("{:?}", EdgeLabel(3)), "e3");
    }
}
