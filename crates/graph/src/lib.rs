//! Labeled-graph primitives for taxonomy-superimposed graph mining.
//!
//! This crate holds the data model shared by every other crate in the
//! workspace:
//!
//! * [`LabelTable`] — a string interner mapping label names to dense
//!   [`NodeLabel`] / [`EdgeLabel`] ids. Taxonomy concepts and graph vertex
//!   labels share one node-label namespace, which is what makes the
//!   "vertex label is a taxonomy concept" superimposition cheap.
//! * [`LabeledGraph`] — an undirected graph with labeled vertices and
//!   labeled edges, stored as an adjacency list plus an edge table.
//! * [`GraphDatabase`] — an ordered collection of graphs with the dataset
//!   statistics the paper reports in Table 1.
//! * [`io`] — a line-oriented text format compatible in spirit with the
//!   format used by classic subgraph-mining tools (`t`/`v`/`e` records).
//!
//! The paper ("Taxonomy-Superimposed Graph Mining", EDBT 2008) defines
//! labeled graphs with a total vertex-labeling function and optionally
//! labeled edges (§2); its experimental datasets all carry edge labels
//! ("distinct edge label count: 10"), so edge labels are first-class here.

pub mod binary;
mod database;
pub mod dot;
mod graph;
pub mod io;
mod label;
mod stats;

pub use database::{GraphDatabase, GraphId};
pub use graph::{Adjacency, Edge, EdgeId, LabeledGraph, NodeId};
pub use label::{EdgeLabel, LabelTable, NodeLabel};
pub use stats::DatabaseStats;

/// Errors produced by graph construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a vertex that does not exist.
    NodeOutOfBounds {
        /// The offending vertex id.
        node: usize,
        /// Number of vertices in the graph.
        len: usize,
    },
    /// A self-loop was rejected (the mining model uses simple graphs).
    SelfLoop {
        /// The vertex that was both endpoints.
        node: usize,
    },
    /// A duplicate edge between the same endpoints was rejected.
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// The text parser encountered a malformed record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// The binary reader encountered a malformed stream (bad magic,
    /// truncation, a corrupt length prefix, or an invalid record).
    Binary {
        /// Byte offset where decoding stopped.
        offset: u64,
        /// Description of the problem.
        msg: String,
    },
    /// An underlying I/O operation failed (not a format problem).
    Io {
        /// The I/O error, rendered as text (keeps the enum `Clone + Eq`).
        msg: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, len } => {
                write!(f, "vertex {node} out of bounds (graph has {len} vertices)")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on vertex {node} rejected"),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge between vertices {u} and {v}")
            }
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Binary { offset, msg } => {
                write!(f, "binary stream error at byte {offset}: {msg}")
            }
            GraphError::Io { msg } => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}
