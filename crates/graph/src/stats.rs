//! Dataset statistics in the shape of the paper's Table 1.

use crate::GraphDatabase;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The per-dataset properties reported in Table 1 of the paper:
/// database size, average graph size in nodes and edges, distinct node
/// label count, and average edge density (`2·|E|/|V|²` per graph,
/// averaged over graphs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatabaseStats {
    /// Number of graphs (`DB Size` column).
    pub graph_count: usize,
    /// Mean vertex count per graph (`Avg. Graph Size (Node)`).
    pub avg_nodes: f64,
    /// Mean edge count per graph (`Avg. Graph Size (Edge)`).
    pub avg_edges: f64,
    /// Number of distinct vertex labels across the database
    /// (`Dist. Label Count`).
    pub distinct_node_labels: usize,
    /// Number of distinct edge labels across the database.
    pub distinct_edge_labels: usize,
    /// Mean per-graph edge density (`Avg. Edge Density`).
    pub avg_edge_density: f64,
}

impl DatabaseStats {
    /// Computes statistics over a database. All averages are 0 for an empty
    /// database.
    pub fn compute(db: &GraphDatabase) -> Self {
        let n = db.len();
        if n == 0 {
            return DatabaseStats {
                graph_count: 0,
                avg_nodes: 0.0,
                avg_edges: 0.0,
                distinct_node_labels: 0,
                distinct_edge_labels: 0,
                avg_edge_density: 0.0,
            };
        }
        let mut nodes = 0usize;
        let mut edges = 0usize;
        let mut density = 0.0;
        let mut nlabels = HashSet::new();
        let mut elabels = HashSet::new();
        for (_, g) in db.iter() {
            nodes += g.node_count();
            edges += g.edge_count();
            density += g.edge_density();
            nlabels.extend(g.labels().iter().copied());
            elabels.extend(g.edges().iter().map(|e| e.label));
        }
        DatabaseStats {
            graph_count: n,
            avg_nodes: nodes as f64 / n as f64,
            avg_edges: edges as f64 / n as f64,
            distinct_node_labels: nlabels.len(),
            distinct_edge_labels: elabels.len(),
            avg_edge_density: density / n as f64,
        }
    }

    /// One row of a Table 1-style report.
    pub fn table_row(&self, id: &str) -> String {
        format!(
            "{id:<8} {:>8} {:>10.1} {:>10.1} {:>12} {:>10.2}",
            self.graph_count,
            self.avg_nodes,
            self.avg_edges,
            self.distinct_node_labels,
            self.avg_edge_density
        )
    }

    /// The header matching [`DatabaseStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<8} {:>8} {:>10} {:>10} {:>12} {:>10}",
            "DB Id", "Graphs", "AvgNodes", "AvgEdges", "DistLabels", "AvgDens"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeLabel, LabeledGraph, NodeLabel};

    #[test]
    fn empty_database_stats_are_zero() {
        let s = GraphDatabase::new().stats();
        assert_eq!(s.graph_count, 0);
        assert_eq!(s.avg_nodes, 0.0);
        assert_eq!(s.distinct_node_labels, 0);
    }

    #[test]
    fn stats_average_over_graphs() {
        let mut g1 = LabeledGraph::with_nodes([NodeLabel(0), NodeLabel(1)]);
        g1.add_edge(0, 1, EdgeLabel(0)).unwrap();
        let mut g2 = LabeledGraph::with_nodes([NodeLabel(1), NodeLabel(2), NodeLabel(3), NodeLabel(3)]);
        g2.add_edge(0, 1, EdgeLabel(1)).unwrap();
        g2.add_edge(1, 2, EdgeLabel(1)).unwrap();
        g2.add_edge(2, 3, EdgeLabel(0)).unwrap();
        let db = GraphDatabase::from_graphs(vec![g1.clone(), g2.clone()]);
        let s = db.stats();
        assert_eq!(s.graph_count, 2);
        assert_eq!(s.avg_nodes, 3.0);
        assert_eq!(s.avg_edges, 2.0);
        assert_eq!(s.distinct_node_labels, 4);
        assert_eq!(s.distinct_edge_labels, 2);
        let want = (g1.edge_density() + g2.edge_density()) / 2.0;
        assert!((s.avg_edge_density - want).abs() < 1e-12);
    }

    #[test]
    fn table_row_formats() {
        let mut g = LabeledGraph::with_nodes([NodeLabel(0), NodeLabel(1)]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        let db = GraphDatabase::from_graphs(vec![g]);
        let row = db.stats().table_row("D1000");
        assert!(row.starts_with("D1000"));
        assert!(row.contains('1'));
        assert!(!DatabaseStats::table_header().is_empty());
    }
}
