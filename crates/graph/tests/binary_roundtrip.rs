//! Binary spill-format hardening: every generated database must survive
//! a `write_binary` → `read_binary` round trip bit-exactly, and every
//! `Corruptor`-mutated byte stream must be *cleanly* rejected — a typed
//! `GraphError`, never a panic, hang, or allocation proportional to a
//! declared (rather than actual) size.
//!
//! Pin `PROPTEST_RNG_SEED` to replay a CI run exactly.

use proptest::prelude::*;
use tsg_graph::binary::{read_binary, write_binary, ShardReader};
use tsg_graph::{GraphDatabase, GraphError};
use tsg_testkit::corrupt::Corruptor;
use tsg_testkit::gen::arb_db;

fn encode(db: &GraphDatabase) -> Vec<u8> {
    let mut buf = Vec::new();
    write_binary(&mut buf, db).expect("writing to a Vec cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_is_identity(db in arb_db(6, 0, 6, 5)) {
        let back = read_binary(&encode(&db)[..]).expect("own output must parse");
        prop_assert_eq!(back.len(), db.len());
        for ((_, g), (_, h)) in db.iter().zip(back.iter()) {
            prop_assert_eq!(g, h);
        }
    }

    #[test]
    fn shard_reader_streams_the_same_graphs(db in arb_db(6, 0, 6, 5)) {
        let buf = encode(&db);
        let reader = ShardReader::new(&buf[..]).expect("header parses");
        prop_assert_eq!(reader.graph_count(), db.len() as u64);
        let mut n = 0usize;
        for (g, (_, original)) in reader.zip(db.iter()) {
            prop_assert_eq!(&g.expect("record parses"), original);
            n += 1;
        }
        prop_assert_eq!(n, db.len());
    }

    #[test]
    fn corrupted_streams_are_rejected_cleanly(
        db in arb_db(6, 1, 6, 5),
        seed in 0u64..u64::MAX,
    ) {
        let clean = encode(&db);
        let mut corruptor = Corruptor::new(seed);
        for _round in 0..8 {
            let mutant = corruptor.corrupt_bytes(&clean);
            // Success or a typed error; a panic fails the test. Anything
            // that still parses must re-encode and re-parse (the reader
            // normalizes to a valid database).
            if let Ok(parsed) = read_binary(&mutant[..]) {
                let back = read_binary(&encode(&parsed)[..]).expect("reparse of own output");
                prop_assert_eq!(back.len(), parsed.len());
            }
        }
    }

    #[test]
    fn every_truncation_point_is_a_typed_error(db in arb_db(6, 1, 4, 4)) {
        let clean = encode(&db);
        // Any strict prefix either fails the header parse or yields a
        // truncation error partway through iteration — never a silently
        // short success, which is what makes a half-written spill file
        // detectable.
        for cut in 0..clean.len() {
            let r = ShardReader::new(&clean[..cut]).map(|rd| {
                let mut decoded = 0u64;
                for g in rd {
                    match g {
                        Ok(_) => decoded += 1,
                        Err(e) => return Err(e),
                    }
                }
                Ok(decoded)
            });
            match r {
                Err(GraphError::Binary { .. }) => {}
                Ok(Err(GraphError::Binary { .. })) => {}
                Ok(Ok(decoded)) => prop_assert!(
                    false,
                    "prefix of {cut}/{} bytes decoded {decoded} graphs without error",
                    clean.len()
                ),
                other => prop_assert!(false, "unexpected result shape: {other:?}"),
            }
        }
    }
}

/// Absurd declared counts must be rejected before any allocation
/// happens: a 4 GiB length prefix on a 40-byte file returns an error in
/// microseconds rather than attempting the allocation.
#[test]
fn absurd_length_prefixes_never_allocate() {
    let db = tsg_testkit::case(1).db;
    let mut buf = encode(&db);
    for absurd in [u32::MAX, 1 << 30, (1 << 28) + 1] {
        buf[16..20].copy_from_slice(&absurd.to_le_bytes());
        let started = std::time::Instant::now();
        let e = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(e, GraphError::Binary { .. }), "{e}");
        assert!(
            started.elapsed() < std::time::Duration::from_millis(100),
            "rejection took {:?} — did the reader allocate the declared size?",
            started.elapsed()
        );
    }
}
