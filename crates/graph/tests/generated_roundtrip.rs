//! Text-format roundtrip on seeded [`tsg_testkit`] databases: writing a
//! generated database and reading it back must preserve every graph
//! exactly (labels, edges, direction).

use tsg_graph::io::{read_database, write_database};
use tsg_testkit::gen::{case_count, cases};

const BASE_SEED: u64 = 0x7a78_6f67_7261_6d05;

#[test]
fn write_read_roundtrips_generated_databases() {
    for c in cases(BASE_SEED, case_count(64)) {
        let text = write_database(&c.db);
        let back = read_database(&text).unwrap_or_else(|e| {
            panic!("seed {:#x}: reparse failed: {e}\n{text}", c.seed);
        });
        assert_eq!(back.len(), c.db.len(), "seed {:#x}", c.seed);
        for (gid, g) in c.db.iter() {
            assert_eq!(back[gid].labels(), g.labels(), "seed {:#x} graph {gid}", c.seed);
            assert_eq!(back[gid].edges(), g.edges(), "seed {:#x} graph {gid}", c.seed);
            assert_eq!(back[gid].is_directed(), g.is_directed());
        }
    }
}
