//! Parser hardening by seeded mutation: take a *valid* database
//! serialization from the testkit generators, corrupt it with the
//! seeded operator pipeline (byte flips, line surgery, truncation,
//! absurd numbers), and require the parser to return a structured
//! result — success or `GraphError::Parse` — and never panic, wrap, or
//! allocate proportionally to a declared (rather than actual) size.
//!
//! Pin `PROPTEST_RNG_SEED` to replay a CI run exactly.

use proptest::prelude::*;
use tsg_graph::io::{read_database, write_database};
use tsg_graph::GraphError;
use tsg_testkit::corrupt::Corruptor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn corrupted_valid_serializations_never_panic(seed in 0u64..u64::MAX) {
        let case = tsg_testkit::case(seed);
        let text = write_database(&case.db);
        let mut corruptor = Corruptor::new(seed);
        for _round in 0..8 {
            let mutant = corruptor.corrupt(&text);
            // Success or structured error; a panic fails the test.
            let _ = read_database(&mutant);
        }
    }

    #[test]
    fn corruption_composes_with_reserialization(seed in 0u64..u64::MAX) {
        // Anything that *does* survive corruption must itself survive a
        // write → read round: parsing normalizes to a valid database.
        let case = tsg_testkit::case(seed);
        let mut corruptor = Corruptor::new(seed.rotate_left(13));
        let mutant = corruptor.corrupt(&write_database(&case.db));
        if let Ok(db) = read_database(&mutant) {
            let back = read_database(&write_database(&db)).expect("reparse of own output");
            prop_assert_eq!(back.len(), db.len());
        }
    }
}

fn parse_err(text: &str) -> GraphError {
    read_database(text).expect_err("must be rejected")
}

/// The adversarial catalogue, pinned as unit cases so each rejection is
/// exact (not just panic-free).
#[test]
fn adversarial_records_are_rejected_with_line_numbers() {
    // Duplicate vertex id.
    assert!(matches!(
        parse_err("t # 0\nv 0 1\nv 0 2\n"),
        GraphError::Parse { line: 3, .. }
    ));
    // Edge to a vertex that does not exist.
    assert!(matches!(
        parse_err("t # 0\nv 0 1\ne 0 7 0\n"),
        GraphError::Parse { line: 3, .. }
    ));
    // Absurd declared vertex id (no dense prefix) — the parser must not
    // allocate 10^19 slots.
    assert!(matches!(
        parse_err("t # 0\nv 9999999999999999999 1\n"),
        GraphError::Parse { line: 2, .. }
    ));
    // Vertex label past u32::MAX.
    assert!(matches!(
        parse_err("t # 0\nv 0 4294967296\n"),
        GraphError::Parse { line: 2, .. }
    ));
    // Edge label past u32::MAX must error, not wrap to 0.
    assert!(matches!(
        parse_err("t # 0\nv 0 1\nv 1 1\ne 0 1 4294967296\n"),
        GraphError::Parse { line: 4, .. }
    ));
    // Trailing tokens are malformed records, not ignored noise.
    assert!(matches!(
        parse_err("t # 0\nv 0 1 junk\n"),
        GraphError::Parse { line: 2, .. }
    ));
    assert!(matches!(
        parse_err("t # 0\nv 0 1\nv 1 1\ne 0 1 0 junk\n"),
        GraphError::Parse { line: 4, .. }
    ));
    // Records before any 't'.
    assert!(matches!(
        parse_err("e 0 1 0\n"),
        GraphError::Parse { line: 1, .. }
    ));
    // Negative and fractional fields.
    assert!(matches!(
        parse_err("t # 0\nv -1 1\n"),
        GraphError::Parse { line: 2, .. }
    ));
    assert!(matches!(
        parse_err("t # 0\nv 0 1.5\n"),
        GraphError::Parse { line: 2, .. }
    ));
}

#[test]
fn truncated_records_are_malformed() {
    for text in ["t # 0\nv", "t # 0\nv 0", "t # 0\nv 0 1\ne", "t # 0\nv 0 1\ne 0", "t # 0\nv 0 1\ne 0 1"] {
        assert!(
            matches!(read_database(text), Err(GraphError::Parse { .. })),
            "{text:?} must be rejected"
        );
    }
}
