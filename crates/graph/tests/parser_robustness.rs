//! The text parsers must never panic: arbitrary input yields either a
//! parsed value or a structured error.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn read_database_never_panics(text in ".{0,200}") {
        let _ = tsg_graph::io::read_database(&text);
    }

    #[test]
    fn read_database_handles_recordish_garbage(
        lines in prop::collection::vec("(t|v|e|x)( -?[0-9a-z#]{1,5}){0,4}", 0..12)
    ) {
        let text = lines.join("\n");
        let _ = tsg_graph::io::read_database(&text);
    }

    #[test]
    fn roundtrip_is_identity_on_valid_databases(
        graphs in prop::collection::vec(
            (prop::collection::vec(0u32..5, 1..5), prop::collection::vec(0u32..3, 0..4)),
            0..4,
        )
    ) {
        let mut db = tsg_graph::GraphDatabase::new();
        for (labels, elabels) in graphs {
            let mut g = tsg_graph::LabeledGraph::with_nodes(
                labels.iter().map(|&l| tsg_graph::NodeLabel(l)),
            );
            for (i, &el) in elabels.iter().enumerate() {
                if labels.len() >= 2 {
                    let u = i % labels.len();
                    let v = (i + 1) % labels.len();
                    if u != v {
                        let _ = g.add_edge(u, v, tsg_graph::EdgeLabel(el));
                    }
                }
            }
            db.push(g);
        }
        let text = tsg_graph::io::write_database(&db);
        let back = tsg_graph::io::read_database(&text).expect("own output parses");
        prop_assert_eq!(back.len(), db.len());
        for (id, g) in db.iter() {
            prop_assert_eq!(back[id].labels(), g.labels());
            prop_assert_eq!(back[id].edges(), g.edges());
        }
    }
}
