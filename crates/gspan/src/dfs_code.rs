//! DFS codes: gSpan's canonical representation of labeled graphs.
//!
//! A DFS code is the edge sequence of a depth-first traversal, each edge
//! written as `(i, j, l_i, e, l_j)` over DFS discovery ids. Forward edges
//! have `i < j` (and `j` is always one past the largest id so far);
//! backward edges have `i > j`. gSpan defines a total lexicographic order
//! on codes; the smallest code of a graph is its canonical form
//! (Yan & Han, ICDM'02, and the expanded UIUC TR the paper cites as
//! Remark 3.1).

use std::cmp::Ordering;
use tsg_graph::{EdgeLabel, GraphError, LabeledGraph, NodeLabel};

/// Arc orientation of a code edge relative to its DFS `(from, to)` pair.
///
/// Directed graphs are mined by annotating each code edge with the arc's
/// direction relative to the traversal — the standard extension of gSpan
/// to digraphs. The annotation participates in the label component of the
/// DFS lexicographic order, so canonical-code minimality and the prefix
/// property carry over unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArcDir {
    /// The edge carries no direction (undirected mining).
    #[default]
    Undirected,
    /// The arc runs `from → to`.
    FromTo,
    /// The arc runs `to → from`.
    ToFrom,
}

/// One element of a DFS code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DfsEdge {
    /// DFS id of the source endpoint.
    pub from: usize,
    /// DFS id of the destination endpoint.
    pub to: usize,
    /// Label of the source vertex.
    pub from_label: NodeLabel,
    /// Label of the edge.
    pub elabel: EdgeLabel,
    /// Arc orientation (always [`ArcDir::Undirected`] for undirected
    /// graphs).
    pub arc: ArcDir,
    /// Label of the destination vertex.
    pub to_label: NodeLabel,
}

impl DfsEdge {
    /// `true` iff this is a forward edge (discovers a new vertex).
    #[inline]
    pub fn is_forward(&self) -> bool {
        self.from < self.to
    }

    /// The label tuple, used for tie-breaking in the edge order.
    #[inline]
    fn labels(&self) -> (NodeLabel, EdgeLabel, ArcDir, NodeLabel) {
        (self.from_label, self.elabel, self.arc, self.to_label)
    }
}

/// gSpan's DFS lexicographic order on same-position edges.
///
/// For `e1 = (i1, j1)`, `e2 = (i2, j2)`:
/// * both forward: `e1 < e2` iff `j1 < j2`, or `j1 = j2` and `i1 > i2`;
/// * both backward: `e1 < e2` iff `i1 < i2`, or `i1 = i2` and `j1 < j2`;
/// * `e1` backward, `e2` forward: `e1 < e2` iff `i1 < j2`;
/// * `e1` forward, `e2` backward: `e1 < e2` iff `j1 ≤ i2`.
///
/// Positional ties are broken by the `(l_i, e, l_j)` label triple.
pub fn dfs_edge_cmp(e1: &DfsEdge, e2: &DfsEdge) -> Ordering {
    let positional = match (e1.is_forward(), e2.is_forward()) {
        (true, true) => e1
            .to
            .cmp(&e2.to)
            .then_with(|| e2.from.cmp(&e1.from)),
        (false, false) => e1.from.cmp(&e2.from).then_with(|| e1.to.cmp(&e2.to)),
        (false, true) => {
            if e1.from < e2.to {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        (true, false) => {
            if e1.to <= e2.from {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
    };
    positional.then_with(|| e1.labels().cmp(&e2.labels()))
}

/// A DFS code: an ordered edge list plus derived structure queries.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct DfsCode {
    edges: Vec<DfsEdge>,
}

impl DfsCode {
    /// The empty code.
    pub fn new() -> Self {
        DfsCode::default()
    }

    /// Wraps an edge list without validation (callers construct codes only
    /// through mining, which maintains the DFS invariants).
    pub fn from_edges(edges: Vec<DfsEdge>) -> Self {
        DfsCode { edges }
    }

    /// The edge sequence.
    #[inline]
    pub fn edges(&self) -> &[DfsEdge] {
        &self.edges
    }

    /// Number of code edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff the code is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Appends an edge.
    pub fn push(&mut self, e: DfsEdge) {
        self.edges.push(e);
    }

    /// Removes the last edge.
    pub fn pop(&mut self) -> Option<DfsEdge> {
        self.edges.pop()
    }

    /// Empties the code, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.edges.clear();
    }

    /// Number of vertices spanned by the code (max DFS id + 1).
    pub fn node_count(&self) -> usize {
        self.edges
            .iter()
            .map(|e| e.from.max(e.to) + 1)
            .max()
            .unwrap_or(0)
    }

    /// The rightmost path as DFS ids, root first, rightmost vertex last.
    ///
    /// The rightmost vertex is the `to` of the last forward edge; the path
    /// follows forward edges back to the root. Extensions in gSpan may only
    /// grow backward from the rightmost vertex or forward from a vertex on
    /// this path.
    pub fn rightmost_path(&self) -> Vec<usize> {
        let mut path: Vec<usize> = Vec::new();
        // Walk forward edges from the last one backwards, chaining `to`→`from`.
        let mut want: Option<usize> = None;
        for e in self.edges.iter().rev() {
            if !e.is_forward() {
                continue;
            }
            match want {
                None => {
                    path.push(e.to);
                    path.push(e.from);
                    want = Some(e.from);
                }
                Some(w) if e.to == w => {
                    path.push(e.from);
                    want = Some(e.from);
                }
                _ => {}
            }
        }
        if path.is_empty() && !self.edges.is_empty() {
            // Code with only backward edges cannot occur (first edge is
            // always forward), but a single-vertex "path" keeps callers
            // total.
            path.push(0);
        }
        path.reverse();
        path
    }

    /// The label of DFS vertex `id`, scanning the code.
    pub fn vertex_label(&self, id: usize) -> Option<NodeLabel> {
        for e in &self.edges {
            if e.from == id {
                return Some(e.from_label);
            }
            if e.to == id {
                return Some(e.to_label);
            }
        }
        None
    }

    /// Materializes the code as a [`LabeledGraph`] whose vertex ids are the
    /// DFS ids. The result is directed iff the code's edges carry arc
    /// annotations (codes never mix annotated and unannotated edges).
    ///
    /// # Errors
    /// Returns the underlying construction error if the code is malformed
    /// (e.g. repeats an edge).
    pub fn to_graph(&self) -> Result<LabeledGraph, GraphError> {
        let n = self.node_count();
        let mut labels = vec![None; n];
        for e in &self.edges {
            labels[e.from] = Some(e.from_label); // tsg-lint: allow(index) — dense DFS ids are bounded by node_count
            labels[e.to] = Some(e.to_label); // tsg-lint: allow(index) — dense DFS ids are bounded by node_count
        }
        let directed = self
            .edges
            .first()
            .is_some_and(|e| e.arc != ArcDir::Undirected);
        let nodes = labels
            .into_iter()
            .map(|l| l.expect("DFS ids are dense, every id appears in some edge")); // tsg-lint: allow(panic) — DFS ids are dense, so every id appears in some edge
        let mut g = if directed {
            LabeledGraph::with_nodes_directed(nodes)
        } else {
            LabeledGraph::with_nodes(nodes)
        };
        for e in &self.edges {
            match e.arc {
                ArcDir::ToFrom => g.add_edge(e.to, e.from, e.elabel)?,
                _ => g.add_edge(e.from, e.to, e.elabel)?,
            };
        }
        Ok(g)
    }

    /// Total lexicographic comparison of whole codes: edgewise by
    /// [`dfs_edge_cmp`], shorter prefix first.
    pub fn cmp_code(&self, other: &DfsCode) -> Ordering {
        for (a, b) in self.edges.iter().zip(&other.edges) {
            match dfs_edge_cmp(a, b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        self.edges.len().cmp(&other.edges.len())
    }
}

impl std::fmt::Display for DfsCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, e) in self.edges.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(
                f,
                "({},{},{},{},{})",
                e.from, e.to, e.from_label, e.elabel, e.to_label
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fwd(from: usize, to: usize) -> DfsEdge {
        DfsEdge {
            from,
            to,
            from_label: NodeLabel(0),
            elabel: EdgeLabel(0),
            arc: ArcDir::Undirected,
            to_label: NodeLabel(0),
        }
    }
    fn bwd(from: usize, to: usize) -> DfsEdge {
        assert!(from > to);
        DfsEdge {
            from,
            to,
            from_label: NodeLabel(0),
            elabel: EdgeLabel(0),
            arc: ArcDir::Undirected,
            to_label: NodeLabel(0),
        }
    }

    #[test]
    fn forward_order_prefers_deeper_source() {
        // Same new vertex id: the edge growing from the deeper vertex wins.
        assert_eq!(dfs_edge_cmp(&fwd(2, 3), &fwd(1, 3)), Ordering::Less);
        assert_eq!(dfs_edge_cmp(&fwd(0, 2), &fwd(0, 3)), Ordering::Less);
    }

    #[test]
    fn backward_order_prefers_smaller_target() {
        assert_eq!(dfs_edge_cmp(&bwd(3, 0), &bwd(3, 1)), Ordering::Less);
        assert_eq!(dfs_edge_cmp(&bwd(2, 0), &bwd(3, 1)), Ordering::Less);
    }

    #[test]
    fn backward_precedes_forward_from_same_vertex() {
        // Backward (3,0) vs forward (3,4): i1 = 3 < j2 = 4 → backward first.
        assert_eq!(dfs_edge_cmp(&bwd(3, 0), &fwd(3, 4)), Ordering::Less);
        // Forward (1,4) vs backward (3,0): j1 = 4 ≤ i2 = 3 is false → greater.
        assert_eq!(dfs_edge_cmp(&fwd(1, 4), &bwd(3, 0)), Ordering::Greater);
    }

    #[test]
    fn label_tiebreak_on_equal_positions() {
        let a = DfsEdge {
            from: 0,
            to: 1,
            from_label: NodeLabel(0),
            elabel: EdgeLabel(0),
            arc: ArcDir::Undirected,
            to_label: NodeLabel(1),
        };
        let b = DfsEdge {
            from: 0,
            to: 1,
            from_label: NodeLabel(0),
            elabel: EdgeLabel(0),
            arc: ArcDir::Undirected,
            to_label: NodeLabel(2),
        };
        assert_eq!(dfs_edge_cmp(&a, &b), Ordering::Less);
        assert_eq!(dfs_edge_cmp(&a, &a), Ordering::Equal);
    }

    #[test]
    fn rightmost_path_follows_forward_chain() {
        // Code: (0,1) (1,2) (2,0) backward (1,3): rightmost path 0-1-3.
        let code = DfsCode::from_edges(vec![fwd(0, 1), fwd(1, 2), bwd(2, 0), fwd(1, 3)]);
        assert_eq!(code.rightmost_path(), vec![0, 1, 3]);
        // Pure path.
        let code = DfsCode::from_edges(vec![fwd(0, 1), fwd(1, 2)]);
        assert_eq!(code.rightmost_path(), vec![0, 1, 2]);
        // Star: (0,1) (0,2): rightmost path 0-2.
        let code = DfsCode::from_edges(vec![fwd(0, 1), fwd(0, 2)]);
        assert_eq!(code.rightmost_path(), vec![0, 2]);
    }

    #[test]
    fn to_graph_reconstructs_structure() {
        let mut e1 = fwd(0, 1);
        e1.from_label = NodeLabel(5);
        e1.to_label = NodeLabel(6);
        let mut e2 = fwd(1, 2);
        e2.from_label = NodeLabel(6);
        e2.to_label = NodeLabel(7);
        e2.elabel = EdgeLabel(9);
        let code = DfsCode::from_edges(vec![e1, e2]);
        let g = code.to_graph().unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.label(2), NodeLabel(7));
        assert_eq!(g.edge_label_between(1, 2), Some(EdgeLabel(9)));
        assert_eq!(code.vertex_label(1), Some(NodeLabel(6)));
        assert_eq!(code.vertex_label(9), None);
        assert_eq!(code.node_count(), 3);
    }

    #[test]
    fn cmp_code_prefix_is_smaller() {
        let a = DfsCode::from_edges(vec![fwd(0, 1)]);
        let b = DfsCode::from_edges(vec![fwd(0, 1), fwd(1, 2)]);
        assert_eq!(a.cmp_code(&b), Ordering::Less);
        assert_eq!(b.cmp_code(&a), Ordering::Greater);
        assert_eq!(a.cmp_code(&a), Ordering::Equal);
    }

    #[test]
    fn display_is_readable() {
        let code = DfsCode::from_edges(vec![fwd(0, 1)]);
        assert_eq!(format!("{code}"), "(0,1,0,0,0)");
    }
}
