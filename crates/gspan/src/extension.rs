//! Embeddings and rightmost-path extension enumeration.
//!
//! gSpan grows a pattern only along its rightmost path: backward edges from
//! the rightmost vertex to another rightmost-path vertex, and forward edges
//! from any rightmost-path vertex to a fresh vertex. Enumerating the legal
//! extensions of every current embedding, grouped by the DFS edge they
//! induce, is the workhorse shared by the miner and by the minimality
//! check.

// tsg-lint: allow(index) — frame vectors are sized to next_id and DFS ids are dense below it

use crate::dfs_code::{dfs_edge_cmp, ArcDir, DfsCode, DfsEdge};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use tsg_graph::{EdgeId, GraphDatabase, GraphId, NodeId, NodeLabel};

/// One embedding of a DFS code into a database graph: `map[dfs_id]` is the
/// database vertex, `edges[k]` the database edge realizing code edge `k`.
///
/// Full maps (rather than gSpan's shared-prefix chains) cost more memory
/// but give Taxogram's occurrence-index sink direct access to every mapped
/// vertex, which it needs anyway to read original labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embedding {
    /// The database graph containing this embedding.
    pub gid: GraphId,
    /// DFS id → database vertex.
    pub map: Vec<NodeId>,
    /// Code edge index → database edge id.
    pub edges: Vec<EdgeId>,
}

impl Embedding {
    #[inline]
    fn uses_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    #[inline]
    fn maps_vertex(&self, v: NodeId) -> bool {
        self.map.contains(&v)
    }
}

/// A [`DfsEdge`] ordered by [`dfs_edge_cmp`], usable as a `BTreeMap` key so
/// extension groups iterate in canonical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderedExt(pub DfsEdge);

impl PartialOrd for OrderedExt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedExt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        dfs_edge_cmp(&self.0, &other.0)
    }
}

/// Extension groups: for each candidate DFS edge, the embeddings of the
/// grown code, in database order.
pub type ExtensionMap = BTreeMap<OrderedExt, Vec<Embedding>>;

/// Calls `f` with every seed candidate of `db`, in database order: the
/// 1-edge DFS key plus the two database vertices realizing it (code
/// vertex 0 ↦ `a`, 1 ↦ `b`) and the database edge id.
///
/// Every database edge yields candidates for the orientation(s) whose
/// `from_label ≤ to_label` — the other orientation can never start a
/// minimal code. When both endpoint labels are equal, both orientations
/// are candidates of the same seed.
fn for_each_seed_candidate(
    db: &GraphDatabase,
    mut f: impl FnMut(DfsEdge, GraphId, NodeId, NodeId, EdgeId),
) {
    for (gid, g) in db.iter() {
        let directed = g.is_directed();
        for (eid, e) in g.edges().iter().enumerate() {
            let (lu, lv) = (g.label(e.u), g.label(e.v));
            // Orientation (a, b): code vertex 0 ↦ a, 1 ↦ b. Keep only
            // orientations that can start a minimal code: the smaller
            // endpoint label first; on a label tie in a directed graph,
            // only the arc-source-first variant (FromTo < ToFrom).
            let mut orientations: Vec<(NodeId, NodeId)> = Vec::with_capacity(2);
            match lu.cmp(&lv) {
                Ordering::Less => orientations.push((e.u, e.v)),
                Ordering::Greater => orientations.push((e.v, e.u)),
                Ordering::Equal => {
                    orientations.push((e.u, e.v));
                    if !directed {
                        orientations.push((e.v, e.u));
                    }
                }
            }
            for (a, b) in orientations {
                let arc = if !directed {
                    ArcDir::Undirected
                } else if a == e.u {
                    ArcDir::FromTo
                } else {
                    ArcDir::ToFrom
                };
                let key = DfsEdge {
                    from: 0,
                    to: 1,
                    from_label: g.label(a),
                    elabel: e.label,
                    arc,
                    to_label: g.label(b),
                };
                f(key, gid, a, b, eid);
            }
        }
    }
}

/// All frequent-orientation single-edge seed codes with their embeddings.
pub fn seed_extensions(db: &GraphDatabase) -> ExtensionMap {
    let mut out = ExtensionMap::new();
    for_each_seed_candidate(db, |key, gid, a, b, eid| {
        out.entry(OrderedExt(key)).or_default().push(Embedding {
            gid,
            map: vec![a, b],
            edges: vec![eid],
        });
    });
    out
}

/// The smallest seed key of `db` with its embedding list written into
/// `out` (reusing `out`'s allocation), or `None` for an edgeless database.
///
/// Equivalent to `seed_extensions(db)`'s first entry, but allocation-free
/// apart from the embeddings themselves: candidates are scanned twice —
/// once to find the minimum key, once to materialize only its embeddings —
/// so losing orientations are never cloned and no map is built. This is
/// the seed step of the minimality check, which runs once per mined node.
pub fn min_seed(db: &GraphDatabase, out: &mut Vec<Embedding>) -> Option<DfsEdge> {
    out.clear();
    let mut best: Option<DfsEdge> = None;
    for_each_seed_candidate(db, |key, _, _, _, _| match &best {
        None => best = Some(key),
        Some(b) => {
            if dfs_edge_cmp(&key, b) == Ordering::Less {
                best = Some(key);
            }
        }
    });
    let min = best?;
    for_each_seed_candidate(db, |key, gid, a, b, eid| {
        if key == min {
            out.push(Embedding {
                gid,
                map: vec![a, b],
                edges: vec![eid],
            });
        }
    });
    Some(min)
}

/// Per-code context shared by every embedding while enumerating that
/// code's rightmost-path extension candidates.
struct ExtFrame {
    /// Rightmost path, root first, rightmost vertex last.
    path: Vec<usize>,
    /// The rightmost vertex (last element of `path`).
    rmost: usize,
    rmost_label: NodeLabel,
    /// DFS id a forward extension would assign (`code.node_count()`).
    next_id: usize,
    /// Vertex label per DFS id.
    vlabels: Vec<NodeLabel>,
}

impl ExtFrame {
    fn of(code: &DfsCode) -> ExtFrame {
        let path = code.rightmost_path();
        let &rmost = path.last().expect("nonempty code has a rightmost path"); // tsg-lint: allow(panic) — a nonempty code always has a rightmost path
        let next_id = code.node_count();
        let mut vlabels = vec![NodeLabel(0); next_id];
        for e in code.edges() {
            vlabels[e.from] = e.from_label;
            vlabels[e.to] = e.to_label;
        }
        ExtFrame {
            rmost_label: vlabels[rmost],
            path,
            rmost,
            next_id,
            vlabels,
        }
    }
}

/// Calls `f` with every legal rightmost-path extension candidate of one
/// embedding: the induced DFS key, the database edge realizing it, and
/// the newly discovered database vertex for forward extensions (`None`
/// for backward ones). Candidate order is fixed — backward extensions
/// off the rightmost vertex first (adjacency-major), then forward
/// extensions along the path (path-major) — so callers grouping by key
/// reproduce identical per-key embedding orders.
fn for_each_candidate(
    frame: &ExtFrame,
    emb: &Embedding,
    g: &tsg_graph::LabeledGraph,
    mut f: impl FnMut(DfsEdge, EdgeId, Option<NodeId>),
) {
    let directed = g.is_directed();
    let arc_of = |a: &tsg_graph::Adjacency| {
        if !directed {
            ArcDir::Undirected
        } else if a.outgoing {
            ArcDir::FromTo
        } else {
            ArcDir::ToFrom
        }
    };
    let (_, spine) = frame
        .path
        .split_last()
        .expect("frame path is never empty"); // tsg-lint: allow(panic) — frame path built from a nonempty code is never empty
    let phi_rm = emb.map[frame.rmost];

    // Backward extensions: rightmost vertex → earlier rightmost-path
    // vertex, via an unused database edge. With antiparallel arcs both
    // adjacency entries produce (direction-distinct) extensions.
    for a in g.neighbors(phi_rm) {
        if emb.uses_edge(a.edge) {
            continue;
        }
        for &v in spine {
            if emb.map[v] == a.to {
                let key = DfsEdge {
                    from: frame.rmost,
                    to: v,
                    from_label: frame.rmost_label,
                    elabel: a.elabel,
                    arc: arc_of(a),
                    to_label: frame.vlabels[v],
                };
                f(key, a.edge, None);
            }
        }
    }

    // Forward extensions: any rightmost-path vertex → a fresh vertex.
    for &v in frame.path.iter() {
        let phi_v = emb.map[v];
        for a in g.neighbors(phi_v) {
            if emb.maps_vertex(a.to) {
                continue;
            }
            let key = DfsEdge {
                from: v,
                to: frame.next_id,
                from_label: frame.vlabels[v],
                elabel: a.elabel,
                arc: arc_of(a),
                to_label: g.label(a.to),
            };
            f(key, a.edge, Some(a.to));
        }
    }
}

/// The embedding of `emb` grown by one candidate extension.
fn grow(emb: &Embedding, eid: EdgeId, fresh: Option<NodeId>) -> Embedding {
    let mut grown = emb.clone();
    if let Some(v) = fresh {
        grown.map.push(v);
    }
    grown.edges.push(eid);
    grown
}

/// Enumerates every legal rightmost-path extension of `code` across
/// `embeddings`, grouping the grown embeddings by induced DFS edge.
pub fn enumerate_extensions(
    code: &DfsCode,
    embeddings: &[Embedding],
    db: &GraphDatabase,
) -> ExtensionMap {
    let mut out = ExtensionMap::new();
    let frame = ExtFrame::of(code);
    for emb in embeddings {
        let g = db.graph(emb.gid);
        for_each_candidate(&frame, emb, g, |key, eid, fresh| {
            out.entry(OrderedExt(key)).or_default().push(grow(emb, eid, fresh));
        });
    }
    out
}

/// The smallest rightmost-path extension of `code` across `embeddings`,
/// with the grown embeddings of that (and only that) extension written
/// into `out`, reusing `out`'s allocation. `None` if no extension exists.
///
/// This is `enumerate_extensions(..).iter().next()` without the map: the
/// minimality check only ever consumes the smallest extension, so building
/// (and cloning embeddings into) every group is pure waste on its hot
/// path. Candidates are scanned twice — minimum first, then materialize —
/// and the resulting embedding list is byte-identical to the map entry's.
pub fn min_extension(
    code: &DfsCode,
    embeddings: &[Embedding],
    db: &GraphDatabase,
    out: &mut Vec<Embedding>,
) -> Option<DfsEdge> {
    out.clear();
    let frame = ExtFrame::of(code);
    let mut best: Option<DfsEdge> = None;
    for emb in embeddings {
        let g = db.graph(emb.gid);
        for_each_candidate(&frame, emb, g, |key, _, _| match &best {
            None => best = Some(key),
            Some(b) => {
                if dfs_edge_cmp(&key, b) == Ordering::Less {
                    best = Some(key);
                }
            }
        });
    }
    let min = best?;
    for emb in embeddings {
        let g = db.graph(emb.gid);
        for_each_candidate(&frame, emb, g, |key, eid, fresh| {
            if key == min {
                out.push(grow(emb, eid, fresh));
            }
        });
    }
    Some(min)
}

/// Approximate heap footprint of an embedding list in bytes: the spine
/// plus each embedding's vertex map and edge list.
pub fn embedding_list_bytes(embeddings: &[Embedding]) -> usize {
    let spine = std::mem::size_of_val(embeddings);
    let inner: usize = embeddings
        .iter()
        .map(|e| std::mem::size_of_val(&e.map[..]) + std::mem::size_of_val(&e.edges[..]))
        .sum();
    spine + inner
}

/// The number of distinct database graphs among `embeddings` — gSpan's
/// support count. Embeddings are produced in ascending `gid` order, which
/// this exploits.
pub fn distinct_graph_count(embeddings: &[Embedding]) -> usize {
    let mut n = 0;
    let mut last = usize::MAX;
    for e in embeddings {
        debug_assert!(last == usize::MAX || e.gid >= last, "embeddings out of gid order");
        if e.gid != last {
            n += 1;
            last = e.gid;
        }
    }
    n
}

/// Frequency filter on seeds: keeps only extensions supported by at least
/// `min_count` distinct graphs.
pub fn prune_infrequent(map: &mut ExtensionMap, min_count: usize) {
    map.retain(|_, embs| distinct_graph_count(embs) >= min_count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_graph::{EdgeLabel, LabeledGraph, NodeLabel};

    fn nl(v: u32) -> NodeLabel {
        NodeLabel(v)
    }
    fn el(v: u32) -> EdgeLabel {
        EdgeLabel(v)
    }

    /// The label triple of a seed key.
    fn seed_labels(key: &OrderedExt) -> (NodeLabel, EdgeLabel, NodeLabel) {
        (key.0.from_label, key.0.elabel, key.0.to_label)
    }

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let mut g = LabeledGraph::with_nodes(labels.iter().map(|&x| nl(x)));
        for i in 1..labels.len() {
            g.add_edge(i - 1, i, el(0)).unwrap();
        }
        g
    }

    #[test]
    fn seeds_orient_smaller_label_first() {
        let db = GraphDatabase::from_graphs(vec![path_graph(&[2, 1])]);
        let seeds = seed_extensions(&db);
        assert_eq!(seeds.len(), 1);
        let (key, embs) = seeds.iter().next().unwrap();
        assert_eq!(seed_labels(key), (nl(1), el(0), nl(2)));
        assert_eq!(embs.len(), 1);
        assert_eq!(embs[0].map, vec![1, 0], "map starts at the label-1 vertex");
    }

    #[test]
    fn equal_labels_produce_both_orientations() {
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 1])]);
        let seeds = seed_extensions(&db);
        assert_eq!(seeds.len(), 1);
        let embs = seeds.values().next().unwrap();
        assert_eq!(embs.len(), 2);
    }

    #[test]
    fn forward_extension_from_rightmost_path() {
        // DB: path 1-2-3. Code: (0,1,1,0,2). Extensions: forward (1,2,2,0,3).
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 2, 3])]);
        let seeds = seed_extensions(&db);
        let (key, embs) = seeds
            .iter()
            .find(|(k, _)| seed_labels(k) == (nl(1), el(0), nl(2)))
            .unwrap();
        let code = DfsCode::from_edges(vec![key.0]);
        let exts = enumerate_extensions(&code, embs, &db);
        assert_eq!(exts.len(), 1);
        let (ek, eembs) = exts.iter().next().unwrap();
        assert_eq!(ek.0.from, 1);
        assert_eq!(ek.0.to, 2);
        assert_eq!(ek.0.to_label, nl(3));
        assert_eq!(eembs[0].map, vec![0, 1, 2]);
        assert_eq!(eembs[0].edges.len(), 2);
    }

    #[test]
    fn backward_extension_closes_triangle() {
        let mut g = LabeledGraph::with_nodes([nl(1), nl(2), nl(3)]);
        g.add_edge(0, 1, el(0)).unwrap();
        g.add_edge(1, 2, el(0)).unwrap();
        g.add_edge(2, 0, el(0)).unwrap();
        let db = GraphDatabase::from_graphs(vec![g]);
        // Grow code (0,1,1,0,2)(1,2,2,0,3); expect backward (2,0).
        let seeds = seed_extensions(&db);
        let (k1, e1) = seeds
            .iter()
            .find(|(k, _)| seed_labels(k) == (nl(1), el(0), nl(2)))
            .unwrap();
        let code1 = DfsCode::from_edges(vec![k1.0]);
        let exts1 = enumerate_extensions(&code1, e1, &db);
        let (k2, e2) = exts1
            .iter()
            .find(|(k, _)| k.0.to_label == nl(3) && k.0.from == 1)
            .unwrap();
        let mut code2 = code1.clone();
        code2.push(k2.0);
        let exts2 = enumerate_extensions(&code2, e2, &db);
        let back: Vec<_> = exts2.keys().filter(|k| !k.0.is_forward()).collect();
        assert_eq!(back.len(), 1);
        assert_eq!((back[0].0.from, back[0].0.to), (2, 0));
        // The backward-extended embedding reuses no edge.
        let bembs = &exts2[back[0]];
        assert_eq!(bembs[0].edges.len(), 3);
    }

    #[test]
    fn used_edges_are_not_reused() {
        // Single edge graph: after the seed, no extensions at all.
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 2])]);
        let seeds = seed_extensions(&db);
        let (k, embs) = seeds.iter().next().unwrap();
        let code = DfsCode::from_edges(vec![k.0]);
        assert!(enumerate_extensions(&code, embs, &db).is_empty());
    }

    #[test]
    fn distinct_graph_count_collapses_same_gid() {
        let mk = |gid| Embedding {
            gid,
            map: vec![0, 1],
            edges: vec![0],
        };
        assert_eq!(distinct_graph_count(&[mk(0), mk(0), mk(2)]), 2);
        assert_eq!(distinct_graph_count(&[]), 0);
    }

    #[test]
    fn prune_infrequent_drops_rare_seeds() {
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 2]), path_graph(&[1, 2])]);
        let mut seeds = seed_extensions(&db);
        prune_infrequent(&mut seeds, 2);
        assert_eq!(seeds.len(), 1);
        prune_infrequent(&mut seeds, 3);
        assert!(seeds.is_empty());
    }
}
