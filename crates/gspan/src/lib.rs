//! A from-scratch gSpan (Yan & Han, ICDM'02) frequent-subgraph miner.
//!
//! gSpan represents each connected pattern by its minimal DFS code and
//! explores the code tree depth-first, extending patterns only along the
//! rightmost path and pruning every non-minimal code, so each pattern is
//! visited exactly once. Support is counted per distinct database graph.
//!
//! This crate is the general-purpose substrate that Taxogram's Step 2
//! builds on (the paper picks gSpan over FSG/FFSM "because its
//! depth-first-search style candidate enumeration requires less memory,
//! and its running time performance is better than or at least comparable
//! to the other alternatives", citing the ParMol comparison \[19\]). The
//! [`PatternSink`] visitor API is the hook through which Taxogram attaches
//! occurrence-index construction to the mining loop — the pattern and its
//! complete embedding list are handed over at report time, so downstream
//! consumers never re-run isomorphism tests.
//!
//! # Example
//!
//! ```
//! use tsg_graph::{GraphDatabase, LabeledGraph, NodeLabel, EdgeLabel};
//! use tsg_gspan::mine_frequent;
//!
//! let mut g1 = LabeledGraph::with_nodes([NodeLabel(1), NodeLabel(2)]);
//! g1.add_edge(0, 1, EdgeLabel(0)).unwrap();
//! let mut g2 = LabeledGraph::with_nodes([NodeLabel(2), NodeLabel(1), NodeLabel(3)]);
//! g2.add_edge(0, 1, EdgeLabel(0)).unwrap();
//! g2.add_edge(0, 2, EdgeLabel(0)).unwrap();
//! let db = GraphDatabase::from_graphs(vec![g1, g2]);
//!
//! let patterns = mine_frequent(&db, 2, None);
//! assert_eq!(patterns.len(), 1); // the 1—2 edge appears in both graphs
//! assert_eq!(patterns[0].support, 2);
//! ```

mod dfs_code;
mod extension;
mod minimal;
mod miner;
pub mod oracle;
mod parallel;

pub use dfs_code::{dfs_edge_cmp, ArcDir, DfsCode, DfsEdge};
pub use extension::{
    distinct_graph_count, embedding_list_bytes, enumerate_extensions, seed_extensions, Embedding,
    ExtensionMap, OrderedExt,
};
pub use minimal::{is_min, is_min_with_scratch, min_dfs_code, MinScratch};
pub use miner::{
    mine_frequent, ClassHandoff, CollectSink, FrequentPattern, GSpan, GSpanConfig, Grow,
    MinedPattern, PatternSink,
};
pub use parallel::{
    mine_frequent_parallel, mine_parallel_classes, mine_parallel_with, ParallelOptions,
    SearchPanicked, SearchRun, StealStats, TaskGauge,
};
#[doc(hidden)]
pub use parallel::{mine_parallel_with_faults, FaultInjection};
