//! The gSpan mining loop with a visitor (sink) API.

use crate::dfs_code::DfsCode;
use crate::extension::{
    distinct_graph_count, enumerate_extensions, prune_infrequent, seed_extensions, Embedding,
};
use crate::minimal::{is_min_with_scratch, MinScratch};
use std::ops::ControlFlow;
use tsg_graph::{GraphDatabase, LabeledGraph};

/// Mining parameters.
#[derive(Clone, Copy, Debug)]
pub struct GSpanConfig {
    /// Minimum number of distinct database graphs a pattern must occur in
    /// (the paper's `θ·|D|`, as an absolute count, rounded up).
    pub min_support: usize,
    /// Optional cap on pattern edge count (patterns larger than this are
    /// neither reported nor grown).
    pub max_edges: Option<usize>,
}

impl GSpanConfig {
    /// A config from a fractional threshold `theta` over `db`.
    pub fn with_threshold(db: &GraphDatabase, theta: f64) -> Self {
        GSpanConfig {
            min_support: db.min_support_count(theta),
            max_edges: None,
        }
    }
}

/// A frequent pattern as handed to a [`PatternSink`].
#[derive(Debug)]
pub struct MinedPattern<'a> {
    /// The pattern's minimal DFS code.
    pub code: &'a DfsCode,
    /// The pattern as a graph (vertex ids = DFS ids).
    pub graph: &'a LabeledGraph,
    /// Number of distinct database graphs containing the pattern.
    pub support: usize,
    /// Every embedding of the pattern in the database, ascending by graph.
    pub embeddings: &'a [Embedding],
}

/// What the miner should do after reporting a pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Grow {
    /// Keep growing this pattern (the default).
    Continue,
    /// Do not grow this pattern further (its supergraphs are unwanted, e.g.
    /// a size cap specific to the sink). Siblings are unaffected.
    Prune,
    /// Abort the entire mining run.
    Stop,
}

/// A completed pattern class, handed off **by move** once the miner no
/// longer needs its embeddings.
///
/// The embedding list is the expensive part of a mined class; streaming
/// consumers (e.g. a pipelined Step 3) want to take ownership of it rather
/// than clone it out of [`MinedPattern`]'s borrowed slice. The miner calls
/// [`PatternSink::complete`] with this handoff as soon as the class's
/// extensions have been enumerated — its children's embedding lists exist
/// by then, so the parent's are dead weight to the miner.
#[derive(Debug)]
pub struct ClassHandoff {
    /// The pattern's minimal DFS code — the class's canonical identity.
    /// Parallel consumers key their deterministic merge on it.
    pub code: DfsCode,
    /// The pattern as a graph (vertex ids = DFS ids).
    pub graph: LabeledGraph,
    /// Number of distinct database graphs containing the pattern.
    pub support: usize,
    /// Every embedding of the pattern in the database, ascending by graph;
    /// owned — moved, not cloned, out of the mining frame.
    pub embeddings: Vec<Embedding>,
}

/// Receives every frequent pattern, in DFS (depth-first, canonical) order.
pub trait PatternSink {
    /// Called once per frequent pattern with its embeddings.
    fn report(&mut self, pattern: &MinedPattern<'_>) -> Grow;

    /// Called once per *reported* pattern, after the miner has enumerated
    /// the pattern's extensions, handing the class over by move. Calls
    /// arrive in report (pre-order DFS) order. Not called for a pattern
    /// whose `report` returned [`Grow::Stop`]. The default drops the class.
    fn complete(&mut self, class: ClassHandoff) {
        let _ = class;
    }
}

/// A sink collecting `(graph, support)` pairs.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// The collected patterns in discovery order.
    pub patterns: Vec<FrequentPattern>,
}

/// An owned mined pattern.
#[derive(Clone, Debug)]
pub struct FrequentPattern {
    /// The pattern graph.
    pub graph: LabeledGraph,
    /// Its minimal DFS code.
    pub code: DfsCode,
    /// Distinct-graph support count.
    pub support: usize,
}

impl PatternSink for CollectSink {
    fn report(&mut self, p: &MinedPattern<'_>) -> Grow {
        self.patterns.push(FrequentPattern {
            graph: p.graph.clone(),
            code: p.code.clone(),
            support: p.support,
        });
        Grow::Continue
    }
}

/// The gSpan miner. Mines all connected frequent subgraphs (with at least
/// one edge) of `db`, reporting each exactly once, in canonical DFS-code
/// order, with its full embedding list.
pub struct GSpan<'a> {
    db: &'a GraphDatabase,
    config: GSpanConfig,
}

impl<'a> GSpan<'a> {
    /// Creates a miner over `db`.
    pub fn new(db: &'a GraphDatabase, config: GSpanConfig) -> Self {
        GSpan { db, config }
    }

    /// Runs the mining loop, feeding `sink`.
    pub fn mine<S: PatternSink>(&self, sink: &mut S) {
        let mut scratch = MinScratch::new();
        let mut seeds = seed_extensions(self.db);
        prune_infrequent(&mut seeds, self.config.min_support);
        for (key, embs) in seeds {
            let mut code = DfsCode::from_edges(vec![key.0]);
            if self.mine_rec(&mut code, embs, sink, &mut scratch).is_break() {
                return;
            }
        }
    }

    /// Visits one search-tree node: minimality check, report, extension
    /// enumeration, completion handoff. Returns `None` if the node is
    /// non-minimal or its report said [`Grow::Stop`] (distinguished by
    /// `stopped`); otherwise the frequent children to recurse into, in
    /// canonical order (empty when pruned or at the edge cap).
    ///
    /// This is the unit of work both the serial recursion and the parallel
    /// work-stealing driver are built from — sharing it is what keeps
    /// their per-class output byte-identical.
    pub(crate) fn visit<S: PatternSink>(
        &self,
        code: &DfsCode,
        embs: Vec<Embedding>,
        sink: &mut S,
        scratch: &mut MinScratch,
        stopped: &mut bool,
    ) -> Option<Vec<(crate::extension::OrderedExt, Vec<Embedding>)>> {
        if !is_min_with_scratch(code, scratch) {
            // A smaller code reaches this graph; that branch reports it.
            return None;
        }
        let graph = code.to_graph().expect("mined codes denote valid graphs"); // tsg-lint: allow(panic) — codes built edge-by-edge by the miner denote valid graphs
        let support = distinct_graph_count(&embs);
        let decision = sink.report(&MinedPattern {
            code,
            graph: &graph,
            support,
            embeddings: &embs,
        });
        let handoff = |embeddings: Vec<Embedding>, graph: LabeledGraph| ClassHandoff {
            code: code.clone(),
            graph,
            support,
            embeddings,
        };
        match decision {
            Grow::Stop => {
                *stopped = true;
                return None;
            }
            Grow::Prune => {
                sink.complete(handoff(embs, graph));
                return Some(Vec::new());
            }
            Grow::Continue => {}
        }
        if self.config.max_edges.is_some_and(|m| code.len() >= m) {
            sink.complete(handoff(embs, graph));
            return Some(Vec::new());
        }
        let exts = enumerate_extensions(code, &embs, self.db);
        // The children's embedding lists now exist; the parent's are dead
        // weight to the miner, so the class completes (by move) *before*
        // the subtree is explored — streaming consumers start on it while
        // mining continues.
        sink.complete(handoff(embs, graph));
        Some(
            exts.into_iter()
                .filter(|(_, child_embs)| {
                    distinct_graph_count(child_embs) >= self.config.min_support
                })
                .collect(),
        )
    }

    /// Recursive step. Precondition: `embs` is frequent. Owns the
    /// embedding list so completed classes can be handed off by move.
    fn mine_rec<S: PatternSink>(
        &self,
        code: &mut DfsCode,
        embs: Vec<Embedding>,
        sink: &mut S,
        scratch: &mut MinScratch,
    ) -> ControlFlow<()> {
        let mut stopped = false;
        let Some(children) = self.visit(code, embs, sink, scratch, &mut stopped) else {
            return if stopped {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            };
        };
        for (key, child_embs) in children {
            code.push(key.0);
            let flow = self.mine_rec(code, child_embs, sink, scratch);
            code.pop();
            flow?;
        }
        ControlFlow::Continue(())
    }
}

/// Convenience wrapper: mines and collects all frequent patterns.
pub fn mine_frequent(
    db: &GraphDatabase,
    min_support: usize,
    max_edges: Option<usize>,
) -> Vec<FrequentPattern> {
    let mut sink = CollectSink::default();
    GSpan::new(
        db,
        GSpanConfig {
            min_support,
            max_edges,
        },
    )
    .mine(&mut sink);
    sink.patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_graph::{EdgeLabel, NodeLabel};

    fn nl(v: u32) -> NodeLabel {
        NodeLabel(v)
    }
    fn el(v: u32) -> EdgeLabel {
        EdgeLabel(v)
    }

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let mut g = LabeledGraph::with_nodes(labels.iter().map(|&x| nl(x)));
        for i in 1..labels.len() {
            g.add_edge(i - 1, i, el(0)).unwrap();
        }
        g
    }

    #[test]
    fn single_shared_edge_is_found() {
        let db = GraphDatabase::from_graphs(vec![
            path_graph(&[1, 2]),
            path_graph(&[1, 2, 3]),
            path_graph(&[4, 5]),
        ]);
        let got = mine_frequent(&db, 2, None);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].support, 2);
        assert_eq!(got[0].graph.node_count(), 2);
        let mut labels: Vec<_> = got[0].graph.labels().to_vec();
        labels.sort();
        assert_eq!(labels, vec![nl(1), nl(2)]);
    }

    #[test]
    fn each_pattern_reported_once() {
        // Two identical triangles: patterns are edge, path-2, triangle —
        // per distinct labeled shape, exactly once.
        let mk = || {
            let mut g = LabeledGraph::with_nodes([nl(1), nl(1), nl(1)]);
            g.add_edge(0, 1, el(0)).unwrap();
            g.add_edge(1, 2, el(0)).unwrap();
            g.add_edge(2, 0, el(0)).unwrap();
            g
        };
        let db = GraphDatabase::from_graphs(vec![mk(), mk()]);
        let got = mine_frequent(&db, 2, None);
        // Patterns: single edge, path of 3, triangle.
        assert_eq!(got.len(), 3, "got: {:?}", got.iter().map(|p| p.code.to_string()).collect::<Vec<_>>());
        let sizes: Vec<_> = got.iter().map(|p| p.graph.edge_count()).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2) && sizes.contains(&3));
        for p in &got {
            assert_eq!(p.support, 2);
        }
    }

    #[test]
    fn max_edges_caps_growth() {
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 1, 1, 1])]);
        let got = mine_frequent(&db, 1, Some(2));
        assert!(got.iter().all(|p| p.graph.edge_count() <= 2));
        assert!(got.iter().any(|p| p.graph.edge_count() == 2));
    }

    #[test]
    fn embeddings_cover_all_occurrences() {
        // Pattern 1-1 in a path 1-1-1: 4 embeddings (2 edges × 2 dirs).
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 1, 1])]);
        struct Check {
            edge_embeddings: usize,
        }
        impl PatternSink for Check {
            fn report(&mut self, p: &MinedPattern<'_>) -> Grow {
                if p.graph.edge_count() == 1 {
                    self.edge_embeddings = p.embeddings.len();
                }
                Grow::Continue
            }
        }
        let mut c = Check { edge_embeddings: 0 };
        GSpan::new(
            &db,
            GSpanConfig {
                min_support: 1,
                max_edges: None,
            },
        )
        .mine(&mut c);
        assert_eq!(c.edge_embeddings, 4);
    }

    #[test]
    fn stop_aborts_run() {
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 1, 1, 1])]);
        struct StopAfterOne(usize);
        impl PatternSink for StopAfterOne {
            fn report(&mut self, _: &MinedPattern<'_>) -> Grow {
                self.0 += 1;
                Grow::Stop
            }
        }
        let mut s = StopAfterOne(0);
        GSpan::new(
            &db,
            GSpanConfig {
                min_support: 1,
                max_edges: None,
            },
        )
        .mine(&mut s);
        assert_eq!(s.0, 1);
    }

    #[test]
    fn prune_skips_supergraphs_only() {
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 2, 3])]);
        struct PruneAll(Vec<usize>);
        impl PatternSink for PruneAll {
            fn report(&mut self, p: &MinedPattern<'_>) -> Grow {
                self.0.push(p.graph.edge_count());
                Grow::Prune
            }
        }
        let mut s = PruneAll(vec![]);
        GSpan::new(
            &db,
            GSpanConfig {
                min_support: 1,
                max_edges: None,
            },
        )
        .mine(&mut s);
        // Only 1-edge patterns get reported: 1-2 and 2-3.
        assert_eq!(s.0, vec![1, 1]);
    }

    #[test]
    fn complete_mirrors_report_with_owned_embeddings() {
        // complete() must fire once per reported pattern, in report order,
        // with the same graph/support/embedding list — including for
        // pruned patterns and patterns at the max_edges cap.
        struct Lifecycle {
            reported: Vec<(Vec<NodeLabel>, usize, usize)>,
            completed: Vec<(Vec<NodeLabel>, usize, usize)>,
            prune_two_edges: bool,
        }
        impl PatternSink for Lifecycle {
            fn report(&mut self, p: &MinedPattern<'_>) -> Grow {
                self.reported
                    .push((p.graph.labels().to_vec(), p.support, p.embeddings.len()));
                if self.prune_two_edges && p.graph.edge_count() >= 2 {
                    Grow::Prune
                } else {
                    Grow::Continue
                }
            }
            fn complete(&mut self, class: ClassHandoff) {
                self.completed.push((
                    class.graph.labels().to_vec(),
                    class.support,
                    class.embeddings.len(),
                ));
            }
        }
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 2, 3, 1])]);
        for (prune, max_edges) in [(false, None), (true, None), (false, Some(2))] {
            let mut s = Lifecycle {
                reported: vec![],
                completed: vec![],
                prune_two_edges: prune,
            };
            GSpan::new(
                &db,
                GSpanConfig {
                    min_support: 1,
                    max_edges,
                },
            )
            .mine(&mut s);
            assert!(!s.reported.is_empty());
            assert_eq!(s.reported, s.completed, "prune={prune} cap={max_edges:?}");
        }
    }

    #[test]
    fn stop_skips_complete() {
        struct StopNow {
            completions: usize,
        }
        impl PatternSink for StopNow {
            fn report(&mut self, _: &MinedPattern<'_>) -> Grow {
                Grow::Stop
            }
            fn complete(&mut self, _: ClassHandoff) {
                self.completions += 1;
            }
        }
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 1, 1])]);
        let mut s = StopNow { completions: 0 };
        GSpan::new(
            &db,
            GSpanConfig {
                min_support: 1,
                max_edges: None,
            },
        )
        .mine(&mut s);
        assert_eq!(s.completions, 0);
    }

    #[test]
    fn infrequent_patterns_are_absent() {
        let db = GraphDatabase::from_graphs(vec![
            path_graph(&[1, 2, 3]),
            path_graph(&[1, 2]),
            path_graph(&[9, 9]),
        ]);
        let got = mine_frequent(&db, 2, None);
        assert_eq!(got.len(), 1, "only the 1-2 edge is frequent");
        assert_eq!(got[0].support, 2);
    }
}
