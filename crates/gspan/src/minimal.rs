//! The DFS-code minimality (canonicality) test.

// tsg-lint: allow(panic) — minimality replay runs on self-produced nonempty connected codes; the expects state gSpan structural invariants (a code always seeds and extends)

use crate::dfs_code::DfsCode;
use crate::extension::{min_extension, min_seed, Embedding};
use tsg_graph::GraphDatabase;

/// Reusable buffers for the minimality check.
///
/// The check runs once per search-tree node, making it gSpan's hottest
/// non-enumeration path. A scratch keeps the canonical-growth replay
/// allocation-free across calls: `cur`/`next` are the prefix's embedding
/// lists (double-buffered, swapped each step) and `prefix` is the growing
/// canonical code. Workers own one scratch each; none of the state
/// escapes a call.
#[derive(Debug, Default)]
pub struct MinScratch {
    cur: Vec<Embedding>,
    next: Vec<Embedding>,
    prefix: DfsCode,
}

impl MinScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        MinScratch::default()
    }
}

/// `true` iff `code` is the minimum DFS code of the graph it denotes.
///
/// gSpan prunes any search branch whose code is non-minimal: every graph is
/// reached through exactly one (the minimal) code, so pruning duplicates
/// costs no completeness (Yan & Han, ICDM'02, Theorem 1).
///
/// The test replays canonical growth on the pattern itself: starting from
/// the smallest seed edge, at every step the smallest legal rightmost-path
/// extension must equal the next code edge. Any deviation proves a smaller
/// code exists. Only the minimum extension is ever materialized
/// ([`min_extension`]), so no extension map is built and losing branches
/// are never cloned.
pub fn is_min_with_scratch(code: &DfsCode, scratch: &mut MinScratch) -> bool {
    if code.is_empty() {
        return true;
    }
    let g = code.to_graph().expect("mined codes denote valid graphs");
    let db = GraphDatabase::from_graphs(vec![g]);
    let first = min_seed(&db, &mut scratch.cur).expect("code has at least one edge");
    if first != code.edges()[0] { // tsg-lint: allow(index) — code checked nonempty at entry
        return false;
    }
    scratch.prefix.clear();
    scratch.prefix.push(first);
    for k in 1..code.len() {
        let min_key = min_extension(&scratch.prefix, &scratch.cur, &db, &mut scratch.next)
            .expect("the code's own edge k is a legal extension, so the set is nonempty");
        if min_key != code.edges()[k] { // tsg-lint: allow(index) — k ranges over 1..code.len()
            return false;
        }
        scratch.prefix.push(min_key);
        std::mem::swap(&mut scratch.cur, &mut scratch.next);
    }
    true
}

/// [`is_min_with_scratch`] with a throwaway scratch, for callers outside
/// the mining hot loop.
pub fn is_min(code: &DfsCode) -> bool {
    is_min_with_scratch(code, &mut MinScratch::new())
}

/// Computes the minimum (canonical) DFS code of an arbitrary labeled
/// graph by greedy canonical growth: start from the smallest seed edge,
/// repeatedly take the smallest legal rightmost-path extension.
///
/// Canonical codes give graphs a hashable identity: two graphs are
/// isomorphic iff their minimum codes are equal. Intended for
/// mining-sized graphs (the growth tracks every embedding of the prefix
/// in the graph, which is exponential in the worst case).
///
/// # Panics
/// Panics if `g` is disconnected or has no edges (such graphs have no
/// DFS code).
pub fn min_dfs_code(g: &tsg_graph::LabeledGraph) -> DfsCode {
    assert!(g.edge_count() >= 1, "DFS codes require at least one edge");
    assert!(g.is_connected(), "DFS codes cover connected graphs only");
    let total_edges = g.edge_count();
    let db = GraphDatabase::from_graphs(vec![g.clone()]);
    let mut scratch = MinScratch::new();
    let first = min_seed(&db, &mut scratch.cur).expect("graph has an edge");
    let mut code = DfsCode::from_edges(vec![first]);
    for _ in 1..total_edges {
        let min_key = min_extension(&code, &scratch.cur, &db, &mut scratch.next)
            .expect("connected graph always extends until all edges are covered");
        code.push(min_key);
        std::mem::swap(&mut scratch.cur, &mut scratch.next);
    }
    debug_assert!(is_min(&code));
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs_code::DfsEdge;
    use tsg_graph::{EdgeLabel, NodeLabel};

    fn edge(from: usize, to: usize, fl: u32, el: u32, tl: u32) -> DfsEdge {
        DfsEdge {
            from,
            to,
            from_label: NodeLabel(fl),
            elabel: EdgeLabel(el),
            arc: crate::dfs_code::ArcDir::Undirected,
            to_label: NodeLabel(tl),
        }
    }

    #[test]
    fn min_code_is_an_isomorphism_invariant() {
        use tsg_graph::LabeledGraph;
        // The same triangle built in two vertex orders.
        let mut a = LabeledGraph::with_nodes([NodeLabel(1), NodeLabel(2), NodeLabel(3)]);
        a.add_edge(0, 1, EdgeLabel(0)).unwrap();
        a.add_edge(1, 2, EdgeLabel(0)).unwrap();
        a.add_edge(2, 0, EdgeLabel(0)).unwrap();
        let mut b = LabeledGraph::with_nodes([NodeLabel(3), NodeLabel(1), NodeLabel(2)]);
        b.add_edge(1, 2, EdgeLabel(0)).unwrap();
        b.add_edge(2, 0, EdgeLabel(0)).unwrap();
        b.add_edge(0, 1, EdgeLabel(0)).unwrap();
        assert_eq!(min_dfs_code(&a), min_dfs_code(&b));
        // A different labeling gives a different code.
        let mut c = LabeledGraph::with_nodes([NodeLabel(1), NodeLabel(2), NodeLabel(4)]);
        c.add_edge(0, 1, EdgeLabel(0)).unwrap();
        c.add_edge(1, 2, EdgeLabel(0)).unwrap();
        c.add_edge(2, 0, EdgeLabel(0)).unwrap();
        assert_ne!(min_dfs_code(&a), min_dfs_code(&c));
        // Round trip: the code reconstructs an isomorphic graph.
        let back = min_dfs_code(&a).to_graph().unwrap();
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn min_code_rejects_edgeless() {
        use tsg_graph::LabeledGraph;
        min_dfs_code(&LabeledGraph::with_nodes([NodeLabel(0)]));
    }

    #[test]
    fn single_edge_codes_are_minimal() {
        assert!(is_min(&DfsCode::from_edges(vec![edge(0, 1, 0, 0, 1)])));
        // Even a "backwards oriented" single edge: by convention it is its
        // own code; the miner never produces from_label > to_label seeds.
        assert!(!is_min(&DfsCode::from_edges(vec![edge(0, 1, 1, 0, 0)])));
    }

    #[test]
    fn path_code_must_start_at_smallest_label() {
        // Path 0-1-2 with labels 1,2,3: minimal code starts at label 1.
        let minimal = DfsCode::from_edges(vec![edge(0, 1, 1, 0, 2), edge(1, 2, 2, 0, 3)]);
        assert!(is_min(&minimal));
        // Starting from the label-3 end is not minimal.
        let other = DfsCode::from_edges(vec![edge(0, 1, 2, 0, 3), edge(0, 2, 2, 0, 1)]);
        assert!(!is_min(&other));
    }

    #[test]
    fn star_vs_chain_growth() {
        // Star with center label 0, leaves 1 and 2: code must grow the
        // smaller leaf first: (0,1,0,e,1)(0,2,0,e,2).
        let good = DfsCode::from_edges(vec![edge(0, 1, 0, 0, 1), edge(0, 2, 0, 0, 2)]);
        assert!(is_min(&good));
        let bad = DfsCode::from_edges(vec![edge(0, 1, 0, 0, 2), edge(0, 2, 0, 0, 1)]);
        assert!(!is_min(&bad));
    }

    #[test]
    fn triangle_backward_edge_comes_before_further_growth() {
        // Uniform triangle (all labels 0): minimal code is
        // (0,1)(1,2)(2,0) — the backward edge closes immediately.
        let tri = DfsCode::from_edges(vec![
            edge(0, 1, 0, 0, 0),
            edge(1, 2, 0, 0, 0),
            edge(2, 0, 0, 0, 0),
        ]);
        assert!(is_min(&tri));
    }

    #[test]
    fn square_with_tail_noncanonical_orders_rejected() {
        // Path a-a-a (labels all 0, edge labels 0 then 1).
        // Minimal growth must take edge label 0 first.
        let good = DfsCode::from_edges(vec![edge(0, 1, 0, 0, 0), edge(1, 2, 0, 1, 0)]);
        assert!(is_min(&good));
        let bad = DfsCode::from_edges(vec![edge(0, 1, 0, 1, 0), edge(1, 2, 0, 0, 0)]);
        assert!(!is_min(&bad));
    }
}
