//! A brute-force frequent-subgraph oracle for testing miners.
//!
//! Enumerates every connected, ≥1-edge subgraph (by edge subset) of every
//! database graph, deduplicates up to isomorphism, and recounts support by
//! explicit subgraph-isomorphism tests. Exponential — strictly a test
//! oracle for small inputs, but an *independent* implementation: it shares
//! no code path with the gSpan miner, so agreement between the two is
//! meaningful evidence.

// tsg-lint: allow(index) — mask bits enumerate the oracle's own edge list

use tsg_graph::{GraphDatabase, LabeledGraph};
use tsg_iso::{is_isomorphic, BatchedMatcher, ExactMatcher};

/// All frequent connected patterns (with ≥ 1 edge, up to `max_edges`) of
/// `db` with support ≥ `min_support` distinct graphs, one representative
/// per isomorphism class, paired with its support count.
///
/// # Panics
/// Panics if any database graph has more than 22 edges (the enumeration is
/// `2^edges` per graph; beyond that you are misusing a test oracle).
pub fn brute_force_frequent(
    db: &GraphDatabase,
    min_support: usize,
    max_edges: usize,
) -> Vec<(LabeledGraph, usize)> {
    let mut reps: Vec<LabeledGraph> = Vec::new();
    for (_, g) in db.iter() {
        let m = g.edge_count();
        assert!(m <= 22, "oracle limited to tiny graphs, got {m} edges");
        for mask in 1u32..(1 << m) {
            if (mask.count_ones() as usize) > max_edges {
                continue;
            }
            let sub = edge_subset_subgraph(g, mask);
            if !sub.is_connected() {
                continue;
            }
            if !reps.iter().any(|r| is_isomorphic(r, &sub)) {
                reps.push(sub);
            }
        }
    }
    // One candidate-set index over the database, shared by every
    // recount — the oracle's support loop is exactly the
    // many-patterns-per-target shape the batched matcher amortizes.
    let batched = BatchedMatcher::new(db, &ExactMatcher);
    reps.into_iter()
        .filter_map(|p| {
            let sup = batched.support_count(&p);
            (sup >= min_support).then_some((p, sup))
        })
        .collect()
}

/// The subgraph induced by an edge subset: its vertices are exactly the
/// endpoints of the selected edges.
fn edge_subset_subgraph(g: &LabeledGraph, mask: u32) -> LabeledGraph {
    let mut nodes: Vec<usize> = Vec::new();
    for (i, e) in g.edges().iter().enumerate() {
        if mask & (1 << i) != 0 {
            nodes.push(e.u);
            nodes.push(e.v);
        }
    }
    nodes.sort_unstable();
    nodes.dedup();
    let mut pos = std::collections::HashMap::new();
    for (i, &v) in nodes.iter().enumerate() {
        pos.insert(v, i);
    }
    let mut sub = if g.is_directed() {
        LabeledGraph::with_nodes_directed(nodes.iter().map(|&v| g.label(v)))
    } else {
        LabeledGraph::with_nodes(nodes.iter().map(|&v| g.label(v)))
    };
    for (i, e) in g.edges().iter().enumerate() {
        if mask & (1 << i) != 0 {
            sub.add_edge(pos[&e.u], pos[&e.v], e.label)
                .expect("edge subset of a simple graph is simple"); // tsg-lint: allow(panic) — edge subset of a simple graph stays simple
        }
    }
    sub
}

/// Checks that two `(pattern, support)` collections agree up to
/// isomorphism. Returns a human-readable mismatch description, or `None`
/// when they match.
pub fn compare_pattern_sets(
    got: &[(LabeledGraph, usize)],
    want: &[(LabeledGraph, usize)],
) -> Option<String> {
    if got.len() != want.len() {
        return Some(format!(
            "pattern count mismatch: got {}, want {}",
            got.len(),
            want.len()
        ));
    }
    let mut matched = vec![false; want.len()];
    for (gp, gs) in got {
        let found = want.iter().enumerate().find(|(i, (wp, ws))| {
            !matched[*i] && ws == gs && is_isomorphic(gp, wp)
        });
        match found {
            Some((i, _)) => matched[i] = true,
            None => {
                return Some(format!(
                    "pattern with support {gs} and {} edges has no partner",
                    gp.edge_count()
                ))
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_graph::{EdgeLabel, NodeLabel};

    fn nl(v: u32) -> NodeLabel {
        NodeLabel(v)
    }

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let mut g = LabeledGraph::with_nodes(labels.iter().map(|&x| nl(x)));
        for i in 1..labels.len() {
            g.add_edge(i - 1, i, EdgeLabel(0)).unwrap();
        }
        g
    }

    #[test]
    fn oracle_counts_the_obvious() {
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 2, 1]), path_graph(&[2, 1])]);
        let got = brute_force_frequent(&db, 2, 4);
        // Only the 1-2 edge occurs in both graphs.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 2);
        assert_eq!(got[0].0.edge_count(), 1);
    }

    #[test]
    fn disconnected_subsets_are_skipped() {
        // Path of 4: edge subset {first, last} is disconnected.
        let db = GraphDatabase::from_graphs(vec![path_graph(&[1, 1, 1, 1])]);
        let got = brute_force_frequent(&db, 1, 4);
        for (p, _) in &got {
            assert!(p.is_connected());
        }
        // Patterns: 1-edge, 2-path, 3-path — all uniform labels.
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn compare_pattern_sets_detects_mismatches() {
        let a = vec![(path_graph(&[1, 2]), 2)];
        let b = vec![(path_graph(&[2, 1]), 2)];
        assert!(compare_pattern_sets(&a, &b).is_none(), "isomorphic match");
        let c = vec![(path_graph(&[1, 3]), 2)];
        assert!(compare_pattern_sets(&a, &c).is_some());
        let d = vec![(path_graph(&[1, 2]), 1)];
        assert!(compare_pattern_sets(&a, &d).is_some(), "support differs");
        assert!(compare_pattern_sets(&a, &[]).is_some());
    }
}
