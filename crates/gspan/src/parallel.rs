//! Work-stealing parallel gSpan search.
//!
//! The serial miner explores the DFS-code tree in canonical pre-order.
//! Subtrees rooted at distinct minimal codes are *independent*: each is
//! fully determined by its root's code and embedding list, so they can be
//! explored on any thread in any order without changing what is found.
//! This module turns every search-tree node into a task on a
//! work-stealing scheduler:
//!
//! * each worker owns a bounded LIFO deque; a task's children are pushed
//!   in reverse canonical order, so local pops explore smallest-first —
//!   the exact serial descent — keeping the working set shaped like the
//!   serial miner's;
//! * deque overflow and the 1-edge seed classes go to a shared FIFO
//!   injector; idle workers drain the injector, then steal the *oldest*
//!   task from a sibling (oldest = closest to the root = the largest
//!   subtree, so one steal buys the most independent work);
//! * workers park on a condvar when no work is visible; a `pending` task
//!   counter (incremented before a task becomes visible, decremented
//!   after its children are spawned) reaching zero is the termination
//!   signal.
//!
//! # Determinism
//!
//! Every task computes exactly what the serial recursion would at the
//! same node — [`crate::GSpan`]'s shared `visit` step — so per-class
//! output (graph, support, embedding list and its order) is schedule
//! independent. Only *inter*-class order varies with scheduling, and the
//! canonical pre-order is recoverable: pre-order of the code tree equals
//! lexicographic [`DfsCode::cmp_code`] order (a parent's code is a strict
//! prefix of its descendants' and therefore smaller; sibling subtrees
//! compare at the first edge past the common prefix). Sorting collected
//! classes by `cmp_code` hence reproduces the serial stream byte for
//! byte, at any thread count, under any steal schedule.

use crate::dfs_code::DfsCode;
use crate::extension::{embedding_list_bytes, prune_infrequent, seed_extensions, Embedding};
use crate::miner::{ClassHandoff, FrequentPattern, GSpan, GSpanConfig, Grow, PatternSink};
use crate::minimal::MinScratch;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use tsg_graph::GraphDatabase;

/// Knobs for the work-stealing search.
#[derive(Clone, Copy, Debug)]
pub struct ParallelOptions {
    /// Worker thread count; `0` and `1` both mean one worker (still run
    /// through the scheduler, so behavior is identical at every count).
    pub threads: usize,
    /// Local deque capacity; pushing beyond it overflows the *oldest*
    /// local task to the shared injector. Capacity 1 forces nearly every
    /// task through the injector — maximal stealing, used by the
    /// determinism tests to exercise the worst schedule.
    pub deque_capacity: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 1,
            deque_capacity: 256,
        }
    }
}

/// Scheduler counters, for benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Search-tree tasks executed (minimality checks performed).
    pub tasks: usize,
    /// Tasks taken from another worker's deque.
    pub steals: usize,
}

/// Observer for the bytes held by queued-or-running tasks' embedding
/// lists. Implemented by memory gauges that track high-water residency;
/// `enqueued` fires when a task is spawned, `dequeued` when its
/// embeddings die (after the node is visited and its children spawned).
pub trait TaskGauge: Sync {
    /// `bytes` of embeddings became resident in the scheduler.
    fn task_enqueued(&self, bytes: usize);
    /// `bytes` of embeddings left the scheduler.
    fn task_dequeued(&self, bytes: usize);
}

/// One search-tree node awaiting its visit.
struct Task {
    code: DfsCode,
    embs: Vec<Embedding>,
    bytes: usize,
}

struct Scheduler {
    locals: Vec<Mutex<VecDeque<Task>>>,
    injector: Mutex<VecDeque<Task>>,
    capacity: usize,
    /// Tasks spawned but not yet fully processed (children spawned and
    /// node visited). Zero ⇒ the search is exhausted.
    pending: AtomicUsize,
    /// Workers currently parked (or committing to park) on `wake`.
    sleepers: AtomicUsize,
    park: Mutex<()>,
    wake: Condvar,
    stopped: AtomicBool,
    tasks: AtomicUsize,
    steals: AtomicUsize,
}

impl Scheduler {
    fn new(workers: usize, capacity: usize) -> Self {
        Scheduler {
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(()),
            wake: Condvar::new(),
            stopped: AtomicBool::new(false),
            tasks: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        }
    }

    fn lock_local(&self, i: usize) -> std::sync::MutexGuard<'_, VecDeque<Task>> {
        self.locals[i].lock().expect("no panic while holding a deque")
    }

    /// Makes `task` visible to the scheduler. `pending` is incremented
    /// *before* the push so no worker can observe the queue nonempty
    /// while the counter still reads zero.
    fn spawn(&self, me: usize, task: Task, gauge: Option<&dyn TaskGauge>) {
        if let Some(g) = gauge {
            g.task_enqueued(task.bytes);
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.tasks.fetch_add(1, Ordering::Relaxed);
        let overflow = {
            let mut q = self.lock_local(me);
            q.push_back(task);
            if q.len() > self.capacity {
                q.pop_front()
            } else {
                None
            }
        };
        if let Some(t) = overflow {
            self.injector
                .lock()
                .expect("no panic while holding the injector")
                .push_back(t);
        }
        self.notify_if_sleeping();
    }

    /// Seeds the injector directly (used for the 1-edge root classes).
    fn spawn_root(&self, task: Task, gauge: Option<&dyn TaskGauge>) {
        if let Some(g) = gauge {
            g.task_enqueued(task.bytes);
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.tasks.fetch_add(1, Ordering::Relaxed);
        self.injector
            .lock()
            .expect("no panic while holding the injector")
            .push_back(task);
    }

    /// Wakes parked workers if any exist. Safe against lost wakeups:
    /// parkers bump `sleepers` (SeqCst) *before* their final
    /// work-visibility check, and every queue push happens-before this
    /// load (same deque/injector mutex), so reading `sleepers == 0` here
    /// proves the parker's check will observe the pushed task.
    fn notify_if_sleeping(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().expect("no panic while holding park");
            self.wake.notify_all();
        }
    }

    fn pop_local(&self, me: usize) -> Option<Task> {
        self.lock_local(me).pop_back()
    }

    fn pop_injector(&self) -> Option<Task> {
        self.injector
            .lock()
            .expect("no panic while holding the injector")
            .pop_front()
    }

    /// Steals the oldest task from some other worker.
    fn steal(&self, me: usize) -> Option<Task> {
        let n = self.locals.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = self.lock_local(victim).pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    fn any_work(&self) -> bool {
        if !self
            .injector
            .lock()
            .expect("no panic while holding the injector")
            .is_empty()
        {
            return true;
        }
        (0..self.locals.len()).any(|i| !self.lock_local(i).is_empty())
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        let _guard = self.park.lock().expect("no panic while holding park");
        self.wake.notify_all();
    }

    /// Marks one task fully processed; wakes everyone on exhaustion.
    fn finish_task(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.park.lock().expect("no panic while holding park");
            self.wake.notify_all();
        }
    }

    fn worker_loop<S: PatternSink>(
        &self,
        me: usize,
        miner: &GSpan<'_>,
        sink: &mut S,
        gauge: Option<&dyn TaskGauge>,
    ) {
        let mut scratch = MinScratch::new();
        loop {
            if self.stopped.load(Ordering::SeqCst) {
                return;
            }
            let task = self
                .pop_local(me)
                .or_else(|| self.pop_injector())
                .or_else(|| self.steal(me));
            let Some(task) = task else {
                if self.pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                let guard = self.park.lock().expect("no panic while holding park");
                self.sleepers.fetch_add(1, Ordering::SeqCst);
                // Re-check *after* registering as a sleeper: any spawn
                // completing after this point sees `sleepers > 0` and
                // notifies; any spawn completing before it is visible to
                // `any_work`. Either way no task is missed.
                if self.pending.load(Ordering::SeqCst) != 0
                    && !self.stopped.load(Ordering::SeqCst)
                    && !self.any_work()
                {
                    drop(self.wake.wait(guard).expect("park poisoned"));
                }
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                continue;
            };
            let Task { code, embs, bytes } = task;
            let mut stopped = false;
            let children = miner.visit(&code, embs, sink, &mut scratch, &mut stopped);
            if stopped {
                self.stop();
            }
            if let Some(children) = children {
                // Reverse push: LIFO pop then explores the smallest child
                // first, replicating the serial descent per worker.
                for (key, child_embs) in children.into_iter().rev() {
                    let mut child_code = code.clone();
                    child_code.push(key.0);
                    let bytes = embedding_list_bytes(&child_embs);
                    self.spawn(
                        me,
                        Task {
                            code: child_code,
                            embs: child_embs,
                            bytes,
                        },
                        gauge,
                    );
                }
            }
            // The node's own embeddings died inside `visit` (moved in,
            // consumed); its children are accounted separately above.
            if let Some(g) = gauge {
                g.task_dequeued(bytes);
            }
            self.finish_task();
        }
    }
}

/// Runs the work-stealing search with one sink per worker, returning the
/// sinks (indexed by worker) and scheduler counters.
///
/// Each class is reported to exactly one worker's sink, with content
/// identical to the serial miner's report of the same class; *which*
/// worker, and in what order, depends on the schedule. Callers reassemble
/// the canonical stream by sorting collected classes with
/// [`DfsCode::cmp_code`] (see the module docs for why that equals serial
/// pre-order). [`Grow::Prune`] works per class as in the serial miner;
/// [`Grow::Stop`] halts all workers best-effort — the set of classes
/// visited before the stop lands is schedule dependent, unlike the serial
/// miner's exact prefix.
pub fn mine_parallel_with<S, F>(
    db: &GraphDatabase,
    config: GSpanConfig,
    options: ParallelOptions,
    gauge: Option<&dyn TaskGauge>,
    make_sink: F,
) -> (Vec<S>, StealStats)
where
    S: PatternSink + Send,
    F: Fn(usize) -> S + Sync,
{
    let workers = options.threads.max(1);
    let sched = Scheduler::new(workers, options.deque_capacity);
    let miner = GSpan::new(db, config);

    let mut seeds = seed_extensions(db);
    prune_infrequent(&mut seeds, config.min_support);
    for (key, embs) in seeds {
        let bytes = embedding_list_bytes(&embs);
        sched.spawn_root(
            Task {
                code: DfsCode::from_edges(vec![key.0]),
                embs,
                bytes,
            },
            gauge,
        );
    }

    let sinks: Vec<S> = if sched.pending.load(Ordering::SeqCst) == 0 {
        (0..workers).map(&make_sink).collect()
    } else if workers == 1 {
        // One worker needs no threads: run the loop on the caller.
        let mut sink = make_sink(0);
        sched.worker_loop(0, &miner, &mut sink, gauge);
        vec![sink]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|i| {
                    let sched = &sched;
                    let miner = &miner;
                    let make_sink = &make_sink;
                    scope.spawn(move || {
                        let mut sink = make_sink(i);
                        sched.worker_loop(i, miner, &mut sink, gauge);
                        sink
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("mining worker panicked"))
                .collect()
        })
    };
    let stats = StealStats {
        tasks: sched.tasks.load(Ordering::Relaxed),
        steals: sched.steals.load(Ordering::Relaxed),
    };
    (sinks, stats)
}

/// Collects every completed class from the work-stealing search, sorted
/// into canonical (serial) order. The returned classes are byte-identical
/// to what [`PatternSink::complete`] receives from the serial miner, in
/// the same order, at any thread count.
pub fn mine_parallel_classes(
    db: &GraphDatabase,
    config: GSpanConfig,
    options: ParallelOptions,
    gauge: Option<&dyn TaskGauge>,
) -> (Vec<ClassHandoff>, StealStats) {
    #[derive(Default)]
    struct Collect {
        classes: Vec<ClassHandoff>,
    }
    impl PatternSink for Collect {
        fn report(&mut self, _: &crate::miner::MinedPattern<'_>) -> Grow {
            Grow::Continue
        }
        fn complete(&mut self, class: ClassHandoff) {
            self.classes.push(class);
        }
    }
    let (sinks, stats) = mine_parallel_with(db, config, options, gauge, |_| Collect::default());
    let mut classes: Vec<ClassHandoff> = sinks.into_iter().flat_map(|s| s.classes).collect();
    classes.sort_by(|a, b| a.code.cmp_code(&b.code));
    (classes, stats)
}

/// Parallel analog of [`crate::mine_frequent`]: identical output (same
/// patterns, same order) mined on `options.threads` workers.
pub fn mine_frequent_parallel(
    db: &GraphDatabase,
    min_support: usize,
    max_edges: Option<usize>,
    options: ParallelOptions,
) -> Vec<FrequentPattern> {
    let (classes, _) = mine_parallel_classes(
        db,
        GSpanConfig {
            min_support,
            max_edges,
        },
        options,
        None,
    );
    classes
        .into_iter()
        .map(|c| FrequentPattern {
            graph: c.graph,
            code: c.code,
            support: c.support,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_frequent;
    use tsg_graph::{EdgeLabel, LabeledGraph, NodeLabel};

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let mut g = LabeledGraph::with_nodes(labels.iter().map(|&x| NodeLabel(x)));
        for i in 1..labels.len() {
            g.add_edge(i - 1, i, EdgeLabel(0)).unwrap();
        }
        g
    }

    fn sample_db() -> GraphDatabase {
        let mut tri = LabeledGraph::with_nodes([NodeLabel(1), NodeLabel(1), NodeLabel(2)]);
        tri.add_edge(0, 1, EdgeLabel(0)).unwrap();
        tri.add_edge(1, 2, EdgeLabel(0)).unwrap();
        tri.add_edge(2, 0, EdgeLabel(0)).unwrap();
        GraphDatabase::from_graphs(vec![
            path_graph(&[1, 1, 2, 1]),
            tri,
            path_graph(&[2, 1, 1]),
            path_graph(&[1, 2]),
        ])
    }

    fn assert_identical(serial: &[FrequentPattern], parallel: &[FrequentPattern]) {
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel) {
            assert_eq!(a.code, b.code);
            assert_eq!(a.graph.labels(), b.graph.labels());
            assert_eq!(a.graph.edges(), b.graph.edges());
            assert_eq!(a.support, b.support);
        }
    }

    #[test]
    fn parallel_matches_serial_at_every_thread_count() {
        let db = sample_db();
        let serial = mine_frequent(&db, 2, None);
        assert!(!serial.is_empty());
        for threads in [1, 2, 4, 8] {
            let parallel = mine_frequent_parallel(
                &db,
                2,
                None,
                ParallelOptions {
                    threads,
                    deque_capacity: 256,
                },
            );
            assert_identical(&serial, &parallel);
        }
    }

    #[test]
    fn forced_steals_preserve_output() {
        let db = sample_db();
        let serial = mine_frequent(&db, 1, None);
        for threads in [2, 4, 8] {
            let (_, stats) = mine_parallel_classes(
                &db,
                GSpanConfig {
                    min_support: 1,
                    max_edges: None,
                },
                ParallelOptions {
                    threads,
                    deque_capacity: 1,
                },
                None,
            );
            assert!(stats.tasks > 0);
            let parallel = mine_frequent_parallel(
                &db,
                1,
                None,
                ParallelOptions {
                    threads,
                    deque_capacity: 1,
                },
            );
            assert_identical(&serial, &parallel);
        }
    }

    #[test]
    fn max_edges_respected_in_parallel() {
        let db = sample_db();
        let serial = mine_frequent(&db, 1, Some(2));
        let parallel =
            mine_frequent_parallel(&db, 1, Some(2), ParallelOptions { threads: 4, deque_capacity: 2 });
        assert_identical(&serial, &parallel);
        assert!(parallel.iter().all(|p| p.graph.edge_count() <= 2));
    }

    #[test]
    fn empty_database_yields_nothing() {
        let got = mine_frequent_parallel(
            &GraphDatabase::new(),
            1,
            None,
            ParallelOptions::default(),
        );
        assert!(got.is_empty());
    }

    #[test]
    fn gauge_sees_balanced_traffic() {
        use std::sync::atomic::{AtomicIsize, Ordering};
        #[derive(Default)]
        struct Net {
            delta: AtomicIsize,
            seen: AtomicIsize,
        }
        impl TaskGauge for Net {
            fn task_enqueued(&self, bytes: usize) {
                self.delta.fetch_add(bytes as isize, Ordering::SeqCst);
                self.seen.fetch_add(1, Ordering::SeqCst);
            }
            fn task_dequeued(&self, bytes: usize) {
                self.delta.fetch_sub(bytes as isize, Ordering::SeqCst);
            }
        }
        let net = Net::default();
        let (classes, stats) = mine_parallel_classes(
            &sample_db(),
            GSpanConfig {
                min_support: 1,
                max_edges: None,
            },
            ParallelOptions {
                threads: 4,
                deque_capacity: 4,
            },
            Some(&net),
        );
        assert!(!classes.is_empty());
        assert_eq!(net.delta.load(Ordering::SeqCst), 0, "every byte released");
        assert_eq!(net.seen.load(Ordering::SeqCst) as usize, stats.tasks);
    }
}
