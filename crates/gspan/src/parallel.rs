//! Work-stealing parallel gSpan search.
//!
//! The serial miner explores the DFS-code tree in canonical pre-order.
//! Subtrees rooted at distinct minimal codes are *independent*: each is
//! fully determined by its root's code and embedding list, so they can be
//! explored on any thread in any order without changing what is found.
//! This module turns every search-tree node into a task on a
//! work-stealing scheduler:
//!
//! * each worker owns a bounded LIFO deque; a task's children are pushed
//!   in reverse canonical order, so local pops explore smallest-first —
//!   the exact serial descent — keeping the working set shaped like the
//!   serial miner's;
//! * deque overflow and the 1-edge seed classes go to a shared FIFO
//!   injector; idle workers drain the injector, then steal the *oldest*
//!   task from a sibling (oldest = closest to the root = the largest
//!   subtree, so one steal buys the most independent work);
//! * workers park on a condvar when no work is visible; a `pending` task
//!   counter (incremented before a task becomes visible, decremented
//!   after its children are spawned) reaching zero is the termination
//!   signal.
//!
//! # Determinism
//!
//! Every task computes exactly what the serial recursion would at the
//! same node — [`crate::GSpan`]'s shared `visit` step — so per-class
//! output (graph, support, embedding list and its order) is schedule
//! independent. Only *inter*-class order varies with scheduling, and the
//! canonical pre-order is recoverable: pre-order of the code tree equals
//! lexicographic [`DfsCode::cmp_code`] order (a parent's code is a strict
//! prefix of its descendants' and therefore smaller; sibling subtrees
//! compare at the first edge past the common prefix). Sorting collected
//! classes by `cmp_code` hence reproduces the serial stream byte for
//! byte, at any thread count, under any steal schedule.

use crate::dfs_code::DfsCode;
use crate::extension::{embedding_list_bytes, prune_infrequent, seed_extensions, Embedding};
use crate::miner::{ClassHandoff, FrequentPattern, GSpan, GSpanConfig, Grow, PatternSink};
use crate::minimal::MinScratch;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use tsg_check::sync::{AtomicBool, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering, PoisonError};
use tsg_check::thread;
use tsg_graph::GraphDatabase;

/// A worker panicked during the search (its own panic was caught and the
/// remaining workers unwound cleanly). Carries the first panic's message.
///
/// Without fault injection this can only originate in sink code (a
/// [`PatternSink`] implementation that panics); the scheduler itself does
/// not panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchPanicked {
    /// The payload of the first panic observed, rendered as text.
    pub message: String,
}

impl std::fmt::Display for SearchPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mining worker panicked: {}", self.message)
    }
}

impl std::error::Error for SearchPanicked {}

/// Deterministic fault/schedule injection for the work-stealing search.
/// Test-only plumbing (driven by `tsg-testkit`); not part of the public
/// API surface.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultInjection {
    /// Panic inside whichever worker executes the `n`th task (1-based
    /// count of task executions across all workers).
    pub panic_at_task: Option<usize>,
    /// Seeded placement perturbation: each spawned task flips a coin
    /// derived from `(seed, task serial)` and, on heads, bypasses the
    /// local deque straight to the shared injector — a deterministic
    /// forced-steal schedule independent of OS timing.
    pub steal_schedule_seed: Option<u64>,
}

impl FaultInjection {
    /// Whether task number `serial` should be forced to the injector.
    fn force_inject(&self, serial: usize) -> bool {
        let Some(seed) = self.steal_schedule_seed else {
            return false;
        };
        // splitmix64 finalizer over (seed, serial).
        let mut z = seed ^ (serial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & 1 == 1
    }
}

/// Recovers the guard from a poisoned lock. A mutex poisons when a thread
/// panics while holding it; every scheduler critical section leaves the
/// queues structurally valid between operations, and once any panic is
/// recorded the whole run's results are discarded, so continuing with the
/// recovered guard is sound — and required for the surviving workers to
/// unwind cleanly instead of cascading `.expect()` panics.
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Renders a caught panic payload as text (best effort).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Knobs for the work-stealing search.
#[derive(Clone, Copy, Debug)]
pub struct ParallelOptions {
    /// Worker thread count; `0` and `1` both mean one worker (still run
    /// through the scheduler, so behavior is identical at every count).
    pub threads: usize,
    /// Local deque capacity; pushing beyond it overflows the *oldest*
    /// local task to the shared injector. Capacity 1 forces nearly every
    /// task through the injector — maximal stealing, used by the
    /// determinism tests to exercise the worst schedule.
    pub deque_capacity: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 1,
            deque_capacity: 256,
        }
    }
}

/// Scheduler counters, for benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Search-tree tasks executed (minimality checks performed).
    pub tasks: usize,
    /// Tasks taken from another worker's deque.
    pub steals: usize,
}

/// Everything a finished work-stealing search hands back: the per-worker
/// sinks, scheduler counters, and — when the search stopped early via
/// [`Grow::Stop`] — the DFS codes of tasks still queued at the stop
/// point, in canonical [`DfsCode::cmp_code`] order. The frontier's
/// embedding bytes have already been released through the [`TaskGauge`],
/// so gauge traffic balances even on an aborted run.
#[derive(Debug)]
pub struct SearchRun<S> {
    /// One sink per worker, in worker order.
    pub sinks: Vec<S>,
    /// Scheduler counters.
    pub stats: StealStats,
    /// Codes of tasks abandoned in the deques/injector by an early stop;
    /// empty when the search ran to exhaustion.
    pub frontier: Vec<DfsCode>,
}

/// Observer for the bytes held by queued-or-running tasks' embedding
/// lists. Implemented by memory gauges that track high-water residency;
/// `enqueued` fires when a task is spawned, `dequeued` when its
/// embeddings die (after the node is visited and its children spawned).
pub trait TaskGauge: Sync {
    /// `bytes` of embeddings became resident in the scheduler.
    fn task_enqueued(&self, bytes: usize);
    /// `bytes` of embeddings left the scheduler.
    fn task_dequeued(&self, bytes: usize);
}

/// One search-tree node awaiting its visit.
struct Task {
    code: DfsCode,
    embs: Vec<Embedding>,
    bytes: usize,
}

struct Scheduler {
    locals: Vec<Mutex<VecDeque<Task>>>,
    injector: Mutex<VecDeque<Task>>,
    capacity: usize,
    /// Tasks spawned but not yet fully processed (children spawned and
    /// node visited). Zero ⇒ the search is exhausted.
    pending: AtomicUsize,
    /// Workers currently parked (or committing to park) on `wake`.
    sleepers: AtomicUsize,
    park: Mutex<()>,
    wake: Condvar,
    stopped: AtomicBool,
    tasks: AtomicUsize,
    /// Task *executions* started, for deterministic panic injection.
    executed: AtomicUsize,
    steals: AtomicUsize,
    /// First panic caught in any worker; set before `stopped`, read after
    /// all workers have returned.
    panic: Mutex<Option<String>>,
    faults: FaultInjection,
}

impl Scheduler {
    fn new(workers: usize, capacity: usize, faults: FaultInjection) -> Self {
        Scheduler {
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(()),
            wake: Condvar::new(),
            stopped: AtomicBool::new(false),
            tasks: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            panic: Mutex::new(None),
            faults,
        }
    }

    fn lock_local(&self, i: usize) -> MutexGuard<'_, VecDeque<Task>> {
        recover(self.locals[i].lock()) // tsg-lint: allow(index) — i < worker count and locals is sized to match
    }

    fn lock_injector(&self) -> MutexGuard<'_, VecDeque<Task>> {
        recover(self.injector.lock())
    }

    /// Records the first caught worker panic and halts the search. Later
    /// panics (cascades in other workers) are dropped — the first is the
    /// root cause.
    fn record_panic(&self, message: String) {
        let mut slot = recover(self.panic.lock());
        if slot.is_none() {
            *slot = Some(message);
        }
        drop(slot);
        self.stop();
    }

    fn take_panic(&self) -> Option<String> {
        recover(self.panic.lock()).take()
    }

    /// Makes `task` visible to the scheduler. `pending` is incremented
    /// *before* the push so no worker can observe the queue nonempty
    /// while the counter still reads zero.
    fn spawn(&self, me: usize, task: Task, gauge: Option<&dyn TaskGauge>) {
        if let Some(g) = gauge {
            g.task_enqueued(task.bytes);
        }
        self.pending.fetch_add(1, Ordering::SeqCst); // tsg-lint: ordering(ORD-09)
        // Genuinely relaxed: a ticket counter — RMW modification order
        // alone guarantees unique serials, and nothing else is published.
        let serial = self.tasks.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-10)
        if self.faults.force_inject(serial) {
            self.lock_injector().push_back(task);
            self.notify_if_sleeping();
            return;
        }
        let overflow = {
            let mut q = self.lock_local(me);
            q.push_back(task);
            if q.len() > self.capacity {
                q.pop_front()
            } else {
                None
            }
        };
        if let Some(t) = overflow {
            self.lock_injector().push_back(t);
        }
        self.notify_if_sleeping();
    }

    /// Seeds the injector directly (used for the 1-edge root classes).
    fn spawn_root(&self, task: Task, gauge: Option<&dyn TaskGauge>) {
        if let Some(g) = gauge {
            g.task_enqueued(task.bytes);
        }
        self.pending.fetch_add(1, Ordering::SeqCst); // tsg-lint: ordering(ORD-09)
        // Genuinely relaxed: same ticket counter as in `spawn`.
        self.tasks.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-10)
        self.lock_injector().push_back(task);
    }

    /// Wakes parked workers if any exist. Safe against lost wakeups:
    /// parkers bump `sleepers` (SeqCst) *before* their final
    /// work-visibility check, and every queue push happens-before this
    /// load (same deque/injector mutex), so reading `sleepers == 0` here
    /// proves the parker's check will observe the pushed task.
    fn notify_if_sleeping(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 { // tsg-lint: ordering(ORD-09)
            let _guard = recover(self.park.lock());
            self.wake.notify_all();
        }
    }

    fn pop_local(&self, me: usize) -> Option<Task> {
        self.lock_local(me).pop_back()
    }

    fn pop_injector(&self) -> Option<Task> {
        self.lock_injector().pop_front()
    }

    /// Steals the oldest task from some other worker.
    fn steal(&self, me: usize) -> Option<Task> {
        let n = self.locals.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = self.lock_local(victim).pop_front() {
                // Genuinely relaxed: a pure tally, read only after join.
                self.steals.fetch_add(1, Ordering::Relaxed); // tsg-lint: ordering(ORD-11)
                return Some(t);
            }
        }
        None
    }

    /// Empties every queue after the workers have exited, releasing each
    /// leftover task's embedding bytes from the gauge and collecting its
    /// code. Leftovers exist only when the search stopped early (a
    /// [`Grow::Stop`] sink decision or a recorded panic); on a run to
    /// exhaustion this is a no-op. Without the release, an early stop
    /// would leak the queued tasks' reservations and the gauge's running
    /// total would never return to zero.
    fn drain_leftovers(&self, gauge: Option<&dyn TaskGauge>) -> Vec<DfsCode> {
        let mut codes = Vec::new();
        {
            let mut release = |task: Task| {
                if let Some(g) = gauge {
                    g.task_dequeued(task.bytes);
                }
                codes.push(task.code);
            };
            for task in self.lock_injector().drain(..) {
                release(task);
            }
            for i in 0..self.locals.len() {
                for task in self.lock_local(i).drain(..) {
                    release(task);
                }
            }
        }
        codes.sort_by(|a, b| a.cmp_code(b));
        codes
    }

    fn any_work(&self) -> bool {
        if !self.lock_injector().is_empty() {
            return true;
        }
        (0..self.locals.len()).any(|i| !self.lock_local(i).is_empty())
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst); // tsg-lint: ordering(ORD-09)
        let _guard = recover(self.park.lock());
        self.wake.notify_all();
    }

    /// Marks one task fully processed; wakes everyone on exhaustion.
    fn finish_task(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 { // tsg-lint: ordering(ORD-09)
            let _guard = recover(self.park.lock());
            self.wake.notify_all();
        }
    }

    /// Executes one task: the shared `visit` step plus child spawning.
    /// Factored out so the worker loop can wrap it in `catch_unwind`.
    fn run_task<S: PatternSink>(
        &self,
        me: usize,
        task: Task,
        miner: &GSpan<'_>,
        sink: &mut S,
        scratch: &mut MinScratch,
        gauge: Option<&dyn TaskGauge>,
    ) {
        // Genuinely relaxed: a ticket counter for deterministic fault
        // injection — RMW modification order makes serials unique.
        let executed = self.executed.fetch_add(1, Ordering::Relaxed) + 1; // tsg-lint: ordering(ORD-10)
        if self.faults.panic_at_task == Some(executed) {
            panic!("injected fault: worker {me} panicked at task {executed}"); // tsg-lint: allow(panic) — deliberate fault-injection trip point, armed only by tests
        }
        let Task { code, embs, bytes } = task;
        let mut stopped = false;
        let children = miner.visit(&code, embs, sink, scratch, &mut stopped);
        if stopped {
            self.stop();
        }
        if let Some(children) = children {
            // Reverse push: LIFO pop then explores the smallest child
            // first, replicating the serial descent per worker.
            for (key, child_embs) in children.into_iter().rev() {
                let mut child_code = code.clone();
                child_code.push(key.0);
                let bytes = embedding_list_bytes(&child_embs);
                self.spawn(
                    me,
                    Task {
                        code: child_code,
                        embs: child_embs,
                        bytes,
                    },
                    gauge,
                );
            }
        }
        // The node's own embeddings died inside `visit` (moved in,
        // consumed); its children are accounted separately above.
        if let Some(g) = gauge {
            g.task_dequeued(bytes);
        }
    }

    fn worker_loop<S: PatternSink>(
        &self,
        me: usize,
        miner: &GSpan<'_>,
        sink: &mut S,
        gauge: Option<&dyn TaskGauge>,
    ) {
        let mut scratch = MinScratch::new();
        loop {
            if self.stopped.load(Ordering::SeqCst) { // tsg-lint: ordering(ORD-09)
                return;
            }
            let task = self
                .pop_local(me)
                .or_else(|| self.pop_injector())
                .or_else(|| self.steal(me));
            let Some(task) = task else {
                if self.pending.load(Ordering::SeqCst) == 0 { // tsg-lint: ordering(ORD-09)
                    return;
                }
                let guard = recover(self.park.lock());
                self.sleepers.fetch_add(1, Ordering::SeqCst); // tsg-lint: ordering(ORD-09)
                // Re-check *after* registering as a sleeper: any spawn
                // completing after this point sees `sleepers > 0` and
                // notifies; any spawn completing before it is visible to
                // `any_work`. Either way no task is missed.
                if self.pending.load(Ordering::SeqCst) != 0 // tsg-lint: ordering(ORD-09)
                    && !self.stopped.load(Ordering::SeqCst) // tsg-lint: ordering(ORD-09)
                    && !self.any_work()
                {
                    drop(recover(self.wake.wait(guard)));
                }
                self.sleepers.fetch_sub(1, Ordering::SeqCst); // tsg-lint: ordering(ORD-09)
                continue;
            };
            // Panic isolation: a panic in `visit` (sink code) or an
            // injected fault is caught here, with no scheduler lock held.
            // The first one recorded halts the search via the `stopped`
            // flag, so the other workers drain out of their loops instead
            // of parking on a `pending` count that will never reach zero
            // (the panicked task's `finish_task` never runs) — that is
            // the deadlock this catch exists to prevent.
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                self.run_task(me, task, miner, sink, &mut scratch, gauge);
            }));
            match caught {
                Ok(()) => self.finish_task(),
                Err(payload) => {
                    self.record_panic(panic_message(payload.as_ref()));
                    return;
                }
            }
        }
    }
}

/// Runs the work-stealing search with one sink per worker, returning the
/// sinks (indexed by worker) and scheduler counters.
///
/// Each class is reported to exactly one worker's sink, with content
/// identical to the serial miner's report of the same class; *which*
/// worker, and in what order, depends on the schedule. Callers reassemble
/// the canonical stream by sorting collected classes with
/// [`DfsCode::cmp_code`] (see the module docs for why that equals serial
/// pre-order). [`Grow::Prune`] works per class as in the serial miner;
/// [`Grow::Stop`] halts all workers best-effort — the set of classes
/// visited before the stop lands is schedule dependent, unlike the serial
/// miner's exact prefix.
///
/// # Errors
/// [`SearchPanicked`] if any worker panicked (only sink code can panic).
/// The panic is caught inside the worker, the remaining workers drain and
/// exit, and the first panic's message is returned — no abort, no
/// deadlock, no poisoned-lock cascade.
pub fn mine_parallel_with<S, F>(
    db: &GraphDatabase,
    config: GSpanConfig,
    options: ParallelOptions,
    gauge: Option<&dyn TaskGauge>,
    make_sink: F,
) -> Result<(Vec<S>, StealStats), SearchPanicked>
where
    S: PatternSink + Send,
    F: Fn(usize) -> S + Sync,
{
    mine_parallel_with_faults(db, config, options, gauge, make_sink, FaultInjection::default())
        .map(|run| (run.sinks, run.stats))
}

/// [`mine_parallel_with`] plus a deterministic fault/schedule injector,
/// returning the full [`SearchRun`] (including the abandoned-task
/// frontier of an early stop). Test-only / engine-internal plumbing; see
/// [`FaultInjection`].
#[doc(hidden)]
pub fn mine_parallel_with_faults<S, F>(
    db: &GraphDatabase,
    config: GSpanConfig,
    options: ParallelOptions,
    gauge: Option<&dyn TaskGauge>,
    make_sink: F,
    faults: FaultInjection,
) -> Result<SearchRun<S>, SearchPanicked>
where
    S: PatternSink + Send,
    F: Fn(usize) -> S + Sync,
{
    let workers = options.threads.max(1);
    let sched = Scheduler::new(workers, options.deque_capacity, faults);
    let miner = GSpan::new(db, config);

    let mut seeds = seed_extensions(db);
    prune_infrequent(&mut seeds, config.min_support);
    for (key, embs) in seeds {
        let bytes = embedding_list_bytes(&embs);
        sched.spawn_root(
            Task {
                code: DfsCode::from_edges(vec![key.0]),
                embs,
                bytes,
            },
            gauge,
        );
    }

    let sinks: Vec<S> = if sched.pending.load(Ordering::SeqCst) == 0 { // tsg-lint: ordering(ORD-09)
        (0..workers).map(&make_sink).collect()
    } else if workers == 1 {
        // One worker needs no threads: run the loop on the caller.
        let mut sink = make_sink(0);
        sched.worker_loop(0, &miner, &mut sink, gauge);
        vec![sink]
    } else {
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|i| {
                    let sched = &sched;
                    let miner = &miner;
                    let make_sink = &make_sink;
                    scope.spawn(move || {
                        let mut sink = make_sink(i);
                        sched.worker_loop(i, miner, &mut sink, gauge);
                        sink
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(sink) => Some(sink),
                    // A panic that escaped the in-loop catch (i.e. not in
                    // task execution — nothing in the loop itself panics,
                    // but stay defensive): record it like any other.
                    Err(payload) => {
                        sched.record_panic(panic_message(payload.as_ref()));
                        None
                    }
                })
                .collect()
        })
    };
    // Release (and record) whatever an early stop stranded in the queues
    // — before the panic check, so gauge traffic balances on every path.
    let frontier = sched.drain_leftovers(gauge);
    if let Some(message) = sched.take_panic() {
        return Err(SearchPanicked { message });
    }
    // Genuinely relaxed: the scope join above synchronizes-with every
    // worker, so these post-join reads see the final tallies.
    let stats = StealStats {
        tasks: sched.tasks.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-10)
        steals: sched.steals.load(Ordering::Relaxed), // tsg-lint: ordering(ORD-11)
    };
    Ok(SearchRun {
        sinks,
        stats,
        frontier,
    })
}

/// Collects every completed class from the work-stealing search, sorted
/// into canonical (serial) order. The returned classes are byte-identical
/// to what [`PatternSink::complete`] receives from the serial miner, in
/// the same order, at any thread count.
///
/// # Errors
/// [`SearchPanicked`] if any worker panicked; see [`mine_parallel_with`].
pub fn mine_parallel_classes(
    db: &GraphDatabase,
    config: GSpanConfig,
    options: ParallelOptions,
    gauge: Option<&dyn TaskGauge>,
) -> Result<(Vec<ClassHandoff>, StealStats), SearchPanicked> {
    #[derive(Default)]
    struct Collect {
        classes: Vec<ClassHandoff>,
    }
    impl PatternSink for Collect {
        fn report(&mut self, _: &crate::miner::MinedPattern<'_>) -> Grow {
            Grow::Continue
        }
        fn complete(&mut self, class: ClassHandoff) {
            self.classes.push(class);
        }
    }
    let (sinks, stats) = mine_parallel_with(db, config, options, gauge, |_| Collect::default())?;
    let mut classes: Vec<ClassHandoff> = sinks.into_iter().flat_map(|s| s.classes).collect();
    classes.sort_by(|a, b| a.code.cmp_code(&b.code));
    Ok((classes, stats))
}

/// Parallel analog of [`crate::mine_frequent`]: identical output (same
/// patterns, same order) mined on `options.threads` workers.
///
/// # Errors
/// [`SearchPanicked`] if any worker panicked; see [`mine_parallel_with`].
pub fn mine_frequent_parallel(
    db: &GraphDatabase,
    min_support: usize,
    max_edges: Option<usize>,
    options: ParallelOptions,
) -> Result<Vec<FrequentPattern>, SearchPanicked> {
    let (classes, _) = mine_parallel_classes(
        db,
        GSpanConfig {
            min_support,
            max_edges,
        },
        options,
        None,
    )?;
    Ok(classes
        .into_iter()
        .map(|c| FrequentPattern {
            graph: c.graph,
            code: c.code,
            support: c.support,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_frequent;
    use crate::miner::{CollectSink, MinedPattern};
    use tsg_graph::{EdgeLabel, LabeledGraph, NodeLabel};

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let mut g = LabeledGraph::with_nodes(labels.iter().map(|&x| NodeLabel(x)));
        for i in 1..labels.len() {
            g.add_edge(i - 1, i, EdgeLabel(0)).unwrap();
        }
        g
    }

    fn sample_db() -> GraphDatabase {
        let mut tri = LabeledGraph::with_nodes([NodeLabel(1), NodeLabel(1), NodeLabel(2)]);
        tri.add_edge(0, 1, EdgeLabel(0)).unwrap();
        tri.add_edge(1, 2, EdgeLabel(0)).unwrap();
        tri.add_edge(2, 0, EdgeLabel(0)).unwrap();
        GraphDatabase::from_graphs(vec![
            path_graph(&[1, 1, 2, 1]),
            tri,
            path_graph(&[2, 1, 1]),
            path_graph(&[1, 2]),
        ])
    }

    fn assert_identical(serial: &[FrequentPattern], parallel: &[FrequentPattern]) {
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel) {
            assert_eq!(a.code, b.code);
            assert_eq!(a.graph.labels(), b.graph.labels());
            assert_eq!(a.graph.edges(), b.graph.edges());
            assert_eq!(a.support, b.support);
        }
    }

    #[test]
    fn parallel_matches_serial_at_every_thread_count() {
        let db = sample_db();
        let serial = mine_frequent(&db, 2, None);
        assert!(!serial.is_empty());
        for threads in [1, 2, 4, 8] {
            let parallel = mine_frequent_parallel(
                &db,
                2,
                None,
                ParallelOptions {
                    threads,
                    deque_capacity: 256,
                },
            )
            .unwrap();
            assert_identical(&serial, &parallel);
        }
    }

    #[test]
    fn forced_steals_preserve_output() {
        let db = sample_db();
        let serial = mine_frequent(&db, 1, None);
        for threads in [2, 4, 8] {
            let (_, stats) = mine_parallel_classes(
                &db,
                GSpanConfig {
                    min_support: 1,
                    max_edges: None,
                },
                ParallelOptions {
                    threads,
                    deque_capacity: 1,
                },
                None,
            )
            .unwrap();
            assert!(stats.tasks > 0);
            let parallel = mine_frequent_parallel(
                &db,
                1,
                None,
                ParallelOptions {
                    threads,
                    deque_capacity: 1,
                },
            )
            .unwrap();
            assert_identical(&serial, &parallel);
        }
    }

    #[test]
    fn max_edges_respected_in_parallel() {
        let db = sample_db();
        let serial = mine_frequent(&db, 1, Some(2));
        let parallel =
            mine_frequent_parallel(&db, 1, Some(2), ParallelOptions { threads: 4, deque_capacity: 2 })
                .unwrap();
        assert_identical(&serial, &parallel);
        assert!(parallel.iter().all(|p| p.graph.edge_count() <= 2));
    }

    #[test]
    fn empty_database_yields_nothing() {
        let got = mine_frequent_parallel(
            &GraphDatabase::new(),
            1,
            None,
            ParallelOptions::default(),
        )
        .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn panicking_sink_returns_error_not_abort() {
        #[derive(Debug)]
        struct Bomb(usize);
        impl PatternSink for Bomb {
            fn report(&mut self, _: &MinedPattern<'_>) -> Grow {
                self.0 += 1;
                if self.0 == 2 {
                    panic!("sink exploded");
                }
                Grow::Continue
            }
        }
        let db = sample_db();
        for threads in [1, 2, 4] {
            let err = mine_parallel_with(
                &db,
                GSpanConfig { min_support: 1, max_edges: None },
                ParallelOptions { threads, deque_capacity: 1 },
                None,
                |_| Bomb(0),
            )
            .expect_err("a panicking sink must surface as an error");
            assert!(err.message.contains("sink exploded"), "got {err}");
        }
    }

    #[test]
    fn injected_panic_at_every_task_index_terminates() {
        // Exhaustive sweep: whichever task the fault lands on, the run
        // must return an error (or finish, once N exceeds the task
        // count) without deadlocking or cascading panics.
        let db = sample_db();
        let total = {
            let (_, stats) = mine_parallel_classes(
                &db,
                GSpanConfig { min_support: 1, max_edges: Some(3) },
                ParallelOptions { threads: 2, deque_capacity: 1 },
                None,
            )
            .unwrap();
            stats.tasks
        };
        assert!(total > 2);
        for n in 1..=total {
            let got = mine_parallel_with_faults(
                &db,
                GSpanConfig { min_support: 1, max_edges: Some(3) },
                ParallelOptions { threads: 2, deque_capacity: 1 },
                None,
                |_| CollectSink::default(),
                FaultInjection { panic_at_task: Some(n), ..FaultInjection::default() },
            );
            let err = got.expect_err("injected fault must surface");
            assert!(err.message.contains("injected fault"), "got {err}");
        }
    }

    #[test]
    fn seeded_steal_schedules_preserve_output() {
        let db = sample_db();
        let serial = mine_frequent(&db, 1, None);
        for seed in [1u64, 7, 42] {
            let run = mine_parallel_with_faults(
                &db,
                GSpanConfig { min_support: 1, max_edges: None },
                ParallelOptions { threads: 4, deque_capacity: 4 },
                None,
                |_| CollectSink::default(),
                FaultInjection { steal_schedule_seed: Some(seed), ..FaultInjection::default() },
            )
            .unwrap();
            assert!(run.frontier.is_empty(), "clean run leaves no frontier");
            let mut got: Vec<FrequentPattern> =
                run.sinks.into_iter().flat_map(|s| s.patterns).collect();
            got.sort_by(|a, b| a.code.cmp_code(&b.code));
            assert_identical(&serial, &got);
        }
    }

    use std::sync::atomic::AtomicIsize;
    #[derive(Default)]
    struct Net {
        delta: AtomicIsize,
        seen: AtomicIsize,
    }
    impl TaskGauge for Net {
        fn task_enqueued(&self, bytes: usize) {
            self.delta.fetch_add(bytes as isize, Ordering::SeqCst);
            self.seen.fetch_add(1, Ordering::SeqCst);
        }
        fn task_dequeued(&self, bytes: usize) {
            self.delta.fetch_sub(bytes as isize, Ordering::SeqCst);
        }
    }

    #[test]
    fn gauge_sees_balanced_traffic() {
        let net = Net::default();
        let (classes, stats) = mine_parallel_classes(
            &sample_db(),
            GSpanConfig {
                min_support: 1,
                max_edges: None,
            },
            ParallelOptions {
                threads: 4,
                deque_capacity: 4,
            },
            Some(&net),
        )
        .unwrap();
        assert!(!classes.is_empty());
        assert_eq!(net.delta.load(Ordering::SeqCst), 0, "every byte released");
        assert_eq!(net.seen.load(Ordering::SeqCst) as usize, stats.tasks);
    }

    #[test]
    fn early_stop_releases_abandoned_tasks_and_reports_frontier() {
        // Regression: a sink that stops the search strands tasks in the
        // deques/injector. Their reserved bytes must be released (the
        // gauge balances to zero) and their codes surfaced as the
        // frontier; before the drain existed, both were silently lost.
        struct StopAfter(usize);
        impl PatternSink for StopAfter {
            fn report(&mut self, _: &MinedPattern<'_>) -> Grow {
                if self.0 == 0 {
                    return Grow::Stop;
                }
                self.0 -= 1;
                Grow::Continue
            }
        }
        let db = sample_db();
        for threads in [1usize, 2, 4] {
            let net = Net::default();
            let run = mine_parallel_with_faults(
                &db,
                GSpanConfig { min_support: 1, max_edges: None },
                ParallelOptions { threads, deque_capacity: 1 },
                Some(&net),
                |_| StopAfter(1),
                FaultInjection::default(),
            )
            .unwrap();
            assert_eq!(
                net.delta.load(Ordering::SeqCst),
                0,
                "t={threads}: abandoned tasks must release their bytes"
            );
            assert!(
                !run.frontier.is_empty(),
                "t={threads}: an early stop on this database strands work"
            );
            for w in run.frontier.windows(2) {
                assert!(
                    w[0].cmp_code(&w[1]).is_le(),
                    "frontier arrives in canonical order"
                );
            }
        }
    }
}
