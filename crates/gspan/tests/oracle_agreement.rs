//! Cross-validation: the gSpan miner must agree with the independent
//! brute-force oracle on every random small database.
//!
//! This is the load-bearing correctness test for the entire mining stack:
//! the oracle enumerates subgraphs by edge subsets and recounts support
//! with the VF2-style engine, sharing no code with DFS-code mining.

use proptest::prelude::*;
use tsg_graph::{EdgeLabel, GraphDatabase, LabeledGraph, NodeLabel};
use tsg_gspan::oracle::{brute_force_frequent, compare_pattern_sets};
use tsg_gspan::mine_frequent;

/// A random connected-ish labeled graph: `n` nodes on a random spanning
/// chain plus extra random edges.
fn arb_graph(
    max_nodes: usize,
    node_labels: u32,
    edge_labels: u32,
) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let labels = prop::collection::vec(0..node_labels, n);
            let chain_elabels = prop::collection::vec(0..edge_labels, n - 1);
            let extras = prop::collection::vec(
                ((0..n), (0..n), 0..edge_labels),
                0..=n,
            );
            (labels, chain_elabels, extras)
        })
        .prop_map(|(labels, chain, extras)| {
            let mut g = LabeledGraph::with_nodes(labels.iter().map(|&l| NodeLabel(l)));
            for (i, &el) in chain.iter().enumerate() {
                g.add_edge(i, i + 1, EdgeLabel(el)).unwrap();
            }
            for (u, v, el) in extras {
                if u != v {
                    // Ignore duplicates; the chain guarantees connectivity.
                    let _ = g.add_edge(u, v, EdgeLabel(el));
                }
            }
            g
        })
}

fn arb_db() -> impl Strategy<Value = GraphDatabase> {
    prop::collection::vec(arb_graph(5, 3, 2), 2..=4).prop_map(GraphDatabase::from_graphs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gspan_matches_brute_force(db in arb_db(), min_support in 1usize..=3) {
        let max_edges = 4;
        let got: Vec<_> = mine_frequent(&db, min_support, Some(max_edges))
            .into_iter()
            .map(|p| (p.graph, p.support))
            .collect();
        let want = brute_force_frequent(&db, min_support, max_edges);
        if let Some(msg) = compare_pattern_sets(&got, &want) {
            // Dump the database in text form for reproduction.
            let dump = tsg_graph::io::write_database(&db);
            prop_assert!(false, "{msg}\nmin_support={min_support}\n{dump}");
        }
    }

    #[test]
    fn every_reported_code_is_minimal_and_support_exact(db in arb_db()) {
        for p in mine_frequent(&db, 1, Some(4)) {
            prop_assert!(tsg_gspan::is_min(&p.code), "non-minimal code {}", p.code);
            let true_sup = tsg_iso::support_count(&p.graph, &db, &tsg_iso::ExactMatcher);
            prop_assert_eq!(p.support, true_sup, "support mismatch for {}", p.code);
            prop_assert!(p.graph.is_connected());
            prop_assert!(p.graph.edge_count() >= 1);
        }
    }
}

#[test]
fn no_duplicate_patterns_on_dense_graph() {
    // A dense 5-cycle with a chord and uniform labels stresses automorphism
    // handling.
    let mut g = LabeledGraph::with_nodes(vec![NodeLabel(0); 5]);
    for i in 0..5 {
        g.add_edge(i, (i + 1) % 5, EdgeLabel(0)).unwrap();
    }
    g.add_edge(0, 2, EdgeLabel(0)).unwrap();
    let db = GraphDatabase::from_graphs(vec![g]);
    let got = mine_frequent(&db, 1, Some(4));
    for (i, a) in got.iter().enumerate() {
        for b in &got[i + 1..] {
            assert!(
                !tsg_iso::is_isomorphic(&a.graph, &b.graph),
                "duplicate patterns {} and {}",
                a.code,
                b.code
            );
        }
    }
    let want = brute_force_frequent(&db, 1, 4);
    assert!(compare_pattern_sets(
        &got.into_iter().map(|p| (p.graph, p.support)).collect::<Vec<_>>(),
        &want
    )
    .is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `min_dfs_code` is a complete isomorphism invariant: codes are equal
    /// exactly when the graphs are isomorphic.
    #[test]
    fn min_code_iff_isomorphic(g in arb_graph(5, 2, 2), h in arb_graph(5, 2, 2)) {
        prop_assume!(g.is_connected() && h.is_connected());
        let cg = tsg_gspan::min_dfs_code(&g);
        let ch = tsg_gspan::min_dfs_code(&h);
        prop_assert_eq!(cg == ch, tsg_iso::is_isomorphic(&g, &h));
        // And every code reconstructs an isomorphic graph.
        prop_assert!(tsg_iso::is_isomorphic(&cg.to_graph().unwrap(), &g));
    }
}

/// A random connected directed graph: a chain of arcs with random
/// orientations plus extra random arcs (antiparallel pairs allowed).
fn arb_digraph(
    max_nodes: usize,
    node_labels: u32,
    edge_labels: u32,
) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let labels = prop::collection::vec(0..node_labels, n);
            let chain = prop::collection::vec((0..edge_labels, prop::bool::ANY), n - 1);
            let extras = prop::collection::vec(((0..n), (0..n), 0..edge_labels), 0..=n);
            (labels, chain, extras)
        })
        .prop_map(|(labels, chain, extras)| {
            let mut g =
                LabeledGraph::with_nodes_directed(labels.iter().map(|&l| NodeLabel(l)));
            for (i, &(el, flip)) in chain.iter().enumerate() {
                let (u, v) = if flip { (i + 1, i) } else { (i, i + 1) };
                g.add_edge(u, v, EdgeLabel(el)).unwrap();
            }
            for (u, v, el) in extras {
                if u != v {
                    let _ = g.add_edge(u, v, EdgeLabel(el));
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Directed mining: gSpan with arc-annotated DFS codes must agree with
    /// the direction-aware brute-force oracle.
    #[test]
    fn directed_gspan_matches_brute_force(
        db in prop::collection::vec(arb_digraph(5, 3, 2), 2..=4)
            .prop_map(GraphDatabase::from_graphs),
        min_support in 1usize..=3,
    ) {
        let max_edges = 4;
        let got: Vec<_> = mine_frequent(&db, min_support, Some(max_edges))
            .into_iter()
            .map(|p| (p.graph, p.support))
            .collect();
        let want = brute_force_frequent(&db, min_support, max_edges);
        if let Some(msg) = compare_pattern_sets(&got, &want) {
            let dump = tsg_graph::io::write_database(&db);
            prop_assert!(false, "{msg}\nmin_support={min_support}\n{dump}");
        }
        // Every reported pattern is a directed graph with a minimal code.
        for p in mine_frequent(&db, min_support, Some(max_edges)) {
            prop_assert!(p.graph.is_directed());
            prop_assert!(tsg_gspan::is_min(&p.code));
        }
    }

    /// Canonical codes remain a complete isomorphism invariant on digraphs.
    #[test]
    fn directed_min_code_iff_isomorphic(
        g in arb_digraph(4, 2, 2),
        h in arb_digraph(4, 2, 2),
    ) {
        prop_assume!(g.is_connected() && h.is_connected());
        let cg = tsg_gspan::min_dfs_code(&g);
        let ch = tsg_gspan::min_dfs_code(&h);
        prop_assert_eq!(cg == ch, tsg_iso::is_isomorphic(&g, &h));
        prop_assert!(tsg_iso::is_isomorphic(&cg.to_graph().unwrap(), &g));
    }
}
