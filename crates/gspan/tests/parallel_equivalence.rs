//! Serial equivalence of the work-stealing gSpan search: on random
//! inputs, [`tsg_gspan::mine_frequent_parallel`] must reproduce the
//! serial miner's output *byte-identically* — same codes, same graphs,
//! same supports, same order — at 1/2/4/8 threads, including under
//! forced steals (deque capacity 1, which pushes nearly every task
//! through the shared injector so sibling subtrees constantly land on
//! different workers). The canonical-code merge is what makes this hold;
//! these tests are its contract.

use proptest::prelude::*;
use tsg_gspan::{
    mine_frequent, mine_parallel_classes, FrequentPattern, GSpanConfig, ParallelOptions,
};
use tsg_graph::GraphDatabase;

/// 2–5 random connected graphs over 3 flat labels — the shared
/// [`tsg_testkit::gen`] generators at this crate's historical shape.
fn arb_db() -> impl Strategy<Value = GraphDatabase> {
    tsg_testkit::gen::arb_db(3, 2, 5, 5)
}

fn assert_identical(serial: &[FrequentPattern], parallel: &[FrequentPattern], what: &str) {
    assert_eq!(serial.len(), parallel.len(), "{what}: pattern count");
    for (i, (a, b)) in serial.iter().zip(parallel).enumerate() {
        assert_eq!(a.code, b.code, "{what}: code at {i}");
        assert_eq!(a.graph.labels(), b.graph.labels(), "{what}: labels at {i}");
        assert_eq!(a.graph.edges(), b.graph.edges(), "{what}: edges at {i}");
        assert_eq!(a.support, b.support, "{what}: support at {i}");
    }
}

fn mine_parallel_patterns(
    db: &GraphDatabase,
    min_support: usize,
    max_edges: Option<usize>,
    options: ParallelOptions,
) -> (Vec<FrequentPattern>, usize) {
    let (classes, stats) = mine_parallel_classes(
        db,
        GSpanConfig {
            min_support,
            max_edges,
        },
        options,
        None,
    )
    .expect("no worker panics in this test");
    let patterns = classes
        .into_iter()
        .map(|c| FrequentPattern {
            graph: c.graph,
            code: c.code,
            support: c.support,
        })
        .collect();
    (patterns, stats.steals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_equals_serial_at_every_thread_count(
        db in arb_db(),
        min_support in 1usize..=3,
    ) {
        let serial = mine_frequent(&db, min_support, Some(4));
        for threads in [1usize, 2, 4, 8] {
            let (parallel, _) = mine_parallel_patterns(
                &db,
                min_support,
                Some(4),
                ParallelOptions { threads, deque_capacity: 256 },
            );
            assert_identical(&serial, &parallel, &format!("t={threads}"));
        }
    }

    #[test]
    fn forced_steals_preserve_byte_identity(
        db in arb_db(),
    ) {
        // Deque capacity 1: every second child spills to the injector,
        // so subtrees are torn across workers as aggressively as the
        // scheduler allows. Output must not move by a byte.
        let serial = mine_frequent(&db, 1, Some(4));
        for threads in [2usize, 4, 8] {
            let (parallel, _) = mine_parallel_patterns(
                &db,
                1,
                Some(4),
                ParallelOptions { threads, deque_capacity: 1 },
            );
            assert_identical(&serial, &parallel, &format!("steal-forced t={threads}"));
        }
    }

    #[test]
    fn embeddings_are_byte_identical_to_serial_handoffs(
        db in arb_db(),
    ) {
        // Beyond patterns: the full per-class embedding lists (the data
        // Step 2/3 consumers build on) must match the serial complete()
        // stream exactly, entry for entry.
        use tsg_gspan::{ClassHandoff, GSpan, Grow, MinedPattern, PatternSink};
        struct Collect(Vec<ClassHandoff>);
        impl PatternSink for Collect {
            fn report(&mut self, _: &MinedPattern<'_>) -> Grow {
                Grow::Continue
            }
            fn complete(&mut self, class: ClassHandoff) {
                self.0.push(class);
            }
        }
        let mut serial = Collect(Vec::new());
        GSpan::new(&db, GSpanConfig { min_support: 1, max_edges: Some(3) })
            .mine(&mut serial);
        let (parallel, _) = mine_parallel_classes(
            &db,
            GSpanConfig { min_support: 1, max_edges: Some(3) },
            ParallelOptions { threads: 4, deque_capacity: 1 },
            None,
        )
        .expect("no worker panics in this test");
        prop_assert_eq!(serial.0.len(), parallel.len());
        for (i, (a, b)) in serial.0.iter().zip(&parallel).enumerate() {
            prop_assert_eq!(&a.code, &b.code, "code at {}", i);
            prop_assert_eq!(a.support, b.support, "support at {}", i);
            prop_assert_eq!(&a.embeddings, &b.embeddings, "embeddings at {}", i);
        }
    }
}
