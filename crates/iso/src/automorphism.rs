//! Automorphism groups of small graphs.
//!
//! Taxogram's Step 3 enumerates specialized label vectors over a fixed
//! pattern skeleton. When the skeleton is symmetric, two different label
//! vectors can denote the *same* pattern (e.g. specializing either end of
//! the edge `a—a` to `b` yields the one pattern `a—b`). The enumeration
//! canonicalizes label vectors under the skeleton's automorphism group to
//! keep the output duplicate-free; that group is computed here, once per
//! pattern class.

use crate::{count_embeddings, enumerate_embeddings, ExactMatcher};
use std::ops::ControlFlow;
use tsg_graph::{LabeledGraph, NodeId, NodeLabel};

/// All automorphisms of `g` (vertex- and edge-label-preserving structural
/// self-bijections), each as a permutation `π` with `π[i]` the image of
/// vertex `i`. The identity is always included. Order is deterministic.
///
/// Intended for mining-sized patterns (≲ 20 vertices); the search is the
/// generic embedding backtracker, which is exponential in the worst case.
pub fn automorphisms(g: &LabeledGraph) -> Vec<Vec<NodeId>> {
    // A self-embedding is injective and, because edge counts agree, it is
    // edge-bijective, hence an automorphism.
    let mut out = Vec::new();
    enumerate_embeddings(g, g, &ExactMatcher, |m| {
        out.push(m.to_vec());
        ControlFlow::Continue(())
    });
    debug_assert!(!out.is_empty() || g.node_count() == 0);
    out
}

/// The number of automorphisms without materializing them.
pub fn automorphism_count(g: &LabeledGraph) -> usize {
    count_embeddings(g, g, &ExactMatcher)
}

/// The lexicographically smallest image of `labels` under the given
/// automorphism group: `min over π of [labels[π[0]], labels[π[1]], …]`.
///
/// Two label vectors over the same skeleton denote the same pattern iff
/// their canonical forms agree, so this gives each class member a unique
/// representative.
///
/// # Panics
/// Panics if some permutation's length differs from `labels`'s.
pub fn canonical_under_automorphisms(
    labels: &[NodeLabel],
    autos: &[Vec<NodeId>],
) -> Vec<NodeLabel> {
    let mut best: Option<Vec<NodeLabel>> = None;
    let mut candidate = vec![NodeLabel(0); labels.len()];
    for pi in autos {
        assert_eq!(pi.len(), labels.len(), "permutation length mismatch");
        for (slot, &img) in candidate.iter_mut().zip(pi.iter()) {
            *slot = labels[img]; // tsg-lint: allow(index) — img is a permutation image within node count
        }
        if best.as_ref().is_none_or(|b| candidate < *b) {
            best = Some(candidate.clone());
        }
    }
    best.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_graph::EdgeLabel;

    fn nl(v: u32) -> NodeLabel {
        NodeLabel(v)
    }

    #[test]
    fn symmetric_edge_has_two_automorphisms() {
        let mut g = LabeledGraph::with_nodes([nl(5), nl(5)]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        let autos = automorphisms(&g);
        assert_eq!(autos.len(), 2);
        assert!(autos.contains(&vec![0, 1]));
        assert!(autos.contains(&vec![1, 0]));
        assert_eq!(automorphism_count(&g), 2);
    }

    #[test]
    fn asymmetric_labels_leave_only_identity() {
        let mut g = LabeledGraph::with_nodes([nl(1), nl(2)]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        assert_eq!(automorphisms(&g), vec![vec![0, 1]]);
    }

    #[test]
    fn uniform_triangle_has_six_automorphisms() {
        let mut g = LabeledGraph::with_nodes([nl(1), nl(1), nl(1)]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        g.add_edge(1, 2, EdgeLabel(0)).unwrap();
        g.add_edge(2, 0, EdgeLabel(0)).unwrap();
        assert_eq!(automorphism_count(&g), 6);
    }

    #[test]
    fn edge_labels_break_symmetry() {
        let mut g = LabeledGraph::with_nodes([nl(1), nl(1), nl(1)]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        g.add_edge(1, 2, EdgeLabel(1)).unwrap();
        g.add_edge(2, 0, EdgeLabel(2)).unwrap();
        assert_eq!(automorphism_count(&g), 1);
    }

    #[test]
    fn path_reversal_automorphism() {
        let mut g = LabeledGraph::with_nodes([nl(1), nl(2), nl(1)]);
        g.add_edge(0, 1, EdgeLabel(0)).unwrap();
        g.add_edge(1, 2, EdgeLabel(0)).unwrap();
        let autos = automorphisms(&g);
        assert_eq!(autos.len(), 2);
        assert!(autos.contains(&vec![2, 1, 0]));
    }

    #[test]
    fn canonicalization_identifies_symmetric_variants() {
        // Skeleton a—a (symmetric); specializations (b, c) and (c, b) are
        // the same pattern.
        let autos = vec![vec![0, 1], vec![1, 0]];
        let v1 = [nl(9), nl(3)];
        let v2 = [nl(3), nl(9)];
        let c1 = canonical_under_automorphisms(&v1, &autos);
        let c2 = canonical_under_automorphisms(&v2, &autos);
        assert_eq!(c1, c2);
        assert_eq!(c1, vec![nl(3), nl(9)]);
        // Identity-only group: vectors stay distinct.
        let id = vec![vec![0, 1]];
        assert_ne!(
            canonical_under_automorphisms(&v1, &id),
            canonical_under_automorphisms(&v2, &id)
        );
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = LabeledGraph::new();
        assert_eq!(automorphisms(&g), vec![Vec::<usize>::new()]);
        assert_eq!(canonical_under_automorphisms(&[], &[vec![]]), vec![]);
    }
}
