//! Batched candidate-set matching (DESIGN.md §13).
//!
//! The backtracking searcher needs, for every pattern vertex, the set of
//! matcher-compatible target vertices — once to rank vertices by
//! selectivity when choosing a matching order, and again every time a
//! new connected component starts (a full target scan per attempt). The
//! plain path recomputes this per call; when the same target is matched
//! against many patterns (a support recount over a database, a pattern
//! class and its one-step specializations, an oracle sweep), that scan
//! repeats per pattern even though compatibility depends only on the
//! *label*, not the pattern.
//!
//! [`CandidateCache`] batches the work per (target, matcher) pair: a
//! one-time index of each distinct target label to the
//! [`AdaptiveBitSet`] of vertices carrying it, plus a memo from pattern
//! label to the union of compatible label sets. The memo key is the
//! pattern *label*, not the pattern, so it never needs invalidation as a
//! pattern class grows: a rightmost extension that introduces a new
//! label lazily adds one entry, and every label already seen is a hit.
//! Selectivity ordering reads cardinalities straight off the cached
//! sets' container metadata, and component starts iterate the candidate
//! set instead of scanning every target vertex — in the same ascending
//! vertex order, so embeddings come out byte-identical to the plain
//! path.

use crate::LabelMatcher;
use std::cell::RefCell;
use std::ops::ControlFlow;
use std::rc::Rc;
use tsg_bitset::AdaptiveBitSet;
use tsg_graph::{GraphDatabase, GraphId, LabeledGraph, NodeId, NodeLabel};

/// Per-target index: each distinct vertex label mapped to the set of
/// target vertices carrying it.
struct LabelIndex {
    labels: Vec<(NodeLabel, AdaptiveBitSet)>,
}

impl LabelIndex {
    fn build(g: &LabeledGraph) -> Self {
        let mut labels: Vec<(NodeLabel, AdaptiveBitSet)> = Vec::new();
        // Vertices arrive in ascending id order, so each label's set is
        // built with ascending pushes.
        for v in 0..g.node_count() {
            let l = g.label(v);
            match labels.binary_search_by_key(&l, |(k, _)| *k) {
                Ok(i) => labels[i].1.push_ascending(v), // tsg-lint: allow(index) — Ok(i) from binary_search is in bounds
                Err(i) => {
                    let mut s = AdaptiveBitSet::new();
                    s.push_ascending(v);
                    labels.insert(i, (l, s));
                }
            }
        }
        for (_, s) in &mut labels {
            s.optimize();
        }
        LabelIndex { labels }
    }
}

/// Cached candidate sets for one target graph under one matcher.
///
/// `candidates(l)` returns the set of target vertices a pattern vertex
/// labeled `l` may map onto, computed once per distinct pattern label
/// and shared (via `Rc`) between the memo and every searcher using it.
pub struct CandidateCache<'a, M: LabelMatcher> {
    target: &'a LabeledGraph,
    matcher: &'a M,
    index: LabelIndex,
    memo: RefCell<Vec<(NodeLabel, Rc<AdaptiveBitSet>)>>,
}

impl<'a, M: LabelMatcher> CandidateCache<'a, M> {
    /// Indexes `target` (one pass over its vertices) and starts with an
    /// empty memo; candidate sets materialize on first use per label.
    pub fn new(target: &'a LabeledGraph, matcher: &'a M) -> Self {
        CandidateCache {
            target,
            matcher,
            index: LabelIndex::build(target),
            memo: RefCell::new(Vec::new()),
        }
    }

    /// The target graph this cache indexes.
    pub fn target(&self) -> &'a LabeledGraph {
        self.target
    }

    /// The matcher candidate sets are computed against.
    pub fn matcher(&self) -> &'a M {
        self.matcher
    }

    /// The set of target vertices compatible with pattern label
    /// `pattern_label` — memoized, so repeat lookups are a binary search
    /// and an `Rc` clone.
    pub fn candidates(&self, pattern_label: NodeLabel) -> Rc<AdaptiveBitSet> {
        let mut memo = self.memo.borrow_mut();
        match memo.binary_search_by_key(&pattern_label, |(k, _)| *k) {
            Ok(i) => memo[i].1.clone(), // tsg-lint: allow(index) — Ok(i) from binary_search is in bounds
            Err(i) => {
                let mut acc = AdaptiveBitSet::new();
                for (tl, set) in &self.index.labels {
                    if self.matcher.node_match(pattern_label, *tl) {
                        acc.union_with(set);
                    }
                }
                acc.optimize();
                let rc = Rc::new(acc);
                memo.insert(i, (pattern_label, rc.clone()));
                rc
            }
        }
    }

    /// How many target vertices are compatible with `pattern_label` —
    /// read from the cached set's container metadata, not recounted.
    pub fn candidate_count(&self, pattern_label: NodeLabel) -> usize {
        self.candidates(pattern_label).len()
    }
}

/// Batched matching over a whole database: one [`CandidateCache`] per
/// database graph, built once and reused across every pattern matched
/// against it. This is the right shape for support recounts, oracle
/// sweeps, and reference miners, where each target graph is matched
/// against many patterns in turn.
pub struct BatchedMatcher<'a, M: LabelMatcher> {
    caches: Vec<CandidateCache<'a, M>>,
}

impl<'a, M: LabelMatcher> BatchedMatcher<'a, M> {
    /// Indexes every graph of `db` under `matcher`.
    pub fn new(db: &'a GraphDatabase, matcher: &'a M) -> Self {
        BatchedMatcher {
            caches: db.iter().map(|(_, g)| CandidateCache::new(g, matcher)).collect(),
        }
    }

    /// The per-graph caches, in database iteration order.
    pub fn caches(&self) -> &[CandidateCache<'a, M>] {
        &self.caches
    }

    /// The paper's support *count* (distinct graphs containing at least
    /// one embedding), byte-for-byte equal to
    /// [`crate::support_count`] but amortizing candidate-set work
    /// across patterns.
    pub fn support_count(&self, pattern: &LabeledGraph) -> usize {
        self.caches
            .iter()
            .filter(|c| crate::subiso::contains_subgraph_cached(pattern, c))
            .count()
    }

    /// Streams every embedding of `pattern` in every target graph, in
    /// database order, as `(graph id, pattern vertex → target vertex)`
    /// pairs. The batched Pass-2 entry of the sharded SON miner: the
    /// candidate caches amortize label-compatibility scans across the
    /// whole candidate list, and the mapping slice is borrowed, so
    /// callers copy only the embeddings they keep.
    pub fn for_each_embedding(
        &self,
        pattern: &LabeledGraph,
        mut visit: impl FnMut(GraphId, &[NodeId]),
    ) {
        for (gid, cache) in self.caches.iter().enumerate() {
            crate::subiso::enumerate_embeddings_cached(pattern, cache, |map| {
                visit(gid, map);
                ControlFlow::Continue(())
            });
        }
    }
}
