//! Exact and generalized (taxonomy-aware) isomorphism tests.
//!
//! The paper's matching model (§2):
//!
//! * **Generalized graph isomorphism** `G1 IS_GEN_ISO G2`: a bijection
//!   `φ: V1 → V2` such that every `G1` vertex label equals or is a taxonomy
//!   ancestor of its image's label, and every `G1` edge maps onto a `G2`
//!   edge. (Not commutative; `G2` may carry extra edges.)
//! * **Generalized subgraph isomorphism**: `G` is generalized subgraph
//!   isomorphic to `GS` iff some subgraph `GS'` of `GS` has
//!   `G IS_GEN_ISO GS'` — equivalently, iff there is an *injective*
//!   label-compatible, edge-preserving map from `G` into `GS`. Edge labels
//!   always match exactly (taxonomies cover vertex labels only).
//!
//! The same backtracking engine, parameterized by a [`LabelMatcher`],
//! provides exact matching (ordinary subgraph isomorphism, as used by the
//! gSpan substrate and by test oracles) and generalized matching (as used
//! by the TAcGM baseline and the brute-force reference miner).
//!
//! When one target is matched against many patterns, a
//! [`CandidateCache`] (or a database-wide [`BatchedMatcher`]) batches
//! the per-label candidate-set computation across all of them: the
//! `*_cached` entry points produce byte-identical embeddings while
//! reading candidate sets — and their cardinalities, for selectivity
//! ordering — from adaptive set containers built once per target.

mod automorphism;
mod candidates;
mod matcher;
mod subiso;

pub use automorphism::{automorphism_count, automorphisms, canonical_under_automorphisms};
pub use candidates::{BatchedMatcher, CandidateCache};
pub use matcher::{ExactMatcher, GeneralizedMatcher, LabelMatcher};
pub use subiso::{
    contains_subgraph, contains_subgraph_cached, count_embeddings, count_embeddings_cached,
    enumerate_embeddings, enumerate_embeddings_cached, find_embedding, is_gen_iso, is_isomorphic,
    support_count, Embedding,
};
