//! Label compatibility policies.

use tsg_graph::NodeLabel;
use tsg_taxonomy::Taxonomy;

/// Decides whether a pattern vertex label may match a target vertex label.
///
/// Edge labels are always matched exactly — taxonomies in this model cover
/// vertex labels only (paper §2 keeps edge labels out of the hierarchy
/// "without loss of generality").
pub trait LabelMatcher {
    /// `true` iff a pattern vertex labeled `pattern` may map onto a target
    /// vertex labeled `target`.
    fn node_match(&self, pattern: NodeLabel, target: NodeLabel) -> bool;
}

/// Exact label equality — ordinary subgraph isomorphism.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactMatcher;

impl LabelMatcher for ExactMatcher {
    #[inline]
    fn node_match(&self, pattern: NodeLabel, target: NodeLabel) -> bool {
        pattern == target
    }
}

/// Taxonomy-generalized matching: the pattern label must equal the target
/// label or be one of its ancestors.
#[derive(Clone, Copy, Debug)]
pub struct GeneralizedMatcher<'a> {
    taxonomy: &'a Taxonomy,
}

impl<'a> GeneralizedMatcher<'a> {
    /// Wraps a taxonomy as a matcher.
    pub fn new(taxonomy: &'a Taxonomy) -> Self {
        GeneralizedMatcher { taxonomy }
    }

    /// The underlying taxonomy.
    pub fn taxonomy(&self) -> &'a Taxonomy {
        self.taxonomy
    }
}

impl LabelMatcher for GeneralizedMatcher<'_> {
    #[inline]
    fn node_match(&self, pattern: NodeLabel, target: NodeLabel) -> bool {
        self.taxonomy.matches_generalized(pattern, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_taxonomy::taxonomy_from_edges;

    #[test]
    fn exact_matcher_is_equality() {
        let m = ExactMatcher;
        assert!(m.node_match(NodeLabel(3), NodeLabel(3)));
        assert!(!m.node_match(NodeLabel(3), NodeLabel(4)));
    }

    #[test]
    fn generalized_matcher_accepts_ancestors_only_downward() {
        let t = taxonomy_from_edges(3, [(1, 0), (2, 1)]).unwrap(); // 0 > 1 > 2
        let m = GeneralizedMatcher::new(&t);
        assert!(m.node_match(NodeLabel(0), NodeLabel(2)), "root matches leaf");
        assert!(m.node_match(NodeLabel(1), NodeLabel(2)));
        assert!(m.node_match(NodeLabel(2), NodeLabel(2)), "reflexive");
        assert!(!m.node_match(NodeLabel(2), NodeLabel(0)), "not symmetric");
        assert!(!m.node_match(NodeLabel(2), NodeLabel(1)));
    }
}
