//! The backtracking embedding enumerator (VF2-flavored).

// tsg-lint: allow(index) — all search-state vectors are sized n and vertices range over 0..n

use crate::candidates::CandidateCache;
use crate::{ExactMatcher, GeneralizedMatcher, LabelMatcher};
use std::ops::ControlFlow;
use std::rc::Rc;
use tsg_bitset::AdaptiveBitSet;
use tsg_graph::{GraphDatabase, LabeledGraph, NodeId};
use tsg_taxonomy::Taxonomy;

/// An embedding maps pattern vertex `i` to target vertex `embedding[i]`.
pub type Embedding = Vec<NodeId>;

/// A matching order over pattern vertices in which every vertex after the
/// first of its connected component has at least one earlier neighbor —
/// this lets the searcher grow candidates from mapped neighborhoods instead
/// of scanning all target vertices.
///
/// Component starts are the expensive assignments (they scan every target
/// vertex), so each component starts at its most *selective* vertex: the
/// one with the fewest matcher-compatible target vertices, ties broken by
/// highest degree (more already-mapped-neighbor constraints on the rest
/// of the component), then lowest index for determinism. Selectivity is
/// computed against the matcher, not raw labels — under generalized
/// matching a root-labeled pattern vertex is compatible with far more
/// target vertices than its own label's frequency suggests.
///
/// Returns `None` when some pattern vertex has no compatible target
/// vertex at all: no embedding can exist, and the candidate scan already
/// proved it, so the search is skipped entirely.
fn matching_order<M: LabelMatcher>(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    matcher: &M,
) -> Option<Vec<NodeId>> {
    let n = pattern.node_count();
    // Matcher-compatible target-vertex count per pattern vertex. The
    // O(|V_P|·|V_T|) scan is amortized by the search it steers: one
    // infeasible component start costs a full target scan per attempt.
    // (The cached path gets the same counts from container metadata.)
    let mut candidates = vec![0usize; n];
    for (p, slot) in candidates.iter_mut().enumerate() {
        let lp = pattern.label(p);
        *slot = (0..target.node_count())
            .filter(|&t| matcher.node_match(lp, target.label(t)))
            .count();
        if *slot == 0 {
            return None;
        }
    }
    Some(order_from_counts(pattern, &candidates))
}

/// The ordering rule shared by the scanning and cached paths, given the
/// per-pattern-vertex candidate counts (all nonzero).
fn order_from_counts(pattern: &LabeledGraph, candidates: &[usize]) -> Vec<NodeId> {
    let n = pattern.node_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        let start = (0..n)
            .filter(|&v| !placed[v])
            .min_by_key(|&v| (candidates[v], std::cmp::Reverse(pattern.degree(v))))
            .expect("some vertex is unplaced while order is short"); // tsg-lint: allow(panic) — order is shorter than n here, so an unplaced vertex exists
        let mut queue = std::collections::VecDeque::from([start]);
        placed[start] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for a in pattern.neighbors(v) {
                if !placed[a.to] {
                    placed[a.to] = true;
                    queue.push_back(a.to);
                }
            }
        }
    }
    order
}

/// Where a component start finds its candidate vertices: the plain path
/// scans every target vertex; the batched path iterates the pattern
/// vertex's cached candidate set. Both visit candidates in ascending
/// vertex order, so the embedding stream is identical.
enum CandidateSource {
    Scan,
    Sets(Vec<Rc<AdaptiveBitSet>>),
}

struct Searcher<'a, M: LabelMatcher, F: FnMut(&[NodeId]) -> ControlFlow<()>> {
    pattern: &'a LabeledGraph,
    target: &'a LabeledGraph,
    matcher: &'a M,
    order: Vec<NodeId>,
    candidates: CandidateSource,
    /// `map[p]` = target vertex for pattern vertex `p`, or `usize::MAX`.
    map: Vec<NodeId>,
    used: Vec<bool>,
    visit: F,
}

impl<M: LabelMatcher, F: FnMut(&[NodeId]) -> ControlFlow<()>> Searcher<'_, M, F> {
    fn feasible(&self, p: NodeId, t: NodeId) -> bool {
        if self.used[t]
            || !self.matcher.node_match(self.pattern.label(p), self.target.label(t))
            || self.pattern.degree(p) > self.target.degree(t)
        {
            return false;
        }
        // Every pattern edge from p to an already-mapped vertex must exist
        // in the target with the same edge label — and, for directed
        // patterns, the same arc orientation.
        let directed = self.pattern.is_directed();
        for a in self.pattern.neighbors(p) {
            let mt = self.map[a.to];
            if mt == usize::MAX {
                continue;
            }
            let ok = if directed {
                if a.outgoing {
                    self.target.arc_label(t, mt) == Some(a.elabel)
                } else {
                    self.target.arc_label(mt, t) == Some(a.elabel)
                }
            } else {
                self.target.edge_label_between(t, mt) == Some(a.elabel)
            };
            if !ok {
                return false;
            }
        }
        true
    }

    fn search(&mut self, depth: usize) -> ControlFlow<()> {
        if depth == self.order.len() {
            return (self.visit)(&self.map);
        }
        let p = self.order[depth];
        // Prefer extending from a mapped neighbor's adjacency; fall back to
        // scanning all target vertices for component starts.
        let anchor = self
            .pattern
            .neighbors(p)
            .iter()
            .find(|a| self.map[a.to] != usize::MAX)
            .map(|a| self.map[a.to]);
        match anchor {
            Some(t_anchor) => {
                // Antiparallel arcs put the same neighbor in the adjacency
                // list twice; each candidate vertex must be tried once.
                let mut tried: Vec<NodeId> = Vec::new();
                for ta in self.target.neighbors(t_anchor) {
                    if !tried.contains(&ta.to) && self.feasible(p, ta.to) {
                        tried.push(ta.to);
                        self.assign(p, ta.to, depth)?;
                    }
                }
            }
            None => match &self.candidates {
                CandidateSource::Scan => {
                    for t in 0..self.target.node_count() {
                        if self.feasible(p, t) {
                            self.assign(p, t, depth)?;
                        }
                    }
                }
                CandidateSource::Sets(sets) => {
                    // Rc-detach the set so iterating it doesn't hold a
                    // borrow of `self` across the recursive assign.
                    let set = Rc::clone(&sets[p]);
                    for t in set.iter() {
                        if self.feasible(p, t) {
                            self.assign(p, t, depth)?;
                        }
                    }
                }
            },
        }
        ControlFlow::Continue(())
    }

    fn assign(&mut self, p: NodeId, t: NodeId, depth: usize) -> ControlFlow<()> {
        self.map[p] = t;
        self.used[t] = true;
        let flow = self.search(depth + 1);
        self.used[t] = false;
        self.map[p] = usize::MAX;
        flow
    }
}

/// Enumerates every injective, label-compatible (per `matcher`),
/// edge-preserving map from `pattern` into `target`, calling `visit` with
/// each complete embedding. `visit` may return [`ControlFlow::Break`] to
/// stop early. Embeddings are produced in a deterministic order.
///
/// This is *non-induced* matching: target edges not present in the pattern
/// are ignored, matching the paper's notion of an occurrence (a subgraph
/// `GS'` of `GS` with `P IS_GEN_ISO GS'`).
pub fn enumerate_embeddings<M: LabelMatcher>(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    matcher: &M,
    visit: impl FnMut(&[NodeId]) -> ControlFlow<()>,
) {
    debug_assert_eq!(
        pattern.is_directed(),
        target.is_directed(),
        "pattern and target must agree on directedness"
    );
    if pattern.node_count() > target.node_count() || pattern.edge_count() > target.edge_count() {
        return;
    }
    if pattern.node_count() == 0 {
        // The empty pattern has exactly one (empty) embedding.
        let mut visit = visit;
        let _ = visit(&[]);
        return;
    }
    let Some(order) = matching_order(pattern, target, matcher) else {
        return; // some pattern vertex has no compatible target vertex
    };
    let mut s = Searcher {
        pattern,
        target,
        matcher,
        order,
        candidates: CandidateSource::Scan,
        map: vec![usize::MAX; pattern.node_count()],
        used: vec![false; target.node_count()],
        visit,
    };
    let _ = s.search(0);
}

/// [`enumerate_embeddings`] through a [`CandidateCache`]: candidate sets
/// come from the cache (computed once per distinct pattern label over
/// the cache's lifetime), selectivity ordering reads their cardinalities
/// from container metadata, and component starts iterate the candidate
/// set instead of scanning every target vertex. Produces the same
/// embeddings in the same order as the plain path.
pub fn enumerate_embeddings_cached<M: LabelMatcher>(
    pattern: &LabeledGraph,
    cache: &CandidateCache<'_, M>,
    visit: impl FnMut(&[NodeId]) -> ControlFlow<()>,
) {
    let target = cache.target();
    debug_assert_eq!(
        pattern.is_directed(),
        target.is_directed(),
        "pattern and target must agree on directedness"
    );
    if pattern.node_count() > target.node_count() || pattern.edge_count() > target.edge_count() {
        return;
    }
    if pattern.node_count() == 0 {
        let mut visit = visit;
        let _ = visit(&[]);
        return;
    }
    let n = pattern.node_count();
    let mut sets = Vec::with_capacity(n);
    let mut counts = Vec::with_capacity(n);
    for p in 0..n {
        let set = cache.candidates(pattern.label(p));
        if set.is_empty() {
            return; // no compatible target vertex for this pattern vertex
        }
        counts.push(set.len());
        sets.push(set);
    }
    let order = order_from_counts(pattern, &counts);
    let mut s = Searcher {
        pattern,
        target,
        matcher: cache.matcher(),
        order,
        candidates: CandidateSource::Sets(sets),
        map: vec![usize::MAX; n],
        used: vec![false; target.node_count()],
        visit,
    };
    let _ = s.search(0);
}

/// [`contains_subgraph`] through a [`CandidateCache`].
pub fn contains_subgraph_cached<M: LabelMatcher>(
    pattern: &LabeledGraph,
    cache: &CandidateCache<'_, M>,
) -> bool {
    let mut found = false;
    enumerate_embeddings_cached(pattern, cache, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// [`count_embeddings`] through a [`CandidateCache`].
pub fn count_embeddings_cached<M: LabelMatcher>(
    pattern: &LabeledGraph,
    cache: &CandidateCache<'_, M>,
) -> usize {
    let mut n = 0;
    enumerate_embeddings_cached(pattern, cache, |_| {
        n += 1;
        ControlFlow::Continue(())
    });
    n
}

/// The first embedding of `pattern` into `target`, if any.
pub fn find_embedding<M: LabelMatcher>(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    matcher: &M,
) -> Option<Embedding> {
    let mut found = None;
    enumerate_embeddings(pattern, target, matcher, |m| {
        found = Some(m.to_vec());
        ControlFlow::Break(())
    });
    found
}

/// `true` iff `pattern` is (matcher-)subgraph isomorphic to `target`.
pub fn contains_subgraph<M: LabelMatcher>(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    matcher: &M,
) -> bool {
    find_embedding(pattern, target, matcher).is_some()
}

/// The number of embeddings (injective vertex maps, so automorphic variants
/// count separately) of `pattern` into `target`.
pub fn count_embeddings<M: LabelMatcher>(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    matcher: &M,
) -> usize {
    let mut n = 0;
    enumerate_embeddings(pattern, target, matcher, |_| {
        n += 1;
        ControlFlow::Continue(())
    });
    n
}

/// Paper §2: `G1 IS_GEN_ISO G2` — a *bijective* generalized isomorphism.
/// `G2` may have extra edges (the definition only requires `E1` to map into
/// `E2`), but vertex counts must agree.
pub fn is_gen_iso(g1: &LabeledGraph, g2: &LabeledGraph, taxonomy: &Taxonomy) -> bool {
    g1.node_count() == g2.node_count()
        && contains_subgraph(g1, g2, &GeneralizedMatcher::new(taxonomy))
}

/// Exact graph isomorphism: equal vertex and edge counts plus an exact
/// edge-preserving bijection. (An injective map between graphs with equal
/// edge counts is automatically edge-bijective.)
pub fn is_isomorphic(g1: &LabeledGraph, g2: &LabeledGraph) -> bool {
    g1.node_count() == g2.node_count()
        && g1.edge_count() == g2.edge_count()
        && g1.invariant_signature() == g2.invariant_signature()
        && contains_subgraph(g1, g2, &ExactMatcher)
}

/// The paper's support *count*: the number of database graphs containing at
/// least one embedding of `pattern` (per-graph, not per-occurrence).
pub fn support_count<M: LabelMatcher>(
    pattern: &LabeledGraph,
    db: &GraphDatabase,
    matcher: &M,
) -> usize {
    db.iter()
        .filter(|(_, g)| contains_subgraph(pattern, g, matcher))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_graph::{EdgeLabel, NodeLabel};
    use tsg_taxonomy::taxonomy_from_edges;

    fn nl(v: u32) -> NodeLabel {
        NodeLabel(v)
    }
    fn el(v: u32) -> EdgeLabel {
        EdgeLabel(v)
    }

    fn path(labels: &[u32], elabels: &[u32]) -> LabeledGraph {
        let mut g = LabeledGraph::with_nodes(labels.iter().map(|&x| nl(x)));
        for i in 1..labels.len() {
            g.add_edge(i - 1, i, el(elabels[i - 1])).unwrap();
        }
        g
    }

    /// Brute-force oracle: try all injective maps by permutation.
    fn brute_embeddings<M: LabelMatcher>(
        p: &LabeledGraph,
        t: &LabeledGraph,
        m: &M,
    ) -> Vec<Embedding> {
        fn rec<M: LabelMatcher>(
            p: &LabeledGraph,
            t: &LabeledGraph,
            m: &M,
            map: &mut Vec<usize>,
            used: &mut Vec<bool>,
            out: &mut Vec<Embedding>,
        ) {
            let i = map.len();
            if i == p.node_count() {
                out.push(map.clone());
                return;
            }
            for cand in 0..t.node_count() {
                if used[cand] || !m.node_match(p.label(i), t.label(cand)) {
                    continue;
                }
                let ok = p.neighbors(i).iter().all(|a| {
                    if a.to >= i {
                        return true;
                    }
                    if p.is_directed() {
                        if a.outgoing {
                            t.arc_label(cand, map[a.to]) == Some(a.elabel)
                        } else {
                            t.arc_label(map[a.to], cand) == Some(a.elabel)
                        }
                    } else {
                        t.edge_label_between(cand, map[a.to]) == Some(a.elabel)
                    }
                });
                if ok {
                    used[cand] = true;
                    map.push(cand);
                    rec(p, t, m, map, used, out);
                    map.pop();
                    used[cand] = false;
                }
            }
        }
        let mut out = vec![];
        rec(p, t, m, &mut vec![], &mut vec![false; t.node_count()], &mut out);
        out
    }

    #[test]
    fn exact_path_in_path() {
        let p = path(&[1, 2], &[0]);
        let t = path(&[1, 2, 1], &[0, 0]);
        assert!(contains_subgraph(&p, &t, &ExactMatcher));
        // Embeddings: 0->0,1->1 and 0->2,1->1.
        assert_eq!(count_embeddings(&p, &t, &ExactMatcher), 2);
        let e = find_embedding(&p, &t, &ExactMatcher).unwrap();
        assert_eq!(t.label(e[0]), nl(1));
        assert_eq!(t.label(e[1]), nl(2));
    }

    #[test]
    fn edge_labels_must_match_exactly() {
        let p = path(&[1, 2], &[7]);
        let t = path(&[1, 2], &[8]);
        assert!(!contains_subgraph(&p, &t, &ExactMatcher));
        let t2 = path(&[1, 2], &[7]);
        assert!(contains_subgraph(&p, &t2, &ExactMatcher));
    }

    #[test]
    fn non_induced_semantics() {
        // Pattern: path 0-1-2 (labels 1,1,1). Target: triangle (1,1,1).
        let p = path(&[1, 1, 1], &[0, 0]);
        let mut t = LabeledGraph::with_nodes([nl(1), nl(1), nl(1)]);
        t.add_edge(0, 1, el(0)).unwrap();
        t.add_edge(1, 2, el(0)).unwrap();
        t.add_edge(2, 0, el(0)).unwrap();
        // The extra triangle edge does not block the path embedding.
        assert!(contains_subgraph(&p, &t, &ExactMatcher));
        assert_eq!(count_embeddings(&p, &t, &ExactMatcher), 6);
    }

    #[test]
    fn generalized_matching_follows_taxonomy() {
        // Taxonomy 0 > 1 > 2.
        let t = taxonomy_from_edges(3, [(1, 0), (2, 1)]).unwrap();
        let m = GeneralizedMatcher::new(&t);
        let pattern = path(&[0, 0], &[0]); // two root-labeled vertices
        let target = path(&[2, 1], &[0]); // leaf-labeled
        assert!(contains_subgraph(&pattern, &target, &m));
        assert!(
            !contains_subgraph(&target, &pattern, &m),
            "generalized matching is not symmetric"
        );
    }

    #[test]
    fn is_gen_iso_requires_bijection_but_allows_extra_edges() {
        let t = taxonomy_from_edges(3, [(1, 0), (2, 0)]).unwrap();
        let g1 = path(&[0, 0], &[0]);
        // g2: triangle over labels 1, 2, 1 — more vertices, so not gen-iso.
        let mut g2 = LabeledGraph::with_nodes([nl(1), nl(2), nl(1)]);
        g2.add_edge(0, 1, el(0)).unwrap();
        g2.add_edge(1, 2, el(0)).unwrap();
        g2.add_edge(2, 0, el(0)).unwrap();
        assert!(!is_gen_iso(&g1, &g2, &t));
        // Same vertex count, extra edge in g2: allowed by the definition.
        let g3 = path(&[0, 0, 0], &[0, 0]);
        assert!(is_gen_iso(&g3, &g2, &t));
    }

    #[test]
    fn is_isomorphic_basic() {
        let a = path(&[1, 2, 3], &[0, 1]);
        // Same path built reversed.
        let mut b = LabeledGraph::with_nodes([nl(3), nl(2), nl(1)]);
        b.add_edge(0, 1, el(1)).unwrap();
        b.add_edge(1, 2, el(0)).unwrap();
        assert!(is_isomorphic(&a, &b));
        let c = path(&[1, 2, 3], &[1, 0]);
        assert!(!is_isomorphic(&a, &c), "edge labels swapped");
        // Path vs triangle with same labels: different edge count.
        let mut tri = LabeledGraph::with_nodes([nl(1), nl(2), nl(3)]);
        tri.add_edge(0, 1, el(0)).unwrap();
        tri.add_edge(1, 2, el(1)).unwrap();
        tri.add_edge(2, 0, el(0)).unwrap();
        assert!(!is_isomorphic(&a, &tri));
    }

    #[test]
    fn support_counts_graphs_not_embeddings() {
        let p = path(&[1, 1], &[0]);
        let db = GraphDatabase::from_graphs(vec![
            path(&[1, 1, 1], &[0, 0]), // two embeddings ×2 orientations
            path(&[1, 2], &[0]),
            path(&[1, 1], &[0]),
        ]);
        assert_eq!(support_count(&p, &db, &ExactMatcher), 2);
    }

    #[test]
    fn empty_pattern_has_one_embedding() {
        let t = path(&[1, 2], &[0]);
        assert_eq!(count_embeddings(&LabeledGraph::new(), &t, &ExactMatcher), 1);
    }

    #[test]
    fn disconnected_pattern_is_handled() {
        let mut p = LabeledGraph::with_nodes([nl(1), nl(2)]); // no edge
        let _ = &mut p;
        let t = path(&[2, 3, 1], &[0, 0]);
        assert_eq!(count_embeddings(&p, &t, &ExactMatcher), 1);
    }

    #[test]
    fn rare_label_start_prunes_but_preserves_results() {
        // Pattern: star with a hub labeled 9 (unique in the target) and
        // two leaves labeled 1 (common). The order must start at the
        // rare hub; either way, results must match brute force.
        let mut p = LabeledGraph::with_nodes([nl(1), nl(9), nl(1)]);
        p.add_edge(0, 1, el(0)).unwrap();
        p.add_edge(1, 2, el(0)).unwrap();
        let mut t = LabeledGraph::with_nodes([nl(1), nl(1), nl(1), nl(9), nl(1)]);
        t.add_edge(0, 3, el(0)).unwrap();
        t.add_edge(1, 3, el(0)).unwrap();
        t.add_edge(2, 3, el(0)).unwrap();
        t.add_edge(2, 4, el(0)).unwrap();
        let mut got: Vec<Embedding> = vec![];
        enumerate_embeddings(&p, &t, &ExactMatcher, |e| {
            got.push(e.to_vec());
            ControlFlow::Continue(())
        });
        let mut want = brute_embeddings(&p, &t, &ExactMatcher);
        got.sort();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(got.len(), 6); // 3 choices × 2 ordered leaf pairs
    }

    #[test]
    fn absent_label_short_circuits_to_no_embeddings() {
        let p = path(&[1, 42], &[0]);
        let t = path(&[1, 2, 1], &[0, 0]);
        assert_eq!(count_embeddings(&p, &t, &ExactMatcher), 0);
        assert!(find_embedding(&p, &t, &ExactMatcher).is_none());
    }

    #[test]
    fn cached_path_is_byte_identical_to_plain_path() {
        let tax = taxonomy_from_edges(4, [(1, 0), (2, 0), (3, 1)]).unwrap();
        let gm = GeneralizedMatcher::new(&tax);
        let mut ring = LabeledGraph::with_nodes([nl(1), nl(2), nl(3), nl(1), nl(2)]);
        for i in 0..5 {
            ring.add_edge(i, (i + 1) % 5, el(i as u32 % 2)).unwrap();
        }
        let patterns = vec![
            path(&[0, 0], &[0]),
            path(&[1, 0, 2], &[0, 1]),
            path(&[0, 0, 0], &[0, 0]),
            path(&[3, 1], &[1]),
        ];
        let cache = crate::candidates::CandidateCache::new(&ring, &gm);
        for p in &patterns {
            // Same embeddings in the same order, not just the same set.
            let mut plain: Vec<Embedding> = vec![];
            enumerate_embeddings(p, &ring, &gm, |e| {
                plain.push(e.to_vec());
                ControlFlow::Continue(())
            });
            let mut cached: Vec<Embedding> = vec![];
            enumerate_embeddings_cached(p, &cache, |e| {
                cached.push(e.to_vec());
                ControlFlow::Continue(())
            });
            assert_eq!(plain, cached, "pattern {p:?}");
            assert_eq!(
                contains_subgraph(p, &ring, &gm),
                contains_subgraph_cached(p, &cache)
            );
            assert_eq!(
                count_embeddings(p, &ring, &gm),
                count_embeddings_cached(p, &cache)
            );
        }
    }

    #[test]
    fn batched_support_matches_plain_support() {
        let tax = taxonomy_from_edges(4, [(1, 0), (2, 0), (3, 1)]).unwrap();
        let gm = GeneralizedMatcher::new(&tax);
        let db = GraphDatabase::from_graphs(vec![
            path(&[1, 2, 1], &[0, 0]),
            path(&[3, 1], &[0]),
            path(&[2, 3, 2], &[0, 0]),
        ]);
        let batched = crate::candidates::BatchedMatcher::new(&db, &gm);
        for p in [path(&[0, 0], &[0]), path(&[1, 0], &[0]), path(&[0, 2], &[0])] {
            assert_eq!(
                batched.support_count(&p),
                support_count(&p, &db, &gm),
                "pattern {p:?}"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_assorted_cases() {
        let tax = taxonomy_from_edges(4, [(1, 0), (2, 0), (3, 1)]).unwrap();
        let cases: Vec<(LabeledGraph, LabeledGraph)> = vec![
            (path(&[0, 0], &[0]), path(&[3, 1, 2], &[0, 0])),
            (path(&[1, 0, 2], &[0, 1]), path(&[3, 0, 2, 1], &[0, 1, 0])),
            (path(&[0, 0, 0], &[0, 0]), {
                let mut g = LabeledGraph::with_nodes([nl(1), nl(2), nl(3), nl(1)]);
                g.add_edge(0, 1, el(0)).unwrap();
                g.add_edge(1, 2, el(0)).unwrap();
                g.add_edge(2, 3, el(0)).unwrap();
                g.add_edge(3, 0, el(0)).unwrap();
                g
            }),
        ];
        for (p, t) in cases {
            for use_gen in [false, true] {
                let (mut got, mut want);
                if use_gen {
                    let m = GeneralizedMatcher::new(&tax);
                    got = vec![];
                    enumerate_embeddings(&p, &t, &m, |e| {
                        got.push(e.to_vec());
                        ControlFlow::Continue(())
                    });
                    want = brute_embeddings(&p, &t, &m);
                } else {
                    got = vec![];
                    enumerate_embeddings(&p, &t, &ExactMatcher, |e| {
                        got.push(e.to_vec());
                        ControlFlow::Continue(())
                    });
                    want = brute_embeddings(&p, &t, &ExactMatcher);
                }
                got.sort();
                want.sort();
                assert_eq!(got, want, "pattern {p:?} target {t:?} gen={use_gen}");
            }
        }
    }
}

#[cfg(test)]
mod directed_tests {
    use super::*;
    use tsg_graph::{EdgeLabel, NodeLabel};
    use tsg_taxonomy::taxonomy_from_edges;

    fn nl(v: u32) -> NodeLabel {
        NodeLabel(v)
    }
    fn el(v: u32) -> EdgeLabel {
        EdgeLabel(v)
    }

    fn arc_path(labels: &[u32]) -> tsg_graph::LabeledGraph {
        let mut g =
            tsg_graph::LabeledGraph::with_nodes_directed(labels.iter().map(|&x| nl(x)));
        for i in 1..labels.len() {
            g.add_edge(i - 1, i, el(0)).unwrap();
        }
        g
    }

    #[test]
    fn arc_direction_is_respected() {
        // Pattern 1 → 2; target 2 → 1 (reversed): no match.
        let p = arc_path(&[1, 2]);
        let mut t = tsg_graph::LabeledGraph::with_nodes_directed([nl(2), nl(1)]);
        t.add_edge(0, 1, el(0)).unwrap(); // arc 2 → 1
        assert!(!contains_subgraph(&p, &t, &ExactMatcher));
        // Reversed target arc: match.
        let mut t2 = tsg_graph::LabeledGraph::with_nodes_directed([nl(2), nl(1)]);
        t2.add_edge(1, 0, el(0)).unwrap(); // arc 1 → 2
        assert!(contains_subgraph(&p, &t2, &ExactMatcher));
    }

    #[test]
    fn antiparallel_arcs_are_distinct() {
        // Target has both 1→2 and 2→1 with different labels.
        let mut t = tsg_graph::LabeledGraph::with_nodes_directed([nl(1), nl(2)]);
        t.add_edge(0, 1, el(0)).unwrap();
        t.add_edge(1, 0, el(1)).unwrap();
        let mut p01 = tsg_graph::LabeledGraph::with_nodes_directed([nl(1), nl(2)]);
        p01.add_edge(0, 1, el(0)).unwrap();
        assert!(contains_subgraph(&p01, &t, &ExactMatcher));
        let mut p_wrong = tsg_graph::LabeledGraph::with_nodes_directed([nl(1), nl(2)]);
        p_wrong.add_edge(0, 1, el(1)).unwrap(); // label of the reverse arc
        assert!(!contains_subgraph(&p_wrong, &t, &ExactMatcher));
        // The 2-arc pattern embeds exactly once.
        let mut both = tsg_graph::LabeledGraph::with_nodes_directed([nl(1), nl(2)]);
        both.add_edge(0, 1, el(0)).unwrap();
        both.add_edge(1, 0, el(1)).unwrap();
        assert_eq!(count_embeddings(&both, &t, &ExactMatcher), 1);
    }

    #[test]
    fn directed_cycle_automorphisms() {
        // Directed 3-cycle with uniform labels: the 3 rotations, but not
        // the 3 reflections (which reverse arcs).
        let mut g = tsg_graph::LabeledGraph::with_nodes_directed(vec![nl(0); 3]);
        g.add_edge(0, 1, el(0)).unwrap();
        g.add_edge(1, 2, el(0)).unwrap();
        g.add_edge(2, 0, el(0)).unwrap();
        assert_eq!(crate::automorphism_count(&g), 3);
    }

    #[test]
    fn generalized_directed_matching() {
        let tax = taxonomy_from_edges(2, [(1, 0)]).unwrap();
        let m = GeneralizedMatcher::new(&tax);
        // Pattern 0 → 0 matches DB arc 1 → 1, not the reverse question.
        let p = arc_path(&[0, 0]);
        let t = arc_path(&[1, 1]);
        assert!(contains_subgraph(&p, &t, &m));
        assert!(!contains_subgraph(&t, &p, &m));
    }

    #[test]
    fn is_isomorphic_distinguishes_orientation() {
        // Path 1 → 2 → 3 vs 1 ← 2 ← 3 (same underlying shape).
        let a = arc_path(&[1, 2, 3]);
        let mut b = tsg_graph::LabeledGraph::with_nodes_directed([nl(1), nl(2), nl(3)]);
        b.add_edge(1, 0, el(0)).unwrap();
        b.add_edge(2, 1, el(0)).unwrap();
        assert!(!is_isomorphic(&a, &b));
        assert!(is_isomorphic(&a, &a.clone()));
    }
}
