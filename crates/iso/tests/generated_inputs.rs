//! Matcher laws on seeded [`tsg_testkit`] inputs: reflexivity of
//! isomorphism, self-containment under both matchers, and the exact ⇒
//! generalized implication (equal labels are ancestor-or-equal labels).

use tsg_iso::{contains_subgraph, is_gen_iso, is_isomorphic, ExactMatcher, GeneralizedMatcher};
use tsg_testkit::gen::{case_count, cases};

const BASE_SEED: u64 = 0x7a78_6f67_7261_6d03;

#[test]
fn isomorphism_is_reflexive_and_gen_iso_extends_it() {
    for c in cases(BASE_SEED, case_count(64)) {
        for (gid, g) in c.db.iter() {
            assert!(is_isomorphic(g, g), "seed {:#x} graph {gid}", c.seed);
            assert!(
                is_gen_iso(g, g, &c.taxonomy),
                "seed {:#x} graph {gid}: gen-iso must subsume equality",
                c.seed
            );
        }
    }
}

#[test]
fn exact_containment_implies_generalized_containment() {
    for c in cases(BASE_SEED ^ 1, case_count(64)) {
        let gen = GeneralizedMatcher::new(&c.taxonomy);
        for (_, pattern) in c.db.iter() {
            for (_, target) in c.db.iter() {
                if contains_subgraph(pattern, target, &ExactMatcher) {
                    assert!(
                        contains_subgraph(pattern, target, &gen),
                        "seed {:#x}: exact embedding not found by generalized matcher",
                        c.seed
                    );
                }
            }
        }
    }
}

#[test]
fn generalized_support_is_at_least_exact_support() {
    for c in cases(BASE_SEED ^ 2, case_count(64)) {
        let gen = GeneralizedMatcher::new(&c.taxonomy);
        for (_, pattern) in c.db.iter() {
            let exact = tsg_iso::support_count(pattern, &c.db, &ExactMatcher);
            let general = tsg_iso::support_count(pattern, &c.db, &gen);
            assert!(
                general >= exact && exact >= 1,
                "seed {:#x}: exact {exact} > generalized {general}",
                c.seed
            );
        }
    }
}
