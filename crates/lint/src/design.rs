//! Cross-parsing the DESIGN.md §12 atomics contract table.
//!
//! The ordering-audit rule is two-sided: every non-`SeqCst`
//! `Ordering::` site must name a contract row via an
//! `// tsg-lint: ordering(ORD-nn)` pragma, *and* every table row must
//! be named by at least one live site — so the table can neither lag
//! the code (unaudited site) nor outlive it (stale row). The table is
//! the first markdown table inside the `## 12.` section whose header
//! row contains an `ID` column; rows are `| ORD-nn | site | ordering |
//! contract |`.

/// One parsed contract row.
#[derive(Debug, Clone)]
pub struct ContractRow {
    pub id: String,
    /// The `Ordering` column text, e.g. `Release / Acquire`, `Relaxed`.
    pub orderings: String,
    /// 1-based line in the design file.
    pub line: u32,
}

#[derive(Debug, Default)]
pub struct ContractTable {
    pub rows: Vec<ContractRow>,
    /// Problems found while parsing (duplicate IDs, bad ID format).
    pub problems: Vec<(u32, String)>,
}

impl ContractTable {
    pub fn get(&self, id: &str) -> Option<&ContractRow> {
        self.rows.iter().find(|r| r.id == id)
    }
}

/// Extract the §12 contract table from the full DESIGN.md text.
/// Returns None when the section or table cannot be found at all
/// (reported by the caller as a hard configuration error).
pub fn parse(design: &str) -> Option<ContractTable> {
    let mut in_section = false;
    let mut in_table = false;
    let mut saw_separator = false;
    let mut table = ContractTable::default();
    let mut found_table = false;

    for (idx, raw) in design.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        if line.starts_with("## ") {
            if in_section && found_table {
                break;
            }
            in_section = line.starts_with("## 12.");
            in_table = false;
            saw_separator = false;
            continue;
        }
        if !in_section {
            continue;
        }
        if !line.starts_with('|') {
            if in_table && found_table {
                break; // table ended
            }
            in_table = false;
            saw_separator = false;
            continue;
        }
        let cells: Vec<&str> = line
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if !in_table {
            // Candidate header row: require an ID column first.
            if cells.first().is_some_and(|c| c.eq_ignore_ascii_case("id")) {
                in_table = true;
            }
            continue;
        }
        if !saw_separator {
            // The |---|---| row under the header.
            saw_separator = true;
            continue;
        }
        found_table = true;
        let id = cells.first().copied().unwrap_or("").trim_matches('`');
        if !id.starts_with("ORD-") {
            table
                .problems
                .push((line_no, format!("contract ID `{id}` does not match `ORD-nn`")));
            continue;
        }
        if table.rows.iter().any(|r| r.id == id) {
            table
                .problems
                .push((line_no, format!("duplicate contract ID `{id}`")));
            continue;
        }
        table.rows.push(ContractRow {
            id: id.to_string(),
            orderings: cells.get(2).copied().unwrap_or("").to_string(),
            line: line_no,
        });
    }

    if table.rows.is_empty() && table.problems.is_empty() {
        None
    } else {
        Some(table)
    }
}
