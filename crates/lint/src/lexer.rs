//! A lightweight Rust token scanner: just enough lexing to run the
//! tsg-lint rules without a real parser.
//!
//! The scanner's one hard job is *classification*: every byte of the
//! source ends up in exactly one of {code token, comment, string/char
//! literal, whitespace}, so a rule that matches on code tokens can
//! never be fooled by `"std::sync"` inside a string or `Ordering::`
//! inside a block comment, and the pragma parser only ever sees real
//! line comments. Numbers, lifetimes, raw strings (any `#` depth),
//! byte strings, raw identifiers, and nested block comments are all
//! handled; everything the rules do not need (precise number grammar,
//! float suffixes) is lumped into opaque tokens.

/// What kind of code token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`text` holds it, raw-ident `r#` stripped).
    Ident,
    /// Integer/float literal (text not retained).
    Num,
    /// String, byte-string, or char literal (text not retained).
    Lit,
    /// A `::` path separator (merged into one token).
    PathSep,
    /// Any other single punctuation character (`text` holds it).
    Punct(char),
}

/// One code token with its source position (1-based line, 0-based column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.kind, TokKind::Punct(p) if p == c)
    }
}

/// One `//` line comment (text after the `//`, untrimmed).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// The lexed file: code tokens plus captured line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True if any code token sits on `line` at a column left of `col`
    /// (used to tell a trailing comment from a standalone one).
    pub fn code_before(&self, line: u32, col: u32) -> bool {
        self.tokens
            .iter()
            .any(|t| t.line == line && t.col < col)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.src.get(self.pos + ahead).map(|&b| b as char)
    }

    fn col(&self) -> u32 {
        (self.pos - self.line_start) as u32
    }

    /// Advance one byte, maintaining the line counter. Multibyte UTF-8
    /// is advanced byte-by-byte; none of the token classes the rules
    /// care about can start mid-codepoint, so this is safe for
    /// classification purposes.
    fn bump(&mut self) {
        if self.src.get(self.pos) == Some(&b'\n') {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

/// Lex `src` into code tokens and line comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        let col = cur.col();

        // Line comment (captures text for the pragma parser).
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump_n(2);
            let start = cur.pos;
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                cur.bump();
            }
            let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(); // tsg-lint: allow(index) — start and pos are byte cursors bounded by src.len()
            out.comments.push(Comment { text, line, col });
            continue;
        }

        // Block comment, nestable.
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump_n(2);
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump_n(2);
                    }
                    (Some(_), _) => cur.bump(),
                    (None, _) => break,
                }
            }
            continue;
        }

        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Raw strings / raw identifiers / byte strings, all starting
        // with an ident-looking prefix: r" r#" b" br#" br" b' r#ident.
        if is_ident_start(c) {
            if let Some(prefix) = raw_or_byte_literal_prefix(&cur) {
                match prefix {
                    LitPrefix::ByteChar => {
                        cur.bump();
                        scan_char(&mut cur);
                    }
                    LitPrefix::ByteStr => {
                        cur.bump();
                        scan_plain_string(&mut cur);
                    }
                    LitPrefix::Raw(len) => {
                        cur.bump_n(len);
                        scan_string_body(&mut cur);
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line,
                    col,
                });
                continue;
            }
            // Raw identifier r#name: skip the prefix, keep the name.
            if c == 'r' && cur.peek(1) == Some('#') {
                if let Some(n) = cur.peek(2) {
                    if is_ident_start(n) {
                        cur.bump_n(2);
                    }
                }
            }
            let start = cur.pos;
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                cur.bump();
            }
            let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(); // tsg-lint: allow(index) — start and pos are byte cursors bounded by src.len()
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }

        // Number literal (coarse: digits then alphanumerics/underscore,
        // one fractional part iff `.digit` follows — so `0..10` lexes
        // as Num PathSep-free `.` `.` Num, and `1.5e3` is one token).
        if c.is_ascii_digit() {
            cur.bump();
            while let Some(ch) = cur.peek(0) {
                let fraction =
                    ch == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit());
                if ch.is_alphanumeric() || ch == '_' || fraction {
                    cur.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text: String::new(),
                line,
                col,
            });
            continue;
        }

        // Plain string literal.
        if c == '"' {
            scan_plain_string(&mut cur);
            out.tokens.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line,
                col,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if is_lifetime(&cur) {
                cur.bump(); // the quote
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    cur.bump();
                }
                // Lifetimes are opaque to every rule: drop them.
                continue;
            }
            scan_char(&mut cur);
            out.tokens.push(Tok {
                kind: TokKind::Lit,
                text: String::new(),
                line,
                col,
            });
            continue;
        }

        // `::` path separator, merged.
        if c == ':' && cur.peek(1) == Some(':') {
            cur.bump_n(2);
            out.tokens.push(Tok {
                kind: TokKind::PathSep,
                text: String::new(),
                line,
                col,
            });
            continue;
        }

        // Anything else: one punctuation char.
        cur.bump();
        out.tokens.push(Tok {
            kind: TokKind::Punct(c),
            text: String::new(),
            line,
            col,
        });
    }

    out
}

/// A recognized literal prefix at the cursor.
enum LitPrefix {
    /// `b'…'` — byte char, escapes apply.
    ByteChar,
    /// `b"…"` — byte string, escapes apply.
    ByteStr,
    /// `r"…"`, `r#"…"#`, `br"…"`, `br#"…"#` — no escapes; the payload
    /// is the letter-prefix length (1 for `r`, 2 for `br`), leaving the
    /// cursor on the hash run / quote for the body scanner.
    Raw(usize),
}

/// Detect a raw/byte literal prefix; None for plain identifiers and
/// raw identifiers (`r#ident`).
fn raw_or_byte_literal_prefix(cur: &Cursor<'_>) -> Option<LitPrefix> {
    let is_raw_open = |cur: &Cursor<'_>, from: usize| {
        let mut i = from;
        while cur.peek(i) == Some('#') {
            i += 1;
        }
        cur.peek(i) == Some('"')
    };
    match cur.peek(0)? {
        'r' if is_raw_open(cur, 1) => Some(LitPrefix::Raw(1)),
        'b' => match cur.peek(1) {
            Some('\'') => Some(LitPrefix::ByteChar),
            Some('"') => Some(LitPrefix::ByteStr),
            Some('r') if is_raw_open(cur, 2) => Some(LitPrefix::Raw(2)),
            _ => None,
        },
        _ => None,
    }
}

/// Scan a raw/byte string body with the cursor on the opening `"` or
/// on the first `#` of the hash run (the `r`/`b`/`br` letter prefix is
/// already consumed). Raw bodies have no escapes; the body ends at
/// `"` followed by the matching number of hashes.
fn scan_string_body(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) != Some('"') {
        return; // malformed; classification best-effort
    }
    cur.bump(); // opening quote
    if hashes == 0 {
        // Raw string with no hashes still has no escapes; but this path
        // is also only reached for raw forms (plain strings use
        // scan_plain_string), so escapes are literal text.
        while let Some(ch) = cur.peek(0) {
            cur.bump();
            if ch == '"' {
                return;
            }
        }
        return;
    }
    while let Some(ch) = cur.peek(0) {
        cur.bump();
        if ch == '"' {
            let mut n = 0usize;
            while n < hashes && cur.peek(0) == Some('#') {
                n += 1;
                cur.bump();
            }
            if n == hashes {
                return;
            }
        }
    }
}

fn scan_plain_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            cur.bump_n(2);
            continue;
        }
        cur.bump();
        if ch == '"' {
            return;
        }
    }
}

/// With the cursor on `'`, decide lifetime (`'a`) vs char (`'x'`,
/// `'\n'`, `'('`). A lifetime is `'` + ident with *no* closing quote.
fn is_lifetime(cur: &Cursor<'_>) -> bool {
    match cur.peek(1) {
        Some('\\') => false,
        Some(c) if is_ident_start(c) => {
            // Scan the ident; if a `'` immediately follows it is a char
            // literal like 'a'; otherwise a lifetime.
            let mut i = 2;
            while cur.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            cur.peek(i) != Some('\'')
        }
        _ => false,
    }
}

fn scan_char(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            cur.bump_n(2);
            continue;
        }
        cur.bump();
        if ch == '\'' {
            return;
        }
    }
}
