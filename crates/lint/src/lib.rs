//! The tsg-lint workspace-invariant static analysis for the taxogram
//! repository (DESIGN.md §17). (The crate doc deliberately does not
//! open with the pragma marker — a comment starting with it is parsed
//! as a pragma, and an unparseable pragma is itself a violation.)
//!
//! Mechanically enforces the contracts the engines' correctness
//! arguments rest on but that `clippy` cannot express:
//!
//! - **facade discipline** — engine concurrency goes through
//!   `taxogram_core::sync` so the §12 model checker sees it;
//! - **ordering audit** — every non-`SeqCst` atomic ordering names a
//!   row of the DESIGN.md §12 contract table, and the table carries no
//!   stale rows;
//! - **panic-path hygiene** — `unwrap`/`expect`/`panic!`/slice-index
//!   in non-test library code needs a justified pragma;
//! - **fault-hook containment** — `#[doc(hidden)]` fault-injection
//!   hooks stay inside tests, the testkit, and bench code.
//!
//! The analysis is purely lexical (a comment/string-accurate token
//! scanner plus `cfg(test)` region tracking) so it runs in
//! milliseconds, needs no dependencies, and cannot be desynchronized
//! from the build. Violations are suppressed only by in-source
//! pragmas (`// tsg-lint: …`) that each carry a justification; unused
//! pragmas and unparseable pragmas are violations themselves.

pub mod design;
pub mod lexer;
pub mod policy;
pub mod pragma;
pub mod regions;
pub mod report;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use report::{Report, Rule, Violation};
pub use rules::SourceFile;

/// Analyze a live workspace rooted at `root` (must contain DESIGN.md
/// with the §12 contract table — its absence is a hard error, not a
/// clean run).
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let design_path = root.join("DESIGN.md");
    let design_text = std::fs::read_to_string(&design_path)
        .map_err(|e| format!("cannot read {}: {e}", design_path.display()))?;
    let table = design::parse(&design_text)
        .ok_or("DESIGN.md has no §12 atomics contract table (| ID | Site | Ordering | Contract |) — the ordering audit cannot run")?;
    let sources = walk::collect_sources(root)?;
    let files: Vec<SourceFile> = sources
        .into_iter()
        .map(|(rel, src)| SourceFile::prepare(rel, &src))
        .collect();
    Ok(rules::analyze(&files, Some(&table), "DESIGN.md"))
}

/// Analyze in-memory sources (the fixture-test entry point). Paths are
/// workspace-relative and drive the same policy classification as a
/// real run; `design` optionally supplies a contract table in
/// DESIGN.md markdown form.
pub fn analyze_sources(sources: &[(&str, &str)], design: Option<&str>) -> Report {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, src)| SourceFile::prepare((*rel).to_string(), src))
        .collect();
    let table = design.and_then(design::parse);
    rules::analyze(&files, table.as_ref(), "DESIGN.md")
}
